// Wire protocol between coordination clients and the coordination service.
//
// The service mirrors the subset of Apache ZooKeeper that Snooze's leader
// election needs: sessions kept alive by pings, ephemeral and sequential
// znodes, and one-shot watches on node existence and children.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace snooze::coord {

using SessionId = std::uint64_t;
constexpr SessionId kNullSession = 0;

enum class Op {
  kOpenSession,
  kPing,
  kCloseSession,
  kCreate,
  kDelete,
  kExists,
  kGetChildren,
  kGetData,
};

struct Request final : net::Message {
  Op op = Op::kPing;
  SessionId session = kNullSession;
  std::string path;
  std::string data;
  bool ephemeral = false;
  bool sequential = false;
  bool watch = false;
  double session_timeout = 0.0;  ///< only for kOpenSession

  [[nodiscard]] std::string_view type() const override { return "coord.request"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 48 + path.size() + data.size();
  }
};

struct Response final : net::Message {
  bool ok = false;
  SessionId session = kNullSession;
  std::string path;  ///< actual path for kCreate (sequence suffix applied)
  std::string data;
  bool exists = false;
  std::vector<std::string> children;

  [[nodiscard]] std::string_view type() const override { return "coord.response"; }
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t n = 48 + path.size() + data.size();
    for (const auto& c : children) n += c.size() + 4;
    return n;
  }
};

/// One-way notification for a fired watch (one-shot, like ZooKeeper).
struct WatchEvent final : net::Message {
  enum class Kind { kCreated, kDeleted, kChildrenChanged };
  std::string path;
  Kind kind = Kind::kDeleted;

  [[nodiscard]] std::string_view type() const override { return "coord.watch"; }
  [[nodiscard]] std::size_t wire_size() const override { return 24 + path.size(); }
};

}  // namespace snooze::coord
