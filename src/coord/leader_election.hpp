// ZooKeeper leader-election recipe used by Snooze Group Managers.
//
// Every candidate creates an ephemeral sequential znode under the election
// path; the candidate owning the lowest sequence number is the leader.
// Non-leaders watch their immediate predecessor and re-evaluate when it
// disappears — so exactly one candidate is promoted per failure, with no
// herd effect. (Paper §II.D: "a leader election algorithm is triggered in
// order to detect the current GL ... built on top of Apache ZooKeeper".)
//
// The znode's sequence number doubles as the *election epoch* (fencing
// token): every leadership change mints a strictly higher epoch, published
// to all participants through the leader znode's name. Components stamp
// authority-bearing commands with their epoch so receivers can reject
// commands from deposed leaders.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "coord/client.hpp"

namespace snooze::coord {

/// Parse the election epoch out of a znode name ("n_0000000042" -> 43).
/// Epochs start at 1 so the null epoch (0) never wins a comparison.
[[nodiscard]] std::uint64_t epoch_from_node(const std::string& node);

class LeaderElection final : public sim::Actor {
 public:
  /// Invoked when this candidate becomes leader, with the election epoch of
  /// the new term (strictly increasing across terms and across candidates).
  using ElectedCb = std::function<void(std::uint64_t epoch)>;
  /// Invoked when a sitting leader loses its session (detected on the first
  /// successful exchange with the service, e.g. after a partition heals).
  using DemotedCb = std::function<void()>;

  LeaderElection(sim::Engine& engine, net::Network& network, net::Address service,
                 std::string name, std::string election_path = "/election");

  /// Join the election: opens a session, creates the candidate znode, and
  /// evaluates leadership. `data` is published on the znode (candidate's
  /// contact address).
  void start(const std::string& data, ElectedCb on_elected);

  /// Register the demotion hook (may be set before or after start()).
  void set_on_demoted(DemotedCb on_demoted) { on_demoted_ = std::move(on_demoted); }

  /// Voluntarily abandon the current candidacy and rejoin as a fresh
  /// candidate (new znode, strictly higher sequence). A deposed leader calls
  /// this after a StaleEpoch rejection: its old znode is gone server-side,
  /// and re-joining from scratch avoids waiting for the next ping to notice.
  void resign();

  [[nodiscard]] bool is_leader() const { return leader_; }
  /// Election epoch of this candidate's current znode (0 before joining).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_from_node(my_node_); }
  [[nodiscard]] const std::string& election_path() const { return election_path_; }
  /// Network address of the underlying coordination-client connection (so a
  /// fault injector can partition the whole node, election traffic included).
  [[nodiscard]] net::Address client_address() const { return client_.address(); }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const std::string& my_node() const { return my_node_; }

  /// Read the current leader's published data (async, for tests/EPs).
  void leader_data(Client::DataCb cb);

  void crash() override;
  void recover() override;

 private:
  void join();
  void create_candidate_node();
  void evaluate();
  void remove_stale_node(std::function<void()> then);

  Client client_;
  std::string election_path_;
  std::string data_;
  ElectedCb on_elected_;
  DemotedCb on_demoted_;
  std::string my_node_;  // name only (no path prefix)
  /// Candidate znode left behind by a crashed incarnation; best-effort
  /// removed on rejoin so a fast crash/recover loop cannot accumulate a
  /// second znode while the old session waits to expire.
  std::string stale_node_;
  bool leader_ = false;
  bool started_ = false;
  /// True while a create_candidate_node() round-trip is in flight. The
  /// session-expiry handler and evaluate()'s vanished-znode path can both
  /// decide to recreate the znode in the same recovery window; without the
  /// guard the candidate ends up owning two znodes on one session (flapping).
  bool creating_ = false;
  sim::Time session_timeout_ = 6.0;
};

}  // namespace snooze::coord
