// ZooKeeper leader-election recipe used by Snooze Group Managers.
//
// Every candidate creates an ephemeral sequential znode under the election
// path; the candidate owning the lowest sequence number is the leader.
// Non-leaders watch their immediate predecessor and re-evaluate when it
// disappears — so exactly one candidate is promoted per failure, with no
// herd effect. (Paper §II.D: "a leader election algorithm is triggered in
// order to detect the current GL ... built on top of Apache ZooKeeper".)
#pragma once

#include <functional>
#include <string>

#include "coord/client.hpp"

namespace snooze::coord {

class LeaderElection final : public sim::Actor {
 public:
  /// Invoked once when this candidate becomes leader.
  using ElectedCb = std::function<void()>;

  LeaderElection(sim::Engine& engine, net::Network& network, net::Address service,
                 std::string name, std::string election_path = "/election");

  /// Join the election: opens a session, creates the candidate znode, and
  /// evaluates leadership. `data` is published on the znode (candidate's
  /// contact address).
  void start(const std::string& data, ElectedCb on_elected);

  [[nodiscard]] bool is_leader() const { return leader_; }
  /// Network address of the underlying coordination-client connection (so a
  /// fault injector can partition the whole node, election traffic included).
  [[nodiscard]] net::Address client_address() const { return client_.address(); }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const std::string& my_node() const { return my_node_; }

  /// Read the current leader's published data (async, for tests/EPs).
  void leader_data(Client::DataCb cb);

  void crash() override;
  void recover() override;

 private:
  void join();
  void create_candidate_node();
  void evaluate();

  Client client_;
  std::string election_path_;
  std::string data_;
  ElectedCb on_elected_;
  std::string my_node_;  // name only (no path prefix)
  bool leader_ = false;
  bool started_ = false;
  sim::Time session_timeout_ = 6.0;
};

}  // namespace snooze::coord
