#include "coord/service.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace snooze::coord {

Service::Service(sim::Engine& engine, net::Network& network, net::Address address,
                 sim::Time expiry_check_period)
    : sim::Actor(engine, "coord"), endpoint_(engine, network, address, "coord") {
  endpoint_.set_request_handler([this](const net::Envelope& env, net::Responder responder) {
    net::MsgPtr reply = handle(env);
    if (reply) responder.respond(std::move(reply));
  });
  every(expiry_check_period, [this] {
    check_expiry();
    return true;
  });
}

std::string Service::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

net::MsgPtr Service::handle(const net::Envelope& env) {
  const auto* req = net::msg_cast<Request>(env.payload);
  if (req == nullptr) return nullptr;
  bump("coord.requests");
  auto resp = std::make_shared<Response>();
  switch (req->op) {
    case Op::kOpenSession: {
      bump("coord.sessions_opened");
      const SessionId id = next_session_++;
      Session session;
      session.owner = env.from;
      session.timeout = req->session_timeout > 0.0 ? req->session_timeout : 10.0;
      session.last_ping = now();
      sessions_[id] = session;
      resp->ok = true;
      resp->session = id;
      return resp;
    }
    case Op::kPing: {
      const auto it = sessions_.find(req->session);
      if (it == sessions_.end()) {
        resp->ok = false;  // session already expired
        return resp;
      }
      it->second.last_ping = now();
      resp->ok = true;
      resp->session = req->session;
      return resp;
    }
    case Op::kCloseSession: {
      const auto it = sessions_.find(req->session);
      if (it != sessions_.end()) expire_session(req->session);
      resp->ok = true;
      return resp;
    }
    case Op::kCreate:
      return handle_create(*req, env.from);
    case Op::kDelete:
      return handle_delete(*req);
    case Op::kExists: {
      resp->ok = true;
      resp->exists = nodes_.count(req->path) > 0;
      resp->path = req->path;
      if (req->watch) node_watches_[req->path].insert(env.from);
      return resp;
    }
    case Op::kGetChildren: {
      resp->ok = true;
      resp->path = req->path;
      resp->children = children_of(req->path);
      if (req->watch) child_watches_[req->path].insert(env.from);
      return resp;
    }
    case Op::kGetData: {
      const auto it = nodes_.find(req->path);
      resp->ok = it != nodes_.end();
      resp->path = req->path;
      if (it != nodes_.end()) resp->data = it->second.data;
      return resp;
    }
  }
  return resp;
}

net::MsgPtr Service::handle_create(const Request& req, net::Address /*from*/) {
  auto resp = std::make_shared<Response>();
  if (req.ephemeral && sessions_.count(req.session) == 0) {
    resp->ok = false;
    return resp;
  }
  std::string path = req.path;
  const std::string parent = parent_of(path);
  if (req.sequential) {
    // ZooKeeper semantics: the sequence counter lives on the parent znode
    // (auto-created as persistent if missing) and never repeats.
    auto& parent_node = nodes_[parent];
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%010llu",
                  static_cast<unsigned long long>(parent_node.next_sequence++));
    path += suffix;
  }
  if (nodes_.count(path) > 0) {
    resp->ok = false;
    resp->path = path;
    return resp;
  }
  Znode node;
  node.data = req.data;
  if (req.ephemeral) {
    node.ephemeral_owner = req.session;
    sessions_[req.session].ephemeral_nodes.insert(path);
  }
  nodes_[path] = std::move(node);
  resp->ok = true;
  resp->path = path;
  fire_node_watches(path, WatchEvent::Kind::kCreated);
  fire_child_watches(parent);
  return resp;
}

net::MsgPtr Service::handle_delete(const Request& req) {
  auto resp = std::make_shared<Response>();
  const auto it = nodes_.find(req.path);
  if (it == nodes_.end()) {
    resp->ok = false;
    return resp;
  }
  if (it->second.ephemeral_owner != kNullSession) {
    const auto sess = sessions_.find(it->second.ephemeral_owner);
    if (sess != sessions_.end()) sess->second.ephemeral_nodes.erase(req.path);
  }
  delete_node(req.path);
  resp->ok = true;
  return resp;
}

void Service::delete_node(const std::string& path) {
  nodes_.erase(path);
  fire_node_watches(path, WatchEvent::Kind::kDeleted);
  fire_child_watches(parent_of(path));
}

void Service::check_expiry() {
  std::vector<SessionId> expired;
  for (const auto& [id, session] : sessions_) {
    if (now() - session.last_ping > session.timeout) expired.push_back(id);
  }
  for (SessionId id : expired) {
    LOG_DEBUG << "coord: session " << id << " expired at t=" << now();
    bump("coord.sessions_expired");
    expire_session(id);
  }
}

void Service::expire_session(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  const std::set<std::string> ephemerals = std::move(it->second.ephemeral_nodes);
  sessions_.erase(it);
  for (const auto& path : ephemerals) delete_node(path);
}

void Service::fire_node_watches(const std::string& path, WatchEvent::Kind kind) {
  const auto it = node_watches_.find(path);
  if (it == node_watches_.end()) return;
  const std::set<net::Address> watchers = std::move(it->second);
  node_watches_.erase(it);
  for (net::Address w : watchers) {
    bump("coord.watch_events");
    auto event = std::make_shared<WatchEvent>();
    event->path = path;
    event->kind = kind;
    endpoint_.send(w, event);
  }
}

void Service::fire_child_watches(const std::string& parent) {
  const auto it = child_watches_.find(parent);
  if (it == child_watches_.end()) return;
  const std::set<net::Address> watchers = std::move(it->second);
  child_watches_.erase(it);
  for (net::Address w : watchers) {
    bump("coord.watch_events");
    auto event = std::make_shared<WatchEvent>();
    event->path = parent;
    event->kind = WatchEvent::Kind::kChildrenChanged;
    endpoint_.send(w, event);
  }
}

bool Service::node_exists(const std::string& path) const { return nodes_.count(path) > 0; }

std::vector<std::string> Service::children_of(const std::string& path) const {
  std::vector<std::string> out;
  const std::string prefix = path == "/" ? "/" : path + "/";
  for (const auto& [p, node] : nodes_) {
    if (p.size() <= prefix.size() || p.compare(0, prefix.size(), prefix) != 0) continue;
    // Direct children only: no further '/' after the prefix.
    if (p.find('/', prefix.size()) != std::string::npos) continue;
    out.push_back(p.substr(prefix.size()));
  }
  return out;
}

}  // namespace snooze::coord
