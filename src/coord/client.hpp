// Coordination client: a component-side session to the coordination service.
//
// Owns its own network endpoint (a "client connection"), keeps its session
// alive with pings, and exposes the async znode API used by the leader
// election recipe. When the owning component crashes, calling go_down()
// silences the pings so the session expires server-side, deleting the
// component's ephemeral znodes — exactly the ZooKeeper failure behaviour the
// Snooze GL election depends on.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "coord/messages.hpp"
#include "net/rpc.hpp"
#include "sim/actor.hpp"

namespace snooze::coord {

class Client final : public sim::Actor {
 public:
  using StatusCb = std::function<void(bool ok)>;
  using CreateCb = std::function<void(bool ok, const std::string& actual_path)>;
  using ExistsCb = std::function<void(bool ok, bool exists)>;
  using ChildrenCb = std::function<void(bool ok, const std::vector<std::string>& children)>;
  using DataCb = std::function<void(bool ok, const std::string& data)>;
  using WatchHandler = std::function<void(const WatchEvent& event)>;

  Client(sim::Engine& engine, net::Network& network, net::Address service,
         std::string name);

  [[nodiscard]] net::Address address() const { return endpoint_.address(); }
  [[nodiscard]] SessionId session() const { return session_; }
  [[nodiscard]] bool has_session() const { return session_ != kNullSession; }

  /// Watches registered through exists()/get_children() fire here.
  void set_watch_handler(WatchHandler handler) { on_watch_ = std::move(handler); }

  /// Fires (with ok=false) if the service reports our session expired.
  void set_expiry_handler(StatusCb handler) { on_expired_ = std::move(handler); }

  void open_session(sim::Time session_timeout, StatusCb cb);
  void close_session();

  void create(const std::string& path, const std::string& data, bool ephemeral,
              bool sequential, CreateCb cb);
  void remove(const std::string& path, StatusCb cb);
  void exists(const std::string& path, bool watch, ExistsCb cb);
  void get_children(const std::string& path, bool watch, ChildrenCb cb);
  void get_data(const std::string& path, DataCb cb);

  /// Crash the client connection: pings stop, the session will expire.
  void crash() override;
  void recover() override;

 private:
  void request(std::shared_ptr<Request> req,
               std::function<void(bool, const Response*)> cb);
  void ping();

  net::RpcEndpoint endpoint_;
  net::Address service_;
  SessionId session_ = kNullSession;
  sim::Time session_timeout_ = 10.0;
  WatchHandler on_watch_;
  StatusCb on_expired_;
  sim::Time rpc_timeout_ = 1.0;
};

}  // namespace snooze::coord
