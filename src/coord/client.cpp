#include "coord/client.hpp"

#include "util/logging.hpp"

namespace snooze::coord {

Client::Client(sim::Engine& engine, net::Network& network, net::Address service,
               std::string name)
    : sim::Actor(engine, name),
      endpoint_(engine, network, network.allocate_address(), name + ".coord"),
      service_(service) {
  endpoint_.set_message_handler([this](const net::Envelope& env) {
    const auto* event = net::msg_cast<WatchEvent>(env.payload);
    if (event != nullptr && on_watch_) on_watch_(*event);
  });
}

void Client::request(std::shared_ptr<Request> req,
                     std::function<void(bool, const Response*)> cb) {
  endpoint_.call(service_, std::move(req), rpc_timeout_,
                 [cb = std::move(cb)](bool ok, const net::MsgPtr& reply) {
                   const auto* resp = ok ? net::msg_cast<Response>(reply) : nullptr;
                   cb(resp != nullptr, resp);
                 });
}

void Client::open_session(sim::Time session_timeout, StatusCb cb) {
  session_timeout_ = session_timeout;
  auto req = std::make_shared<Request>();
  req->op = Op::kOpenSession;
  req->session_timeout = session_timeout;
  request(std::move(req), [this, cb = std::move(cb)](bool ok, const Response* resp) {
    if (ok && resp->ok) {
      session_ = resp->session;
      // Ping at a third of the timeout (ZooKeeper client convention).
      every(session_timeout_ / 3.0, [this] {
        ping();
        return has_session();
      });
      if (cb) cb(true);
    } else if (cb) {
      cb(false);
    }
  });
}

void Client::ping() {
  if (!has_session()) return;
  auto req = std::make_shared<Request>();
  req->op = Op::kPing;
  req->session = session_;
  request(std::move(req), [this](bool ok, const Response* resp) {
    if (ok && !resp->ok) {
      // Service no longer knows the session: it expired (e.g. after a long
      // partition). Surface to the owner so it can rejoin from scratch.
      LOG_DEBUG << name() << ": coord session expired";
      session_ = kNullSession;
      if (on_expired_) on_expired_(false);
    }
  });
}

void Client::close_session() {
  if (!has_session()) return;
  auto req = std::make_shared<Request>();
  req->op = Op::kCloseSession;
  req->session = session_;
  session_ = kNullSession;
  request(std::move(req), [](bool, const Response*) {});
}

void Client::create(const std::string& path, const std::string& data, bool ephemeral,
                    bool sequential, CreateCb cb) {
  auto req = std::make_shared<Request>();
  req->op = Op::kCreate;
  req->session = session_;
  req->path = path;
  req->data = data;
  req->ephemeral = ephemeral;
  req->sequential = sequential;
  request(std::move(req), [cb = std::move(cb)](bool ok, const Response* resp) {
    if (cb) cb(ok && resp->ok, ok ? resp->path : std::string{});
  });
}

void Client::remove(const std::string& path, StatusCb cb) {
  auto req = std::make_shared<Request>();
  req->op = Op::kDelete;
  req->session = session_;
  req->path = path;
  request(std::move(req), [cb = std::move(cb)](bool ok, const Response* resp) {
    if (cb) cb(ok && resp->ok);
  });
}

void Client::exists(const std::string& path, bool watch, ExistsCb cb) {
  auto req = std::make_shared<Request>();
  req->op = Op::kExists;
  req->session = session_;
  req->path = path;
  req->watch = watch;
  request(std::move(req), [cb = std::move(cb)](bool ok, const Response* resp) {
    if (cb) cb(ok && resp->ok, ok && resp->exists);
  });
}

void Client::get_children(const std::string& path, bool watch, ChildrenCb cb) {
  auto req = std::make_shared<Request>();
  req->op = Op::kGetChildren;
  req->session = session_;
  req->path = path;
  req->watch = watch;
  request(std::move(req), [cb = std::move(cb)](bool ok, const Response* resp) {
    if (cb) cb(ok && resp->ok, ok ? resp->children : std::vector<std::string>{});
  });
}

void Client::get_data(const std::string& path, DataCb cb) {
  auto req = std::make_shared<Request>();
  req->op = Op::kGetData;
  req->session = session_;
  req->path = path;
  request(std::move(req), [cb = std::move(cb)](bool ok, const Response* resp) {
    if (cb) cb(ok && resp->ok, ok ? resp->data : std::string{});
  });
}

void Client::crash() {
  session_ = kNullSession;
  endpoint_.go_down();
  sim::Actor::crash();
}

void Client::recover() {
  sim::Actor::recover();
  endpoint_.go_up();
}

}  // namespace snooze::coord
