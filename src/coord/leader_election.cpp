#include "coord/leader_election.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace snooze::coord {

LeaderElection::LeaderElection(sim::Engine& engine, net::Network& network,
                               net::Address service, std::string name,
                               std::string election_path)
    : sim::Actor(engine, name),
      client_(engine, network, service, name + ".election"),
      election_path_(std::move(election_path)) {
  client_.set_watch_handler([this](const WatchEvent& event) {
    // Predecessor znode changed (deleted on its owner's crash/resign):
    // re-evaluate our position in the queue.
    (void)event;
    if (!leader_) evaluate();
  });
  client_.set_expiry_handler([this](bool) {
    // Our session expired (e.g. after a long stall): rejoin from scratch.
    if (!alive()) return;
    leader_ = false;
    client_.open_session(session_timeout_, [this](bool ok) {
      if (ok) create_candidate_node();
    });
  });
}

void LeaderElection::start(const std::string& data, ElectedCb on_elected) {
  data_ = data;
  on_elected_ = std::move(on_elected);
  started_ = true;
  join();
}

void LeaderElection::join() {
  client_.open_session(session_timeout_, [this](bool ok) {
    if (!ok) {
      // Service unreachable: retry after a backoff.
      after(1.0, [this] { join(); });
      return;
    }
    create_candidate_node();
  });
}

void LeaderElection::create_candidate_node() {
  client_.create(election_path_ + "/n_", data_, /*ephemeral=*/true, /*sequential=*/true,
                 [this](bool ok, const std::string& actual_path) {
                   if (!ok) {
                     after(1.0, [this] { create_candidate_node(); });
                     return;
                   }
                   const auto pos = actual_path.find_last_of('/');
                   my_node_ = actual_path.substr(pos + 1);
                   evaluate();
                 });
}

void LeaderElection::evaluate() {
  if (my_node_.empty()) return;
  client_.get_children(election_path_, /*watch=*/false,
                       [this](bool ok, const std::vector<std::string>& children) {
    if (!ok) {
      after(1.0, [this] { evaluate(); });
      return;
    }
    std::vector<std::string> sorted = children;
    std::sort(sorted.begin(), sorted.end());
    const auto me = std::find(sorted.begin(), sorted.end(), my_node_);
    if (me == sorted.end()) {
      // Our znode vanished (session hiccup): recreate and retry.
      create_candidate_node();
      return;
    }
    if (me == sorted.begin()) {
      if (!leader_) {
        leader_ = true;
        LOG_DEBUG << name() << ": elected leader (" << my_node_ << ")";
        if (on_elected_) on_elected_();
      }
      return;
    }
    // Watch the immediate predecessor; when it goes away, re-evaluate.
    const std::string predecessor = election_path_ + "/" + *(me - 1);
    client_.exists(predecessor, /*watch=*/true, [this](bool ok2, bool exists) {
      if (!ok2) {
        after(1.0, [this] { evaluate(); });
        return;
      }
      if (!exists) evaluate();  // raced with its deletion
    });
  });
}

void LeaderElection::leader_data(Client::DataCb cb) {
  client_.get_children(election_path_, /*watch=*/false,
                       [this, cb = std::move(cb)](bool ok, const std::vector<std::string>& children) {
    if (!ok || children.empty()) {
      cb(false, {});
      return;
    }
    const std::string first = *std::min_element(children.begin(), children.end());
    client_.get_data(election_path_ + "/" + first, cb);
  });
}

void LeaderElection::crash() {
  leader_ = false;
  started_ = false;
  my_node_.clear();
  client_.crash();
  sim::Actor::crash();
}

void LeaderElection::recover() {
  sim::Actor::recover();
  client_.recover();
}

}  // namespace snooze::coord
