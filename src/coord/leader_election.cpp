#include "coord/leader_election.hpp"

#include <algorithm>
#include <charconv>

#include "util/logging.hpp"

namespace snooze::coord {

std::uint64_t epoch_from_node(const std::string& node) {
  const auto pos = node.find_last_of('_');
  if (pos == std::string::npos) return 0;
  std::uint64_t value = 0;
  std::from_chars(node.data() + pos + 1, node.data() + node.size(), value);
  return value + 1;  // epochs start at 1 so kNull (0) never wins
}

LeaderElection::LeaderElection(sim::Engine& engine, net::Network& network,
                               net::Address service, std::string name,
                               std::string election_path)
    : sim::Actor(engine, name),
      client_(engine, network, service, name + ".election"),
      election_path_(std::move(election_path)) {
  client_.set_watch_handler([this](const WatchEvent& event) {
    // Predecessor znode changed (deleted on its owner's crash/resign):
    // re-evaluate our position in the queue.
    (void)event;
    if (!leader_) evaluate();
  });
  client_.set_expiry_handler([this](bool) {
    // Our session expired (e.g. after a long stall): rejoin from scratch.
    // The server already deleted our ephemeral znode with the session.
    if (!alive()) return;
    const bool was_leader = leader_;
    leader_ = false;
    my_node_.clear();
    if (was_leader && on_demoted_) on_demoted_();
    client_.open_session(session_timeout_, [this](bool ok) {
      if (ok) create_candidate_node();
    });
  });
}

void LeaderElection::start(const std::string& data, ElectedCb on_elected) {
  data_ = data;
  on_elected_ = std::move(on_elected);
  started_ = true;
  join();
}

void LeaderElection::join() {
  client_.open_session(session_timeout_, [this](bool ok) {
    if (!ok) {
      // Service unreachable: retry after a backoff.
      after(1.0, [this] { join(); });
      return;
    }
    remove_stale_node([this] { create_candidate_node(); });
  });
}

void LeaderElection::remove_stale_node(std::function<void()> then) {
  // A previous incarnation's znode may still sit on its not-yet-expired old
  // session; remove it explicitly so a crash/recover loop never has two
  // znodes for one candidate. Best effort: on failure the old session's
  // expiry deletes it anyway.
  if (stale_node_.empty()) {
    then();
    return;
  }
  const std::string path = election_path_ + "/" + stale_node_;
  stale_node_.clear();
  client_.remove(path, [then = std::move(then)](bool) { then(); });
}

void LeaderElection::create_candidate_node() {
  if (creating_) return;       // a create round-trip is already in flight
  if (!my_node_.empty()) return;  // already own a znode — a second one would
                                  // wedge the queue (we'd watch ourselves)
  creating_ = true;
  client_.create(election_path_ + "/n_", data_, /*ephemeral=*/true, /*sequential=*/true,
                 [this](bool ok, const std::string& actual_path) {
                   creating_ = false;
                   if (!ok) {
                     after(1.0, [this] { create_candidate_node(); });
                     return;
                   }
                   const auto pos = actual_path.find_last_of('/');
                   my_node_ = actual_path.substr(pos + 1);
                   evaluate();
                 });
}

void LeaderElection::evaluate() {
  if (my_node_.empty()) return;
  client_.get_children(election_path_, /*watch=*/false,
                       [this](bool ok, const std::vector<std::string>& children) {
    if (!ok) {
      after(1.0, [this] { evaluate(); });
      return;
    }
    std::vector<std::string> sorted = children;
    std::sort(sorted.begin(), sorted.end());
    const auto me = std::find(sorted.begin(), sorted.end(), my_node_);
    if (me == sorted.end()) {
      // Our znode vanished (session hiccup): recreate and retry.
      my_node_.clear();
      create_candidate_node();
      return;
    }
    if (me == sorted.begin()) {
      if (!leader_) {
        leader_ = true;
        LOG_DEBUG << name() << ": elected leader (" << my_node_ << ")";
        if (on_elected_) on_elected_(epoch_from_node(my_node_));
      }
      return;
    }
    // Watch the immediate predecessor; when it goes away, re-evaluate.
    const std::string predecessor = election_path_ + "/" + *(me - 1);
    client_.exists(predecessor, /*watch=*/true, [this](bool ok2, bool exists) {
      if (!ok2) {
        after(1.0, [this] { evaluate(); });
        return;
      }
      if (!exists) evaluate();  // raced with its deletion
    });
  });
}

void LeaderElection::resign() {
  if (!started_ || !alive()) return;
  leader_ = false;
  const std::string old = my_node_;
  my_node_.clear();
  if (old.empty()) {
    create_candidate_node();
    return;
  }
  // Delete our old znode (usually already gone server-side when a successor
  // exists) and re-enter the queue with a fresh, strictly higher sequence.
  client_.remove(election_path_ + "/" + old,
                 [this](bool) { create_candidate_node(); });
}

void LeaderElection::leader_data(Client::DataCb cb) {
  client_.get_children(election_path_, /*watch=*/false,
                       [this, cb = std::move(cb)](bool ok, const std::vector<std::string>& children) {
    if (!ok || children.empty()) {
      cb(false, {});
      return;
    }
    const std::string first = *std::min_element(children.begin(), children.end());
    client_.get_data(election_path_ + "/" + first, cb);
  });
}

void LeaderElection::crash() {
  leader_ = false;
  started_ = false;
  creating_ = false;  // the in-flight create's callback dies with the client
  if (!my_node_.empty()) stale_node_ = my_node_;
  my_node_.clear();
  client_.crash();
  sim::Actor::crash();
}

void LeaderElection::recover() {
  sim::Actor::recover();
  client_.recover();
}

}  // namespace snooze::coord
