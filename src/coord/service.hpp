// In-simulation coordination service (ZooKeeper stand-in).
//
// Holds a znode tree with ephemeral/sequential nodes, sessions expired on
// missed pings, and one-shot watches. The real ZooKeeper ensemble is itself
// replicated and highly available; we model it as a single always-up actor —
// the property Snooze relies on is the *API contract* (ephemeral nodes vanish
// with their session, watches fire on change), not ZooKeeper's internals.
#pragma once

#include <map>
#include <set>
#include <string>

#include "coord/messages.hpp"
#include "net/rpc.hpp"
#include "sim/actor.hpp"
#include "telemetry/telemetry.hpp"

namespace snooze::coord {

class Service final : public sim::Actor {
 public:
  Service(sim::Engine& engine, net::Network& network, net::Address address,
          sim::Time expiry_check_period = 0.25);

  [[nodiscard]] net::Address address() const { return endpoint_.address(); }

  // Introspection for tests.
  [[nodiscard]] bool node_exists(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> children_of(const std::string& path) const;
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

 private:
  struct Znode {
    std::string data;
    SessionId ephemeral_owner = kNullSession;  // 0 = persistent
    std::uint64_t next_sequence = 0;
  };
  struct Session {
    net::Address owner = net::kNullAddress;
    sim::Time timeout = 10.0;
    sim::Time last_ping = 0.0;
    std::set<std::string> ephemeral_nodes;
  };

  net::MsgPtr handle(const net::Envelope& env);
  net::MsgPtr handle_create(const Request& req, net::Address from);
  net::MsgPtr handle_delete(const Request& req);
  void delete_node(const std::string& path);
  void check_expiry();
  void expire_session(SessionId id);
  void fire_node_watches(const std::string& path, WatchEvent::Kind kind);
  void fire_child_watches(const std::string& parent);
  static std::string parent_of(const std::string& path);

  /// Telemetry sink shared by every component on this network (may be null).
  [[nodiscard]] telemetry::Telemetry* tel() const {
    return endpoint_.network().telemetry();
  }
  void bump(std::string_view counter) { telemetry::count(tel(), counter); }

  net::RpcEndpoint endpoint_;
  std::map<std::string, Znode> nodes_;
  std::map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
  // One-shot watches: path -> client addresses.
  std::map<std::string, std::set<net::Address>> node_watches_;
  std::map<std::string, std::set<net::Address>> child_watches_;
};

}  // namespace snooze::coord
