// Shared core types: VM descriptors that travel over the wire, and the
// trace specification that lets a Local Controller reconstruct a VM's
// utilization behaviour locally (functions cannot cross the network).
#pragma once

#include <cstdint>

#include "hypervisor/resources.hpp"
#include "hypervisor/vm.hpp"
#include "interference/model.hpp"

namespace snooze::core {

using hypervisor::ResourceVector;
using hypervisor::VmId;

/// Serializable description of a utilization trace.
struct TraceSpec {
  enum class Kind { kConstant, kSinusoidal, kRandomSteps, kOnOff };
  Kind kind = Kind::kConstant;
  // Parameter meaning by kind:
  //   kConstant:    a = value
  //   kSinusoidal:  a = mean, b = amplitude, c = period, d = phase
  //   kRandomSteps: a = lo, b = hi, c = interval
  //   kOnOff:       a = low, b = high, c = period, d = duty
  double a = 1.0;
  double b = 0.0;
  double c = 0.0;
  double d = 0.0;
  std::uint64_t seed = 0;
};

/// Materialize the trace function described by `spec`.
hypervisor::UtilizationFn make_trace(const TraceSpec& spec);

/// A client's VM request as it travels through EP -> GL -> GM -> LC.
struct VmDescriptor {
  VmId id = hypervisor::kNullVm;
  ResourceVector requested;
  double memory_mb = 2048.0;
  double dirty_rate_mbps = 50.0;
  double lifetime_s = 0.0;  ///< 0 = runs until stopped
  TraceSpec trace;
  /// Memory-subsystem profile for the interference model. Absent (kNone) by
  /// default and then serialized as zero bytes, so profile-less deployments
  /// keep their exact wire traffic.
  interference::MemProfile mem_profile;
};

/// Extra wire bytes a descriptor's memory profile costs (class byte + two
/// doubles, padded). Zero when absent — see VmDescriptor::mem_profile.
inline std::size_t profile_wire_bytes(const interference::MemProfile& p) {
  return p.present() ? 24 : 0;
}

}  // namespace snooze::core
