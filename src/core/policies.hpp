// Two-level scheduling policies (paper §II.C).
//
// GL level: dispatch policies rank candidate GMs from the aggregated
// summaries ("summary information is not sufficient to take exact
// dispatching decisions ... a list of candidate GMs is provided ... a linear
// search is performed"). GM level: placement policies pick an LC for an
// incoming VM. GL assignment policies attach a joining LC to a GM.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/types.hpp"
#include "net/message.hpp"

namespace snooze::core {

using net::Address;

/// The GL's view of one GM (from the latest GmSummary).
struct GmInfo {
  Address gm = net::kNullAddress;
  ResourceVector used;
  ResourceVector capacity;
  std::uint32_t lc_count = 0;
  std::uint32_t vm_count = 0;
  /// Hierarchical heartbeat aggregation (delta summaries only): the worst
  /// LC heartbeat age under this GM at summary time. Negative when the GM
  /// reports via full summaries, which do not carry the aggregate.
  double worst_lc_heartbeat_age = -1.0;
  /// Flagged slow by the GL's peer-relative scorer: dispatch and assignment
  /// avoid this GM while healthy alternatives exist (it is never declared
  /// dead — a slow-but-alive leader path must not trigger failover).
  bool probation = false;

  [[nodiscard]] double load_fraction() const {
    const double cap = capacity.l1_norm();
    return cap > 0.0 ? used.l1_norm() / cap : 1.0;
  }
  [[nodiscard]] ResourceVector free() const { return capacity - used; }
};

/// The GM's view of one LC (capacity from the join, usage from monitoring).
struct LcInfo {
  Address lc = net::kNullAddress;
  ResourceVector capacity;
  ResourceVector reserved;        ///< sum of requested capacity of its VMs
  ResourceVector estimated_used;  ///< demand estimate from monitoring
  bool powered_on = true;
  bool draining = false;  ///< drained for maintenance: no new placements
  /// On probation or quarantined by the gray-failure detector: excluded from
  /// placement and relocation exactly like a draining node.
  bool probation = false;
  std::uint32_t vm_count = 0;

  /// Per-socket shared-resource state from the latest monitor report (empty
  /// for flat hosts). Capacity + aggregated demand per socket.
  struct SocketInfo {
    double llc_mb = 0.0;
    double mem_bw_gbps = 0.0;
    double llc_demand_mb = 0.0;
    double bw_demand_gbps = 0.0;
    std::uint32_t vms = 0;
  };
  std::vector<SocketInfo> sockets;
  /// Smallest throughput multiplier across the LC's VMs (1.0 = none degraded).
  double worst_penalty = 1.0;

  [[nodiscard]] bool fits(const ResourceVector& demand) const {
    return powered_on && !draining && !probation &&
           (reserved + demand).fits_within(capacity);
  }
  [[nodiscard]] double utilization() const {
    return estimated_used.max_utilization(capacity);
  }
};

// --- GL dispatch -----------------------------------------------------------

class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;
  /// Ranked candidate GMs for `vm` (at most `max` entries). GMs whose
  /// summary shows insufficient free capacity are ranked last, not removed —
  /// summaries are aggregates and may hide a feasible LC.
  virtual std::vector<Address> candidates(const VmDescriptor& vm,
                                          const std::vector<GmInfo>& gms,
                                          std::size_t max) = 0;
};

class RoundRobinDispatch final : public DispatchPolicy {
 public:
  std::vector<Address> candidates(const VmDescriptor& vm, const std::vector<GmInfo>& gms,
                                  std::size_t max) override;

 private:
  std::size_t next_ = 0;
};

class LeastLoadedDispatch final : public DispatchPolicy {
 public:
  std::vector<Address> candidates(const VmDescriptor& vm, const std::vector<GmInfo>& gms,
                                  std::size_t max) override;
};

std::unique_ptr<DispatchPolicy> make_dispatch_policy(DispatchPolicyKind kind);

// --- GM placement ----------------------------------------------------------

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  /// LC to place `vm` on, or kNullAddress if no powered-on LC fits.
  virtual Address choose(const VmDescriptor& vm, const std::vector<LcInfo>& lcs) = 0;
};

class FirstFitPlacement final : public PlacementPolicy {
 public:
  Address choose(const VmDescriptor& vm, const std::vector<LcInfo>& lcs) override;
};

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  Address choose(const VmDescriptor& vm, const std::vector<LcInfo>& lcs) override;

 private:
  std::size_t next_ = 0;
};

class BestFitPlacement final : public PlacementPolicy {
 public:
  Address choose(const VmDescriptor& vm, const std::vector<LcInfo>& lcs) override;
};

/// Interference-aware placement: among feasible LCs, minimize the worst-case
/// throughput multiplier the VM (and its new neighbors) would see on the
/// LC's least-pressured socket. Falls back to capacity-only best-fit scoring
/// when the VM has no profile or no LC reports socket state.
class LeastInterferencePlacement final : public PlacementPolicy {
 public:
  Address choose(const VmDescriptor& vm, const std::vector<LcInfo>& lcs) override;
};

/// Predicted penalty (1 - multiplier) for placing `vm` on the best socket of
/// `lc`; 0 when either side lacks interference data. Shared by placement and
/// relocation planning.
double predicted_penalty(const VmDescriptor& vm, const LcInfo& lc);

std::unique_ptr<PlacementPolicy> make_placement_policy(PlacementPolicyKind kind);

// --- GL assignment of LCs to GMs --------------------------------------------

class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;
  /// GM to attach a joining LC to, or kNullAddress if no GM is known.
  virtual Address assign(const std::vector<GmInfo>& gms) = 0;
};

class RoundRobinAssignment final : public AssignmentPolicy {
 public:
  Address assign(const std::vector<GmInfo>& gms) override;

 private:
  std::size_t next_ = 0;
};

/// Attach to the GM currently managing the fewest LCs.
class LeastLoadedAssignment final : public AssignmentPolicy {
 public:
  Address assign(const std::vector<GmInfo>& gms) override;
};

std::unique_ptr<AssignmentPolicy> make_assignment_policy(AssignmentPolicyKind kind);

}  // namespace snooze::core
