// Umbrella header: include <core/snooze.hpp> to get the whole public API of
// the Snooze reproduction — the hierarchy components, the system builder,
// the consolidation algorithms and the workload/energy substrates.
#pragma once

#include "consolidation/aco.hpp"
#include "consolidation/exact.hpp"
#include "consolidation/greedy.hpp"
#include "consolidation/metrics.hpp"
#include "consolidation/migration_plan.hpp"
#include "core/client.hpp"
#include "core/config.hpp"
#include "core/entry_point.hpp"
#include "core/group_manager.hpp"
#include "core/local_controller.hpp"
#include "core/system.hpp"
#include "energy/energy_meter.hpp"
#include "energy/power_model.hpp"
#include "workload/cluster.hpp"
#include "workload/traces.hpp"
#include "workload/vm_generator.hpp"
