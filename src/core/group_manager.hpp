// Group Manager (GM) and Group Leader (GL) — paper §II.
//
// A GM manages a subset of LCs: receives their monitoring data, estimates
// VM resource demand, takes placement / relocation / reconfiguration
// decisions, and manages their power states. Exactly one GM is elected
// Group Leader (via the coordination service); the GL oversees the GMs,
// keeps aggregated summaries, assigns joining LCs to GMs and dispatches VM
// submissions. Per the paper's self-organization design the two roles live
// in one component: "when an existing GM becomes the new leader it switches
// to GL mode" — its former LCs are told to rejoin the hierarchy, because
// components have dedicated roles (a GL does not manage LCs directly).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "consolidation/aco.hpp"
#include "coord/leader_election.hpp"
#include "core/config.hpp"
#include "core/estimator.hpp"
#include "core/fence.hpp"
#include "core/messages.hpp"
#include "core/policies.hpp"
#include "core/relocation.hpp"
#include "core/summary_codec.hpp"
#include "net/rpc.hpp"
#include "obs/slowness.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"

namespace snooze::core {

class GroupManager final : public sim::Actor {
 public:
  struct Counters {
    std::uint64_t dispatches = 0;           // GL: submissions received
    std::uint64_t dispatch_failures = 0;    // GL: no GM could place
    std::uint64_t placements_ok = 0;        // GM: VMs placed on an LC
    std::uint64_t placements_failed = 0;
    std::uint64_t migrations_commanded = 0;
    std::uint64_t migrations_completed = 0;
    std::uint64_t overload_events = 0;
    std::uint64_t underload_events = 0;
    std::uint64_t interference_events = 0;  // sustained-penalty anomalies
    std::uint64_t duplicates_resolved = 0;  // orphan VM copies stopped
    std::uint64_t reconfigurations = 0;
    std::uint64_t suspends = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t lc_failures_detected = 0;
    std::uint64_t gm_failures_detected = 0;  // GL only
    std::uint64_t vms_rescheduled = 0;       // snapshot-recovery feature
    std::uint64_t elections_won = 0;
    std::uint64_t stepdowns = 0;             // leadership lost while leader_
    std::uint64_t reconciliations = 0;       // GL reconcile windows completed
    std::uint64_t migrations_inherited = 0;  // in-flight migrations adopted on failover
    std::uint64_t lcs_fenced_off = 0;        // LCs dropped after a StaleEpoch reply
    // Delta summary stream (SnoozeConfig::delta_summaries).
    std::uint64_t summary_deltas_sent = 0;     // GM: incremental updates sent
    std::uint64_t summary_snapshots_sent = 0;  // GM: full snapshots sent
    std::uint64_t summary_nacks = 0;           // GM: negative acks received
    std::uint64_t summary_bytes_sent = 0;      // GM: summary bytes on the wire (both modes)
    std::uint64_t summary_rejects = 0;         // GL: updates rejected (gap / unsynced)
    std::uint64_t cross_gm_duplicates_revoked = 0;  // GL: duplicate copies revoked
    std::uint64_t revokes_honored = 0;         // GM: GL revoke commands executed
    // Gray-failure detection / containment.
    std::uint64_t slow_flags = 0;            // peers first flagged slow (GM+GL)
    std::uint64_t probations = 0;            // LCs placed on probation
    std::uint64_t quarantines = 0;           // probation -> quarantine escalations
    std::uint64_t quarantines_deferred = 0;  // blocked by max_quarantined_fraction
    std::uint64_t reinstatements = 0;        // quarantined LCs returned to service
    std::uint64_t quarantine_flaps = 0;      // an LC quarantined a second+ time
  };

  GroupManager(sim::Engine& engine, net::Network& network, net::Address coord_service,
               SnoozeConfig config, net::GroupId gl_heartbeat_group, std::string name,
               sim::Trace* trace = nullptr);

  /// Join the hierarchy: start the leader election and the GM role timers.
  void start();

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] net::Address address() const { return endpoint_.address(); }
  [[nodiscard]] bool is_leader() const { return leader_; }
  /// Election epoch of this GM's current (or last) leadership term.
  [[nodiscard]] std::uint64_t epoch() const { return my_epoch_; }
  /// Highest GL epoch observed (heartbeats and fenced commands).
  [[nodiscard]] std::uint64_t gl_epoch_seen() const { return gl_fence_.high_water; }
  /// True while a new GL term defers client work to rebuild soft state.
  [[nodiscard]] bool reconciling() const { return reconciling_; }
  /// GL-domain commands this GM rejected as stale.
  [[nodiscard]] std::uint64_t fence_rejected() const { return gl_fence_.rejected; }
  /// Tripwire: stale GL-domain commands that reached the apply path (must
  /// stay 0; the chaos invariant checker flags any increase).
  [[nodiscard]] std::uint64_t stale_accepts() const { return gl_fence_.stale_accepts; }
  [[nodiscard]] net::Address current_gl() const { return current_gl_; }
  [[nodiscard]] std::size_t lc_count() const { return lcs_.size(); }
  [[nodiscard]] std::size_t vm_count() const;
  [[nodiscard]] std::size_t known_gm_count() const { return gms_.size(); }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] net::GroupId heartbeat_group() const { return gm_group_; }
  [[nodiscard]] std::vector<GmInfo> gm_infos() const;
  [[nodiscard]] std::vector<LcInfo> lc_infos() const;

  /// All network addresses this component owns (main endpoint + coordination
  /// client) — the unit a fault injector partitions together.
  [[nodiscard]] std::vector<net::Address> network_addresses() const {
    return {endpoint_.address(), election_.client_address()};
  }

  // --- maintenance (rolling upgrades) ----------------------------------------
  /// Software version this node runs; bumped by the upgrade orchestrator
  /// across a drain-and-restart cycle.
  [[nodiscard]] std::uint32_t software_version() const { return software_version_; }
  void set_software_version(std::uint32_t v) { software_version_ = v; }

  /// Enter drain mode ahead of a restart: a leader steps down, managed LCs
  /// are resigned back to the hierarchy, new LC joins are refused and the
  /// summary stream stops (so the GL ages this GM out gracefully).
  void begin_drain();
  void cancel_drain();
  [[nodiscard]] bool draining() const { return draining_; }

  /// Migrate every (non-migrating) VM off `source` to other powered-on,
  /// non-draining LCs of this group, first-fit with headroom accounting.
  /// Returns the number of migrations commanded.
  std::size_t evacuate_lc(net::Address source);

  // --- cluster autoscaling (GL-driven, executed per GM) ----------------------
  /// Wake up to `n` suspended LCs; returns how many wakeups were commanded.
  std::size_t scale_wake(std::size_t n);
  /// Suspend up to `n` idle powered-on LCs (bypassing the idle threshold —
  /// the caller already decided the fleet has excess capacity).
  std::size_t scale_suspend(std::size_t n);

  /// GL-side idempotency book size (RSS proxy for long-run soak gates).
  [[nodiscard]] std::size_t submission_book_size() const {
    return completed_submissions_.size();
  }

  // --- delta summary stream (GL-side introspection) --------------------------
  /// The GL's VM -> owner record, built from delta summaries. Empty when
  /// delta summaries are off or this node is not the leader.
  struct VmOwnership {
    net::Address gm = net::kNullAddress;
    net::Address lc = net::kNullAddress;
    sim::Time since = 0.0;
  };
  [[nodiscard]] const std::map<VmId, VmOwnership>& vm_inventory() const {
    return vm_inventory_;
  }
  /// Unresolved cross-GM duplicate claims awaiting the incumbent's next
  /// summary (diagnostic; steady state is empty).
  [[nodiscard]] std::size_t vm_conflict_count() const { return vm_conflicts_.size(); }
  /// GL: age of the stalest GM summary, in seconds (obs SLI). Negative when
  /// this node is not the leader or knows no GMs yet.
  [[nodiscard]] double summary_staleness() const;
  /// GL: worst LC heartbeat age aggregated hierarchically across GM delta
  /// summaries. Negative until a delta summary carried the aggregate.
  [[nodiscard]] double aggregated_lc_heartbeat_age() const;

  // --- gray-failure detection -------------------------------------------------
  /// LCs currently on probation / in quarantine (GM role; obs SLI inputs).
  [[nodiscard]] std::size_t probation_count() const;
  [[nodiscard]] std::size_t quarantined_count() const;
  /// GMs the GL currently flags as slow (GL role).
  [[nodiscard]] std::size_t gm_probation_count() const;
  /// Containment state of one managed LC: 0 healthy, 1 probation,
  /// 2 quarantined, -1 not managed by this GM (CLI / obs rendering).
  [[nodiscard]] int lc_health_of(net::Address lc) const;
  /// Cumulative seconds this GM's circuit breakers spent open (obs SLI).
  [[nodiscard]] double breaker_open_seconds() const {
    return endpoint_.breaker_open_seconds();
  }

  // --- fault injection ---------------------------------------------------------
  void fail();
  void restart();

  // --- gray (fail-slow) injection ---------------------------------------------
  /// Service-time stretch > 1 delays this GM's summary assembly and probe
  /// turnaround (heartbeats keep flowing). Injector-owned, like the LC knob.
  void set_service_stretch(double factor) { service_stretch_ = factor; }
  [[nodiscard]] double service_stretch() const { return service_stretch_; }

 private:
  // Per-VM knowledge within a GM.
  struct VmRecord {
    ResourceVector requested;
    ResourceEstimator estimator;
    bool has_descriptor = false;
    VmDescriptor descriptor;  ///< known iff this GM placed the VM
    bool migrating = false;   ///< reported in flight by the LC (don't re-move)
    interference::MemProfile profile;  ///< from the latest monitor report
    double penalty = 1.0;              ///< current throughput multiplier
    [[nodiscard]] ResourceVector demand() const {
      return estimator.empty() ? requested : estimator.estimate();
    }
  };
  enum class LcPower { kOn, kSuspended, kWaking };
  /// Gray-failure containment ladder. Probation keeps the node serving its
  /// VMs but excludes it from new work; quarantine evacuates and suspends it.
  enum class LcHealth { kHealthy, kProbation, kQuarantined };
  struct LcRecord {
    ResourceVector capacity;
    ResourceVector reserved;
    ResourceVector used;
    sim::Time last_heartbeat = 0.0;
    sim::Time idle_since = -1.0;  ///< <0: not idle
    LcPower power = LcPower::kOn;
    /// Lease epoch the LC minted at join time; stamped on every command we
    /// send it so a successor GM's newer lease fences us off.
    std::uint64_t lease_epoch = 0;
    /// Reported by the LC while it empties out for a restart: no new
    /// placements, no relocation/consolidation targets, no suspends.
    bool draining = false;
    /// Per-socket shared-resource state from the latest monitor report
    /// (empty for flat hosts) and the worst VM multiplier on the node.
    std::vector<LcMonitorData::SocketReport> sockets;
    double worst_penalty = 1.0;
    /// Gray-failure containment state machine (apply_containment()).
    LcHealth health = LcHealth::kHealthy;
    sim::Time probation_since = 0.0;
    sim::Time quarantined_at = 0.0;
    int clean_evals = 0;       ///< consecutive unflagged evals while reinstating
    int quarantine_count = 0;  ///< lifetime quarantines (>1 counts as a flap)
    std::map<VmId, VmRecord> vms;
  };
  // The GL's view of a GM.
  struct GmRecord {
    GmInfo info;
    sim::Time last_summary = 0.0;
    /// Delta-summary stream state for this GM (inert in full-summary mode).
    SummaryDecoder decoder;
  };

  void handle_oneway(const net::Envelope& env);
  void handle_request(const net::Envelope& env, net::Responder responder);

  // GM role ------------------------------------------------------------------
  void gm_tick_heartbeat();
  void gm_tick_summary();
  /// Delta-summary mode: encode the changed VM placements since the last
  /// acked epoch (or a full snapshot after reconnect / GL change / nack)
  /// and send them as an acknowledged GmSummaryDelta.
  void gm_send_summary_delta();
  /// GL-fenced command: stop a VM copy the GL identified as a cross-GM
  /// duplicate (a newer placement of the same VM id exists under another GM).
  void handle_revoke_vm(const RevokeVmRequest& req);
  void gm_check_lc_liveness();
  void gm_energy_check();
  void gm_reconfigure();
  /// Gray-failure detection round: probe peers (GL -> GMs, GM -> LCs), then
  /// re-score the fleet with the samples of previous rounds.
  void gm_probe_peers();
  /// Re-evaluate the slowness scorer and run the containment state machine
  /// (GM role) or refresh GM probation flags (GL role).
  void gm_evaluate_slowness();
  /// GM role: drive each LC's healthy -> probation -> quarantined ->
  /// reinstated ladder from the scorer's flags.
  void apply_containment();
  /// Send the (possibly stretch-delayed) summary for this tick.
  void gm_emit_summary();
  void handle_lc_join(const LcJoinRequest& req, net::Responder responder);
  void handle_monitor(const LcMonitorData& data);
  void handle_anomaly(const AnomalyEvent& event);
  void handle_migration_done(const MigrationDone& done);
  void handle_vm_terminated(const VmTerminated& done);
  void handle_placement(const PlacementRequest& req, std::uint64_t epoch,
                        telemetry::SpanContext ctx, net::Responder responder);
  /// Stamp an outbound LC command with the lease epoch of its target.
  void stamp_lease(net::Message& msg, net::Address lc) const;
  /// An LC answered with StaleEpochError: a successor GM holds a newer
  /// lease, so this LC (and its VMs) are no longer ours. Returns true when
  /// the reply was a stale-epoch rejection.
  bool handle_stale_lc_reply(const net::MsgPtr& reply, net::Address lc);
  void place_on(net::Address lc, const VmDescriptor& vm, telemetry::SpanContext span,
                net::Responder responder);
  void try_wakeup_then_place(const VmDescriptor& vm, telemetry::SpanContext span,
                             net::Responder responder);
  void execute_moves(const std::vector<RelocationMove>& moves);
  void reschedule_vm(const VmDescriptor& vm);
  /// Command one LC to suspend / wake (the shared machinery behind the idle
  /// energy check and the autoscaler's capacity decisions).
  void gm_suspend_lc(net::Address target);
  void gm_wake_lc(net::Address target);
  [[nodiscard]] std::vector<VmLoad> vm_loads(const LcRecord& record) const;
  void on_lc_failed(net::Address lc);

  // GL role ------------------------------------------------------------------
  void become_leader(std::uint64_t epoch);
  /// Leave GL mode (stale-epoch rejection, newer heartbeat, or session
  /// expiry) and re-enter the election as a plain GM. Idempotent.
  void step_down(const char* reason);
  void finish_reconcile(std::uint64_t term);
  void gl_tick_heartbeat();
  void gl_check_gm_liveness();
  void handle_assign_lc(const AssignLcRequest& req, net::Responder responder);
  void handle_submit(const SubmitVmRequest& req, telemetry::SpanContext ctx,
                     net::Responder responder);
  void dispatch_linear_search(VmDescriptor vm, std::vector<net::Address> candidates,
                              std::size_t index, telemetry::SpanContext span,
                              net::Responder responder);
  void answer_submit(VmId vm, const net::Responder& responder,
                     const SubmitVmResponse& result);
  void handle_gm_summary(const GmSummary& summary);
  /// Delta-summary stream: apply one GmSummaryDelta to the sender's decoder,
  /// sync the VM inventory, and ack (ok=false asks the GM to snapshot).
  void handle_summary_delta(const GmSummaryDelta& delta, net::Responder responder);
  /// Inventory bookkeeping for one placed / removed VM from an applied
  /// summary; detects cross-GM duplicate claims (same VM id under two GMs).
  void note_vm_placed(net::Address gm, VmId vm, net::Address lc);
  void note_vm_removed(net::Address gm, VmId vm);
  /// After applying a summary from `gm`, settle conflicts where `gm` is the
  /// incumbent: if it still reports the VM, revoke the challenger's copy;
  /// if it dropped the VM, the challenger simply becomes the owner.
  void resolve_conflicts_for(net::Address gm);
  /// Drop a departed GM's inventory entries and settle its conflicts.
  void drop_gm_inventory(net::Address gm);
  void handle_gl_heartbeat(const GlHeartbeat& hb);
  /// Drop submission-book entries unrefreshed for longer than the retention
  /// window (a live VM is re-acknowledged by every GM summary; an entry that
  /// stopped refreshing belongs to a terminated VM whose client is long
  /// gone). Bounds the book on long-horizon runs.
  void prune_submission_book();

  void trace_event(std::string_view kind, std::string_view detail = {});

  /// Telemetry sink shared by every component on this network (may be null).
  [[nodiscard]] telemetry::Telemetry* tel() const {
    return endpoint_.network().telemetry();
  }
  /// Mirror one of the Counters fields into the metrics registry.
  void bump(std::string_view counter) { telemetry::count(tel(), counter); }

  net::RpcEndpoint endpoint_;
  coord::LeaderElection election_;
  SnoozeConfig config_;
  net::GroupId gl_group_;
  net::GroupId gm_group_;
  sim::Trace* trace_;

  bool started_ = false;
  bool leader_ = false;
  bool draining_ = false;
  std::uint32_t software_version_ = 1;
  net::Address current_gl_ = net::kNullAddress;
  /// Fence for the GL authority domain: tracks the highest GL epoch seen
  /// (from heartbeats and fenced commands) and rejects stale dispatches.
  EpochFence gl_fence_;
  std::uint64_t my_epoch_ = 0;

  /// GL reconciliation window (see SnoozeConfig::gl_reconcile_window).
  bool reconciling_ = false;
  sim::Time reconcile_started_ = 0.0;
  telemetry::SpanContext reconcile_span_;

  std::map<net::Address, LcRecord> lcs_;
  std::map<net::Address, GmRecord> gms_;
  std::set<net::Address> waking_;  ///< LCs with an in-flight wakeup

  // GL-side idempotency: a submission retried because its response was lost
  // must not start a second copy of the VM. Completed results are replayed;
  // duplicates of in-flight submissions are parked and answered with the
  // first dispatch's outcome (the client's submit deadline is shorter than
  // our worst-case placement, so retries legitimately race the original).
  // The completed map is refreshed by GM summaries for live VMs and pruned
  // after SnoozeConfig::submission_book_retention for entries that stopped
  // refreshing (terminated VMs), so it stays bounded by the live fleet on
  // long-horizon runs. Cleared on failover.
  struct CompletedSubmission {
    net::Address lc = net::kNullAddress;
    net::Address gm = net::kNullAddress;
    sim::Time at = 0.0;  ///< last acknowledgment (placement or summary refresh)
  };
  std::map<VmId, CompletedSubmission> completed_submissions_;
  std::set<VmId> inflight_submissions_;
  /// Destinations of migrations this GM commanded that have not completed
  /// yet. Monitoring reports lag the command, so without this the
  /// interference planner would keep routing victims at a target that looks
  /// empty but already has a noisy VM on the wire towards it (co-location
  /// ping-pong). Cleared on MigrationDone, LC rejection, or command timeout.
  std::map<VmId, net::Address> inflight_migrations_;
  std::map<VmId, std::vector<net::Responder>> submit_waiters_;
  /// (LC, VM) pairs with an in-flight StartVm this GM issued. A slow LC's
  /// monitoring report can list the booting copy before the ack arrives;
  /// adopting it would smuggle an unconfirmed placement into the summary
  /// stream (and the GL's idempotency book) that the timeout path may yet
  /// abort. The call's callback settles the pair either way.
  std::set<std::pair<net::Address, VmId>> inflight_placements_;
  /// (LC, VM) pairs whose StartVm timed out and were aborted with a StopVm.
  /// A slow-but-alive LC keeps monitoring-reporting the booting copy until
  /// the abort lands; adopting that report would let the idempotent
  /// placement replay ack a submission whose VM is about to be killed.
  /// Entries lift on re-placement, termination, or LC removal.
  std::set<std::pair<net::Address, VmId>> condemned_vms_;

  // --- delta summary stream --------------------------------------------------
  // GM side: encoder state for the outbound stream. The stream id is bumped
  // on restart() so a delayed delta from a previous life can never be
  // confused with the fresh stream's sequence numbers.
  SummaryEncoder summary_encoder_;
  std::uint64_t summary_stream_ = 1;
  /// GL (and its epoch) the stream is currently aimed at; any change forces
  /// a snapshot (the new leader's decoder starts unsynced).
  net::Address summary_gl_ = net::kNullAddress;
  std::uint64_t summary_gl_epoch_ = 0;

  // GL side: the cluster-wide VM -> owner inventory assembled from delta
  // summaries, and cross-GM duplicate claims pending resolution. A conflict
  // is resolved only on the incumbent's next applied summary — if it still
  // reports the VM the challenger's copy is revoked, otherwise ownership
  // transfers — so a single reordered report never kills a healthy VM.
  struct PendingConflict {
    net::Address incumbent = net::kNullAddress;
    net::Address challenger = net::kNullAddress;
    net::Address challenger_lc = net::kNullAddress;
    sim::Time since = 0.0;
  };
  std::map<VmId, VmOwnership> vm_inventory_;
  std::map<VmId, PendingConflict> vm_conflicts_;

  std::unique_ptr<DispatchPolicy> dispatch_policy_;
  std::unique_ptr<PlacementPolicy> placement_policy_;
  std::unique_ptr<AssignmentPolicy> assignment_policy_;

  /// Peer-relative fail-slow scorer: over LCs in GM mode, over GMs in GL
  /// mode (cleared on every role change so baselines never mix).
  obs::SlownessScorer scorer_;
  double service_stretch_ = 1.0;  ///< gray-fault injection (1 = healthy)

  Counters counters_;
};

}  // namespace snooze::core
