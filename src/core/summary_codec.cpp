#include "core/summary_codec.hpp"

namespace snooze::core {

SummaryUpdate SummaryEncoder::encode(const VmLocationMap& current) {
  SummaryUpdate update;
  update.stream = stream_;
  update.seq = next_seq_++;
  // An un-acked predecessor means the GL's base is unknown — it may hold the
  // previous update (ack lost) or not (update lost). Either way a delta
  // against *our* idea of the base is unsafe; snapshot instead.
  update.snapshot = need_snapshot_ || unacked_;
  if (update.snapshot) {
    update.placed.assign(current.begin(), current.end());
  } else {
    // Both maps are ordered by VmId: one linear merge yields adds, moves and
    // removals without lookups.
    auto cur = current.begin();
    auto base = base_.begin();
    while (cur != current.end() || base != base_.end()) {
      if (base == base_.end() || (cur != current.end() && cur->first < base->first)) {
        update.placed.push_back(*cur);  // new VM
        ++cur;
      } else if (cur == current.end() || base->first < cur->first) {
        update.removed.push_back(base->first);  // VM gone
        ++base;
      } else {
        if (cur->second != base->second) update.placed.push_back(*cur);  // moved
        ++cur;
        ++base;
      }
    }
  }
  sent_ = current;
  need_snapshot_ = false;
  unacked_ = true;
  return update;
}

void SummaryEncoder::on_ack(std::uint64_t seq) {
  if (seq != last_seq()) return;  // late ack for an abandoned update
  base_ = sent_;
  unacked_ = false;
}

void SummaryEncoder::on_nack(std::uint64_t seq) {
  if (seq != last_seq()) return;
  need_snapshot_ = true;
  unacked_ = false;
}

void SummaryEncoder::reset(std::uint64_t stream) {
  base_.clear();
  sent_.clear();
  stream_ = stream;
  next_seq_ = 1;
  need_snapshot_ = true;
  unacked_ = false;
}

bool SummaryDecoder::apply(const SummaryUpdate& update) {
  if (update.snapshot) {
    // The network can duplicate and reorder: a replayed old snapshot must
    // not regress the state. Same stream + old sequence is provably stale
    // (ack it, no-op); an older incarnation's snapshot is stale too (the
    // stream id only ever grows across sender restarts).
    if (synced_ && update.stream == stream_ && update.seq <= last_seq_) return true;
    if (synced_ && update.stream < stream_) return false;
    state_.clear();
    state_.insert(update.placed.begin(), update.placed.end());
    stream_ = update.stream;
    last_seq_ = update.seq;
    synced_ = true;
    return true;
  }
  if (!synced_) return false;  // a delta needs an anchoring snapshot first
  if (update.stream != stream_) return false;  // stale incarnation
  if (update.seq <= last_seq_) return true;  // duplicate delivery: ack, no-op
  if (update.seq != last_seq_ + 1) return false;  // gap: base uncertain
  for (const auto& [vm, lc] : update.placed) state_.insert_or_assign(vm, lc);
  for (const VmId vm : update.removed) state_.erase(vm);
  last_seq_ = update.seq;
  return true;
}

void SummaryDecoder::reset() {
  state_.clear();
  stream_ = 0;
  last_seq_ = 0;
  synced_ = false;
}

}  // namespace snooze::core
