// SnoozeSystem: builds and wires a complete simulated Snooze deployment —
// coordination service, Entry Points, Group Managers, Local Controllers and
// a client — on one discrete-event engine. This is the top-level object the
// examples and the system-level benchmarks (E3, E4, E5, E6) instantiate.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "coord/service.hpp"
#include "core/client.hpp"
#include "core/config.hpp"
#include "core/entry_point.hpp"
#include "core/group_manager.hpp"
#include "core/local_controller.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"

namespace snooze::core {

/// The GL heartbeat multicast channel every deployment uses.
constexpr net::GroupId kGlHeartbeatGroup = 1;

struct SystemSpec {
  std::size_t entry_points = 2;
  std::size_t group_managers = 2;
  std::size_t local_controllers = 16;
  hypervisor::HostSpec host_template{};  ///< name is overridden per node
  double host_capacity_spread = 0.0;     ///< heterogeneity (see workload::ClusterSpec)
  /// Explicit per-LC host specs (e.g. from workload::build_cluster with
  /// mixed socket topologies). When non-empty it overrides host_template and
  /// host_capacity_spread; LC i uses host_specs[i % size] with the name
  /// still rewritten to the canonical lc-NNN form.
  std::vector<hypervisor::HostSpec> host_specs;
  SnoozeConfig config{};
  net::LatencyModel latency{};
  std::uint64_t seed = 42;
};

class SnoozeSystem {
 public:
  explicit SnoozeSystem(SystemSpec spec);

  SnoozeSystem(const SnoozeSystem&) = delete;
  SnoozeSystem& operator=(const SnoozeSystem&) = delete;

  /// Start every component (they self-organize from here).
  void start();

  /// Convenience: run the engine until the hierarchy is stable (a GL is
  /// elected and every live LC is assigned to a GM) or `deadline` passes.
  /// Returns true if stability was reached.
  bool run_until_stable(sim::Time deadline);

  // --- accessors ---------------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] Client& client() { return *client_; }
  [[nodiscard]] const SystemSpec& spec() const { return spec_; }

  [[nodiscard]] std::vector<std::unique_ptr<EntryPoint>>& entry_points() { return eps_; }
  [[nodiscard]] std::vector<std::unique_ptr<GroupManager>>& group_managers() {
    return gms_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<LocalController>>& local_controllers() {
    return lcs_;
  }

  /// The currently elected GL (nullptr if none).
  [[nodiscard]] GroupManager* leader();
  [[nodiscard]] net::Address gl_address();

  // --- aggregates ----------------------------------------------------------------
  [[nodiscard]] std::size_t assigned_lc_count() const;
  [[nodiscard]] std::size_t running_vm_count() const;
  [[nodiscard]] std::size_t suspended_lc_count() const;
  [[nodiscard]] double total_work() const;    ///< VM-seconds of useful work so far
  [[nodiscard]] double total_energy() const;  ///< joules across all LC nodes so far
  /// Joules across all LC nodes split by power-state class (on/suspended/off);
  /// the three entries sum to total_energy().
  [[nodiscard]] std::array<double, energy::kNumPowerClasses> total_energy_by_state() const;

  /// Human-readable hierarchy snapshot (the CLI's "live visualization").
  [[nodiscard]] std::string hierarchy_dump();

  /// Build a VM descriptor with a fresh unique id. `profile` (absent by
  /// default) attaches a memory-subsystem profile for the interference model.
  VmDescriptor make_vm(const ResourceVector& requested, double lifetime_s = 0.0,
                       TraceSpec trace = {}, interference::MemProfile profile = {});

  // --- fault injection --------------------------------------------------------
  /// Crash the current GL. Returns the index of the crashed GM, or -1.
  int fail_gl();
  void fail_gm(std::size_t index) { gms_.at(index)->fail(); }
  void fail_lc(std::size_t index) { lcs_.at(index)->fail(); }

  // --- autonomous role management (paper §V future work) -----------------------
  /// "We plan to make the system even more autonomic by removing the
  /// distinction between GMs and LCs. Consequently, the decisions when a
  /// node should play the role of GM or LC in the hierarchy will be taken by
  /// the framework instead of the system administrator."
  ///
  /// When enabled, a supervisor watches the number of live GM-role nodes;
  /// whenever it falls below `min_group_managers` (e.g. after repeated GM
  /// failures), an idle Local Controller is promoted: its LC role retires
  /// and a Group Manager starts on the same machine, joining the hierarchy
  /// like any other GM.
  void enable_auto_roles(std::size_t min_group_managers,
                         sim::Time check_period = 5.0);

  [[nodiscard]] std::size_t role_promotions() const { return role_promotions_; }

 private:
  void auto_role_check();

  SystemSpec spec_;
  sim::Engine engine_;
  net::Network network_;
  sim::Trace trace_;
  telemetry::Telemetry telemetry_;
  std::unique_ptr<coord::Service> coord_;
  std::vector<std::unique_ptr<EntryPoint>> eps_;
  std::vector<std::unique_ptr<GroupManager>> gms_;
  std::vector<std::unique_ptr<LocalController>> lcs_;
  std::unique_ptr<Client> client_;
  VmId next_vm_id_ = 1;
  std::size_t min_group_managers_ = 0;  ///< 0 = auto role management off
  std::size_t role_promotions_ = 0;
};

}  // namespace snooze::core
