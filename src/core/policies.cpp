#include "core/policies.hpp"

#include <algorithm>
#include <limits>

namespace snooze::core {

namespace {

/// Stable partition of GM indices: those whose summary suggests room first.
std::vector<std::size_t> rank_by_feasibility(const VmDescriptor& vm,
                                             const std::vector<GmInfo>& gms,
                                             const std::vector<std::size_t>& order) {
  std::vector<std::size_t> likely;
  std::vector<std::size_t> unlikely;
  for (std::size_t i : order) {
    if (vm.requested.fits_within(gms[i].free())) {
      likely.push_back(i);
    } else {
      unlikely.push_back(i);
    }
  }
  likely.insert(likely.end(), unlikely.begin(), unlikely.end());
  return likely;
}

std::vector<Address> take(const std::vector<GmInfo>& gms,
                          const std::vector<std::size_t>& ranked, std::size_t max) {
  std::vector<Address> out;
  for (std::size_t i : ranked) {
    if (out.size() >= max) break;
    out.push_back(gms[i].gm);
  }
  return out;
}

}  // namespace

// --- dispatch ---------------------------------------------------------------

std::vector<Address> RoundRobinDispatch::candidates(const VmDescriptor& vm,
                                                    const std::vector<GmInfo>& gms,
                                                    std::size_t max) {
  if (gms.empty()) return {};
  std::vector<std::size_t> order;
  order.reserve(gms.size());
  const std::size_t start = next_++ % gms.size();
  for (std::size_t k = 0; k < gms.size(); ++k) order.push_back((start + k) % gms.size());
  return take(gms, rank_by_feasibility(vm, gms, order), max);
}

std::vector<Address> LeastLoadedDispatch::candidates(const VmDescriptor& vm,
                                                     const std::vector<GmInfo>& gms,
                                                     std::size_t max) {
  std::vector<std::size_t> order(gms.size());
  for (std::size_t i = 0; i < gms.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return gms[a].load_fraction() < gms[b].load_fraction();
  });
  return take(gms, rank_by_feasibility(vm, gms, order), max);
}

std::unique_ptr<DispatchPolicy> make_dispatch_policy(DispatchPolicyKind kind) {
  switch (kind) {
    case DispatchPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinDispatch>();
    case DispatchPolicyKind::kLeastLoaded:
      return std::make_unique<LeastLoadedDispatch>();
  }
  return std::make_unique<RoundRobinDispatch>();
}

// --- placement ---------------------------------------------------------------

Address FirstFitPlacement::choose(const VmDescriptor& vm, const std::vector<LcInfo>& lcs) {
  for (const LcInfo& lc : lcs) {
    if (lc.fits(vm.requested)) return lc.lc;
  }
  return net::kNullAddress;
}

Address RoundRobinPlacement::choose(const VmDescriptor& vm,
                                    const std::vector<LcInfo>& lcs) {
  if (lcs.empty()) return net::kNullAddress;
  const std::size_t start = next_++ % lcs.size();
  for (std::size_t k = 0; k < lcs.size(); ++k) {
    const LcInfo& lc = lcs[(start + k) % lcs.size()];
    if (lc.fits(vm.requested)) return lc.lc;
  }
  return net::kNullAddress;
}

Address BestFitPlacement::choose(const VmDescriptor& vm, const std::vector<LcInfo>& lcs) {
  Address best = net::kNullAddress;
  double best_residual = std::numeric_limits<double>::infinity();
  for (const LcInfo& lc : lcs) {
    if (!lc.fits(vm.requested)) continue;
    const double residual = (lc.capacity - (lc.reserved + vm.requested)).l1_norm();
    if (residual < best_residual) {
      best_residual = residual;
      best = lc.lc;
    }
  }
  return best;
}

double predicted_penalty(const VmDescriptor& vm, const LcInfo& lc) {
  if (!vm.mem_profile.present() || lc.sockets.empty()) return 0.0;
  // The VM would land on whichever socket degrades it least; the aggregated
  // per-socket demand stands in for the neighbors it would join.
  double best_multiplier = 0.0;
  for (const auto& s : lc.sockets) {
    interference::SocketPressure neighbors;
    neighbors.llc_demand_mb = s.llc_demand_mb;
    neighbors.bw_demand_gbps = s.bw_demand_gbps;
    neighbors.vms = s.vms;
    const interference::SocketSpec spec{s.llc_mb, s.mem_bw_gbps};
    best_multiplier = std::max(
        best_multiplier, interference::degradation_multiplier(vm.mem_profile, neighbors, spec));
  }
  return 1.0 - best_multiplier;
}

Address LeastInterferencePlacement::choose(const VmDescriptor& vm,
                                           const std::vector<LcInfo>& lcs) {
  Address best = net::kNullAddress;
  double best_penalty = std::numeric_limits<double>::infinity();
  double best_residual = std::numeric_limits<double>::infinity();
  for (const LcInfo& lc : lcs) {
    if (!lc.fits(vm.requested)) continue;
    // Capacity-only fallback: predicted_penalty is 0 for every LC when the
    // VM has no profile or no socket reports exist, and the residual
    // tiebreak below reduces this policy to best-fit.
    const double penalty = predicted_penalty(vm, lc);
    const double residual = (lc.capacity - (lc.reserved + vm.requested)).l1_norm();
    if (penalty < best_penalty ||
        (penalty == best_penalty && residual < best_residual)) {
      best_penalty = penalty;
      best_residual = residual;
      best = lc.lc;
    }
  }
  return best;
}

std::unique_ptr<PlacementPolicy> make_placement_policy(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      return std::make_unique<FirstFitPlacement>();
    case PlacementPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementPolicyKind::kBestFit:
      return std::make_unique<BestFitPlacement>();
    case PlacementPolicyKind::kLeastInterference:
      return std::make_unique<LeastInterferencePlacement>();
  }
  return std::make_unique<FirstFitPlacement>();
}

// --- assignment ---------------------------------------------------------------

Address RoundRobinAssignment::assign(const std::vector<GmInfo>& gms) {
  if (gms.empty()) return net::kNullAddress;
  return gms[next_++ % gms.size()].gm;
}

Address LeastLoadedAssignment::assign(const std::vector<GmInfo>& gms) {
  if (gms.empty()) return net::kNullAddress;
  const auto it = std::min_element(gms.begin(), gms.end(),
                                   [](const GmInfo& a, const GmInfo& b) {
                                     return a.lc_count < b.lc_count;
                                   });
  return it->gm;
}

std::unique_ptr<AssignmentPolicy> make_assignment_policy(AssignmentPolicyKind kind) {
  switch (kind) {
    case AssignmentPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinAssignment>();
    case AssignmentPolicyKind::kLeastLoaded:
      return std::make_unique<LeastLoadedAssignment>();
  }
  return std::make_unique<RoundRobinAssignment>();
}

}  // namespace snooze::core
