#include "core/group_manager.hpp"

#include <algorithm>
#include <charconv>

#include "consolidation/greedy.hpp"
#include "consolidation/migration_plan.hpp"
#include "net/pool.hpp"
#include "util/logging.hpp"

namespace snooze::core {

namespace {
/// Sentinel for "no socket booked" in the optimistic placement bookkeeping.
constexpr std::size_t kNoSocket = static_cast<std::size_t>(-1);
}  // namespace

GroupManager::GroupManager(sim::Engine& engine, net::Network& network,
                           net::Address coord_service, SnoozeConfig config,
                           net::GroupId gl_heartbeat_group, std::string name,
                           sim::Trace* trace)
    : sim::Actor(engine, name),
      endpoint_(engine, network, network.allocate_address(), name),
      election_(engine, network, coord_service, name),
      config_(config),
      gl_group_(gl_heartbeat_group),
      // The GM's heartbeat channel: derived from its unique address.
      gm_group_(0x80000000u | endpoint_.address()),
      trace_(trace) {
  dispatch_policy_ = make_dispatch_policy(config_.dispatch_policy);
  placement_policy_ = make_placement_policy(config_.placement_policy);
  assignment_policy_ = make_assignment_policy(config_.assignment_policy);
  scorer_ = obs::SlownessScorer(obs::SlownessConfig{
      config_.gray.ewma_alpha, config_.gray.z_flag, config_.gray.z_clear,
      config_.gray.slow_flag_sustain_s});
  endpoint_.set_message_handler([this](const net::Envelope& env) { handle_oneway(env); });
  endpoint_.set_request_handler(
      [this](const net::Envelope& env, net::Responder r) { handle_request(env, r); });
}

void GroupManager::trace_event(std::string_view kind, std::string_view detail) {
  if (trace_) trace_->record(name(), kind, detail);
}

void GroupManager::start() {
  if (started_) return;
  started_ = true;
  // Fresh summary stream: the first update is a snapshot by construction.
  summary_encoder_.reset(summary_stream_);
  summary_gl_ = net::kNullAddress;
  summary_gl_epoch_ = 0;
  // Listen for GL heartbeats (to track the current leader).
  endpoint_.network().join_group(gl_group_, endpoint_.address());
  election_.set_on_demoted([this] { step_down("session expired"); });
  election_.start(std::to_string(endpoint_.address()),
                  [this](std::uint64_t epoch) { become_leader(epoch); });

  every(config_.gm_heartbeat_period, [this] {
    gm_tick_heartbeat();
    return true;
  });
  every(config_.gm_summary_period, [this] {
    gm_tick_summary();
    return true;
  });
  every(config_.lc_heartbeat_period, [this] {
    gm_check_lc_liveness();
    return true;
  });
  if (config_.energy_savings) {
    every(config_.energy_check_period, [this] {
      gm_energy_check();
      return true;
    });
  }
  if (config_.reconfiguration_period > 0.0 &&
      config_.consolidation != ConsolidationKind::kNone) {
    every(config_.reconfiguration_period, [this] {
      gm_reconfigure();
      return true;
    });
  }
  if (config_.gray.detection) {
    every(config_.gray.probe_period, [this] {
      gm_probe_peers();
      return true;
    });
  }
  trace_event("gm.start");
}

std::size_t GroupManager::vm_count() const {
  std::size_t n = 0;
  for (const auto& [addr, lc] : lcs_) n += lc.vms.size();
  return n;
}

std::vector<GmInfo> GroupManager::gm_infos() const {
  std::vector<GmInfo> out;
  out.reserve(gms_.size());
  for (const auto& [addr, record] : gms_) out.push_back(record.info);
  return out;
}

std::vector<LcInfo> GroupManager::lc_infos() const {
  std::vector<LcInfo> out;
  out.reserve(lcs_.size());
  for (const auto& [addr, record] : lcs_) {
    LcInfo info;
    info.lc = addr;
    info.capacity = record.capacity;
    info.reserved = record.reserved;
    info.estimated_used = record.used;
    info.powered_on = record.power == LcPower::kOn;
    info.draining = record.draining;
    info.probation = record.health != LcHealth::kHealthy;
    info.vm_count = static_cast<std::uint32_t>(record.vms.size());
    info.worst_penalty = record.worst_penalty;
    info.sockets.reserve(record.sockets.size());
    for (const auto& s : record.sockets) {
      info.sockets.push_back(LcInfo::SocketInfo{s.llc_mb, s.mem_bw_gbps,
                                                s.llc_demand_mb, s.bw_demand_gbps,
                                                s.vms});
    }
    out.push_back(info);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void GroupManager::handle_oneway(const net::Envelope& env) {
  if (const auto* hb = net::msg_cast<GlHeartbeat>(env.payload)) {
    handle_gl_heartbeat(*hb);
  } else if (const auto* summary = net::msg_cast<GmSummary>(env.payload)) {
    handle_gm_summary(*summary);
  } else if (const auto* monitor = net::msg_cast<LcMonitorData>(env.payload)) {
    handle_monitor(*monitor);
  } else if (const auto* hb2 = net::msg_cast<LcHeartbeat>(env.payload)) {
    const auto it = lcs_.find(hb2->lc);
    if (it != lcs_.end()) it->second.last_heartbeat = now();
  } else if (const auto* anomaly = net::msg_cast<AnomalyEvent>(env.payload)) {
    handle_anomaly(*anomaly);
  } else if (const auto* done = net::msg_cast<MigrationDone>(env.payload)) {
    handle_migration_done(*done);
  } else if (const auto* terminated = net::msg_cast<VmTerminated>(env.payload)) {
    handle_vm_terminated(*terminated);
  } else if (const auto* revoke = net::msg_cast<RevokeVmRequest>(env.payload)) {
    // GL authority domain: a deposed leader's revoke must never stop a VM.
    if (!gl_fence_.admit(env.epoch)) {
      bump("fence.rejected");
      trace_event("gm.fence_rejected", "epoch=" + std::to_string(env.epoch));
      return;
    }
    gl_fence_.note_applied(env.epoch);
    handle_revoke_vm(*revoke);
  }
}

void GroupManager::handle_request(const net::Envelope& env, net::Responder responder) {
  if (const auto* join = net::msg_cast<LcJoinRequest>(env.payload)) {
    handle_lc_join(*join, responder);
  } else if (const auto* delta = net::msg_cast<GmSummaryDelta>(env.payload)) {
    handle_summary_delta(*delta, responder);
  } else if (const auto* assign = net::msg_cast<AssignLcRequest>(env.payload)) {
    handle_assign_lc(*assign, responder);
  } else if (const auto* submit = net::msg_cast<SubmitVmRequest>(env.payload)) {
    handle_submit(*submit, env.ctx, responder);
  } else if (net::msg_cast<ProbeRequest>(env.payload) != nullptr) {
    // Gray-failure latency probe from the GL: answer after this GM's
    // effective service time so the GL's scorer sees a slow GM as slow.
    after(config_.gray.probe_service_time * service_stretch_, [responder] {
      responder.respond(std::make_shared<ProbeResponse>());
    });
  } else if (const auto* place = net::msg_cast<PlacementRequest>(env.payload)) {
    // Fence the GL authority domain: a dispatch from a deposed leader gets a
    // typed rejection that tells it to step down, never a placement.
    if (!gl_fence_.admit(env.epoch)) {
      bump("fence.rejected");
      trace_event("gm.fence_rejected", "epoch=" + std::to_string(env.epoch));
      auto err = std::make_shared<StaleEpochError>();
      err->observed = gl_fence_.high_water;
      responder.respond(err);
      return;
    }
    handle_placement(*place, env.epoch, env.ctx, responder);
  }
}

// ---------------------------------------------------------------------------
// GM role: heartbeats, monitoring, liveness
// ---------------------------------------------------------------------------

void GroupManager::gm_tick_heartbeat() {
  bump("gm.heartbeats");
  auto hb = net::make_message<GmHeartbeat>();
  hb->gm = endpoint_.address();
  endpoint_.multicast(gm_group_, hb);
}

void GroupManager::gm_tick_summary() {
  if (leader_) return;  // the GL keeps no LCs and reports no summary
  if (draining_) return;  // silent: the GL ages us out before our restart
  if (current_gl_ == net::kNullAddress) return;
  if (service_stretch_ > 1.0) {
    // A gray GM assembles its summary slowly. The healthy path (stretch 1)
    // stays synchronous so event order — and the golden traces — are
    // untouched by the feature.
    after((service_stretch_ - 1.0) * 0.1, [this] { gm_emit_summary(); });
    return;
  }
  gm_emit_summary();
}

void GroupManager::gm_emit_summary() {
  if (leader_ || draining_ || current_gl_ == net::kNullAddress) return;
  if (config_.delta_summaries) {
    gm_send_summary_delta();
    return;
  }
  bump("gm.summaries");
  auto summary = net::make_message<GmSummary>();
  summary->gm = endpoint_.address();
  for (const auto& [addr, lc] : lcs_) {
    if (lc.power != LcPower::kOn) continue;
    summary->capacity += lc.capacity;
    for (const auto& [id, vm] : lc.vms) {
      summary->used += vm.demand();
      summary->vm_locations.emplace_back(id, addr);
    }
  }
  summary->lc_count = static_cast<std::uint32_t>(lcs_.size());
  summary->vm_count = static_cast<std::uint32_t>(vm_count());
  counters_.summary_bytes_sent += summary->wire_size();
  endpoint_.send(current_gl_, summary);
}

void GroupManager::gm_send_summary_delta() {
  // A different GL — or the same one under a newer epoch (it restarted or a
  // successor took over) — holds none of our stream state: re-anchor.
  if (current_gl_ != summary_gl_ || gl_fence_.high_water != summary_gl_epoch_) {
    summary_encoder_.force_snapshot();
    summary_gl_ = current_gl_;
    summary_gl_epoch_ = gl_fence_.high_water;
  }
  auto msg = net::make_message<GmSummaryDelta>();
  msg->gm = endpoint_.address();
  VmLocationMap locations;
  double worst_age = 0.0;
  for (const auto& [addr, lc] : lcs_) {
    if (lc.power != LcPower::kOn) continue;
    msg->capacity += lc.capacity;
    worst_age = std::max(worst_age, now() - lc.last_heartbeat);
    for (const auto& [id, vm] : lc.vms) {
      msg->used += vm.demand();
      locations[id] = addr;
    }
  }
  msg->lc_count = static_cast<std::uint32_t>(lcs_.size());
  msg->vm_count = static_cast<std::uint32_t>(vm_count());
  msg->worst_lc_heartbeat_age = worst_age;
  const SummaryUpdate update = summary_encoder_.encode(locations);
  msg->snapshot = update.snapshot;
  msg->stream = update.stream;
  msg->seq = update.seq;
  msg->placed = update.placed;
  msg->removed = update.removed;
  if (update.snapshot) {
    ++counters_.summary_snapshots_sent;
    bump("gm.summary_snapshots");
    // Snapshots are the rare re-anchor points of the stream (first contact,
    // lost ack, GL change); tracing them lets golden traces pin the
    // delta -> snapshot -> delta sequence around a reconnect.
    trace_event("gm.summary_snapshot", "stream=" + std::to_string(update.stream) +
                                           " seq=" + std::to_string(update.seq));
  } else {
    ++counters_.summary_deltas_sent;
    bump("gm.summary_deltas");
  }
  counters_.summary_bytes_sent += msg->wire_size();
  const std::uint64_t seq = update.seq;
  endpoint_.call(current_gl_, msg, config_.rpc_timeout,
                 [this, seq](bool ok, const net::MsgPtr& reply) {
    const auto* ack = ok ? net::msg_cast<GmSummaryAck>(reply) : nullptr;
    if (ack != nullptr && ack->ok) {
      summary_encoder_.on_ack(ack->seq);
      return;
    }
    // Explicit rejection or transport timeout: either way the GL may not
    // hold this update — the next tick snapshots.
    if (ack != nullptr) {
      ++counters_.summary_nacks;
      bump("gm.summary_nacks");
    }
    summary_encoder_.on_nack(seq);
  });
}

void GroupManager::handle_revoke_vm(const RevokeVmRequest& req) {
  const auto lc_it = lcs_.find(req.lc);
  if (lc_it == lcs_.end()) return;
  const auto vm_it = lc_it->second.vms.find(req.vm);
  if (vm_it == lc_it->second.vms.end()) return;
  if (vm_it->second.migrating) return;  // let the migration settle first
  ++counters_.revokes_honored;
  bump("gm.revokes_honored");
  trace_event("gm.vm_revoked", "vm=" + std::to_string(req.vm));
  auto stop = std::make_shared<StopVmRequest>();
  stop->vm = req.vm;
  stamp_lease(*stop, req.lc);
  endpoint_.send(req.lc, stop);
  lc_it->second.reserved -= vm_it->second.requested;
  if (lc_it->second.reserved.any_negative()) lc_it->second.reserved = {};
  lc_it->second.vms.erase(vm_it);
}

void GroupManager::handle_lc_join(const LcJoinRequest& req, net::Responder responder) {
  auto resp = std::make_shared<LcJoinResponse>();
  if (leader_ || draining_) {
    // Dedicated roles: a GL does not manage LCs. A draining GM is about to
    // restart and must not take responsibility for new nodes either.
    resp->ok = false;
    responder.respond(resp);
    return;
  }
  LcRecord record;
  record.capacity = req.capacity;
  record.last_heartbeat = now();
  record.lease_epoch = req.lease_epoch;
  lcs_[req.lc] = std::move(record);
  // A (re)joining node starts with a cold latency baseline — state from a
  // previous incarnation must not pre-flag or pre-clear it.
  scorer_.forget(req.lc);
  resp->ok = true;
  resp->heartbeat_group = gm_group_;
  responder.respond(resp);
  trace_event("gm.lc_joined");
}

void GroupManager::handle_monitor(const LcMonitorData& data) {
  const auto it = lcs_.find(data.lc);
  if (it == lcs_.end()) return;  // not ours (stale after resign)
  LcRecord& record = it->second;
  record.last_heartbeat = now();
  record.reserved = data.reserved;
  // Monitoring trust: a node under gray suspicion misreports in ways we
  // cannot distinguish from truth (CPU steal shrinks delivered usage), so
  // its reports are blended at half weight instead of overwriting our view.
  if (record.health == LcHealth::kHealthy) {
    record.used = data.used;
  } else {
    record.used = (record.used + data.used).scaled(0.5);
  }
  record.draining = data.draining;
  // Reconcile the VM set: adopt new VMs (e.g. inherited after a GM failure),
  // drop those the LC no longer reports, update demand estimators.
  std::set<VmId> reported;
  for (const auto& usage : data.vms) {
    // Duplicate resolution: a VM this GM already records on a *different* LC
    // is an orphan copy (e.g. a StartVm that landed right before a partition
    // cut the response — the GM's abort was lost with the partition and the
    // VM was legitimately re-placed elsewhere). Migration is the one legal
    // reason for two copies, so both sides must be non-migrating before the
    // reported copy is condemned. Keeping the recorded copy is the
    // deterministic choice; either satisfies the client's submission.
    if (!usage.migrating && record.vms.count(usage.vm) == 0) {
      // A copy we are still placing is not adopted either way — the pending
      // StartVm callback records it on success or condemns it on timeout.
      if (inflight_placements_.count({data.lc, usage.vm}) > 0) continue;
      // A copy we already aborted (StartVm timeout) is not re-adopted — the
      // report raced the StopVm. Re-send the abort instead: if the first one
      // was lost the condemned copy would otherwise run forever.
      if (condemned_vms_.count({data.lc, usage.vm}) > 0) {
        auto stop = std::make_shared<StopVmRequest>();
        stop->vm = usage.vm;
        stamp_lease(*stop, data.lc);
        endpoint_.send(data.lc, stop);
        continue;
      }
      bool orphan = false;
      for (const auto& [other_addr, other_record] : lcs_) {
        if (other_addr == data.lc) continue;
        const auto dup = other_record.vms.find(usage.vm);
        if (dup != other_record.vms.end() && !dup->second.migrating) {
          orphan = true;
          break;
        }
      }
      if (orphan) {
        ++counters_.duplicates_resolved;
        bump("gm.duplicates_resolved");
        trace_event("gm.duplicate_resolved", "vm=" + std::to_string(usage.vm));
        auto stop = std::make_shared<StopVmRequest>();
        stop->vm = usage.vm;
        stamp_lease(*stop, data.lc);
        endpoint_.send(data.lc, stop);
        continue;  // not adopted: the next report no longer lists it
      }
    }
    reported.insert(usage.vm);
    auto [vm_it, inserted] = record.vms.try_emplace(usage.vm);
    if (inserted) {
      vm_it->second.estimator = ResourceEstimator(config_.estimator_window, config_.estimator_kind, config_.estimator_ewma_alpha);
      if (usage.migrating) {
        // Failover reconciliation: the previous GM commanded this migration;
        // we inherit it in flight and let the idempotent MigrationDone /
        // adopt / StopVm paths resolve it rather than interfering.
        ++counters_.migrations_inherited;
        bump("gm.migrations_inherited");
        trace_event("gm.migration_inherited", "vm=" + std::to_string(usage.vm));
      }
    }
    vm_it->second.requested = usage.requested;
    vm_it->second.migrating = usage.migrating;
    vm_it->second.profile = usage.profile;
    vm_it->second.penalty = usage.penalty;
    vm_it->second.estimator.add(usage.used);
  }
  record.sockets = data.sockets;
  record.worst_penalty = 1.0;
  for (const auto& usage : data.vms) {
    record.worst_penalty = std::min(record.worst_penalty, usage.penalty);
  }
  for (auto vm_it = record.vms.begin(); vm_it != record.vms.end();) {
    if (reported.count(vm_it->first) == 0) {
      vm_it = record.vms.erase(vm_it);
    } else {
      ++vm_it;
    }
  }
}

void GroupManager::gm_check_lc_liveness() {
  const sim::Time window =
      config_.lc_heartbeat_period * config_.heartbeat_timeout_factor;
  std::vector<net::Address> failed;
  for (const auto& [addr, lc] : lcs_) {
    if (lc.power != LcPower::kOn) continue;  // suspended nodes are silent
    if (now() - lc.last_heartbeat > window) failed.push_back(addr);
  }
  for (net::Address addr : failed) on_lc_failed(addr);
}

void GroupManager::on_lc_failed(net::Address lc) {
  const auto it = lcs_.find(lc);
  if (it == lcs_.end()) return;
  ++counters_.lc_failures_detected;
  bump("gm.lc_failures_detected");
  trace_event("gm.lc_failed");
  // Paper §II.E: the LC's contact information is invalidated; its VMs are
  // terminated. With the snapshot feature enabled the GM reschedules them.
  std::vector<VmDescriptor> to_reschedule;
  if (config_.reschedule_failed_vms) {
    for (const auto& [id, vm] : it->second.vms) {
      if (vm.has_descriptor) to_reschedule.push_back(vm.descriptor);
    }
  }
  lcs_.erase(it);
  waking_.erase(lc);
  scorer_.forget(lc);
  std::erase_if(condemned_vms_, [lc](const auto& p) { return p.first == lc; });
  for (const VmDescriptor& vm : to_reschedule) {
    ++counters_.vms_rescheduled;
    bump("gm.vms_rescheduled");
    reschedule_vm(vm);
  }
}

void GroupManager::reschedule_vm(const VmDescriptor& vm) {
  PlacementRequest req;
  req.vm = vm;
  // Run it through our own placement path (epoch 0: local authority, not a
  // GL dispatch); the responder goes nowhere.
  handle_placement(req, 0, {},
                   net::Responder(&endpoint_.network(), endpoint_.address(),
                                  endpoint_.address(), 0));
}

// ---------------------------------------------------------------------------
// Gray-failure detection and containment
// ---------------------------------------------------------------------------

std::size_t GroupManager::probation_count() const {
  std::size_t n = 0;
  for (const auto& [addr, lc] : lcs_) {
    if (lc.health == LcHealth::kProbation) ++n;
  }
  return n;
}

std::size_t GroupManager::quarantined_count() const {
  std::size_t n = 0;
  for (const auto& [addr, lc] : lcs_) {
    if (lc.health == LcHealth::kQuarantined) ++n;
  }
  return n;
}

std::size_t GroupManager::gm_probation_count() const {
  std::size_t n = 0;
  for (const auto& [addr, record] : gms_) {
    if (record.info.probation) ++n;
  }
  return n;
}

int GroupManager::lc_health_of(net::Address lc) const {
  const auto it = lcs_.find(lc);
  if (it == lcs_.end()) return -1;
  switch (it->second.health) {
    case LcHealth::kHealthy: return 0;
    case LcHealth::kProbation: return 1;
    case LcHealth::kQuarantined: return 2;
  }
  return -1;
}

void GroupManager::gm_probe_peers() {
  // The GL probes its GMs; a GM probes its powered-on LCs. Probes are
  // idempotent, which makes them the canonical hedged-RPC site: a hedge
  // keeps one flaky link from polluting the latency baseline, while a
  // genuinely slow *node* is slow on both attempts and still scores high.
  std::vector<net::Address> targets;
  if (leader_) {
    targets.reserve(gms_.size());
    for (const auto& [addr, record] : gms_) targets.push_back(addr);
  } else {
    for (auto& [addr, lc] : lcs_) {
      if (lc.health == LcHealth::kQuarantined) {
        // Quarantine rests the node for the dwell window. Past it, wake the
        // node back up — reinstatement needs fresh probe evidence.
        if (now() - lc.quarantined_at < config_.gray.reinstate_after_s) continue;
        if (lc.power == LcPower::kSuspended && waking_.count(addr) == 0) {
          gm_wake_lc(addr);
          continue;
        }
      }
      if (lc.power != LcPower::kOn) continue;
      targets.push_back(addr);
    }
  }
  for (const net::Address target : targets) {
    bump("gray.probes");
    const sim::Time sent = now();
    auto on_reply = [this, target, sent](bool ok, const net::MsgPtr& reply) {
      (void)reply;
      // A timeout carries no latency information; hard failures belong to
      // the heartbeat liveness machinery, not the slowness scorer.
      if (!ok) return;
      scorer_.add_sample(target, obs::SlownessMetric::kProbe, now() - sent);
    };
    if (config_.gray.hedged_probes) {
      endpoint_.call_with_hedging(target, std::make_shared<ProbeRequest>(),
                                  config_.gray.probe_timeout, net::HedgePolicy{},
                                  std::move(on_reply));
    } else {
      endpoint_.call(target, std::make_shared<ProbeRequest>(),
                     config_.gray.probe_timeout, std::move(on_reply));
    }
  }
  // Scoring uses the samples of previous rounds (this round's replies are
  // still in flight) — a consistent one-round lag.
  gm_evaluate_slowness();
}

void GroupManager::gm_evaluate_slowness() {
  scorer_.evaluate(now());
  if (leader_) {
    // GL role: flag slow GMs off the dispatch path. Never kill them — a
    // slow-but-alive GM must not lose its group to a spurious failover.
    for (auto& [addr, record] : gms_) {
      const bool slow = scorer_.flagged(addr);
      if (slow && !record.info.probation) {
        ++counters_.slow_flags;
        bump("gl.gm_slow_flagged");
        trace_event("gl.gm_slow", "gm=" + std::to_string(addr));
      } else if (!slow && record.info.probation) {
        bump("gl.gm_slow_cleared");
        trace_event("gl.gm_slow_cleared", "gm=" + std::to_string(addr));
      }
      record.info.probation = slow;
    }
    return;
  }
  apply_containment();
}

void GroupManager::apply_containment() {
  std::size_t quarantined = quarantined_count();
  for (auto& [addr, lc] : lcs_) {
    const bool slow = scorer_.flagged(addr);
    switch (lc.health) {
      case LcHealth::kHealthy:
        if (slow) {
          lc.health = LcHealth::kProbation;
          lc.probation_since = now();
          ++counters_.slow_flags;
          ++counters_.probations;
          bump("gm.lc_probations");
          trace_event("gm.lc_probation", "lc=" + std::to_string(addr));
        }
        break;
      case LcHealth::kProbation:
        if (!slow) {
          // Cleared below the hysteresis threshold: quiet reinstatement.
          lc.health = LcHealth::kHealthy;
          bump("gm.lc_probation_cleared");
          trace_event("gm.lc_probation_cleared", "lc=" + std::to_string(addr));
        } else if (now() - lc.probation_since >= config_.gray.quarantine_after_s) {
          // Sustained degradation escalates — but containment must never
          // amplify an outage: cap the quarantined fraction of the group.
          // Floor of one so small groups can still quarantine their one bad
          // node; the guard exists to stop avalanches, not singletons.
          const auto cap = std::max<std::size_t>(
              1, static_cast<std::size_t>(config_.gray.max_quarantined_fraction *
                                          static_cast<double>(lcs_.size())));
          if (quarantined + 1 > cap) {
            ++counters_.quarantines_deferred;
            bump("gm.quarantines_deferred");
          } else {
            lc.health = LcHealth::kQuarantined;
            lc.quarantined_at = now();
            lc.clean_evals = 0;
            ++lc.quarantine_count;
            ++quarantined;
            ++counters_.quarantines;
            if (lc.quarantine_count > 1) {
              ++counters_.quarantine_flaps;
              bump("gm.quarantine_flaps");
            }
            bump("gm.lc_quarantines");
            trace_event("gm.lc_quarantined", "lc=" + std::to_string(addr));
            evacuate_lc(addr);
          }
        }
        break;
      case LcHealth::kQuarantined:
        if (now() - lc.quarantined_at < config_.gray.reinstate_after_s) {
          // Emptying-out phase: re-try the evacuation for VMs that had no
          // headroom earlier, then park the node in low power.
          if (lc.power == LcPower::kOn) {
            if (!lc.vms.empty()) {
              evacuate_lc(addr);
            } else {
              gm_suspend_lc(addr);
            }
          }
          lc.clean_evals = 0;
        } else if (lc.power == LcPower::kOn) {
          // Re-probing phase (gm_probe_peers woke the node): reinstate after
          // enough consecutive clean evaluations.
          if (slow) {
            lc.clean_evals = 0;
          } else if (++lc.clean_evals >= config_.gray.reinstate_clean_probes) {
            lc.health = LcHealth::kHealthy;
            lc.quarantined_at = 0.0;
            ++counters_.reinstatements;
            bump("gm.lc_reinstatements");
            trace_event("gm.lc_reinstated", "lc=" + std::to_string(addr));
          }
        }
        break;
    }
  }
}

void GroupManager::stamp_lease(net::Message& msg, net::Address lc) const {
  const auto it = lcs_.find(lc);
  msg.epoch = it != lcs_.end() ? it->second.lease_epoch : 0;
}

bool GroupManager::handle_stale_lc_reply(const net::MsgPtr& reply, net::Address lc) {
  const auto* stale = net::msg_cast<StaleEpochError>(reply);
  if (stale == nullptr) return false;
  // The LC joined a successor GM under a newer lease; it is no longer ours.
  // Unlike a liveness failure its VMs are alive and managed elsewhere, so
  // drop the record without rescheduling anything.
  if (lcs_.erase(lc) > 0) {
    ++counters_.lcs_fenced_off;
    bump("gm.lcs_fenced_off");
    trace_event("gm.lc_fenced_off");
  }
  waking_.erase(lc);
  scorer_.forget(lc);
  std::erase_if(condemned_vms_, [lc](const auto& p) { return p.first == lc; });
  return true;
}

// ---------------------------------------------------------------------------
// GM role: placement
// ---------------------------------------------------------------------------

void GroupManager::handle_placement(const PlacementRequest& req, std::uint64_t epoch,
                                    telemetry::SpanContext ctx,
                                    net::Responder responder) {
  // Tripwire at the apply site: admit() must have run before we get here.
  gl_fence_.note_applied(epoch);
  const auto span = telemetry::begin_span(tel(), ctx, "gm.place", name(),
                                          "vm=" + std::to_string(req.vm.id));
  // Idempotency: if we already host this VM (the GL's previous attempt whose
  // response got lost), report where it lives instead of starting a copy.
  for (const auto& [addr, lc_record] : lcs_) {
    if (lc_record.vms.count(req.vm.id) > 0) {
      auto resp = std::make_shared<PlacementResponse>();
      resp->ok = true;
      resp->lc = addr;
      telemetry::end_span(tel(), span, "replayed");
      responder.respond(resp);
      return;
    }
  }
  const net::Address lc = placement_policy_->choose(req.vm, lc_infos());
  if (lc != net::kNullAddress) {
    place_on(lc, req.vm, span, responder);
    return;
  }
  if (config_.energy_savings) {
    try_wakeup_then_place(req.vm, span, responder);
    return;
  }
  ++counters_.placements_failed;
  bump("gm.placements_failed");
  telemetry::end_span(tel(), span, "failed");
  auto resp = std::make_shared<PlacementResponse>();
  resp->ok = false;
  responder.respond(resp);
}

void GroupManager::place_on(net::Address lc, const VmDescriptor& vm,
                            telemetry::SpanContext span, net::Responder responder) {
  // A deliberate re-placement on this LC supersedes any earlier abort of the
  // same VM there.
  condemned_vms_.erase({lc, vm.id});
  // Reserve optimistically at command time so concurrent placements in the
  // same scheduling window do not all pick the same LC; rolled back if the
  // LC refuses. The LC's own monitoring reports (which include booting VMs)
  // remain the ground truth.
  const auto pre = lcs_.find(lc);
  std::size_t booked_socket = kNoSocket;
  if (pre != lcs_.end()) {
    pre->second.reserved += vm.requested;
    pre->second.idle_since = -1.0;
    // Book the memory profile too, mirroring the host's auto socket choice
    // (lowest relative demand, population tiebreak), so back-to-back
    // interference-aware placements inside one monitoring window see each
    // other's pressure instead of stacking onto the same "quiet" socket.
    // The next monitor report overwrites this with ground truth.
    if (vm.mem_profile.present() && !pre->second.sockets.empty()) {
      auto& socks = pre->second.sockets;
      double best_score = 1e300;
      for (std::size_t s = 0; s < socks.size(); ++s) {
        const double demand =
            socks[s].llc_demand_mb / std::max(socks[s].llc_mb, 1e-9) +
            socks[s].bw_demand_gbps / std::max(socks[s].mem_bw_gbps, 1e-9);
        const double score = demand + 1e-3 * static_cast<double>(socks[s].vms);
        if (score < best_score) {
          best_score = score;
          booked_socket = s;
        }
      }
      socks[booked_socket].llc_demand_mb += vm.mem_profile.llc_mb;
      socks[booked_socket].bw_demand_gbps += vm.mem_profile.bw_gbps;
      ++socks[booked_socket].vms;
    }
  }
  auto start = std::make_shared<StartVmRequest>();
  start->vm = vm;
  start->ctx = span;
  stamp_lease(*start, lc);
  const sim::Time timeout = config_.vm_boot_time + config_.rpc_timeout;
  const sim::Time sent = now();
  inflight_placements_.insert({lc, vm.id});
  endpoint_.call(lc, start, timeout,
                 [this, lc, vm, span, responder, booked_socket, sent](bool ok, const net::MsgPtr& reply) {
    inflight_placements_.erase({lc, vm.id});
    if (ok && handle_stale_lc_reply(reply, lc)) {
      ++counters_.placements_failed;
      bump("gm.placements_failed");
      telemetry::end_span(tel(), span, "fenced");
      auto placement = std::make_shared<PlacementResponse>();
      placement->ok = false;
      responder.respond(placement);
      return;
    }
    const auto* resp = ok ? net::msg_cast<StartVmResponse>(reply) : nullptr;
    auto placement = std::make_shared<PlacementResponse>();
    const auto it = lcs_.find(lc);
    if (resp != nullptr && resp->ok) {
      placement->ok = true;
      placement->lc = lc;
      ++counters_.placements_ok;
      bump("gm.placements_ok");
      // StartVm ack latency is boot-time dominated, which makes it a clean
      // per-LC slowdown sample (peer-relative, so fleet-wide load cancels).
      scorer_.add_sample(lc, obs::SlownessMetric::kStartVm, now() - sent);
      if (it != lcs_.end()) {
        VmRecord record;
        record.requested = vm.requested;
        record.estimator = ResourceEstimator(config_.estimator_window, config_.estimator_kind, config_.estimator_ewma_alpha);
        record.has_descriptor = true;
        record.descriptor = vm;
        it->second.vms[vm.id] = std::move(record);
        it->second.idle_since = -1.0;
      }
      trace_event("gm.vm_placed");
      telemetry::end_span(tel(), span, "ok");
    } else {
      placement->ok = false;
      ++counters_.placements_failed;
      bump("gm.placements_failed");
      if (it != lcs_.end()) {
        it->second.reserved -= vm.requested;
        if (it->second.reserved.any_negative()) it->second.reserved = {};
        if (booked_socket != kNoSocket && booked_socket < it->second.sockets.size()) {
          auto& sock = it->second.sockets[booked_socket];
          sock.llc_demand_mb = std::max(0.0, sock.llc_demand_mb - vm.mem_profile.llc_mb);
          sock.bw_demand_gbps = std::max(0.0, sock.bw_demand_gbps - vm.mem_profile.bw_gbps);
          if (sock.vms > 0) --sock.vms;
        }
      }
      if (resp == nullptr) {
        // Timeout: the LC may have started the VM and only the response was
        // lost — or (fail-slow) is still booting it. Abort the potential
        // orphan and condemn the (LC, VM) pair: a slow-but-alive LC keeps
        // monitoring-reporting the doomed copy until the abort lands, and
        // adopting that report would let the idempotent replay path ack a
        // submission whose VM this StopVm is about to kill.
        condemned_vms_.insert({lc, vm.id});
        if (it != lcs_.end()) it->second.vms.erase(vm.id);
        auto stop = std::make_shared<StopVmRequest>();
        stop->vm = vm.id;
        stamp_lease(*stop, lc);
        endpoint_.send(lc, stop);
      }
      telemetry::end_span(tel(), span, "failed");
    }
    responder.respond(placement);
  });
}

void GroupManager::try_wakeup_then_place(const VmDescriptor& vm,
                                         telemetry::SpanContext span,
                                         net::Responder responder) {
  // Find a suspended LC that could hold the VM once awake.
  net::Address target = net::kNullAddress;
  for (const auto& [addr, lc] : lcs_) {
    if (lc.power != LcPower::kSuspended) continue;
    if (waking_.count(addr)) continue;
    if (lc.health != LcHealth::kHealthy) continue;  // quarantined: stays down
    if (vm.requested.fits_within(lc.capacity)) {
      target = addr;
      break;
    }
  }
  if (target == net::kNullAddress) {
    ++counters_.placements_failed;
    bump("gm.placements_failed");
    telemetry::end_span(tel(), span, "failed");
    auto resp = std::make_shared<PlacementResponse>();
    resp->ok = false;
    responder.respond(resp);
    return;
  }
  ++counters_.wakeups;
  bump("gm.wakeups");
  waking_.insert(target);
  lcs_[target].power = LcPower::kWaking;
  trace_event("gm.wakeup");
  auto wake = std::make_shared<WakeupRequest>();
  wake->ctx = span;
  stamp_lease(*wake, target);
  const sim::Time timeout = 30.0 + config_.rpc_timeout;  // covers resume latency
  endpoint_.call(target, wake, timeout,
                 [this, target, vm, span, responder](bool ok, const net::MsgPtr& reply) {
    waking_.erase(target);
    if (ok && handle_stale_lc_reply(reply, target)) {
      ++counters_.placements_failed;
      bump("gm.placements_failed");
      telemetry::end_span(tel(), span, "fenced");
      auto placement = std::make_shared<PlacementResponse>();
      placement->ok = false;
      responder.respond(placement);
      return;
    }
    const auto* resp = ok ? net::msg_cast<WakeupResponse>(reply) : nullptr;
    const auto it = lcs_.find(target);
    if (resp != nullptr && resp->ok && it != lcs_.end()) {
      it->second.power = LcPower::kOn;
      it->second.last_heartbeat = now();
      it->second.idle_since = -1.0;
      place_on(target, vm, span, responder);
    } else {
      if (it != lcs_.end()) it->second.power = LcPower::kSuspended;
      ++counters_.placements_failed;
      bump("gm.placements_failed");
      telemetry::end_span(tel(), span, "wakeup_failed");
      auto placement = std::make_shared<PlacementResponse>();
      placement->ok = false;
      responder.respond(placement);
    }
  });
}

// ---------------------------------------------------------------------------
// GM role: anomalies, relocation, reconfiguration
// ---------------------------------------------------------------------------

std::vector<VmLoad> GroupManager::vm_loads(const LcRecord& record) const {
  std::vector<VmLoad> out;
  out.reserve(record.vms.size());
  for (const auto& [id, vm] : record.vms) {
    if (vm.migrating) continue;  // already moving; not relocation material
    out.push_back(VmLoad{id, vm.demand(), vm.requested, vm.profile, vm.penalty});
  }
  return out;
}

void GroupManager::handle_anomaly(const AnomalyEvent& event) {
  const auto it = lcs_.find(event.lc);
  if (it == lcs_.end()) return;
  auto fill = [](LcInfo& info, const LcRecord& record) {
    info.capacity = record.capacity;
    info.reserved = record.reserved;
    info.estimated_used = record.used;
    info.vm_count = static_cast<std::uint32_t>(record.vms.size());
    info.worst_penalty = record.worst_penalty;
    info.sockets.reserve(record.sockets.size());
    for (const auto& s : record.sockets) {
      info.sockets.push_back(LcInfo::SocketInfo{s.llc_mb, s.mem_bw_gbps,
                                                s.llc_demand_mb, s.bw_demand_gbps,
                                                s.vms});
    }
  };
  LcInfo source;
  source.lc = event.lc;
  source.powered_on = it->second.power == LcPower::kOn;
  fill(source, it->second);

  std::vector<LcInfo> others;
  for (const auto& [addr, lc] : lcs_) {
    if (addr == event.lc || lc.power != LcPower::kOn || lc.draining ||
        lc.health != LcHealth::kHealthy) {
      continue;
    }
    LcInfo info;
    info.lc = addr;
    info.powered_on = true;
    fill(info, lc);
    others.push_back(info);
  }

  // With interference management on, capacity moves must not park a VM
  // where its predicted multiplier falls below the relocation threshold —
  // the interference planner would immediately move it away again.
  const double min_multiplier =
      config_.interference_aware ? config_.interference_relocation_threshold : 0.0;
  std::vector<RelocationMove> moves;
  if (event.kind == AnomalyEvent::Kind::kOverload) {
    ++counters_.overload_events;
    bump("gm.overload_events");
    trace_event("gm.overload_event");
    moves = plan_overload_relocation(source, vm_loads(it->second), others,
                                     config_.overload_threshold, min_multiplier);
  } else if (event.kind == AnomalyEvent::Kind::kUnderload) {
    ++counters_.underload_events;
    bump("gm.underload_events");
    trace_event("gm.underload_event");
    moves = plan_underload_relocation(source, vm_loads(it->second), others,
                                      config_.underload_threshold,
                                      config_.overload_threshold, min_multiplier);
  } else {
    if (!config_.interference_aware) return;
    ++counters_.interference_events;
    bump("gm.interference_events");
    trace_event("gm.interference_event");
    // In-flight migrations are invisible to the monitoring reports the
    // planner prices targets with: exclude their destinations (the "empty"
    // host a noisy VM is already heading for) and their VMs (committed as
    // victims even if the source's migrating flag has not reported back yet).
    std::vector<LcInfo> targets;
    targets.reserve(others.size());
    for (const LcInfo& lc : others) {
      bool inbound = false;
      for (const auto& [vm, dest] : inflight_migrations_) {
        if (dest == lc.lc) { inbound = true; break; }
      }
      if (!inbound) targets.push_back(lc);
    }
    std::vector<VmLoad> loads = vm_loads(it->second);
    std::erase_if(loads, [this](const VmLoad& v) {
      return inflight_migrations_.count(v.vm) > 0;
    });
    moves = plan_interference_relocation(source, loads, targets,
                                         config_.overload_threshold);
  }
  execute_moves(moves);
}

void GroupManager::execute_moves(const std::vector<RelocationMove>& moves) {
  for (const RelocationMove& move : moves) {
    ++counters_.migrations_commanded;
    bump("gm.migrations_commanded");
    auto req = std::make_shared<MigrateVmRequest>();
    req->vm = move.vm;
    req->destination = move.to;
    stamp_lease(*req, move.from);
    const net::Address source = move.from;
    inflight_migrations_[move.vm] = move.to;
    endpoint_.call(source, req, config_.rpc_timeout,
                   [this, source, vm = move.vm](bool ok, const net::MsgPtr& reply) {
      // The ack only confirms the migration started; completion arrives
      // as a MigrationDone one-way message.
      if (ok) {
        handle_stale_lc_reply(reply, source);
        const auto* resp = net::msg_cast<MigrateVmResponse>(reply);
        if (resp != nullptr && !resp->ok) inflight_migrations_.erase(vm);
      } else {
        inflight_migrations_.erase(vm);
      }
    });
  }
}

void GroupManager::handle_migration_done(const MigrationDone& done) {
  inflight_migrations_.erase(done.vm);
  // Actual/predicted pre-copy ratio: ~1 on a healthy source, proportional to
  // the slowdown on a fail-slow one. Dimensionless, so peers are directly
  // comparable regardless of VM size.
  if (done.ok && done.expected_s > 1e-9 && lcs_.count(done.from) > 0) {
    scorer_.add_sample(done.from, obs::SlownessMetric::kMigration,
                       done.duration_s / done.expected_s);
  }
  if (!done.ok) {
    // The source reverted (or lost) the VM. The destination may still hold a
    // copy if only the adopt confirmation was lost — command it away so a
    // failed migration can never leave two running instances behind.
    if (done.to != net::kNullAddress) {
      auto stop = std::make_shared<StopVmRequest>();
      stop->vm = done.vm;
      stamp_lease(*stop, done.to);
      endpoint_.send(done.to, stop);
    }
    return;
  }
  ++counters_.migrations_completed;
  bump("gm.migrations_completed");
  trace_event("gm.migration_done");
  const auto from_it = lcs_.find(done.from);
  const auto to_it = lcs_.find(done.to);
  if (from_it == lcs_.end()) return;
  const auto vm_it = from_it->second.vms.find(done.vm);
  if (vm_it == from_it->second.vms.end()) return;
  if (to_it != lcs_.end()) {
    to_it->second.vms[done.vm] = vm_it->second;
    to_it->second.reserved += vm_it->second.requested;
    to_it->second.idle_since = -1.0;
  }
  from_it->second.reserved -= vm_it->second.requested;
  if (from_it->second.reserved.any_negative()) from_it->second.reserved = {};
  from_it->second.vms.erase(vm_it);
}

void GroupManager::handle_vm_terminated(const VmTerminated& done) {
  condemned_vms_.erase({done.lc, done.vm});
  const auto it = lcs_.find(done.lc);
  if (it == lcs_.end()) return;
  const auto vm_it = it->second.vms.find(done.vm);
  if (vm_it == it->second.vms.end()) return;
  it->second.reserved -= vm_it->second.requested;
  if (it->second.reserved.any_negative()) it->second.reserved = {};
  it->second.vms.erase(vm_it);
}

void GroupManager::gm_reconfigure() {
  if (leader_ || lcs_.empty()) return;
  // Build the packing instance over the powered-on LCs.
  std::vector<net::Address> hosts;
  std::vector<std::pair<net::Address, VmId>> vm_keys;
  consolidation::Instance instance;
  for (const auto& [addr, lc] : lcs_) {
    if (lc.power != LcPower::kOn || lc.draining ||
        lc.health != LcHealth::kHealthy) {
      continue;
    }
    hosts.push_back(addr);
    instance.host_capacities.push_back(lc.capacity);
  }
  if (hosts.empty()) return;
  std::map<net::Address, std::size_t> host_index;
  for (std::size_t h = 0; h < hosts.size(); ++h) host_index[hosts[h]] = h;

  // With interference-aware consolidation on, extend the instance so the
  // packer trades hosts saved against delivered performance.
  const bool interference =
      config_.interference_aware && config_.consolidation_interference_weight > 0.0;
  if (interference) {
    instance.interference_weight = config_.consolidation_interference_weight;
    for (const net::Address addr : hosts) {
      interference::TopologySpec topo;
      for (const auto& s : lcs_[addr].sockets) {
        topo.sockets.push_back(interference::SocketSpec{s.llc_mb, s.mem_bw_gbps});
      }
      instance.host_topologies.push_back(std::move(topo));
    }
  }

  consolidation::Placement current;
  std::vector<consolidation::HostIndex> current_raw;
  for (const auto& [addr, lc] : lcs_) {
    if (lc.power != LcPower::kOn || lc.draining ||
        lc.health != LcHealth::kHealthy) {
      continue;
    }
    for (const auto& [id, vm] : lc.vms) {
      instance.vm_demands.push_back(vm.requested);
      if (interference) instance.vm_profiles.push_back(vm.profile);
      vm_keys.emplace_back(addr, id);
      current_raw.push_back(static_cast<consolidation::HostIndex>(host_index[addr]));
    }
  }
  if (instance.vm_demands.empty()) return;
  current = consolidation::Placement(instance.vm_count());
  for (std::size_t i = 0; i < current_raw.size(); ++i) current.assign(i, current_raw[i]);

  consolidation::Placement target;
  switch (config_.consolidation) {
    case ConsolidationKind::kFfd:
      target = consolidation::first_fit_decreasing(instance);
      break;
    case ConsolidationKind::kBfd:
      target = consolidation::best_fit_decreasing(instance);
      break;
    case ConsolidationKind::kAco: {
      consolidation::AcoParams params;
      params.ants = config_.aco_ants;
      params.cycles = config_.aco_cycles;
      params.seed = engine().rng().next_u64();
      target = consolidation::AcoConsolidation(params).solve(instance).placement;
      break;
    }
    case ConsolidationKind::kNone:
      return;
  }
  if (!target.feasible(instance)) return;
  // Accept only strict improvements. Capacity-only instances compare hosts
  // used (the historical rule, score == hosts_used there); interference-
  // aware instances compare the combined score, so a plan that keeps the
  // host count but un-crowds hot sockets is still worth executing.
  if (consolidation::score(instance, target) >=
      consolidation::score(instance, current)) {
    return;
  }

  ++counters_.reconfigurations;
  bump("gm.reconfigurations");
  trace_event("gm.reconfiguration");
  const auto plan = consolidation::diff_placements(current, target);
  std::vector<RelocationMove> moves;
  moves.reserve(plan.size());
  for (const auto& migration : plan.migrations) {
    if (config_.max_migrations_per_reconfiguration > 0 &&
        moves.size() >= config_.max_migrations_per_reconfiguration) {
      break;  // bound the disruption; the next round continues the packing
    }
    moves.push_back(RelocationMove{vm_keys[migration.vm].second,
                                   hosts[static_cast<std::size_t>(migration.from)],
                                   hosts[static_cast<std::size_t>(migration.to)]});
  }
  execute_moves(moves);
}

// ---------------------------------------------------------------------------
// GM role: energy management
// ---------------------------------------------------------------------------

void GroupManager::gm_energy_check() {
  if (leader_) return;
  for (auto& [addr, lc] : lcs_) {
    // Non-healthy nodes belong to the containment machinery, which owns
    // their power state (quarantine suspends, reinstatement wakes).
    if (lc.power != LcPower::kOn || lc.draining ||
        lc.health != LcHealth::kHealthy) {
      continue;
    }
    const bool idle = lc.vms.empty();
    if (!idle) {
      lc.idle_since = -1.0;
      continue;
    }
    if (lc.idle_since < 0.0) {
      lc.idle_since = now();
      continue;
    }
    if (now() - lc.idle_since < config_.idle_threshold) continue;
    // Idle past the administrator threshold: transition to low power.
    gm_suspend_lc(addr);
  }
}

void GroupManager::gm_suspend_lc(net::Address target) {
  ++counters_.suspends;
  bump("gm.suspends");
  lcs_[target].power = LcPower::kSuspended;  // optimistic; reverted on refusal
  trace_event("gm.suspend");
  auto req = std::make_shared<SuspendRequest>();
  stamp_lease(*req, target);
  endpoint_.call(target, req, config_.rpc_timeout,
                 [this, target](bool ok, const net::MsgPtr& reply) {
    if (ok && handle_stale_lc_reply(reply, target)) return;
    const auto* resp = ok ? net::msg_cast<SuspendResponse>(reply) : nullptr;
    if (resp == nullptr || !resp->ok) {
      const auto it = lcs_.find(target);
      if (it != lcs_.end() && it->second.power == LcPower::kSuspended) {
        it->second.power = LcPower::kOn;
        it->second.last_heartbeat = now();
        it->second.idle_since = -1.0;
      }
    }
  });
}

void GroupManager::gm_wake_lc(net::Address target) {
  ++counters_.wakeups;
  bump("gm.wakeups");
  waking_.insert(target);
  lcs_[target].power = LcPower::kWaking;
  trace_event("gm.wakeup");
  auto wake = std::make_shared<WakeupRequest>();
  stamp_lease(*wake, target);
  const sim::Time timeout = 30.0 + config_.rpc_timeout;  // covers resume latency
  endpoint_.call(target, wake, timeout,
                 [this, target](bool ok, const net::MsgPtr& reply) {
    waking_.erase(target);
    if (ok && handle_stale_lc_reply(reply, target)) return;
    const auto* resp = ok ? net::msg_cast<WakeupResponse>(reply) : nullptr;
    const auto it = lcs_.find(target);
    if (it == lcs_.end()) return;
    if (resp != nullptr && resp->ok) {
      it->second.power = LcPower::kOn;
      it->second.last_heartbeat = now();
      it->second.idle_since = -1.0;
    } else if (it->second.power == LcPower::kWaking) {
      it->second.power = LcPower::kSuspended;
    }
  });
}

std::size_t GroupManager::scale_wake(std::size_t n) {
  std::size_t commanded = 0;
  for (const auto& [addr, lc] : lcs_) {
    if (commanded >= n) break;
    if (lc.power != LcPower::kSuspended || waking_.count(addr) > 0 || lc.draining ||
        lc.health != LcHealth::kHealthy) {
      continue;
    }
    gm_wake_lc(addr);
    ++commanded;
  }
  return commanded;
}

std::size_t GroupManager::scale_suspend(std::size_t n) {
  std::vector<net::Address> idle;
  for (const auto& [addr, lc] : lcs_) {
    if (idle.size() >= n) break;
    if (lc.power != LcPower::kOn || lc.draining || !lc.vms.empty() ||
        lc.health != LcHealth::kHealthy) {
      continue;
    }
    idle.push_back(addr);
  }
  for (net::Address addr : idle) gm_suspend_lc(addr);
  return idle.size();
}

// ---------------------------------------------------------------------------
// GM role: maintenance (rolling upgrades)
// ---------------------------------------------------------------------------

void GroupManager::begin_drain() {
  if (draining_ || !started_) return;
  draining_ = true;
  bump("gm.drains");
  trace_event("gm.draining");
  // A draining leader hands off first so the fleet keeps a GL while this
  // node restarts.
  if (leader_) step_down("drain");
  // Resign the managed LCs back to the hierarchy; they rejoin another GM
  // under fresh leases, which fences off any command we might still send.
  if (!lcs_.empty()) {
    auto resign = std::make_shared<GmResign>();
    resign->gm = endpoint_.address();
    endpoint_.multicast(gm_group_, resign);
    lcs_.clear();
    waking_.clear();
    condemned_vms_.clear();
    inflight_placements_.clear();
  }
}

void GroupManager::cancel_drain() {
  if (!draining_) return;
  draining_ = false;
  trace_event("gm.drain_cancelled");
}

std::size_t GroupManager::evacuate_lc(net::Address source) {
  const auto source_it = lcs_.find(source);
  if (source_it == lcs_.end()) return 0;
  // First-fit each VM onto another powered-on, non-draining LC, accounting
  // for the headroom already promised to earlier moves in this plan.
  std::vector<RelocationMove> moves;
  std::map<net::Address, ResourceVector> planned;
  for (const auto& [id, vm] : source_it->second.vms) {
    if (vm.migrating) continue;  // already on the wire
    for (const auto& [addr, lc] : lcs_) {
      if (addr == source || lc.power != LcPower::kOn || lc.draining ||
          lc.health != LcHealth::kHealthy) {
        continue;
      }
      if ((lc.reserved + planned[addr] + vm.requested).fits_within(lc.capacity)) {
        planned[addr] += vm.requested;
        moves.push_back(RelocationMove{id, source, addr});
        break;
      }
    }
  }
  if (!moves.empty()) {
    trace_event("gm.evacuate", "moves=" + std::to_string(moves.size()));
    execute_moves(moves);
  }
  return moves.size();
}

// ---------------------------------------------------------------------------
// GL role
// ---------------------------------------------------------------------------

void GroupManager::become_leader(std::uint64_t epoch) {
  if (leader_) return;
  if (draining_) {
    // A node emptying out for a restart must not take the fleet's authority
    // role; re-enter the election at the back of the queue instead.
    election_.resign();
    return;
  }
  leader_ = true;
  ++counters_.elections_won;
  bump("gm.elections_won");
  my_epoch_ = epoch;
  current_gl_ = endpoint_.address();
  trace_event("gm.elected_gl", "epoch=" + std::to_string(epoch));
  telemetry::gauge_set(tel(), "failover.epoch", static_cast<double>(epoch));

  // Dedicated roles: hand the managed LCs back to the hierarchy.
  if (!lcs_.empty()) {
    auto resign = std::make_shared<GmResign>();
    resign->gm = endpoint_.address();
    endpoint_.multicast(gm_group_, resign);
    lcs_.clear();
    waking_.clear();
    condemned_vms_.clear();
    inflight_placements_.clear();
  }
  // Role change: the scorer now baselines GMs, not LCs.
  scorer_.clear();

  // Reconciliation window: defer client work (submissions, LC assignments)
  // until the GM summaries arriving under this term have rebuilt our soft
  // state; in-flight migrations surface through the LC monitoring reports of
  // the GMs that inherit them.
  reconciling_ = true;
  reconcile_started_ = now();
  telemetry::Telemetry* t = tel();
  if (t != nullptr) {
    reconcile_span_ = t->spans().begin(t->spans().new_trace(), 0, "gl.reconcile",
                                       name(), "epoch=" + std::to_string(epoch));
  }
  after(config_.gl_reconcile_window, [this, epoch] { finish_reconcile(epoch); });

  every(config_.gl_heartbeat_period, [this] {
    gl_tick_heartbeat();
    return leader_;
  });
  every(config_.gm_summary_period, [this] {
    gl_check_gm_liveness();
    return leader_;
  });
  // Announce immediately so discovery does not wait a full period.
  gl_tick_heartbeat();
}

void GroupManager::finish_reconcile(std::uint64_t term) {
  // A step-down (or a newer term of our own) may have raced the timer.
  if (!leader_ || my_epoch_ != term || !reconciling_) return;
  reconciling_ = false;
  ++counters_.reconciliations;
  const sim::Time duration = now() - reconcile_started_;
  telemetry::count(tel(), "gl.reconciles");
  telemetry::observe(tel(), "reconcile.duration", duration);
  telemetry::gauge_set(tel(), "reconcile.last_duration", duration);
  telemetry::end_span(tel(), reconcile_span_, "ok");
  reconcile_span_ = {};
  trace_event("gl.reconciled", "gms=" + std::to_string(gms_.size()));
}

void GroupManager::step_down(const char* reason) {
  if (!leader_) return;
  leader_ = false;
  ++counters_.stepdowns;
  bump("gl.stepdowns");
  trace_event("gm.stepdown", reason);
  if (reconciling_) {
    reconciling_ = false;
    telemetry::end_span(tel(), reconcile_span_, "aborted");
    reconcile_span_ = {};
  }
  gms_.clear();
  completed_submissions_.clear();
  inflight_submissions_.clear();
  submit_waiters_.clear();
  vm_inventory_.clear();
  vm_conflicts_.clear();
  scorer_.clear();  // back to GM role: LC baselines start cold
  // Re-enter the election as a fresh candidate: our old znode is gone (a
  // successor exists or the session expired), so a new, strictly higher
  // sequence keeps epochs monotone.
  election_.resign();
}

void GroupManager::gl_tick_heartbeat() {
  if (!leader_) return;
  bump("gl.heartbeats");
  auto hb = std::make_shared<GlHeartbeat>();
  hb->gl = endpoint_.address();
  hb->epoch = my_epoch_;
  endpoint_.multicast(gl_group_, hb);
}

void GroupManager::handle_gl_heartbeat(const GlHeartbeat& hb) {
  if (hb.gl == endpoint_.address()) return;
  if (hb.epoch != 0 && hb.epoch < gl_fence_.high_water) return;  // stale leader
  if (hb.epoch > gl_fence_.high_water) gl_fence_.high_water = hb.epoch;
  current_gl_ = hb.gl;
  if (leader_ && hb.epoch > my_epoch_) {
    // A successor with a newer election epoch exists — our coordination
    // session must have expired while we were partitioned away. Abdicate and
    // resume plain GM duty to prevent split-brain after the partition heals.
    step_down("newer gl heartbeat");
  }
}

void GroupManager::gl_check_gm_liveness() {
  if (!leader_) return;
  const sim::Time window =
      config_.gm_summary_period * config_.heartbeat_timeout_factor;
  for (auto it = gms_.begin(); it != gms_.end();) {
    if (now() - it->second.last_summary > window) {
      // Gracefully remove the failed GM so no new VMs land on it.
      ++counters_.gm_failures_detected;
      bump("gl.gm_failures_detected");
      trace_event("gl.gm_failed");
      const net::Address gone = it->first;
      it = gms_.erase(it);
      drop_gm_inventory(gone);
      scorer_.forget(gone);
    } else {
      ++it;
    }
  }
  prune_submission_book();
}

void GroupManager::prune_submission_book() {
  const sim::Time retention = config_.submission_book_retention;
  if (retention <= 0.0) return;
  for (auto it = completed_submissions_.begin(); it != completed_submissions_.end();) {
    // In delta mode a live VM's book entry is only refreshed on placement
    // *changes*, so retention alone would prune (and then duplicate on a
    // client replay) long-lived idle VMs: anything the inventory still lists
    // as running is exempt.
    if (now() - it->second.at > retention && vm_inventory_.count(it->first) == 0) {
      it = completed_submissions_.erase(it);
    } else {
      ++it;
    }
  }
}

void GroupManager::handle_gm_summary(const GmSummary& summary) {
  if (!leader_) return;
  GmRecord& record = gms_[summary.gm];
  record.info.gm = summary.gm;
  record.info.used = summary.used;
  record.info.capacity = summary.capacity;
  record.info.lc_count = summary.lc_count;
  record.info.vm_count = summary.vm_count;
  // Summary inter-arrival gap: a gray GM assembles its reports slowly, so
  // its stream stutters relative to its peers. Outage-sized gaps (the GM was
  // down or partitioned) belong to the liveness machinery, not the scorer.
  const sim::Time gap = now() - record.last_summary;
  if (record.last_summary > 0.0 &&
      gap < config_.gm_summary_period * config_.heartbeat_timeout_factor) {
    scorer_.add_sample(summary.gm, obs::SlownessMetric::kSummary, gap);
  }
  record.last_summary = now();
  // Reconciliation: adopt the GM's VM locations into the submission book.
  // A client retrying a submission whose accept was lost when the previous
  // GL went down gets the existing placement replayed — never a second
  // instance. Latest summary wins (a VM migrates between summaries at most
  // once per period).
  for (const auto& [vm, lc] : summary.vm_locations) {
    completed_submissions_[vm] = {lc, summary.gm, now()};
  }
}

void GroupManager::handle_summary_delta(const GmSummaryDelta& delta,
                                        net::Responder responder) {
  auto ack = std::make_shared<GmSummaryAck>();
  ack->seq = delta.seq;
  if (!leader_) {
    // Not an authority on the stream (includes the degenerate self-send
    // right after a step-down): refuse, the GM re-anchors at the real GL.
    ack->ok = false;
    responder.respond(ack);
    return;
  }
  GmRecord& record = gms_[delta.gm];
  SummaryUpdate update;
  update.snapshot = delta.snapshot;
  update.stream = delta.stream;
  update.seq = delta.seq;
  update.placed = delta.placed;
  update.removed = delta.removed;
  const std::uint64_t seq_before = record.decoder.last_seq();
  const bool synced_before = record.decoder.synced();
  if (!record.decoder.apply(update)) {
    ++counters_.summary_rejects;
    bump("gl.summary_rejected");
    trace_event("gl.summary_rejected", "gm=" + std::to_string(delta.gm));
    ack->ok = false;
    responder.respond(ack);
    return;
  }
  record.info.gm = delta.gm;
  record.info.used = delta.used;
  record.info.capacity = delta.capacity;
  record.info.lc_count = delta.lc_count;
  record.info.vm_count = delta.vm_count;
  record.info.worst_lc_heartbeat_age = delta.worst_lc_heartbeat_age;
  // Same inter-arrival slowness signal as the full-summary path.
  const sim::Time gap = now() - record.last_summary;
  if (record.last_summary > 0.0 &&
      gap < config_.gm_summary_period * config_.heartbeat_timeout_factor) {
    scorer_.add_sample(delta.gm, obs::SlownessMetric::kSummary, gap);
  }
  record.last_summary = now();
  // Sync the VM inventory only when the decoder actually advanced: a
  // duplicate delivery of an *old* delta is acked (the GM moved on long ago)
  // but its stale placements must not regress the inventory.
  const bool advanced = record.decoder.last_seq() != seq_before ||
                        record.decoder.synced() != synced_before;
  if (delta.snapshot) {
    // Re-anchor: claims this GM no longer makes are removals, then the full
    // state is re-asserted. Both paths are idempotent.
    const VmLocationMap& state = record.decoder.state();
    std::vector<VmId> gone;
    for (const auto& [vm, owner] : vm_inventory_) {
      if (owner.gm == delta.gm && state.count(vm) == 0) gone.push_back(vm);
    }
    for (const VmId vm : gone) note_vm_removed(delta.gm, vm);
    for (const auto& [vm, lc] : state) note_vm_placed(delta.gm, vm, lc);
  } else if (advanced) {
    for (const auto& [vm, lc] : delta.placed) note_vm_placed(delta.gm, vm, lc);
    for (const VmId vm : delta.removed) note_vm_removed(delta.gm, vm);
  }
  resolve_conflicts_for(delta.gm);
  ack->ok = true;
  responder.respond(ack);
}

void GroupManager::note_vm_placed(net::Address gm, VmId vm, net::Address lc) {
  const auto [it, inserted] = vm_inventory_.try_emplace(vm, VmOwnership{gm, lc, now()});
  if (inserted) {
    completed_submissions_[vm] = {lc, gm, now()};
    return;
  }
  VmOwnership& owner = it->second;
  if (owner.gm == gm) {
    owner.lc = lc;  // intra-GM move (migration); not a duplicate
    completed_submissions_[vm] = {lc, gm, now()};
    return;
  }
  if (owner.lc == lc) {
    // Same LC under a new GM: the LC (with its VMs) rejoined the hierarchy
    // elsewhere — a legitimate ownership transfer, not a second instance.
    // The old GM's stale claim retires with its next snapshot or removal.
    owner = VmOwnership{gm, lc, now()};
    if (const auto c = vm_conflicts_.find(vm);
        c != vm_conflicts_.end() && c->second.challenger == gm) {
      vm_conflicts_.erase(c);
    }
    completed_submissions_[vm] = {lc, gm, now()};
    return;
  }
  // Same VM id claimed by two GMs on different LCs: a true cross-GM
  // duplicate (e.g. a submit replayed against a new GL while the original
  // placement survived a partition). Deciding on this single report could
  // kill a healthy VM on a reordered stream, so park the claim and settle it
  // against the incumbent's next applied summary (resolve_conflicts_for).
  PendingConflict& conflict = vm_conflicts_[vm];
  if (conflict.since == 0.0) conflict.since = now();
  conflict.incumbent = owner.gm;
  conflict.challenger = gm;
  conflict.challenger_lc = lc;
  bump("gl.cross_gm_conflicts");
  trace_event("gl.cross_gm_conflict", "vm=" + std::to_string(vm));
}

void GroupManager::note_vm_removed(net::Address gm, VmId vm) {
  if (const auto c = vm_conflicts_.find(vm);
      c != vm_conflicts_.end() && c->second.challenger == gm) {
    vm_conflicts_.erase(c);  // the challenger withdrew its claim
  }
  const auto it = vm_inventory_.find(vm);
  if (it == vm_inventory_.end() || it->second.gm != gm) return;
  if (const auto c = vm_conflicts_.find(vm);
      c != vm_conflicts_.end() && c->second.incumbent == gm) {
    // The incumbent dropped the VM while a challenger waits: the challenger
    // simply becomes the owner — no instance was ever a duplicate for long.
    it->second = VmOwnership{c->second.challenger, c->second.challenger_lc, now()};
    completed_submissions_[vm] = {c->second.challenger_lc, c->second.challenger, now()};
    vm_conflicts_.erase(c);
    return;
  }
  vm_inventory_.erase(it);
  // Retire the idempotency-book entry with the inventory: once no GM hosts
  // the VM, replaying "ok, it lives on LC x" to a client retry would accept
  // a submission whose VM is already gone (e.g. a fail-slow copy the GM
  // adopted from a monitoring report and then aborted). The client's retry
  // dispatches afresh instead.
  completed_submissions_.erase(vm);
}

void GroupManager::resolve_conflicts_for(net::Address gm) {
  const auto gm_it = gms_.find(gm);
  if (gm_it == gms_.end()) return;
  const VmLocationMap& state = gm_it->second.decoder.state();
  for (auto it = vm_conflicts_.begin(); it != vm_conflicts_.end();) {
    if (it->second.incumbent != gm) {
      ++it;
      continue;
    }
    const VmId vm = it->first;
    const PendingConflict conflict = it->second;
    if (state.count(vm) > 0) {
      // The incumbent's fresh summary still reports the VM: the challenger's
      // copy is the duplicate. Revoke it under our election epoch so a
      // deposed leader's late revoke is fenced off at the GM.
      ++counters_.cross_gm_duplicates_revoked;
      bump("gl.cross_gm_duplicates_revoked");
      trace_event("gl.duplicate_revoked", "vm=" + std::to_string(vm));
      auto revoke = std::make_shared<RevokeVmRequest>();
      revoke->vm = vm;
      revoke->lc = conflict.challenger_lc;
      revoke->epoch = my_epoch_;
      endpoint_.send(conflict.challenger, revoke);
    } else {
      vm_inventory_[vm] =
          VmOwnership{conflict.challenger, conflict.challenger_lc, now()};
      completed_submissions_[vm] = {conflict.challenger_lc, conflict.challenger,
                                    now()};
    }
    it = vm_conflicts_.erase(it);
  }
}

void GroupManager::drop_gm_inventory(net::Address gm) {
  for (auto it = vm_conflicts_.begin(); it != vm_conflicts_.end();) {
    if (it->second.challenger == gm) {
      it = vm_conflicts_.erase(it);
    } else if (it->second.incumbent == gm) {
      // The incumbent left the fleet: the challenger's copy is the survivor.
      vm_inventory_[it->first] =
          VmOwnership{it->second.challenger, it->second.challenger_lc, now()};
      it = vm_conflicts_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = vm_inventory_.begin(); it != vm_inventory_.end();) {
    if (it->second.gm == gm) {
      it = vm_inventory_.erase(it);
    } else {
      ++it;
    }
  }
}

double GroupManager::summary_staleness() const {
  if (!leader_ || gms_.empty()) return -1.0;
  double worst = 0.0;
  for (const auto& [addr, record] : gms_) {
    worst = std::max(worst, now() - record.last_summary);
  }
  return worst;
}

double GroupManager::aggregated_lc_heartbeat_age() const {
  double worst = -1.0;
  for (const auto& [addr, record] : gms_) {
    worst = std::max(worst, record.info.worst_lc_heartbeat_age);
  }
  return worst;
}

void GroupManager::handle_assign_lc(const AssignLcRequest& req, net::Responder responder) {
  (void)req;  // the assignment policies rank GMs independently of the LC
  auto resp = std::make_shared<AssignLcResponse>();
  if (!leader_ || reconciling_) {
    if (reconciling_) bump("gl.reconcile_deferred");
    resp->ok = false;
    responder.respond(resp);
    return;
  }
  // Prefer GMs not under gray suspicion; if the whole fleet is flagged the
  // filter would turn a slowdown into an outage, so fall back to everyone.
  std::vector<GmInfo> infos = gm_infos();
  std::vector<GmInfo> healthy;
  healthy.reserve(infos.size());
  for (const GmInfo& info : infos) {
    if (!info.probation) healthy.push_back(info);
  }
  const net::Address gm =
      assignment_policy_->assign(healthy.empty() ? infos : healthy);
  resp->ok = gm != net::kNullAddress;
  resp->gm = gm;
  responder.respond(resp);
}

void GroupManager::handle_submit(const SubmitVmRequest& req, telemetry::SpanContext ctx,
                                 net::Responder responder) {
  auto fail = [&] {
    auto resp = std::make_shared<SubmitVmResponse>();
    resp->ok = false;
    responder.respond(resp);
  };
  if (!leader_) {
    fail();
    return;
  }
  // A fresh term defers client work until soft state is rebuilt; the client
  // retries past the window (reconcile < its backoff horizon).
  if (reconciling_) {
    bump("gl.reconcile_deferred");
    fail();
    return;
  }
  // Idempotency: replay the result of an already-completed submission (the
  // client only retries when our previous response was lost in transit).
  const auto done = completed_submissions_.find(req.vm.id);
  if (done != completed_submissions_.end()) {
    auto resp = std::make_shared<SubmitVmResponse>();
    resp->ok = true;
    resp->lc = done->second.lc;
    resp->gm = done->second.gm;
    responder.respond(resp);
    return;
  }
  if (inflight_submissions_.count(req.vm.id) > 0) {
    // A retry raced the first dispatch (the client's submit deadline is
    // tighter than a worst-case placement). Park it; every waiter is
    // answered with the dispatch's outcome instead of bouncing the client
    // into another discovery round while the VM is still being placed.
    submit_waiters_[req.vm.id].push_back(responder);
    return;
  }
  ++counters_.dispatches;
  bump("gl.dispatches");
  const auto span = telemetry::begin_span(tel(), ctx, "gl.dispatch", name(),
                                          "vm=" + std::to_string(req.vm.id));
  // Dispatch steers around probationed GMs (same fallback rule as LC
  // assignment: an all-flagged fleet keeps serving).
  std::vector<GmInfo> infos = gm_infos();
  std::vector<GmInfo> healthy_gms;
  healthy_gms.reserve(infos.size());
  for (const GmInfo& info : infos) {
    if (!info.probation) healthy_gms.push_back(info);
  }
  std::vector<net::Address> candidates = dispatch_policy_->candidates(
      req.vm, healthy_gms.empty() ? infos : healthy_gms,
      config_.max_dispatch_candidates);
  if (candidates.empty()) {
    ++counters_.dispatch_failures;
    bump("gl.dispatch_failures");
    telemetry::end_span(tel(), span, "no_candidates");
    fail();
    return;
  }
  inflight_submissions_.insert(req.vm.id);
  dispatch_linear_search(req.vm, std::move(candidates), 0, span, responder);
}

void GroupManager::dispatch_linear_search(VmDescriptor vm,
                                          std::vector<net::Address> candidates,
                                          std::size_t index, telemetry::SpanContext span,
                                          net::Responder responder) {
  if (index >= candidates.size()) {
    inflight_submissions_.erase(vm.id);
    ++counters_.dispatch_failures;
    bump("gl.dispatch_failures");
    telemetry::end_span(tel(), span, "failed");
    SubmitVmResponse out;
    answer_submit(vm.id, responder, out);
    return;
  }
  // Each candidate GM gets transport-level retries before we move on: if an
  // attempt's *response* was lost (the GM may well have placed the VM), the
  // GM's idempotent placement handler resolves the re-send instantly instead
  // of a second copy being started on the next GM. Explicit rejections do
  // not retry (call_with_retries semantics) and fall through to the next
  // candidate immediately.
  const net::Address gm = candidates[index];
  auto place = std::make_shared<PlacementRequest>();
  place->vm = vm;
  place->ctx = span;
  place->epoch = my_epoch_;  // fencing token: GMs reject deposed leaders
  net::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff = 0.25;
  endpoint_.call_with_retries(
      gm, place, config_.placement_rpc_timeout, policy,
      [this, vm, candidates = std::move(candidates), index, gm, span,
       responder](bool ok, const net::MsgPtr& reply) mutable {
    if (ok && net::msg_cast<StaleEpochError>(reply) != nullptr) {
      // A GM saw a newer GL term than ours: we are deposed. Abandon the
      // dispatch (the client retries against the successor) and rejoin the
      // election instead of spraying stale commands at further candidates.
      inflight_submissions_.erase(vm.id);
      telemetry::end_span(tel(), span, "stale_epoch");
      // Answer before step_down(): stepping down drops the waiter book.
      SubmitVmResponse out;
      answer_submit(vm.id, responder, out);
      step_down("stale epoch on dispatch");
      return;
    }
    const auto* resp = ok ? net::msg_cast<PlacementResponse>(reply) : nullptr;
    if (resp != nullptr && resp->ok) {
      inflight_submissions_.erase(vm.id);
      completed_submissions_[vm.id] = {resp->lc, gm, now()};
      telemetry::end_span(tel(), span, "ok");
      SubmitVmResponse out;
      out.ok = true;
      out.lc = resp->lc;
      out.gm = gm;
      answer_submit(vm.id, responder, out);
      return;
    }
    // Rejected or retries exhausted: try the next candidate GM.
    dispatch_linear_search(std::move(vm), std::move(candidates), index + 1, span,
                           responder);
  });
}

void GroupManager::answer_submit(VmId vm, const net::Responder& responder,
                                 const SubmitVmResponse& result) {
  responder.respond(std::make_shared<SubmitVmResponse>(result));
  const auto waiting = submit_waiters_.find(vm);
  if (waiting == submit_waiters_.end()) return;
  for (const auto& waiter : waiting->second) {
    waiter.respond(std::make_shared<SubmitVmResponse>(result));
  }
  submit_waiters_.erase(waiting);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void GroupManager::fail() {
  trace_event("gm.fail");
  endpoint_.go_down();
  election_.crash();  // coordination session will expire -> successor elected
  lcs_.clear();
  gms_.clear();
  waking_.clear();
  condemned_vms_.clear();
  inflight_placements_.clear();
  completed_submissions_.clear();
  inflight_submissions_.clear();
  submit_waiters_.clear();
  vm_inventory_.clear();
  vm_conflicts_.clear();
  scorer_.clear();
  leader_ = false;
  started_ = false;
  reconciling_ = false;
  reconcile_span_ = {};
  current_gl_ = net::kNullAddress;
  crash();
}

void GroupManager::restart() {
  recover();
  election_.recover();
  endpoint_.go_up();
  gl_fence_ = {};
  my_epoch_ = 0;
  draining_ = false;
  // New life, new summary-stream incarnation: a delta duplicated from the
  // previous life can never collide with the fresh sequence numbers.
  ++summary_stream_;
  trace_event("gm.restart");
  start();
}

}  // namespace snooze::core
