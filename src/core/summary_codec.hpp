// Delta encoding for the GM -> GL summary stream.
//
// A full GmSummary re-lists every VM location each period, so GL ingest is
// O(total VMs) per period — the protocol wall on the way to 100k LCs. The
// delta stream sends only per-VM location changes against the last state the
// GL *acknowledged*, falling back to a full snapshot whenever that base is
// uncertain (first contact, lost or negative ack, GL change). Steady healthy
// state is therefore pure deltas; any doubt on either side degrades to a
// snapshot, never to silent divergence.
//
// The codec is pure state-machine logic with no networking or time, so the
// property suite (tests/summary_codec_property_test.cpp) can drive hundreds
// of seeded join/leave/drain/partition histories against a full-summary
// reference and shrink failures to minimal counterexamples.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "net/network.hpp"

namespace snooze::core {

/// Where each VM of one GM currently runs — the state a summary stream
/// replicates from GM to GL.
using VmLocationMap = std::map<VmId, net::Address>;

/// One encoded summary: either a self-contained snapshot (`snapshot` set,
/// `placed` lists every VM, `removed` empty) or a delta against the
/// previously acknowledged state. Sequence numbers are per-stream and
/// strictly increasing; deltas apply only in order.
struct SummaryUpdate {
  bool snapshot = false;
  /// Stream incarnation: bumped by the sender on restart so a duplicated
  /// delta from a previous life can never collide with the fresh stream's
  /// sequence numbers. Snapshots re-anchor the decoder to their stream.
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;
  std::vector<std::pair<VmId, net::Address>> placed;  ///< new or moved VMs
  std::vector<VmId> removed;                          ///< VMs no longer hosted
};

/// GM side: turns the current VM-location map into the smallest update that
/// is provably safe to send. Deltas are only ever computed against the last
/// *acknowledged* state — an un-acked previous update (timeout, loss) or an
/// explicit nack forces the next update to be a snapshot, so the GL can
/// never apply a delta against a base it does not hold.
class SummaryEncoder {
 public:
  /// Encode the next update for `current`. Emits a snapshot when one is
  /// needed (first send, forced, or the previous update was never
  /// positively acked); otherwise a delta against the acked base.
  SummaryUpdate encode(const VmLocationMap& current);

  /// Positive ack for `seq` from the GL: the state sent under that sequence
  /// becomes the delta base. Acks for anything but the latest sequence are
  /// ignored (a late duplicate of an older ack must not resurrect an
  /// abandoned base).
  void on_ack(std::uint64_t seq);

  /// Negative ack (`ok=false` reply) or transport timeout for `seq`: the GL
  /// did not — or may not — hold the update, so the next encode snapshots.
  void on_nack(std::uint64_t seq);

  /// Force the next update to be a snapshot regardless of ack state (GL
  /// address/epoch change, local restart).
  void force_snapshot() { need_snapshot_ = true; }

  /// Drop all stream state (component restart): sequence numbers restart
  /// under a fresh `stream` incarnation and the next update is a snapshot.
  void reset(std::uint64_t stream);

  [[nodiscard]] std::uint64_t last_seq() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t stream() const { return stream_; }

 private:
  VmLocationMap base_;  ///< state as of the last positively acked update
  VmLocationMap sent_;  ///< state encoded into the latest update
  std::uint64_t stream_ = 0;
  std::uint64_t next_seq_ = 1;
  bool need_snapshot_ = true;  ///< first contact or forced
  bool unacked_ = false;       ///< latest update has no positive ack yet
};

/// GL side: applies updates in order, rejecting anything it cannot prove
/// consistent (delta without a synced base, sequence gap). A rejected update
/// makes the GL nack, which makes the GM snapshot — the stream self-heals
/// within one summary period.
class SummaryDecoder {
 public:
  /// Apply one update. Returns true when the update is now reflected in
  /// state() — including duplicate deliveries of already-applied sequences,
  /// which are acked but not re-applied. Returns false when the update
  /// cannot be applied safely (the caller should nack).
  bool apply(const SummaryUpdate& update);

  /// Drop all replica state (leadership change on the GL side).
  void reset();

  [[nodiscard]] const VmLocationMap& state() const { return state_; }
  [[nodiscard]] bool synced() const { return synced_; }
  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }

 private:
  VmLocationMap state_;
  std::uint64_t stream_ = 0;
  std::uint64_t last_seq_ = 0;
  bool synced_ = false;  ///< a snapshot has anchored the stream
};

}  // namespace snooze::core
