#include "core/estimator.hpp"

#include <algorithm>

namespace snooze::core {

using hypervisor::ResourceVector;

ResourceEstimator::ResourceEstimator(std::size_t window, EstimatorKind kind,
                                     double ewma_alpha)
    : window_(std::max<std::size_t>(1, window)), kind_(kind), alpha_(ewma_alpha) {}

void ResourceEstimator::add(const ResourceVector& sample) {
  ++samples_;
  if (kind_ == EstimatorKind::kWindowMax) {
    recent_.push_back(sample);
    if (recent_.size() > window_) recent_.pop_front();
  } else {
    if (samples_ == 1) {
      ewma_ = sample;
    } else {
      for (std::size_t d = 0; d < ResourceVector::kDims; ++d) {
        ewma_[d] = alpha_ * sample[d] + (1.0 - alpha_) * ewma_[d];
      }
    }
  }
}

ResourceVector ResourceEstimator::estimate() const {
  if (samples_ == 0) return {};
  if (kind_ == EstimatorKind::kEwma) return ewma_;
  ResourceVector max;
  for (const auto& s : recent_) {
    for (std::size_t d = 0; d < ResourceVector::kDims; ++d) {
      max[d] = std::max(max[d], s[d]);
    }
  }
  return max;
}

}  // namespace snooze::core
