#include "core/system.hpp"

#include <cstdio>
#include <sstream>

#include "util/rng.hpp"

namespace snooze::core {

SnoozeSystem::SnoozeSystem(SystemSpec spec)
    : spec_(std::move(spec)), engine_(spec_.seed), network_(engine_, spec_.latency),
      trace_(engine_), telemetry_(engine_) {
  // Attach telemetry before any component exists so every endpoint sees it.
  network_.set_telemetry(&telemetry_);
  coord_ = std::make_unique<coord::Service>(engine_, network_,
                                            network_.allocate_address());

  for (std::size_t i = 0; i < spec_.entry_points; ++i) {
    eps_.push_back(std::make_unique<EntryPoint>(engine_, network_, kGlHeartbeatGroup,
                                                "ep-" + std::to_string(i), &trace_));
  }
  for (std::size_t i = 0; i < spec_.group_managers; ++i) {
    gms_.push_back(std::make_unique<GroupManager>(engine_, network_, coord_->address(),
                                                  spec_.config, kGlHeartbeatGroup,
                                                  "gm-" + std::to_string(i), &trace_));
  }
  util::Rng host_rng(spec_.seed ^ 0x9E3779B97F4A7C15ull);
  for (std::size_t i = 0; i < spec_.local_controllers; ++i) {
    hypervisor::HostSpec host = spec_.host_specs.empty()
                                    ? spec_.host_template
                                    : spec_.host_specs[i % spec_.host_specs.size()];
    char name[32];
    std::snprintf(name, sizeof(name), "lc-%03zu", i);
    host.name = name;
    if (spec_.host_specs.empty() && spec_.host_capacity_spread > 0.0) {
      const double f = 1.0 + host_rng.uniform(-spec_.host_capacity_spread,
                                              spec_.host_capacity_spread);
      host.capacity = host.capacity.scaled(f);
    }
    lcs_.push_back(std::make_unique<LocalController>(engine_, network_, std::move(host),
                                                     spec_.config, kGlHeartbeatGroup,
                                                     &trace_));
  }
  std::vector<net::Address> ep_addresses;
  for (const auto& ep : eps_) ep_addresses.push_back(ep->address());
  client_ = std::make_unique<Client>(engine_, network_, std::move(ep_addresses),
                                     spec_.config, "client", &trace_);
}

void SnoozeSystem::start() {
  for (auto& ep : eps_) ep->start();
  for (auto& gm : gms_) gm->start();
  for (auto& lc : lcs_) lc->start();
}

bool SnoozeSystem::run_until_stable(sim::Time deadline) {
  while (engine_.now() < deadline) {
    const sim::Time step = std::min(deadline, engine_.now() + 1.0);
    engine_.run_until(step);
    const bool has_leader = leader() != nullptr;
    std::size_t live = 0;
    std::size_t assigned = 0;
    for (const auto& lc : lcs_) {
      if (!lc->alive()) continue;
      if (lc->power_state() == energy::PowerState::kSuspended) continue;
      ++live;
      if (lc->assigned()) ++assigned;
    }
    if (has_leader && live == assigned && live > 0) return true;
    if (engine_.pending_events() == 0) break;
  }
  return false;
}

GroupManager* SnoozeSystem::leader() {
  for (auto& gm : gms_) {
    if (gm->alive() && gm->is_leader()) return gm.get();
  }
  return nullptr;
}

net::Address SnoozeSystem::gl_address() {
  GroupManager* gl = leader();
  return gl != nullptr ? gl->address() : net::kNullAddress;
}

std::size_t SnoozeSystem::assigned_lc_count() const {
  std::size_t n = 0;
  for (const auto& lc : lcs_) {
    if (lc->alive() && lc->assigned()) ++n;
  }
  return n;
}

std::size_t SnoozeSystem::running_vm_count() const {
  std::size_t n = 0;
  for (const auto& lc : lcs_) {
    if (lc->alive()) n += lc->vm_count();
  }
  return n;
}

std::size_t SnoozeSystem::suspended_lc_count() const {
  std::size_t n = 0;
  for (const auto& lc : lcs_) {
    if (lc->alive() && lc->suspended()) ++n;
  }
  return n;
}

double SnoozeSystem::total_work() const {
  double work = 0.0;
  for (const auto& lc : lcs_) work += lc->total_work(engine_.now());
  return work;
}

double SnoozeSystem::total_energy() const {
  double joules = 0.0;
  for (const auto& lc : lcs_) joules += lc->energy_joules(engine_.now());
  return joules;
}

std::array<double, energy::kNumPowerClasses> SnoozeSystem::total_energy_by_state() const {
  std::array<double, energy::kNumPowerClasses> total{};
  for (const auto& lc : lcs_) {
    const auto split = lc->host().meter().joules_by_class(engine_.now());
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += split[i];
  }
  return total;
}

std::string SnoozeSystem::hierarchy_dump() {
  std::ostringstream out;
  GroupManager* gl = leader();
  out << "hierarchy @ t=" << engine_.now() << "\n";
  out << "  GL: " << (gl != nullptr ? gl->name() : std::string("<none>")) << "\n";
  for (const auto& gm : gms_) {
    if (!gm->alive() || gm->is_leader()) continue;
    out << "  GM " << gm->name() << ": " << gm->lc_count() << " LCs, "
        << gm->vm_count() << " VMs\n";
  }
  std::size_t unassigned = 0;
  std::size_t suspended = 0;
  for (const auto& lc : lcs_) {
    if (!lc->alive()) continue;
    if (lc->suspended()) {
      ++suspended;
    } else if (!lc->assigned()) {
      ++unassigned;
    }
  }
  out << "  LCs: " << lcs_.size() << " total, " << assigned_lc_count() << " assigned, "
      << suspended << " suspended, " << unassigned << " joining\n";
  return out.str();
}

VmDescriptor SnoozeSystem::make_vm(const ResourceVector& requested, double lifetime_s,
                                   TraceSpec trace, interference::MemProfile profile) {
  VmDescriptor vm;
  vm.id = next_vm_id_++;
  vm.requested = requested;
  vm.memory_mb = 1024.0 + requested.memory() * 14336.0;
  vm.dirty_rate_mbps = 25.0 + requested.cpu() * 150.0;
  vm.lifetime_s = lifetime_s;
  vm.trace = trace;
  vm.mem_profile = profile;
  return vm;
}

void SnoozeSystem::enable_auto_roles(std::size_t min_group_managers,
                                     sim::Time check_period) {
  min_group_managers_ = min_group_managers;
  // Self-rescheduling supervisor tick on the engine (the SnoozeSystem is the
  // framework here — in a fully symmetric deployment this logic would live
  // on every node, triggered by the same GL/GM heartbeat observations).
  // The closure keeps only a weak reference to itself (the scheduled event
  // owns the strong one) so the chain never forms a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, check_period,
           weak = std::weak_ptr<std::function<void()>>(tick)] {
    auto_role_check();
    if (auto self = weak.lock()) {
      engine_.schedule(check_period, [self] { (*self)(); });
    }
  };
  engine_.schedule(check_period, [tick] { (*tick)(); });
}

void SnoozeSystem::auto_role_check() {
  if (min_group_managers_ == 0) return;
  std::size_t live_gms = 0;
  for (const auto& gm : gms_) {
    if (gm->alive()) ++live_gms;
  }
  if (live_gms >= min_group_managers_) return;

  // Promote an idle LC: retire the LC role, start a GM on the same machine.
  for (auto& lc : lcs_) {
    if (!lc->alive() || lc->vm_count() > 0 ||
        lc->power_state() != energy::PowerState::kOn) {
      continue;
    }
    const std::string machine = lc->host().spec().name;
    lc->fail();  // the machine leaves the LC role (it hosts no VMs)
    trace_.record(machine, "system.role_promoted", "lc -> gm");
    auto gm = std::make_unique<GroupManager>(engine_, network_, coord_->address(),
                                             spec_.config, kGlHeartbeatGroup,
                                             machine + "-gm", &trace_);
    gm->start();
    gms_.push_back(std::move(gm));
    ++role_promotions_;
    return;  // one promotion per supervisor tick
  }
}

int SnoozeSystem::fail_gl() {
  for (std::size_t i = 0; i < gms_.size(); ++i) {
    if (gms_[i]->alive() && gms_[i]->is_leader()) {
      gms_[i]->fail();
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace snooze::core
