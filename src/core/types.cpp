#include "core/types.hpp"

#include "workload/traces.hpp"

namespace snooze::core {

hypervisor::UtilizationFn make_trace(const TraceSpec& spec) {
  switch (spec.kind) {
    case TraceSpec::Kind::kConstant:
      return workload::constant(spec.a);
    case TraceSpec::Kind::kSinusoidal:
      return workload::sinusoidal(spec.a, spec.b, spec.c, spec.d);
    case TraceSpec::Kind::kRandomSteps:
      return workload::random_steps(spec.a, spec.b, spec.c, spec.seed);
    case TraceSpec::Kind::kOnOff:
      return workload::on_off(spec.a, spec.b, spec.c, spec.d, spec.seed);
  }
  return workload::constant(1.0);
}

}  // namespace snooze::core
