// Resource-demand estimation (paper §II.B).
//
// Group Managers estimate each VM's demand from the monitoring samples the
// LCs report. Two estimators are provided: sliding-window component-wise
// maximum (conservative — never underestimates recent demand) and EWMA
// (smooth — tracks the trend). Scheduling uses the estimate, not the raw
// instantaneous sample, so placement decisions survive short spikes.
#pragma once

#include <cstddef>
#include <deque>

#include "hypervisor/resources.hpp"

namespace snooze::core {

enum class EstimatorKind { kWindowMax, kEwma };

class ResourceEstimator {
 public:
  explicit ResourceEstimator(std::size_t window = 5,
                             EstimatorKind kind = EstimatorKind::kWindowMax,
                             double ewma_alpha = 0.3);

  void add(const hypervisor::ResourceVector& sample);

  /// Current demand estimate; zero vector before the first sample.
  [[nodiscard]] hypervisor::ResourceVector estimate() const;

  [[nodiscard]] bool empty() const { return samples_ == 0; }
  [[nodiscard]] std::size_t samples() const { return samples_; }

 private:
  std::size_t window_;
  EstimatorKind kind_;
  double alpha_;
  std::deque<hypervisor::ResourceVector> recent_;
  hypervisor::ResourceVector ewma_;
  std::size_t samples_ = 0;
};

}  // namespace snooze::core
