#include "core/entry_point.hpp"

#include "telemetry/telemetry.hpp"

namespace snooze::core {

EntryPoint::EntryPoint(sim::Engine& engine, net::Network& network,
                       net::GroupId gl_heartbeat_group, std::string name,
                       sim::Trace* trace)
    : sim::Actor(engine, std::move(name)),
      endpoint_(engine, network, network.allocate_address(), Actor::name()),
      gl_group_(gl_heartbeat_group),
      trace_(trace) {
  endpoint_.set_message_handler([this](const net::Envelope& env) {
    if (const auto* hb = net::msg_cast<GlHeartbeat>(env.payload)) {
      telemetry::count(endpoint_.network().telemetry(), "ep.gl_heartbeats");
      if (hb->epoch >= epoch_) {
        epoch_ = hb->epoch;
        gl_ = hb->gl;
        last_gl_heartbeat_ = now();
      }
    }
  });
  endpoint_.set_request_handler([this](const net::Envelope& env, net::Responder r) {
    if (net::msg_cast<GlQueryRequest>(env.payload) == nullptr) return;
    auto* tel = endpoint_.network().telemetry();
    telemetry::count(tel, "ep.gl_queries");
    const auto span = telemetry::begin_span(tel, env.ctx, "ep.gl_query", this->name());
    auto resp = std::make_shared<GlQueryResponse>();
    // Only vouch for a GL we have heard from recently.
    const sim::Time window =
        config_.gl_heartbeat_period * config_.heartbeat_timeout_factor;
    resp->ok = gl_ != net::kNullAddress && now() - last_gl_heartbeat_ <= window;
    resp->gl = gl_;
    telemetry::end_span(tel, span, resp->ok ? "ok" : "unknown_gl");
    r.respond(resp);
  });
}

void EntryPoint::start() {
  endpoint_.network().join_group(gl_group_, endpoint_.address());
  if (trace_) trace_->record(name(), "ep.start");
}

void EntryPoint::fail() {
  endpoint_.network().leave_group(gl_group_, endpoint_.address());
  endpoint_.go_down();
  crash();
}

void EntryPoint::restart() {
  recover();
  endpoint_.go_up();
  gl_ = net::kNullAddress;
  last_gl_heartbeat_ = -1.0;
  start();
}

}  // namespace snooze::core
