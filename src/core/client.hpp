// Cloud client: discovers the current GL through the Entry Points and
// submits VMs to it, with retries across GL failovers. Records end-to-end
// submission latency (the scalability metric of experiment E3).
#pragma once

#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "net/rpc.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace snooze::core {

class Client final : public sim::Actor {
 public:
  /// ok, hosting LC, end-to-end latency in (virtual) seconds.
  using SubmitCb = std::function<void(bool ok, net::Address lc, sim::Time latency)>;

  Client(sim::Engine& engine, net::Network& network, std::vector<net::Address> entry_points,
         SnoozeConfig config, std::string name = "client", sim::Trace* trace = nullptr);

  /// Submit one VM; retries (EP rotation + GL re-discovery) up to
  /// `max_attempts` before reporting failure.
  void submit(const VmDescriptor& vm, SubmitCb cb = nullptr);

  /// Submit `vms` with a fixed inter-arrival gap; `done` fires after the
  /// last response (success or failure) arrives.
  void submit_all(std::vector<VmDescriptor> vms, sim::Time inter_arrival,
                  std::function<void()> done = nullptr);

  [[nodiscard]] net::Address address() const { return endpoint_.address(); }

  // --- statistics -------------------------------------------------------------
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t succeeded() const { return succeeded_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }
  [[nodiscard]] util::Percentiles& latencies() { return latencies_; }

 private:
  void attempt(VmDescriptor vm, sim::Time started, int attempts_left,
               telemetry::SpanContext root, SubmitCb cb);
  void discover_gl(std::size_t ep_index, telemetry::SpanContext root,
                   std::function<void(net::Address)> cb);

  [[nodiscard]] telemetry::Telemetry* tel() const {
    return endpoint_.network().telemetry();
  }

  /// Backoff before the next discovery round, per RetryPolicy semantics.
  [[nodiscard]] sim::Time rediscover_backoff(int attempts_left);

  net::RpcEndpoint endpoint_;
  std::vector<net::Address> entry_points_;
  SnoozeConfig config_;
  sim::Trace* trace_;
  net::Address cached_gl_ = net::kNullAddress;
  std::size_t next_ep_ = 0;
  int max_attempts_ = 4;
  /// Transport-level retries of one submission RPC against a known GL. The
  /// GL deduplicates submissions by VM id, so re-sends are safe. The overall
  /// deadline caps one round against a dead GL so re-discovery (which finds
  /// the successor) is reached quickly during a failover.
  net::RetryPolicy submit_policy_{.max_attempts = 2, .base_backoff = 0.5,
                                  .max_total = 25.0};
  /// Backoff schedule between whole discovery+submit rounds.
  net::RetryPolicy round_policy_{.max_attempts = 4, .base_backoff = 0.5,
                                 .multiplier = 2.0, .max_backoff = 8.0};

  std::uint64_t submitted_ = 0;
  std::uint64_t succeeded_ = 0;
  std::uint64_t failed_ = 0;
  util::Percentiles latencies_;
};

}  // namespace snooze::core
