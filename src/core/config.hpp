// Deployment configuration: heartbeat periods, failure-detection windows,
// scheduling thresholds and energy-management knobs. One struct so a whole
// simulated deployment is reproducible from a single value.
#pragma once

#include <cstddef>

#include "core/estimator.hpp"
#include "sim/engine.hpp"

namespace snooze::core {

/// Which policy a Group Leader uses to pick candidate GMs for a VM.
enum class DispatchPolicyKind { kRoundRobin, kLeastLoaded };

/// Which policy a Group Manager uses to place a VM on an LC.
/// kLeastInterference scores feasible LCs by predicted memory-subsystem
/// contention and falls back to capacity-only (best-fit) scoring when the
/// fleet has no socket topology or the VM no profile.
enum class PlacementPolicyKind { kFirstFit, kRoundRobin, kBestFit, kLeastInterference };

/// Which policy the GL uses to assign a joining LC to a GM.
enum class AssignmentPolicyKind { kRoundRobin, kLeastLoaded };

/// Which algorithm periodic reconfiguration runs.
enum class ConsolidationKind { kNone, kFfd, kBfd, kAco };

/// Declarative service-level objectives evaluated by obs::SloEvaluator
/// against the live TimeSeriesStore. Thresholds are maxima ("the SLI must
/// stay below"); a NaN SLI (no data yet) never counts as a breach. Alerts
/// use burn/clear hysteresis: fire after `burn_samples` consecutive
/// breaching samples, clear after `clear_samples` consecutive samples below
/// `clear_fraction * threshold`.
struct SloConfig {
  sim::Time sample_period = 1.0;  ///< health-monitor cadence (DES clock)

  double submit_p50_max_s = 5.0;   ///< submit→running latency median
  double submit_p99_max_s = 10.0;  ///< submit→running latency tail
  /// Failover MTTR: gm.fail of the acting GL → gl.reconciled. Default is the
  /// heartbeat-derived bound from E13: session timeout (6 s) + one heartbeat
  /// period (1 s) + gl_reconcile_window (2.5 s).
  double failover_mttr_max_s = 9.5;
  double energy_per_vm_hour_max_j = 2.0e6;  ///< cluster joules per VM-hour
  /// Minimum accumulated VM-hours before the energy SLI is defined — the
  /// ratio is dominated by idle baseline power until real work accumulates
  /// (a cold cluster burns joules before any VM-hour exists), so the SLI
  /// warms up rather than alerting on start-up transients.
  double energy_min_vm_hours = 0.05;
  double fence_rejected_per_min_max = 30.0;  ///< stale-command rejection rate
  double heartbeat_staleness_max_s = 3.0;    ///< worst LC heartbeat age seen by GMs

  /// Fleet p99 interference penalty (1 - throughput multiplier) across
  /// profiled running VMs. NaN (and thus never breaching) until profiled VMs
  /// report from socketed hosts.
  double interference_p99_penalty_max = 0.35;
  /// Degraded-VM-seconds accumulated per minute: each profiled VM adds
  /// (1 - multiplier) seconds per second of wall time it runs degraded.
  double degraded_vm_seconds_per_min_max = 30.0;

  /// Delta-summary protocol health (NaN — never breaching — in full-summary
  /// deployments). The delta stream's steady state is one near-empty header
  /// (~100 bytes) per sending GM per period *regardless of fleet shape*,
  /// while re-snapshotting adds ~16 bytes per hosted VM — so bytes per
  /// sending GM per period separates a converged stream from a stuck one at
  /// any topology (per-LC normalization does not: a healthy 4-LC cluster
  /// reads higher per LC than a re-snapshotting 200-LC one).
  double summary_bytes_per_gm_period_max = 256.0;
  /// Age of the stalest GM summary at the acting GL. The GL ages a GM out
  /// after gm_summary_period * heartbeat_timeout_factor (7 s at defaults);
  /// alerting below that surfaces a degraded stream before the eviction.
  double summary_staleness_max_s = 6.0;

  int burn_samples = 3;    ///< consecutive breaches before an alert fires
  int clear_samples = 5;   ///< consecutive good samples before it clears
  double clear_fraction = 0.8;  ///< "good" = SLI < clear_fraction * threshold

  /// Trailing window of the alert-flap SLI (fire/clear transitions per
  /// window across all SLIs). A healthy long-horizon run alerts rarely; a
  /// flapping one oscillates — the soak gate reads this as a first-class SLI.
  sim::Time flap_window_s = 3600.0;
};

/// Gray-failure (fail-slow) detection and containment knobs.
///
/// Detection is *peer-relative*: the GM keeps per-LC operation-latency EWMAs
/// (probe round-trip, StartVm ack, migration slowdown) and scores each LC
/// against the robust fleet baseline (median / MAD across peers). A node
/// whose score stays above `z_flag` for `slow_flag_sustain_s` enters
/// probation (excluded from placement, monitoring trust halved); sustained
/// degradation escalates to quarantine (evacuate + suspend), and a clean
/// probe window reinstates it. The GL applies the same scoring to its GMs
/// (probe round-trip + summary turnaround) and stops dispatching to flagged
/// GMs — without ever declaring them dead, so a slow-but-alive leader path
/// never triggers a spurious failover.
struct GrayConfig {
  bool detection = true;        ///< master switch for scoring + containment
  sim::Time probe_period = 5.0; ///< GM->LC and GL->GM latency probe cadence
  sim::Time probe_timeout = 1.0;
  /// Service time of a probe on a healthy node; a gray node answers after
  /// this times its effective slowdown, which is what the scorer sees.
  sim::Time probe_service_time = 0.005;
  double ewma_alpha = 0.3;      ///< per-peer latency EWMA smoothing
  double z_flag = 4.0;          ///< robust z-score that marks a peer slow
  double z_clear = 2.0;         ///< hysteretic clear threshold (z_clear < z_flag)
  sim::Time slow_flag_sustain_s = 10.0;  ///< score must stay high this long
  /// Probation -> quarantine escalation: still flagged after this long on
  /// probation, the node is evacuated and suspended.
  sim::Time quarantine_after_s = 20.0;
  /// Capacity guard: never hold more than this fraction of a group's LCs in
  /// quarantine at once (escalation is deferred, probation remains).
  double max_quarantined_fraction = 0.2;
  sim::Time reinstate_after_s = 30.0;   ///< quarantine dwell before re-probing
  int reinstate_clean_probes = 3;       ///< consecutive clean evals to reinstate
  bool hedged_probes = true;  ///< probes ride call_with_hedging (idempotent)
};

struct SnoozeConfig {
  // --- heartbeat / failure detection --------------------------------------
  sim::Time gl_heartbeat_period = 1.0;
  sim::Time gm_heartbeat_period = 1.0;
  sim::Time lc_heartbeat_period = 1.0;
  /// A peer is declared failed after `timeout_factor * period` of silence.
  double heartbeat_timeout_factor = 3.5;

  /// Reconciliation window of a freshly promoted GL: client work (VM
  /// submissions, LC assignments) is deferred until the new leader has
  /// rebuilt its soft state from GM summaries and re-registrations. Must
  /// cover at least one gm_summary_period so every live GM reports once.
  sim::Time gl_reconcile_window = 2.5;

  // --- monitoring / estimation ---------------------------------------------
  sim::Time lc_monitor_period = 2.0;     ///< LC -> GM resource monitoring
  sim::Time gm_summary_period = 2.0;     ///< GM -> GL aggregated summary
  /// Batched delta summaries (GmSummaryDelta stream) instead of full
  /// per-period GmSummary messages: O(churn) bytes on the wire, snapshot
  /// fallback on any ack uncertainty, and a GL-side VM->GM ownership
  /// inventory that resolves cross-GM duplicate VMs. On by default (the
  /// golden traces are recorded under this mode); set to false for the
  /// legacy full-summary wire protocol.
  bool delta_summaries = true;
  std::size_t estimator_window = 5;      ///< sliding window length (samples)
  /// Window-max is conservative (never under-estimates recent demand);
  /// EWMA is smoother and tracks trends (see core/estimator.hpp).
  EstimatorKind estimator_kind = EstimatorKind::kWindowMax;
  double estimator_ewma_alpha = 0.3;

  // --- scheduling -----------------------------------------------------------
  DispatchPolicyKind dispatch_policy = DispatchPolicyKind::kRoundRobin;
  PlacementPolicyKind placement_policy = PlacementPolicyKind::kFirstFit;
  AssignmentPolicyKind assignment_policy = AssignmentPolicyKind::kRoundRobin;
  double overload_threshold = 0.90;   ///< LC bottleneck utilization
  double underload_threshold = 0.20;
  sim::Time anomaly_check_period = 5.0;  ///< LC-local overload/underload scan
  sim::Time rpc_timeout = 1.0;
  sim::Time placement_rpc_timeout = 20.0;  ///< must cover a wakeup (resume latency)
  /// Client-side timeout for one submit attempt against the GL. Deliberately
  /// much tighter than the GL's own worst-case dispatch: when it trips, the
  /// client re-discovers and re-submits, and the GL's idempotent submission
  /// book (keyed by VM id) turns the re-send into a replay, never a second
  /// instance. Bounds client-visible failover latency to roughly one round.
  sim::Time submit_rpc_timeout = 10.0;
  std::size_t max_dispatch_candidates = 4; ///< GL linear-search width

  // --- reconfiguration (periodic consolidation) ----------------------------
  ConsolidationKind consolidation = ConsolidationKind::kNone;
  sim::Time reconfiguration_period = 0.0;  ///< 0 disables the timer
  std::size_t aco_ants = 6;
  std::size_t aco_cycles = 6;
  /// Cap on live migrations issued per reconfiguration round (0 = no cap).
  /// Bounds the disruption of a single round; the next round continues the
  /// packing. LCs reject migrations they cannot absorb, so a truncated plan
  /// degrades gracefully.
  std::size_t max_migrations_per_reconfiguration = 0;

  // --- interference management ---------------------------------------------
  /// Master switch for interference-aware control: LC-side penalty anomaly
  /// reports and GM-side targeted relocation. The model itself (penalties,
  /// monitoring columns) is always on but inert without socket topologies.
  bool interference_aware = false;
  /// An LC reports a kInterference anomaly when its worst VM multiplier
  /// stays below this threshold for `interference_sustain_s`.
  double interference_relocation_threshold = 0.85;
  sim::Time interference_sustain_s = 10.0;
  /// Weight of the interference term in consolidation scoring: the packer
  /// minimizes hosts_used + weight * sum-of-penalties. 0 keeps the packing
  /// purely capacity-driven.
  double consolidation_interference_weight = 0.0;

  // --- energy management ----------------------------------------------------
  bool energy_savings = false;
  sim::Time idle_threshold = 30.0;  ///< idle time before suspending an LC
  sim::Time energy_check_period = 5.0;

  // --- VM lifecycle ----------------------------------------------------------
  sim::Time vm_boot_time = 2.0;
  double migration_bandwidth_mbps = 1000.0;

  /// Reschedule VMs of a failed LC from their last descriptor (the paper's
  /// optional snapshot-based recovery, §II.E).
  bool reschedule_failed_vms = false;

  // --- long-horizon memory bounds -------------------------------------------
  /// GL submission-book entries not re-acknowledged by a GM summary within
  /// this window are pruned (their VM terminated and the client's retry
  /// horizon — seconds — is long past). 0 keeps the book forever.
  sim::Time submission_book_retention = 600.0;

  // --- gray-failure resilience ----------------------------------------------
  GrayConfig gray;

  // --- observability ---------------------------------------------------------
  SloConfig slo;
};

}  // namespace snooze::core
