// Entry Point (EP) — paper §II.A, client layer.
//
// A predefined number of replicated Entry Points provide the user interface:
// each EP listens for GL heartbeats and answers clients' "who is the current
// GL?" queries, so clients survive GL failovers without hard-coding leader
// addresses.
#pragma once

#include "core/config.hpp"
#include "core/messages.hpp"
#include "net/rpc.hpp"
#include "sim/trace.hpp"

namespace snooze::core {

class EntryPoint final : public sim::Actor {
 public:
  EntryPoint(sim::Engine& engine, net::Network& network, net::GroupId gl_heartbeat_group,
             std::string name, sim::Trace* trace = nullptr);

  void start();

  [[nodiscard]] net::Address address() const { return endpoint_.address(); }
  [[nodiscard]] net::Address known_gl() const { return gl_; }

  void fail();
  void restart();

 private:
  net::RpcEndpoint endpoint_;
  net::GroupId gl_group_;
  sim::Trace* trace_;
  net::Address gl_ = net::kNullAddress;
  std::uint64_t epoch_ = 0;
  sim::Time last_gl_heartbeat_ = -1.0;
  SnoozeConfig config_;
};

}  // namespace snooze::core
