// Epoch fencing for authority-bearing commands (DESIGN.md, "Epoch fencing").
//
// Every command that carries management authority (placements, stop/migrate
// dispatches, suspend/wakeup) is stamped with the sender's election epoch:
// GL term epochs on GL->GM traffic, GM lease epochs on GM->LC traffic. The
// receiver keeps one EpochFence per authority domain and refuses anything
// below the high-water mark with a typed StaleEpochError, so a deposed
// leader (or a command delayed across a failover) can never act on stale
// authority.
//
// Epoch 0 marks unfenced traffic (monitoring, adoption, boot-time paths)
// and is always admitted without advancing the high-water mark.
#pragma once

#include <cstdint>

namespace snooze::core {

struct EpochFence {
  std::uint64_t high_water = 0;     ///< highest epoch observed so far
  std::uint64_t rejected = 0;       ///< commands refused as stale
  std::uint64_t stale_accepts = 0;  ///< tripwire: must stay zero forever

  /// Gate at the dispatch site. Returns false (and counts a rejection) for
  /// a stale epoch; advances the high-water mark otherwise.
  [[nodiscard]] bool admit(std::uint64_t epoch) {
    if (epoch == 0) return true;  // unfenced traffic
    if (epoch < high_water) {
      ++rejected;
      return false;
    }
    high_water = epoch;
    return true;
  }

  /// Tripwire at the apply site: every applied command must have passed
  /// admit() first, so a stale epoch reaching here is a fencing bug.
  void note_applied(std::uint64_t epoch) {
    if (epoch != 0 && epoch < high_water) ++stale_accepts;
  }
};

}  // namespace snooze::core
