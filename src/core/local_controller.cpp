#include "core/local_controller.hpp"

#include <algorithm>

#include "net/pool.hpp"
#include "util/logging.hpp"

namespace snooze::core {

using energy::PowerState;

LocalController::LocalController(sim::Engine& engine, net::Network& network,
                                 hypervisor::HostSpec host_spec, SnoozeConfig config,
                                 net::GroupId gl_heartbeat_group, sim::Trace* trace)
    : sim::Actor(engine, host_spec.name),
      endpoint_(engine, network, network.allocate_address(), host_spec.name),
      host_(std::move(host_spec), engine.now()),
      config_(config),
      gl_group_(gl_heartbeat_group),
      trace_(trace),
      running_vms_(engine.now(), 0.0) {
  migration_model_.bandwidth_mbps = config_.migration_bandwidth_mbps;
  endpoint_.set_message_handler([this](const net::Envelope& env) { handle_oneway(env); });
  endpoint_.set_request_handler(
      [this](const net::Envelope& env, net::Responder r) { handle_request(env, r); });
}

void LocalController::trace_event(std::string_view kind, std::string_view detail) {
  if (trace_) trace_->record(name(), kind, detail);
}

void LocalController::start() {
  state_ = State::kDiscovering;
  host_.set_power_state(now(), PowerState::kOn);
  endpoint_.network().join_group(gl_group_, endpoint_.address());
  start_timers();
  trace_event("lc.start");
}

void LocalController::start_timers() {
  every(config_.lc_heartbeat_period, [this] {
    send_heartbeat();
    return true;
  });
  every(config_.lc_monitor_period, [this] {
    send_monitor_data();
    return true;
  });
  every(config_.anomaly_check_period, [this] {
    check_anomalies();
    return true;
  });
  every(config_.lc_heartbeat_period, [this] {
    check_gm_liveness();
    return true;
  });
}

// --- self-organization -------------------------------------------------------

void LocalController::handle_oneway(const net::Envelope& env) {
  if (const auto* gl_hb = net::msg_cast<GlHeartbeat>(env.payload)) {
    handle_gl_heartbeat(*gl_hb);
    return;
  }
  if (net::msg_cast<GmHeartbeat>(env.payload) != nullptr) {
    handle_gm_heartbeat();
    return;
  }
  if (net::msg_cast<GmResign>(env.payload) != nullptr) {
    if (state_ == State::kAssigned) become_discovering("gm resigned");
    return;
  }
  if (const auto* stop = net::msg_cast<StopVmRequest>(env.payload)) {
    // StopVm is authority-bearing: a deposed GM must not kill VMs the
    // successor now manages. One-way, so a stale sender gets no error reply —
    // it learns of its demotion from its next request/response exchange.
    if (!gm_fence_.admit(env.epoch)) {
      bump("fence.rejected");
      trace_event("lc.fence_rejected", "stop_vm epoch=" + std::to_string(env.epoch));
      return;
    }
    gm_fence_.note_applied(env.epoch);
    if (serving()) terminate_vm(stop->vm);
    return;
  }
}

void LocalController::handle_gl_heartbeat(const GlHeartbeat& hb) {
  // Ignore heartbeats from a deposed GL so a healed partition cannot steer
  // discovering LCs back to the stale leader.
  if (hb.epoch != 0 && hb.epoch < gl_epoch_seen_) return;
  gl_epoch_seen_ = std::max(gl_epoch_seen_, hb.epoch);
  gl_ = hb.gl;
  if (state_ != State::kDiscovering) return;
  state_ = State::kJoining;
  request_assignment();
}

void LocalController::request_assignment() {
  if (state_ != State::kJoining || !serving()) return;
  auto req = std::make_shared<AssignLcRequest>();
  req->lc = endpoint_.address();
  req->capacity = host_.capacity();
  endpoint_.call(gl_, req, config_.rpc_timeout,
                 [this](bool ok, const net::MsgPtr& reply) {
    const auto* resp = ok ? net::msg_cast<AssignLcResponse>(reply) : nullptr;
    if (resp == nullptr || !resp->ok) {
      // GL unreachable or no GM available yet: go back to listening.
      become_discovering("assignment failed");
      return;
    }
    join_gm(resp->gm);
  });
}

void LocalController::join_gm(net::Address gm) {
  auto req = std::make_shared<LcJoinRequest>();
  req->lc = endpoint_.address();
  req->capacity = host_.capacity();
  // Mint a fresh lease for this GM. Raising our high-water immediately
  // fences off whichever GM held the previous lease, even if this join's
  // response is lost in transit.
  req->lease_epoch = ++lease_counter_;
  gm_fence_.high_water = lease_counter_;
  endpoint_.call(gm, req, config_.rpc_timeout,
                 [this, gm](bool ok, const net::MsgPtr& reply) {
    const auto* resp = ok ? net::msg_cast<LcJoinResponse>(reply) : nullptr;
    if (resp == nullptr || !resp->ok) {
      become_discovering("join rejected");
      return;
    }
    gm_ = gm;
    gm_group_ = resp->heartbeat_group;
    state_ = State::kAssigned;
    last_gm_heartbeat_ = now();
    endpoint_.network().leave_group(gl_group_, endpoint_.address());
    endpoint_.network().join_group(gm_group_, endpoint_.address());
    trace_event("lc.joined");
    // Push a first monitoring sample so the GM can schedule onto us at once.
    send_monitor_data();
  });
}

void LocalController::become_discovering(const char* reason) {
  if (state_ == State::kStopped) return;
  trace_event("lc.rejoin", reason);
  if (gm_group_ != 0) endpoint_.network().leave_group(gm_group_, endpoint_.address());
  gm_ = net::kNullAddress;
  gm_group_ = 0;
  state_ = State::kDiscovering;
  endpoint_.network().join_group(gl_group_, endpoint_.address());
}

void LocalController::handle_gm_heartbeat() {
  if (state_ == State::kAssigned) last_gm_heartbeat_ = now();
}

// --- maintenance (rolling upgrades) ------------------------------------------

void LocalController::begin_drain() {
  if (draining_ || state_ == State::kStopped) return;
  draining_ = true;
  bump("lc.drains");
  trace_event("lc.draining");
  // Push the flag to the GM immediately so its next placement skips us
  // rather than waiting out a monitor period.
  send_monitor_data();
}

void LocalController::cancel_drain() {
  if (!draining_) return;
  draining_ = false;
  trace_event("lc.drain_cancelled");
  if (state_ == State::kAssigned && serving()) send_monitor_data();
}

void LocalController::check_gm_liveness() {
  if (state_ != State::kAssigned || !serving()) return;
  const sim::Time window =
      config_.gm_heartbeat_period * config_.heartbeat_timeout_factor;
  if (now() - last_gm_heartbeat_ > window) {
    become_discovering("gm heartbeat timeout");
  }
}

// --- monitoring ---------------------------------------------------------------

void LocalController::send_heartbeat() {
  if (state_ != State::kAssigned || !serving()) return;
  bump("lc.heartbeats");
  auto hb = net::make_message<LcHeartbeat>();
  hb->lc = endpoint_.address();
  endpoint_.send(gm_, hb);
}

void LocalController::send_monitor_data() {
  host_.touch(now());  // keep the energy meter tracking the current draw
  if (state_ != State::kAssigned || !serving()) return;
  bump("lc.monitor_reports");
  auto data = net::make_message<LcMonitorData>();
  data->lc = endpoint_.address();
  data->capacity = host_.capacity();
  data->reserved = host_.reserved();
  // Under CPU steal the node *delivers* only (1-steal) of what its VMs
  // consume — the monitoring stream under-reports exactly the way a stolen
  // node's perf counters do, which is what makes gray failures hard to see.
  data->used = host_.used(now()).scaled(1.0 - cpu_steal_);
  for (const auto& [id, vm] : host_.vms()) {
    const auto meta = vm_meta_.find(id);
    const bool migrating = meta != vm_meta_.end() && meta->second.migrating;
    data->vms.push_back(LcMonitorData::VmUsage{id, vm->spec().requested, vm->used(now()),
                                               migrating, vm->spec().mem_profile,
                                               host_.vm_penalty(id)});
  }
  // Socketed hosts report per-socket shared-resource pressure so the GM can
  // score placements; flat hosts add nothing to the wire.
  if (!host_.topology().flat()) {
    for (std::size_t s = 0; s < host_.socket_count(); ++s) {
      const auto& spec = host_.topology().sockets[s];
      const auto pressure = host_.socket_pressure(s);
      data->sockets.push_back(LcMonitorData::SocketReport{
          spec.llc_mb, spec.mem_bw_gbps, pressure.llc_demand_mb,
          pressure.bw_demand_gbps, pressure.vms});
    }
  }
  data->draining = draining_;
  endpoint_.send(gm_, data);
}

void LocalController::check_anomalies() {
  if (state_ != State::kAssigned || !serving()) return;
  const double utilization = host_.utilization(now());
  // Sustained-interference tracking runs outside the rate limiter so the
  // sustain window measures real time spent below the threshold.
  double worst = 1.0;
  if (config_.interference_aware) {
    worst = host_.worst_penalty();
    if (worst < config_.interference_relocation_threshold) {
      if (interference_low_since_ < 0.0) interference_low_since_ = now();
    } else {
      interference_low_since_ = -1.0;
    }
  }
  // Rate-limit anomaly reports: one per two check periods.
  if (now() - last_anomaly_ < 2.0 * config_.anomaly_check_period) return;
  AnomalyEvent::Kind kind;
  double value = utilization;
  if (utilization > config_.overload_threshold) {
    kind = AnomalyEvent::Kind::kOverload;
  } else if (utilization < config_.underload_threshold && host_.vm_count() > 0) {
    kind = AnomalyEvent::Kind::kUnderload;
  } else if (interference_low_since_ >= 0.0 &&
             now() - interference_low_since_ >= config_.interference_sustain_s) {
    // Capacity anomalies take precedence: migrating for interference while
    // overloaded would fight the overload relocation.
    kind = AnomalyEvent::Kind::kInterference;
    value = worst;
  } else {
    return;
  }
  last_anomaly_ = now();
  auto event = std::make_shared<AnomalyEvent>();
  event->lc = endpoint_.address();
  event->kind = kind;
  event->utilization = value;
  endpoint_.send(gm_, event);
  bump("lc.anomalies");
  trace_event(kind == AnomalyEvent::Kind::kOverload    ? "lc.overload"
              : kind == AnomalyEvent::Kind::kUnderload ? "lc.underload"
                                                       : "lc.interference");
}

// --- command handling -----------------------------------------------------------

void LocalController::reject_stale(std::uint64_t epoch, net::Responder responder) {
  bump("fence.rejected");
  trace_event("lc.fence_rejected", "epoch=" + std::to_string(epoch));
  auto err = std::make_shared<StaleEpochError>();
  err->observed = gm_fence_.high_water;
  responder.respond(err);
}

void LocalController::handle_request(const net::Envelope& env, net::Responder responder) {
  // GM-authority commands (start / migrate / suspend / wakeup / power) carry
  // the sender's lease epoch; a deposed GM is turned away with a typed error
  // so it steps back instead of mutating VMs a successor now manages. Adopt
  // is LC-to-LC traffic and stays outside the lease domain (epoch 0).
  const bool authority = net::msg_cast<StartVmRequest>(env.payload) != nullptr ||
                         net::msg_cast<MigrateVmRequest>(env.payload) != nullptr ||
                         net::msg_cast<SuspendRequest>(env.payload) != nullptr ||
                         net::msg_cast<WakeupRequest>(env.payload) != nullptr;
  if (authority && !gm_fence_.admit(env.epoch)) {
    reject_stale(env.epoch, responder);
    return;
  }
  if (authority) gm_fence_.note_applied(env.epoch);
  // A suspended node services nothing but the wake-on-LAN packet.
  if (!serving()) {
    if (net::msg_cast<WakeupRequest>(env.payload) != nullptr) handle_wakeup(responder);
    return;
  }
  if (const auto* start = net::msg_cast<StartVmRequest>(env.payload)) {
    handle_start_vm(*start, env.ctx, responder);
  } else if (const auto* migrate = net::msg_cast<MigrateVmRequest>(env.payload)) {
    handle_migrate(*migrate, responder);
  } else if (const auto* adopt = net::msg_cast<AdoptVmRequest>(env.payload)) {
    handle_adopt(*adopt, responder);
  } else if (net::msg_cast<SuspendRequest>(env.payload) != nullptr) {
    handle_suspend(responder);
  } else if (net::msg_cast<WakeupRequest>(env.payload) != nullptr) {
    auto resp = std::make_shared<WakeupResponse>();
    resp->ok = true;  // already awake
    responder.respond(resp);
  } else if (net::msg_cast<ProbeRequest>(env.payload) != nullptr) {
    // Gray-failure latency probe: answer after this node's *effective*
    // service time, so the GM's peer-relative scorer observes the real
    // slowdown a gray node imposes on every operation.
    after(config_.gray.probe_service_time * effective_slowdown(), [responder] {
      responder.respond(std::make_shared<ProbeResponse>());
    });
  }
}

void LocalController::set_running_vms(double count) {
  // Mirror into the cluster-wide gauge before the local accumulator moves.
  telemetry::gauge_add(tel(), "cluster.running_vms", count - running_vms_.current());
  running_vms_.set(now(), count);
}

void LocalController::handle_start_vm(const StartVmRequest& req,
                                      telemetry::SpanContext ctx,
                                      net::Responder responder) {
  const auto span = telemetry::begin_span(tel(), ctx, "lc.start_vm", name(),
                                          "vm=" + std::to_string(req.vm.id));
  // A draining node accepts no new placements (it is emptying out for a
  // restart); in-flight outbound migrations still complete.
  if (draining_ || !host_.can_place(req.vm.requested)) {
    bump("lc.starts_rejected");
    telemetry::end_span(tel(), span, "rejected");
    auto resp = std::make_shared<StartVmResponse>();
    resp->ok = false;
    responder.respond(resp);
    return;
  }
  // Reserve capacity immediately (kBooting), go Running after the boot delay.
  hypervisor::VmSpec spec;
  spec.id = req.vm.id;
  spec.requested = req.vm.requested;
  spec.memory_mb = req.vm.memory_mb;
  spec.dirty_rate_mbps = req.vm.dirty_rate_mbps;
  spec.mem_profile = req.vm.mem_profile;
  hypervisor::Vm& vm = host_.place(spec, make_trace(req.vm.trace));
  vm.set_state(hypervisor::VmState::kBooting);
  VmMeta meta;
  meta.descriptor = req.vm;
  vm_meta_[req.vm.id] = meta;

  const VmId id = req.vm.id;
  after(config_.vm_boot_time * effective_slowdown(), [this, id, span, responder] {
    hypervisor::Vm* booted = host_.find(id);
    if (booted == nullptr) {  // evicted meanwhile
      telemetry::end_span(tel(), span, "evicted");
      return;
    }
    booted->set_state(hypervisor::VmState::kRunning);
    set_running_vms(running_vms_.current() + 1.0);
    host_.touch(now());
    auto& meta_ref = vm_meta_[id];
    if (meta_ref.descriptor.lifetime_s > 0.0) {
      // Contention stretches runtime: a VM delivering a fraction `penalty`
      // of its throughput needs 1/penalty the wall time to finish the same
      // work. Exactly 1.0 (and a no-op) for unprofiled or flat deployments.
      // CPU steal compounds the same way: (1-steal) delivered cycles per
      // second means 1/(1-steal) the wall time.
      const double stretched = meta_ref.descriptor.lifetime_s / host_.vm_penalty(id) /
                               std::max(1e-6, 1.0 - cpu_steal_);
      meta_ref.stop_at = now() + stretched;
      meta_ref.stop_event = after(stretched, [this, id] { terminate_vm(id); });
    }
    auto resp = std::make_shared<StartVmResponse>();
    resp->ok = true;
    responder.respond(resp);
    bump("lc.vms_started");
    telemetry::end_span(tel(), span, "ok");
    trace_event("lc.vm_started");
  });
}

void LocalController::terminate_vm(hypervisor::VmId vm) {
  auto evicted = host_.evict(vm);
  if (evicted == nullptr) return;
  if (evicted->state() == hypervisor::VmState::kRunning ||
      evicted->state() == hypervisor::VmState::kMigrating) {
    set_running_vms(std::max(0.0, running_vms_.current() - 1.0));
  }
  vm_meta_.erase(vm);
  host_.touch(now());
  auto done = std::make_shared<VmTerminated>();
  done->lc = endpoint_.address();
  done->vm = vm;
  endpoint_.send(gm_, done);
  bump("lc.vms_terminated");
  trace_event("lc.vm_terminated");
}

void LocalController::handle_migrate(const MigrateVmRequest& req, net::Responder responder) {
  hypervisor::Vm* vm = host_.find(req.vm);
  auto resp = std::make_shared<MigrateVmResponse>();
  const auto meta_it = vm_meta_.find(req.vm);
  if (vm == nullptr || meta_it == vm_meta_.end() || meta_it->second.migrating ||
      vm->state() != hypervisor::VmState::kRunning) {
    resp->ok = false;
    responder.respond(resp);
    return;
  }
  resp->ok = true;
  responder.respond(resp);  // acknowledged: migration accepted

  meta_it->second.migrating = true;
  vm->set_state(hypervisor::VmState::kMigrating);
  // The migration link carries one transfer at a time; later requests queue.
  migration_queue_.emplace_back(req.vm, req.destination);
  if (!migration_active_) start_next_migration();
}

void LocalController::start_next_migration() {
  while (!migration_queue_.empty()) {
    const auto [vm, dest] = migration_queue_.front();
    migration_queue_.pop_front();
    if (host_.find(vm) == nullptr) continue;  // terminated while queued
    migration_active_ = true;
    run_migration(vm, dest);
    return;
  }
  migration_active_ = false;
}

void LocalController::run_migration(hypervisor::VmId id, net::Address dest) {
  hypervisor::Vm* vm = host_.find(id);
  if (vm == nullptr) {
    start_next_migration();
    return;
  }
  const auto cost =
      migration_model_.cost(vm->spec().memory_mb, vm->spec().dirty_rate_mbps);
  bump("lc.migrations_started");
  trace_event("lc.migration_start");

  // Pre-copy runs for cost.total_s (stretched on a gray node — a fail-slow
  // NIC/hypervisor transfers at a fraction of the modeled rate); then the
  // destination adopts the VM. The actual/expected ratio rides MigrationDone
  // to the GM as a slowdown sample.
  const double actual_s = cost.total_s * effective_slowdown();
  after(actual_s, [this, id, dest, cost, actual_s] {
    const auto it = vm_meta_.find(id);
    hypervisor::Vm* source_vm = host_.find(id);
    if (it == vm_meta_.end() || source_vm == nullptr) {
      start_next_migration();  // the VM died mid-transfer; free the link
      return;
    }

    auto adopt = std::make_shared<AdoptVmRequest>();
    adopt->vm = it->second.descriptor;
    adopt->downtime_s = cost.downtime_s;
    adopt->remaining_lifetime_s =
        it->second.stop_at > 0.0 ? std::max(0.0, it->second.stop_at - now()) : 0.0;
    // The adopt confirmation is the commit point of the migration protocol:
    // losing it would leave the destination running the VM while the source
    // reverts to Running (two instances). Retry through transient loss; the
    // destination's adopt handler is idempotent.
    net::RetryPolicy adopt_policy;
    adopt_policy.max_attempts = 3;
    adopt_policy.base_backoff = 0.25;
    endpoint_.call_with_retries(dest, adopt, config_.rpc_timeout, adopt_policy,
                   [this, id, dest, cost, actual_s](bool ok, const net::MsgPtr& reply) {
      const auto* resp2 = ok ? net::msg_cast<AdoptVmResponse>(reply) : nullptr;
      const bool adopted = resp2 != nullptr && resp2->ok;
      auto done = std::make_shared<MigrationDone>();
      done->vm = id;
      done->from = endpoint_.address();
      done->to = dest;
      done->ok = adopted;
      done->duration_s = actual_s;
      done->expected_s = cost.total_s;
      const auto meta2 = vm_meta_.find(id);
      hypervisor::Vm* vm2 = host_.find(id);
      if (adopted) {
        if (vm2 != nullptr) {
          host_.evict(id);
          set_running_vms(std::max(0.0, running_vms_.current() - 1.0));
          host_.touch(now());
        }
        if (meta2 != vm_meta_.end()) {
          if (meta2->second.stop_event != 0) cancel(meta2->second.stop_event);
          vm_meta_.erase(meta2);
        }
        bump("lc.migrations_done");
        trace_event("lc.migration_done");
      } else {
        // Abort: the VM keeps running here.
        if (vm2 != nullptr) vm2->set_state(hypervisor::VmState::kRunning);
        if (meta2 != vm_meta_.end()) meta2->second.migrating = false;
        bump("lc.migrations_failed");
        trace_event("lc.migration_failed");
      }
      endpoint_.send(gm_, done);
      start_next_migration();  // the link is free again
    });
  });
}

void LocalController::handle_adopt(const AdoptVmRequest& req, net::Responder responder) {
  auto resp = std::make_shared<AdoptVmResponse>();
  // Idempotency: if the VM already lives here, a previous adopt succeeded and
  // only the confirmation was lost. Re-ack so the retrying source releases
  // its copy instead of reverting it to Running (a duplicate instance).
  if (host_.find(req.vm.id) != nullptr) {
    resp->ok = true;
    responder.respond(resp);
    return;
  }
  // Refuse new inbound migrations while draining: the source aborts cleanly
  // and keeps its copy running (the migration protocol's failure path).
  if (draining_ || !host_.can_place(req.vm.requested)) {
    resp->ok = false;
    responder.respond(resp);
    return;
  }
  hypervisor::VmSpec spec;
  spec.id = req.vm.id;
  spec.requested = req.vm.requested;
  spec.memory_mb = req.vm.memory_mb;
  spec.dirty_rate_mbps = req.vm.dirty_rate_mbps;
  spec.mem_profile = req.vm.mem_profile;
  hypervisor::Vm& vm = host_.place(spec, make_trace(req.vm.trace));
  vm.set_state(hypervisor::VmState::kRunning);
  VmMeta meta;
  meta.descriptor = req.vm;
  if (req.remaining_lifetime_s > 0.0) {
    // Re-stretch against the contention on the new host (see handle_start_vm).
    const double stretched = req.remaining_lifetime_s / host_.vm_penalty(req.vm.id);
    meta.stop_at = now() + stretched;
    const VmId id = req.vm.id;
    meta.stop_event = after(stretched, [this, id] { terminate_vm(id); });
  }
  vm_meta_[req.vm.id] = meta;
  set_running_vms(running_vms_.current() + 1.0);
  downtime_accum_ += req.downtime_s;  // stop-and-copy pause costs useful work
  host_.touch(now());
  resp->ok = true;
  responder.respond(resp);
  bump("lc.vms_adopted");
  trace_event("lc.vm_adopted");
}

// --- energy management -----------------------------------------------------------

void LocalController::handle_suspend(net::Responder responder) {
  auto resp = std::make_shared<SuspendResponse>();
  if (!host_.idle() || power_state() != PowerState::kOn) {
    resp->ok = false;
    responder.respond(resp);
    return;
  }
  resp->ok = true;
  responder.respond(resp);
  host_.set_power_state(now(), PowerState::kSuspending);
  bump("lc.suspends");
  trace_event("lc.suspending");
  after(host_.spec().power.suspend_latency_s, [this] {
    if (power_state() != PowerState::kSuspending) return;
    host_.set_power_state(now(), PowerState::kSuspended);
    trace_event("lc.suspended");
    if (pending_wakeup_) {
      pending_wakeup_ = false;
      if (wakeup_responder_) {
        auto r = *wakeup_responder_;
        wakeup_responder_.reset();
        finish_wakeup(r);
      }
    }
  });
}

void LocalController::handle_wakeup(net::Responder responder) {
  switch (power_state()) {
    case PowerState::kSuspended:
      finish_wakeup(responder);
      return;
    case PowerState::kSuspending:
      // Race: wake requested while saving context; resume right after.
      pending_wakeup_ = true;
      wakeup_responder_ = responder;
      return;
    case PowerState::kResuming:
      // Already waking: this duplicate request is answered on completion by
      // its own responder to keep the protocol simple.
      wakeup_responder_ = responder;
      return;
    default: {
      auto resp = std::make_shared<WakeupResponse>();
      resp->ok = true;
      responder.respond(resp);
      return;
    }
  }
}

void LocalController::finish_wakeup(net::Responder responder) {
  host_.set_power_state(now(), PowerState::kResuming);
  bump("lc.wakeups");
  trace_event("lc.resuming");
  after(host_.spec().power.resume_latency_s, [this, responder] {
    if (power_state() != PowerState::kResuming) return;
    host_.set_power_state(now(), PowerState::kOn);
    trace_event("lc.resumed");
    auto resp = std::make_shared<WakeupResponse>();
    resp->ok = true;
    responder.respond(resp);
    if (wakeup_responder_) {
      auto r = *wakeup_responder_;
      wakeup_responder_.reset();
      r.respond(resp);
    }
    // Re-announce ourselves so the GM can schedule onto us immediately.
    send_monitor_data();
    send_heartbeat();
  });
}

// --- work accounting / fault injection ----------------------------------------

double LocalController::total_work(sim::Time t) const {
  return running_vms_.integral(t) - downtime_accum_;
}

void LocalController::fail() {
  if (state_ == State::kStopped) return;
  trace_event("lc.fail");
  // Hosted VMs die with the node.
  set_running_vms(0.0);
  for (const auto id : host_.vm_ids()) host_.evict(id);
  vm_meta_.clear();
  migration_queue_.clear();
  migration_active_ = false;
  host_.set_power_state(now(), PowerState::kOff);
  if (gm_group_ != 0) endpoint_.network().leave_group(gm_group_, endpoint_.address());
  endpoint_.network().leave_group(gl_group_, endpoint_.address());
  endpoint_.go_down();
  state_ = State::kStopped;
  crash();
}

void LocalController::restart() {
  if (state_ != State::kStopped) return;
  recover();
  endpoint_.go_up();
  gm_ = net::kNullAddress;
  gm_group_ = 0;
  draining_ = false;  // a restarted node serves fresh traffic again
  pending_wakeup_ = false;
  wakeup_responder_.reset();
  host_.set_power_state(now(), PowerState::kBooting);
  trace_event("lc.restart");
  after(host_.spec().power.boot_latency_s, [this] {
    host_.set_power_state(now(), PowerState::kOn);
    state_ = State::kDiscovering;
    endpoint_.network().join_group(gl_group_, endpoint_.address());
    start_timers();
    trace_event("lc.booted");
  });
}

}  // namespace snooze::core
