// Local Controller (LC) — paper §II.A.
//
// One LC controls each physical node: it enforces VM and host management
// commands from its Group Manager (start / migrate / suspend / wakeup),
// reports monitoring data, detects local overload/underload anomalies, and
// self-organizes into the hierarchy by listening for GL heartbeats,
// requesting a GM assignment from the GL, and joining that GM.
#pragma once

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "core/config.hpp"
#include "core/fence.hpp"
#include "core/messages.hpp"
#include "hypervisor/host.hpp"
#include "hypervisor/migration.hpp"
#include "net/rpc.hpp"
#include "sim/actor.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace snooze::core {

class LocalController final : public sim::Actor {
 public:
  LocalController(sim::Engine& engine, net::Network& network,
                  hypervisor::HostSpec host_spec, SnoozeConfig config,
                  net::GroupId gl_heartbeat_group, sim::Trace* trace = nullptr);

  /// Begin hierarchy discovery (listen for GL heartbeats).
  void start();

  // --- introspection --------------------------------------------------------
  [[nodiscard]] net::Address address() const { return endpoint_.address(); }
  [[nodiscard]] const hypervisor::Host& host() const { return host_; }
  [[nodiscard]] bool assigned() const { return state_ == State::kAssigned; }
  [[nodiscard]] net::Address gm() const { return gm_; }
  [[nodiscard]] std::size_t vm_count() const { return host_.vm_count(); }
  [[nodiscard]] energy::PowerState power_state() const { return host_.power_state(); }
  [[nodiscard]] bool suspended() const {
    return power_state() == energy::PowerState::kSuspended;
  }
  /// Lease epoch of the GM currently holding authority over this node.
  [[nodiscard]] std::uint64_t lease_epoch() const { return gm_fence_.high_water; }
  /// Highest GL election epoch observed in heartbeats.
  [[nodiscard]] std::uint64_t gl_epoch_seen() const { return gl_epoch_seen_; }
  /// GM-domain commands this LC rejected as stale.
  [[nodiscard]] std::uint64_t fence_rejected() const { return gm_fence_.rejected; }
  /// Tripwire: stale GM-domain commands that reached the apply path (must
  /// stay 0; the chaos invariant checker flags any increase).
  [[nodiscard]] std::uint64_t stale_accepts() const { return gm_fence_.stale_accepts; }
  /// Age of the newest GM heartbeat as seen at time t; 0 while not assigned
  /// (an unassigned LC has no liveness expectation to be stale against).
  [[nodiscard]] sim::Time gm_heartbeat_age(sim::Time t) const {
    return state_ == State::kAssigned ? t - last_gm_heartbeat_ : 0.0;
  }

  // --- maintenance (rolling upgrades) ---------------------------------------
  /// Software version this node runs; bumped by the upgrade orchestrator
  /// across a drain-and-restart cycle.
  [[nodiscard]] std::uint32_t software_version() const { return software_version_; }
  void set_software_version(std::uint32_t v) { software_version_ = v; }

  /// Enter drain mode: no new placements or inbound adoptions are accepted,
  /// but in-flight outbound migrations run to completion. Cleared on restart.
  void begin_drain();
  void cancel_drain();
  [[nodiscard]] bool draining() const { return draining_; }
  /// Drained = nothing left to hand off: no hosted VMs and the migration
  /// link is quiet. A crashed node is trivially drained.
  [[nodiscard]] bool drained() const {
    return state_ == State::kStopped ||
           (host_.vm_count() == 0 && !migration_active_ && migration_queue_.empty());
  }

  /// Useful work accrued by hosted VMs: running-VM-seconds minus migration
  /// downtime. The "application performance" proxy of experiment E4.
  [[nodiscard]] double total_work(sim::Time t) const;

  /// Energy consumed by the node so far.
  [[nodiscard]] double energy_joules(sim::Time t) const {
    return host_.energy_joules(t);
  }

  // --- fault injection --------------------------------------------------------
  /// Hard-crash the node: hosted VMs are terminated (paper §II.E).
  void fail();
  /// Power the node back on as a fresh, empty LC; it rejoins the hierarchy.
  void restart();

  // --- gray (fail-slow) injection ---------------------------------------------
  /// Service-time stretch: a factor > 1 multiplies this node's operation
  /// latencies (VM boot, migration pre-copy, probe turnaround) while
  /// heartbeats keep flowing — the classic fail-slow signature. Not reset by
  /// restart(): the chaos injector owns the window and heals it explicitly.
  void set_service_stretch(double factor) { service_stretch_ = factor; }
  [[nodiscard]] double service_stretch() const { return service_stretch_; }
  /// CPU steal in [0,1): the fraction of cycles a noisy co-tenant (or a
  /// failing hypervisor) takes. Delivered usage shrinks by (1-steal) and VM
  /// runtimes stretch by 1/(1-steal).
  void set_cpu_steal(double frac) { cpu_steal_ = frac; }
  [[nodiscard]] double cpu_steal() const { return cpu_steal_; }
  /// Combined slowdown applied to service latencies.
  [[nodiscard]] double effective_slowdown() const {
    return service_stretch_ / std::max(1e-6, 1.0 - cpu_steal_);
  }

 private:
  enum class State { kStopped, kDiscovering, kJoining, kAssigned };

  struct VmMeta {
    VmDescriptor descriptor;
    sim::Time stop_at = 0.0;  ///< absolute termination time (0 = unbounded)
    sim::EventId stop_event = 0;
    bool migrating = false;
  };

  void handle_oneway(const net::Envelope& env);
  void handle_request(const net::Envelope& env, net::Responder responder);
  /// Reject a GM command whose epoch is below the current lease.
  void reject_stale(std::uint64_t epoch, net::Responder responder);
  void handle_gl_heartbeat(const GlHeartbeat& hb);
  void handle_gm_heartbeat();
  void request_assignment();
  void join_gm(net::Address gm);
  void become_discovering(const char* reason);
  void start_timers();
  void check_gm_liveness();
  void send_heartbeat();
  void send_monitor_data();
  void check_anomalies();

  void handle_start_vm(const StartVmRequest& req, telemetry::SpanContext ctx,
                       net::Responder responder);
  void handle_migrate(const MigrateVmRequest& req, net::Responder responder);
  void start_next_migration();
  void run_migration(hypervisor::VmId vm, net::Address dest);
  void handle_adopt(const AdoptVmRequest& req, net::Responder responder);
  void handle_suspend(net::Responder responder);
  void handle_wakeup(net::Responder responder);
  void finish_wakeup(net::Responder responder);
  void terminate_vm(hypervisor::VmId vm);
  void set_running_vms(double count);

  [[nodiscard]] bool serving() const {
    return power_state() == energy::PowerState::kOn;
  }
  void trace_event(std::string_view kind, std::string_view detail = {});

  /// Telemetry sink shared by every component on this network (may be null).
  [[nodiscard]] telemetry::Telemetry* tel() const {
    return endpoint_.network().telemetry();
  }
  void bump(std::string_view counter) { telemetry::count(tel(), counter); }

  net::RpcEndpoint endpoint_;
  hypervisor::Host host_;
  SnoozeConfig config_;
  net::GroupId gl_group_;
  sim::Trace* trace_;

  State state_ = State::kStopped;
  bool draining_ = false;
  std::uint32_t software_version_ = 1;
  net::Address gl_ = net::kNullAddress;
  net::Address gm_ = net::kNullAddress;
  /// Fence for the GM authority domain. The LC mints a fresh lease epoch on
  /// every join; commands stamped with an older lease come from a GM that
  /// lost this node (failover, rejoin) and are rejected.
  EpochFence gm_fence_;
  /// Monotone lease mint. Never reset — survives restarts so a GM from a
  /// previous incarnation can never outrank the current one.
  std::uint64_t lease_counter_ = 0;
  std::uint64_t gl_epoch_seen_ = 0;
  net::GroupId gm_group_ = 0;
  sim::Time last_gm_heartbeat_ = 0.0;
  sim::Time last_anomaly_ = -1e9;
  /// When the worst VM multiplier first dipped below the relocation
  /// threshold (-1 while healthy). Drives the sustained-penalty anomaly.
  sim::Time interference_low_since_ = -1.0;
  hypervisor::MigrationModel migration_model_;
  double service_stretch_ = 1.0;  ///< gray-fault injection (1 = healthy)
  double cpu_steal_ = 0.0;        ///< gray-fault injection (0 = healthy)

  std::map<hypervisor::VmId, VmMeta> vm_meta_;
  util::TimeWeighted running_vms_;
  double downtime_accum_ = 0.0;
  bool pending_wakeup_ = false;
  std::optional<net::Responder> wakeup_responder_;

  // Outbound live migrations share the node's migration link: one transfer
  // at a time, later requests queue (accepted immediately, started when the
  // link frees up).
  bool migration_active_ = false;
  std::deque<std::pair<hypervisor::VmId, net::Address>> migration_queue_;
};

}  // namespace snooze::core
