// Overload / underload relocation planning (paper §II.C).
//
// Overload: "VMs must be relocated to a more lightly loaded node in order to
// mitigate performance degradation" — move the largest VMs off the hot node
// until its estimated utilization drops below the threshold.
// Underload: "it is beneficial to move away VMs to moderately loaded LCs in
// order to create enough idle-time to transition the underutilized LCs into
// a lower power state" — evacuate the cold node entirely, but only onto
// nodes that are neither underloaded themselves nor pushed into overload.
#pragma once

#include <vector>

#include "core/policies.hpp"

namespace snooze::core {

struct RelocationMove {
  VmId vm = hypervisor::kNullVm;
  Address from = net::kNullAddress;
  Address to = net::kNullAddress;
};

/// Estimated per-VM demand on the anomalous LC.
struct VmLoad {
  VmId vm = hypervisor::kNullVm;
  ResourceVector estimated;
  ResourceVector requested;
  /// Memory-subsystem profile (from the latest monitor report); absent for
  /// legacy VMs, which the interference planner then never selects.
  interference::MemProfile profile;
  /// Throughput multiplier the VM currently experiences on its host.
  double penalty = 1.0;
};

/// Plan moves off an overloaded LC. Targets are powered-on LCs ordered by
/// ascending utilization; reservation feasibility is respected. Returns an
/// empty plan when no target can absorb any VM.
///
/// `min_multiplier` (both planners): with interference management on, a
/// capacity move must not park a profiled VM where its predicted throughput
/// multiplier drops below this floor — the interference planner would
/// immediately relocate it away again and the two planners would ping-pong
/// the VM forever. 0 (the default) disables the guard.
std::vector<RelocationMove> plan_overload_relocation(
    const LcInfo& overloaded, const std::vector<VmLoad>& vms,
    const std::vector<LcInfo>& other_lcs, double overload_threshold,
    double min_multiplier = 0.0);

/// Plan the full evacuation of an underloaded LC onto moderately loaded
/// targets. Returns an empty plan unless *every* VM can be rehomed (partial
/// evacuation does not create idle time, so it is pointless).
std::vector<RelocationMove> plan_underload_relocation(
    const LcInfo& underloaded, const std::vector<VmLoad>& vms,
    const std::vector<LcInfo>& other_lcs, double underload_threshold,
    double overload_threshold, double min_multiplier = 0.0);

/// Plan a single targeted move off an LC suffering sustained memory-subsystem
/// interference: evict the most aggressive profiled VM (largest shared-
/// resource demand) to the feasible target where its predicted penalty is
/// smallest — and strictly better than what it suffers today, so the plan
/// never thrashes. At most one move: relieving the socket re-prices every
/// remaining multiplier, so further moves are planned on fresh reports.
std::vector<RelocationMove> plan_interference_relocation(
    const LcInfo& degraded, const std::vector<VmLoad>& vms,
    const std::vector<LcInfo>& other_lcs, double overload_threshold);

}  // namespace snooze::core
