// Overload / underload relocation planning (paper §II.C).
//
// Overload: "VMs must be relocated to a more lightly loaded node in order to
// mitigate performance degradation" — move the largest VMs off the hot node
// until its estimated utilization drops below the threshold.
// Underload: "it is beneficial to move away VMs to moderately loaded LCs in
// order to create enough idle-time to transition the underutilized LCs into
// a lower power state" — evacuate the cold node entirely, but only onto
// nodes that are neither underloaded themselves nor pushed into overload.
#pragma once

#include <vector>

#include "core/policies.hpp"

namespace snooze::core {

struct RelocationMove {
  VmId vm = hypervisor::kNullVm;
  Address from = net::kNullAddress;
  Address to = net::kNullAddress;
};

/// Estimated per-VM demand on the anomalous LC.
struct VmLoad {
  VmId vm = hypervisor::kNullVm;
  ResourceVector estimated;
  ResourceVector requested;
};

/// Plan moves off an overloaded LC. Targets are powered-on LCs ordered by
/// ascending utilization; reservation feasibility is respected. Returns an
/// empty plan when no target can absorb any VM.
std::vector<RelocationMove> plan_overload_relocation(
    const LcInfo& overloaded, const std::vector<VmLoad>& vms,
    const std::vector<LcInfo>& other_lcs, double overload_threshold);

/// Plan the full evacuation of an underloaded LC onto moderately loaded
/// targets. Returns an empty plan unless *every* VM can be rehomed (partial
/// evacuation does not create idle time, so it is pointless).
std::vector<RelocationMove> plan_underload_relocation(
    const LcInfo& underloaded, const std::vector<VmLoad>& vms,
    const std::vector<LcInfo>& other_lcs, double underload_threshold,
    double overload_threshold);

}  // namespace snooze::core
