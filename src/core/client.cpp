#include "core/client.hpp"

#include <algorithm>

namespace snooze::core {

Client::Client(sim::Engine& engine, net::Network& network,
               std::vector<net::Address> entry_points, SnoozeConfig config,
               std::string name, sim::Trace* trace)
    : sim::Actor(engine, std::move(name)),
      endpoint_(engine, network, network.allocate_address(), Actor::name()),
      entry_points_(std::move(entry_points)),
      config_(config),
      trace_(trace) {}

void Client::discover_gl(std::size_t ep_index, telemetry::SpanContext root,
                         std::function<void(net::Address)> cb) {
  if (entry_points_.empty() || ep_index >= entry_points_.size()) {
    cb(net::kNullAddress);
    return;
  }
  const net::Address ep = entry_points_[(next_ep_ + ep_index) % entry_points_.size()];
  auto query = std::make_shared<GlQueryRequest>();
  query->ctx = root;
  endpoint_.call(ep, std::move(query), config_.rpc_timeout,
                 [this, ep_index, root,
                  cb = std::move(cb)](bool ok, const net::MsgPtr& reply) {
    const auto* resp = ok ? net::msg_cast<GlQueryResponse>(reply) : nullptr;
    if (resp != nullptr && resp->ok) {
      cb(resp->gl);
      return;
    }
    discover_gl(ep_index + 1, root, cb);  // try the next replicated EP
  });
}

sim::Time Client::rediscover_backoff(int attempts_left) {
  // attempts_left counts down from max_attempts_, so the round number grows
  // as retries accumulate and the backoff stretches exponentially.
  const int round = std::max(1, max_attempts_ - attempts_left + 1);
  return round_policy_.backoff(round, engine().rng());
}

void Client::submit(const VmDescriptor& vm, SubmitCb cb) {
  ++submitted_;
  telemetry::count(tel(), "client.submissions");
  // Root of the submission's span tree: every hop this request takes
  // (EP query, GL dispatch, GM placement, LC start, each rpc attempt)
  // parents under this context.
  telemetry::SpanContext root;
  if (auto* t = tel()) {
    root = t->spans().begin(t->spans().new_trace(), 0, "client.submit", name(),
                            "vm=" + std::to_string(vm.id));
  }
  attempt(vm, now(), max_attempts_, root, std::move(cb));
}

void Client::attempt(VmDescriptor vm, sim::Time started, int attempts_left,
                     telemetry::SpanContext root, SubmitCb cb) {
  if (attempts_left <= 0) {
    ++failed_;
    telemetry::count(tel(), "client.failures");
    telemetry::end_span(tel(), root, "failed");
    if (trace_) trace_->record(name(), "client.submit_failed");
    if (cb) cb(false, net::kNullAddress, now() - started);
    return;
  }
  auto go = [this, vm, started, attempts_left, root, cb](net::Address gl) mutable {
    if (gl == net::kNullAddress) {
      // No GL known anywhere yet: back off and retry.
      after(rediscover_backoff(attempts_left),
            [this, vm, started, attempts_left, root, cb]() mutable {
        attempt(std::move(vm), started, attempts_left - 1, root, std::move(cb));
      });
      return;
    }
    cached_gl_ = gl;
    auto req = std::make_shared<SubmitVmRequest>();
    req->vm = vm;
    req->ctx = root;
    // Transient loss against a live GL is absorbed here (the GL dedups by VM
    // id); only after retries exhaust do we fall back to re-discovery.
    endpoint_.call_with_retries(
        gl, req, config_.submit_rpc_timeout, submit_policy_,
        [this, vm, started, attempts_left, root,
         cb](bool ok, const net::MsgPtr& reply) mutable {
      const auto* resp = ok ? net::msg_cast<SubmitVmResponse>(reply) : nullptr;
      if (resp != nullptr && resp->ok) {
        ++succeeded_;
        const sim::Time latency = now() - started;
        latencies_.add(latency);
        telemetry::count(tel(), "client.successes");
        telemetry::observe(tel(), "client.submit_latency", latency, root,
                           now());
        telemetry::end_span(tel(), root, "ok");
        if (cb) cb(true, resp->lc, latency);
        return;
      }
      // Submission failed (GL gone, no capacity, ...): re-discover + retry.
      cached_gl_ = net::kNullAddress;
      ++next_ep_;
      after(rediscover_backoff(attempts_left),
            [this, vm, started, attempts_left, root, cb]() mutable {
        attempt(std::move(vm), started, attempts_left - 1, root, std::move(cb));
      });
    });
  };
  if (cached_gl_ != net::kNullAddress) {
    go(cached_gl_);
  } else {
    discover_gl(0, root, std::move(go));
  }
}

void Client::submit_all(std::vector<VmDescriptor> vms, sim::Time inter_arrival,
                        std::function<void()> done) {
  auto outstanding = std::make_shared<std::size_t>(vms.size());
  if (vms.empty()) {
    if (done) done();
    return;
  }
  auto on_reply = [outstanding, done = std::move(done)](bool, net::Address, sim::Time) {
    if (--*outstanding == 0 && done) done();
  };
  for (std::size_t i = 0; i < vms.size(); ++i) {
    after(inter_arrival * static_cast<double>(i),
          [this, vm = vms[i], on_reply] { submit(vm, on_reply); });
  }
}

}  // namespace snooze::core
