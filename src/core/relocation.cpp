#include "core/relocation.hpp"

#include <algorithm>

namespace snooze::core {

namespace {

struct Target {
  LcInfo info;  // mutated as we tentatively assign VMs
};

std::vector<Target> sorted_targets(const std::vector<LcInfo>& lcs) {
  std::vector<Target> targets;
  targets.reserve(lcs.size());
  for (const LcInfo& lc : lcs) {
    if (lc.powered_on) targets.push_back(Target{lc});
  }
  std::stable_sort(targets.begin(), targets.end(), [](const Target& a, const Target& b) {
    return a.info.utilization() < b.info.utilization();
  });
  return targets;
}

bool would_overload(const Target& t, const ResourceVector& estimated,
                    double overload_threshold) {
  return (t.info.estimated_used + estimated).max_utilization(t.info.capacity) >
         overload_threshold;
}

/// True when landing `vm` on `t` would degrade it below `min_multiplier` —
/// i.e. the capacity planner would create the very contention the
/// interference planner relocates away from, and the two would ping-pong
/// the VM forever. Prices the incoming VM only (the aggregate socket demand
/// cannot attribute neighbor sensitivity); 0 disables the guard.
bool would_degrade(const Target& t, const VmLoad& vm, double min_multiplier) {
  if (min_multiplier <= 0.0 || !vm.profile.present()) return false;
  VmDescriptor descriptor;
  descriptor.id = vm.vm;
  descriptor.requested = vm.requested;
  descriptor.mem_profile = vm.profile;
  return 1.0 - predicted_penalty(descriptor, t.info) < min_multiplier;
}

/// Mirror the host's auto socket choice for a tentatively assigned VM so
/// subsequent candidates in the same plan price its pressure.
void book_profile(LcInfo& lc, const interference::MemProfile& profile) {
  if (!profile.present() || lc.sockets.empty()) return;
  std::size_t best = 0;
  double best_demand = 1e300;
  for (std::size_t s = 0; s < lc.sockets.size(); ++s) {
    const auto& sock = lc.sockets[s];
    const double demand = sock.llc_demand_mb / std::max(sock.llc_mb, 1e-9) +
                          sock.bw_demand_gbps / std::max(sock.mem_bw_gbps, 1e-9);
    if (demand < best_demand) {
      best_demand = demand;
      best = s;
    }
  }
  lc.sockets[best].llc_demand_mb += profile.llc_mb;
  lc.sockets[best].bw_demand_gbps += profile.bw_gbps;
  lc.sockets[best].vms += 1;
}

}  // namespace

std::vector<RelocationMove> plan_overload_relocation(const LcInfo& overloaded,
                                                     const std::vector<VmLoad>& vms,
                                                     const std::vector<LcInfo>& other_lcs,
                                                     double overload_threshold,
                                                     double min_multiplier) {
  std::vector<RelocationMove> plan;
  auto targets = sorted_targets(other_lcs);
  if (targets.empty() || vms.empty()) return plan;

  // Biggest VMs first: fewest migrations to get below the threshold.
  std::vector<VmLoad> ordered = vms;
  std::stable_sort(ordered.begin(), ordered.end(), [](const VmLoad& a, const VmLoad& b) {
    return a.estimated.l1_norm() > b.estimated.l1_norm();
  });

  ResourceVector residual_used = overloaded.estimated_used;
  for (const VmLoad& vm : ordered) {
    if (residual_used.max_utilization(overloaded.capacity) <= overload_threshold) break;
    for (Target& t : targets) {
      if (!t.info.fits(vm.requested)) continue;
      if (would_overload(t, vm.estimated, overload_threshold)) continue;
      if (would_degrade(t, vm, min_multiplier)) continue;
      plan.push_back(RelocationMove{vm.vm, overloaded.lc, t.info.lc});
      t.info.reserved += vm.requested;
      t.info.estimated_used += vm.estimated;
      t.info.vm_count += 1;
      book_profile(t.info, vm.profile);
      residual_used -= vm.estimated;
      break;
    }
  }
  if (residual_used.max_utilization(overloaded.capacity) >
          overload_threshold &&
      plan.empty()) {
    return {};  // nothing helped; don't thrash
  }
  return plan;
}

std::vector<RelocationMove> plan_underload_relocation(const LcInfo& underloaded,
                                                      const std::vector<VmLoad>& vms,
                                                      const std::vector<LcInfo>& other_lcs,
                                                      double underload_threshold,
                                                      double overload_threshold,
                                                      double min_multiplier) {
  std::vector<RelocationMove> plan;
  if (vms.empty()) return plan;

  auto targets = sorted_targets(other_lcs);
  // Prefer *moderately* loaded targets: drop peers that are themselves
  // underloaded (packing onto them would just move the problem) unless
  // nothing else exists.
  std::vector<Target> moderate;
  for (const Target& t : targets) {
    if (t.info.utilization() > underload_threshold) moderate.push_back(t);
  }
  if (moderate.empty()) moderate = targets;
  // Fill the most-loaded moderate target first to concentrate VMs.
  std::stable_sort(moderate.begin(), moderate.end(), [](const Target& a, const Target& b) {
    return a.info.utilization() > b.info.utilization();
  });

  std::vector<VmLoad> ordered = vms;
  std::stable_sort(ordered.begin(), ordered.end(), [](const VmLoad& a, const VmLoad& b) {
    return a.estimated.l1_norm() > b.estimated.l1_norm();
  });

  std::vector<bool> receives(moderate.size(), false);
  for (const VmLoad& vm : ordered) {
    bool placed = false;
    for (std::size_t i = 0; i < moderate.size(); ++i) {
      Target& t = moderate[i];
      if (t.info.lc == underloaded.lc) continue;
      if (!t.info.fits(vm.requested)) continue;
      if (would_overload(t, vm.estimated, overload_threshold)) continue;
      if (would_degrade(t, vm, min_multiplier)) continue;
      plan.push_back(RelocationMove{vm.vm, underloaded.lc, t.info.lc});
      t.info.reserved += vm.requested;
      t.info.estimated_used += vm.estimated;
      t.info.vm_count += 1;
      book_profile(t.info, vm.profile);
      receives[i] = true;
      placed = true;
      break;
    }
    if (!placed) return {};  // full evacuation impossible -> do nothing
  }
  // Anti-ping-pong guard: the evacuation must leave every receiving target
  // genuinely non-underloaded, otherwise the same VMs would immediately
  // trigger the next underload event on their new home and bounce forever.
  for (std::size_t i = 0; i < moderate.size(); ++i) {
    if (receives[i] &&
        moderate[i].info.utilization() <= underload_threshold) {
      return {};
    }
  }
  return plan;
}

std::vector<RelocationMove> plan_interference_relocation(const LcInfo& degraded,
                                                         const std::vector<VmLoad>& vms,
                                                         const std::vector<LcInfo>& other_lcs,
                                                         double overload_threshold) {
  // The noisiest profiled VM: largest shared-resource demand, weighted the
  // same way the degradation model weights overcommit (LLC 1.5x).
  const VmLoad* victim = nullptr;
  double victim_noise = 0.0;
  for (const VmLoad& vm : vms) {
    if (!vm.profile.present()) continue;
    const double noise = 1.5 * vm.profile.llc_mb + vm.profile.bw_gbps;
    if (victim == nullptr || noise > victim_noise) {
      victim = &vm;
      victim_noise = noise;
    }
  }
  if (victim == nullptr) return {};

  VmDescriptor descriptor;
  descriptor.id = victim->vm;
  descriptor.requested = victim->requested;
  descriptor.mem_profile = victim->profile;

  const LcInfo* best = nullptr;
  double best_penalty = 1.0 - victim->penalty;  // must strictly improve
  for (const LcInfo& lc : other_lcs) {
    if (lc.lc == degraded.lc || !lc.fits(victim->requested)) continue;
    if ((lc.estimated_used + victim->estimated).max_utilization(lc.capacity) >
        overload_threshold) {
      continue;
    }
    const double penalty = predicted_penalty(descriptor, lc);
    if (penalty < best_penalty) {
      best_penalty = penalty;
      best = &lc;
    }
  }
  if (best == nullptr) return {};
  return {RelocationMove{victim->vm, degraded.lc, best->lc}};
}

}  // namespace snooze::core
