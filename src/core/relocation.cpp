#include "core/relocation.hpp"

#include <algorithm>

namespace snooze::core {

namespace {

struct Target {
  LcInfo info;  // mutated as we tentatively assign VMs
};

std::vector<Target> sorted_targets(const std::vector<LcInfo>& lcs) {
  std::vector<Target> targets;
  targets.reserve(lcs.size());
  for (const LcInfo& lc : lcs) {
    if (lc.powered_on) targets.push_back(Target{lc});
  }
  std::stable_sort(targets.begin(), targets.end(), [](const Target& a, const Target& b) {
    return a.info.utilization() < b.info.utilization();
  });
  return targets;
}

bool would_overload(const Target& t, const ResourceVector& estimated,
                    double overload_threshold) {
  return (t.info.estimated_used + estimated).max_utilization(t.info.capacity) >
         overload_threshold;
}

}  // namespace

std::vector<RelocationMove> plan_overload_relocation(const LcInfo& overloaded,
                                                     const std::vector<VmLoad>& vms,
                                                     const std::vector<LcInfo>& other_lcs,
                                                     double overload_threshold) {
  std::vector<RelocationMove> plan;
  auto targets = sorted_targets(other_lcs);
  if (targets.empty() || vms.empty()) return plan;

  // Biggest VMs first: fewest migrations to get below the threshold.
  std::vector<VmLoad> ordered = vms;
  std::stable_sort(ordered.begin(), ordered.end(), [](const VmLoad& a, const VmLoad& b) {
    return a.estimated.l1_norm() > b.estimated.l1_norm();
  });

  ResourceVector residual_used = overloaded.estimated_used;
  for (const VmLoad& vm : ordered) {
    if (residual_used.max_utilization(overloaded.capacity) <= overload_threshold) break;
    for (Target& t : targets) {
      if (!t.info.fits(vm.requested)) continue;
      if (would_overload(t, vm.estimated, overload_threshold)) continue;
      plan.push_back(RelocationMove{vm.vm, overloaded.lc, t.info.lc});
      t.info.reserved += vm.requested;
      t.info.estimated_used += vm.estimated;
      t.info.vm_count += 1;
      residual_used -= vm.estimated;
      break;
    }
  }
  if (residual_used.max_utilization(overloaded.capacity) >
          overload_threshold &&
      plan.empty()) {
    return {};  // nothing helped; don't thrash
  }
  return plan;
}

std::vector<RelocationMove> plan_underload_relocation(const LcInfo& underloaded,
                                                      const std::vector<VmLoad>& vms,
                                                      const std::vector<LcInfo>& other_lcs,
                                                      double underload_threshold,
                                                      double overload_threshold) {
  std::vector<RelocationMove> plan;
  if (vms.empty()) return plan;

  auto targets = sorted_targets(other_lcs);
  // Prefer *moderately* loaded targets: drop peers that are themselves
  // underloaded (packing onto them would just move the problem) unless
  // nothing else exists.
  std::vector<Target> moderate;
  for (const Target& t : targets) {
    if (t.info.utilization() > underload_threshold) moderate.push_back(t);
  }
  if (moderate.empty()) moderate = targets;
  // Fill the most-loaded moderate target first to concentrate VMs.
  std::stable_sort(moderate.begin(), moderate.end(), [](const Target& a, const Target& b) {
    return a.info.utilization() > b.info.utilization();
  });

  std::vector<VmLoad> ordered = vms;
  std::stable_sort(ordered.begin(), ordered.end(), [](const VmLoad& a, const VmLoad& b) {
    return a.estimated.l1_norm() > b.estimated.l1_norm();
  });

  std::vector<bool> receives(moderate.size(), false);
  for (const VmLoad& vm : ordered) {
    bool placed = false;
    for (std::size_t i = 0; i < moderate.size(); ++i) {
      Target& t = moderate[i];
      if (t.info.lc == underloaded.lc) continue;
      if (!t.info.fits(vm.requested)) continue;
      if (would_overload(t, vm.estimated, overload_threshold)) continue;
      plan.push_back(RelocationMove{vm.vm, underloaded.lc, t.info.lc});
      t.info.reserved += vm.requested;
      t.info.estimated_used += vm.estimated;
      t.info.vm_count += 1;
      receives[i] = true;
      placed = true;
      break;
    }
    if (!placed) return {};  // full evacuation impossible -> do nothing
  }
  // Anti-ping-pong guard: the evacuation must leave every receiving target
  // genuinely non-underloaded, otherwise the same VMs would immediately
  // trigger the next underload event on their new home and bounce forever.
  for (std::size_t i = 0; i < moderate.size(); ++i) {
    if (receives[i] &&
        moderate[i].info.utilization() <= underload_threshold) {
      return {};
    }
  }
  return plan;
}

}  // namespace snooze::core
