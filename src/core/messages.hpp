// The Snooze control-plane protocol.
//
// Every message of the hierarchy from Figure 1 of the paper: GL heartbeats
// (multicast to EPs, GMs and discovering LCs), GM heartbeats (multicast to
// the GM's LC group), LC heartbeats + monitoring (unicast to the GM), the
// join/assignment handshakes, the two-level VM submission path, relocation
// and reconfiguration commands, and the energy-management commands.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "net/network.hpp"

namespace snooze::core {

using net::Address;

// --------------------------------------------------------------------------
// Heartbeats
// --------------------------------------------------------------------------

/// GL -> multicast group (EPs, GMs, discovering LCs). Carries the leader's
/// election epoch in the inherited `epoch` field; higher wins, lower is a
/// deposed leader whose heartbeats are ignored.
struct GlHeartbeat final : net::Message {
  Address gl = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "gl.heartbeat"; }
  [[nodiscard]] std::size_t wire_size() const override { return 24; }
};

/// GM -> its LC multicast group.
struct GmHeartbeat final : net::Message {
  Address gm = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "gm.heartbeat"; }
  [[nodiscard]] std::size_t wire_size() const override { return 16; }
};

/// GM -> GL: heartbeat carrying the aggregated resource summary (paper
/// §II.B: "each GM periodically sends aggregated resource monitoring
/// information to the GL").
struct GmSummary final : net::Message {
  Address gm = net::kNullAddress;
  ResourceVector used;      ///< estimated VM demand over the GM's LCs
  ResourceVector capacity;  ///< total capacity of powered-on LCs
  std::uint32_t lc_count = 0;
  std::uint32_t vm_count = 0;
  /// Where each of this GM's VMs runs. A freshly elected GL rebuilds its
  /// submission book from these during the reconciliation window, so a
  /// client retrying a VM whose accept was lost in the failover gets the
  /// existing placement replayed instead of a duplicate instance.
  std::vector<std::pair<VmId, Address>> vm_locations;
  [[nodiscard]] std::string_view type() const override { return "gm.summary"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 72 + vm_locations.size() * 16;
  }
};

/// GM -> GL (RPC; replaces the one-way GmSummary when
/// SnoozeConfig::delta_summaries is on): batched summary carrying the
/// aggregates plus only the per-VM location *changes* since the last
/// acknowledged update — O(churn) on the wire instead of O(VMs). A full
/// snapshot (`snapshot` set, `placed` complete) re-anchors the stream on
/// first contact, GL change, reconnect, or any lost/negative ack; see
/// core/summary_codec.hpp for the exact safety argument.
struct GmSummaryDelta final : net::Message {
  Address gm = net::kNullAddress;
  ResourceVector used;      ///< estimated VM demand over the GM's LCs
  ResourceVector capacity;  ///< total capacity of powered-on LCs
  std::uint32_t lc_count = 0;
  std::uint32_t vm_count = 0;
  /// Hierarchical heartbeat aggregation: the worst (largest) LC heartbeat
  /// age this GM currently observes, so the GL tracks fleet-wide liveness
  /// health in O(GMs) instead of receiving per-LC heartbeats.
  double worst_lc_heartbeat_age = 0.0;
  bool snapshot = false;
  std::uint64_t stream = 0;  ///< sender incarnation (see SummaryUpdate)
  std::uint64_t seq = 0;     ///< per-stream sequence; deltas apply in order
  std::vector<std::pair<VmId, Address>> placed;  ///< new or moved VMs
  std::vector<VmId> removed;                     ///< VMs no longer hosted
  [[nodiscard]] std::string_view type() const override { return "gm.summary_d"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 104 + placed.size() * 16 + removed.size() * 8;
  }
};

struct GmSummaryAck final : net::Message {
  bool ok = false;  ///< false: update rejected, sender must snapshot
  std::uint64_t seq = 0;
  [[nodiscard]] std::string_view type() const override { return "gm.summary_d.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 20; }
};

/// LC -> GM liveness heartbeat.
struct LcHeartbeat final : net::Message {
  Address lc = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "lc.heartbeat"; }
  [[nodiscard]] std::size_t wire_size() const override { return 16; }
};

/// LC -> GM: periodic per-VM monitoring data (paper §II.B).
struct LcMonitorData final : net::Message {
  Address lc = net::kNullAddress;
  ResourceVector capacity;
  ResourceVector reserved;  ///< sum of requested capacity of hosted VMs
  ResourceVector used;      ///< actual consumption right now
  struct VmUsage {
    VmId vm = hypervisor::kNullVm;
    ResourceVector requested;  ///< lets a new GM learn inherited VMs
    ResourceVector used;
    /// True while an outbound live migration of this VM is in flight, so a
    /// GM inheriting the LC after a failover learns about half-finished
    /// migrations and does not command a second one.
    bool migrating = false;
    /// Memory-subsystem profile + the throughput multiplier the VM currently
    /// experiences. Profile-less VMs serialize neither (penalty is then 1 by
    /// construction), keeping legacy traffic byte-identical.
    interference::MemProfile profile;
    double penalty = 1.0;
  };
  std::vector<VmUsage> vms;
  /// Per-socket shared-resource report (empty on flat hosts): capacity and
  /// aggregated demand of the socket's LLC and memory-bandwidth pools.
  struct SocketReport {
    double llc_mb = 0.0;
    double mem_bw_gbps = 0.0;
    double llc_demand_mb = 0.0;
    double bw_demand_gbps = 0.0;
    std::uint32_t vms = 0;
  };
  std::vector<SocketReport> sockets;
  /// True while the node is being drained for maintenance (rolling upgrade):
  /// the GM must stop placing new VMs on it and let it empty out.
  bool draining = false;
  [[nodiscard]] std::string_view type() const override { return "lc.monitor"; }
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t bytes = 96 + vms.size() * 72 + sockets.size() * 40;
    for (const auto& vm : vms) {
      if (vm.profile.present()) bytes += 32;  // profile (24) + penalty (8)
    }
    return bytes;
  }
};

// --------------------------------------------------------------------------
// Self-organization
// --------------------------------------------------------------------------

/// LC -> GL: request a GM assignment (RPC).
struct AssignLcRequest final : net::Message {
  Address lc = net::kNullAddress;
  ResourceVector capacity;
  [[nodiscard]] std::string_view type() const override { return "gl.assign_lc"; }
  [[nodiscard]] std::size_t wire_size() const override { return 48; }
};

struct AssignLcResponse final : net::Message {
  bool ok = false;
  Address gm = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "gl.assign_lc.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 16; }
};

/// LC -> GM: join the GM's group (RPC).
struct LcJoinRequest final : net::Message {
  Address lc = net::kNullAddress;
  ResourceVector capacity;
  /// Lease epoch the LC mints for this GM relationship (monotone per LC).
  /// The GM must stamp every subsequent command to this LC with it; once the
  /// LC joins elsewhere, the old lease is fenced off.
  std::uint64_t lease_epoch = 0;
  [[nodiscard]] std::string_view type() const override { return "gm.join_lc"; }
  [[nodiscard]] std::size_t wire_size() const override { return 56; }
};

struct LcJoinResponse final : net::Message {
  bool ok = false;
  net::GroupId heartbeat_group = 0;  ///< GM's heartbeat multicast group
  [[nodiscard]] std::string_view type() const override { return "gm.join_lc.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 16; }
};

/// Promoted GM -> its former LCs: rejoin the hierarchy immediately.
struct GmResign final : net::Message {
  Address gm = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "gm.resign"; }
  [[nodiscard]] std::size_t wire_size() const override { return 16; }
};

/// Typed rejection of an authority-bearing command whose epoch is below the
/// receiver's high-water mark. Sent in place of the normal response; the
/// deposed sender must step down and re-join its election (GL) or drop the
/// fenced-off LC (GM).
struct StaleEpochError final : net::Message {
  /// The receiver's current high-water epoch for the violated domain.
  std::uint64_t observed = 0;
  [[nodiscard]] std::string_view type() const override { return "fence.stale"; }
  [[nodiscard]] std::size_t wire_size() const override { return 24; }
};

// --------------------------------------------------------------------------
// VM submission path (client -> EP -> GL -> GM -> LC)
// --------------------------------------------------------------------------

/// Client -> EP: who is the current GL? (RPC)
struct GlQueryRequest final : net::Message {
  [[nodiscard]] std::string_view type() const override { return "ep.gl_query"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

struct GlQueryResponse final : net::Message {
  bool ok = false;
  Address gl = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "ep.gl_query.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 16; }
};

/// Client -> GL: submit one VM (RPC).
struct SubmitVmRequest final : net::Message {
  VmDescriptor vm;
  [[nodiscard]] std::string_view type() const override { return "gl.submit_vm"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 120 + profile_wire_bytes(vm.mem_profile);
  }
};

struct SubmitVmResponse final : net::Message {
  bool ok = false;
  Address lc = net::kNullAddress;  ///< where the VM ended up
  Address gm = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "gl.submit_vm.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 24; }
};

/// GL -> GM: try to place this VM on one of your LCs (RPC).
struct PlacementRequest final : net::Message {
  VmDescriptor vm;
  [[nodiscard]] std::string_view type() const override { return "gm.place_vm"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 120 + profile_wire_bytes(vm.mem_profile);
  }
};

struct PlacementResponse final : net::Message {
  bool ok = false;
  Address lc = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "gm.place_vm.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 16; }
};

/// GM -> LC: start this VM (RPC; reply after the boot delay).
struct StartVmRequest final : net::Message {
  VmDescriptor vm;
  [[nodiscard]] std::string_view type() const override { return "lc.start_vm"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 120 + profile_wire_bytes(vm.mem_profile);
  }
};

struct StartVmResponse final : net::Message {
  bool ok = false;
  [[nodiscard]] std::string_view type() const override { return "lc.start_vm.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 12; }
};

/// GM -> LC (one-way, best effort): abort/stop a VM. Sent when the GM's
/// StartVm call timed out — the LC may or may not have started the VM, and a
/// possibly-started orphan must not keep running once the GM reports the
/// placement as failed (the GL will start the VM elsewhere).
struct StopVmRequest final : net::Message {
  VmId vm = hypervisor::kNullVm;
  [[nodiscard]] std::string_view type() const override { return "lc.stop_vm"; }
  [[nodiscard]] std::size_t wire_size() const override { return 24; }  // + lease epoch
};

/// GL -> GM (one-way, GL-epoch fenced): stop the duplicate copy of `vm`
/// running on `lc`. Sent when the GL's VM->GM ownership inventory (built
/// from delta summaries) proves two GMs host the same VM and the incumbent
/// re-asserted it — the challenger's copy is the orphan of a partition-torn
/// StartVm and must go.
struct RevokeVmRequest final : net::Message {
  VmId vm = hypervisor::kNullVm;
  Address lc = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "gm.revoke_vm"; }
  [[nodiscard]] std::size_t wire_size() const override { return 32; }
};

/// LC -> GM: a VM reached the end of its lifetime and was stopped.
struct VmTerminated final : net::Message {
  Address lc = net::kNullAddress;
  VmId vm = hypervisor::kNullVm;
  [[nodiscard]] std::string_view type() const override { return "gm.vm_done"; }
  [[nodiscard]] std::size_t wire_size() const override { return 24; }
};

// --------------------------------------------------------------------------
// Anomaly events + relocation / reconfiguration
// --------------------------------------------------------------------------

/// LC -> GM: local anomaly detection (paper §II.A: LCs "detect local
/// overload/underload anomaly situations and report them").
struct AnomalyEvent final : net::Message {
  enum class Kind { kOverload, kUnderload, kInterference };
  Address lc = net::kNullAddress;
  Kind kind = Kind::kOverload;
  /// kOverload/kUnderload: bottleneck utilization. kInterference: the worst
  /// (smallest) throughput multiplier observed across the LC's VMs, reusing
  /// the slot so the wire size stays fixed.
  double utilization = 0.0;
  [[nodiscard]] std::string_view type() const override { return "gm.anomaly"; }
  [[nodiscard]] std::size_t wire_size() const override { return 28; }
};

/// GM -> source LC: live-migrate a VM to `destination` (RPC: acknowledged
/// when the migration *starts*; completion arrives as MigrationDone).
struct MigrateVmRequest final : net::Message {
  VmId vm = hypervisor::kNullVm;
  Address destination = net::kNullAddress;
  [[nodiscard]] std::string_view type() const override { return "lc.migrate_vm"; }
  [[nodiscard]] std::size_t wire_size() const override { return 24; }
};

struct MigrateVmResponse final : net::Message {
  bool ok = false;
  [[nodiscard]] std::string_view type() const override { return "lc.migrate_vm.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 12; }
};

/// Source LC -> destination LC: hand over the VM at the end of pre-copy
/// (RPC; carries the descriptor so the destination can reconstruct state).
struct AdoptVmRequest final : net::Message {
  VmDescriptor vm;
  double downtime_s = 0.0;
  double remaining_lifetime_s = 0.0;  ///< 0 = unbounded
  [[nodiscard]] std::string_view type() const override { return "lc.adopt_vm"; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 128 + profile_wire_bytes(vm.mem_profile);
  }
};

struct AdoptVmResponse final : net::Message {
  bool ok = false;
  [[nodiscard]] std::string_view type() const override { return "lc.adopt_vm.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 12; }
};

/// Source LC -> GM: migration finished (or failed).
struct MigrationDone final : net::Message {
  VmId vm = hypervisor::kNullVm;
  Address from = net::kNullAddress;
  Address to = net::kNullAddress;
  bool ok = false;
  /// Actual pre-copy wall time vs. the migration model's prediction for this
  /// VM. Their ratio is a per-LC slowdown sample for the gray-failure
  /// detector: a fail-slow node transfers at a fraction of its link rate.
  double duration_s = 0.0;
  double expected_s = 0.0;
  [[nodiscard]] std::string_view type() const override { return "gm.migr_done"; }
  [[nodiscard]] std::size_t wire_size() const override { return 48; }
};

// --------------------------------------------------------------------------
// Gray-failure detection
// --------------------------------------------------------------------------

/// GM -> LC and GL -> GM: latency probe (RPC, idempotent — the canonical
/// call_with_hedging site). The round-trip time, scored peer-relative,
/// is the primary fail-slow signal.
struct ProbeRequest final : net::Message {
  [[nodiscard]] std::string_view type() const override { return "gray.probe"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

struct ProbeResponse final : net::Message {
  [[nodiscard]] std::string_view type() const override { return "gray.probe.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

// --------------------------------------------------------------------------
// Energy management
// --------------------------------------------------------------------------

/// GM -> LC: transition to the low-power state (RPC ack, then the LC goes
/// silent until woken).
struct SuspendRequest final : net::Message {
  [[nodiscard]] std::string_view type() const override { return "lc.suspend"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

struct SuspendResponse final : net::Message {
  bool ok = false;
  [[nodiscard]] std::string_view type() const override { return "lc.suspend.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 12; }
};

/// GM -> LC: wake up (models Wake-on-LAN; processed even while suspended).
struct WakeupRequest final : net::Message {
  [[nodiscard]] std::string_view type() const override { return "lc.wakeup"; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
};

struct WakeupResponse final : net::Message {
  bool ok = false;
  [[nodiscard]] std::string_view type() const override { return "lc.wakeup.r"; }
  [[nodiscard]] std::size_t wire_size() const override { return 12; }
};

}  // namespace snooze::core
