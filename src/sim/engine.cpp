#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>

namespace snooze::sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

EventId Engine::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint32_t Engine::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;  // release the closure eagerly (it may pin shared state)
  s.state = SlotState::kFree;
  ++s.generation;  // outstanding handles to this event become stale
  s.next_free = free_head_;
  free_head_ = slot;
  --pending_;
}

void Engine::sift_up(std::vector<Entry>& bucket, std::size_t i) {
  const Entry e = bucket[i];
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    if (!Later{}(bucket[p], e)) break;
    bucket[i] = bucket[p];
    slots_[bucket[i].slot].pos = static_cast<std::uint32_t>(i);
    i = p;
  }
  bucket[i] = e;
  slots_[e.slot].pos = static_cast<std::uint32_t>(i);
}

void Engine::sift_down(std::vector<Entry>& bucket, std::size_t i) {
  const std::size_t n = bucket.size();
  const Entry e = bucket[i];
  for (;;) {
    std::size_t c = 2 * i + 1;
    if (c >= n) break;
    if (c + 1 < n && Later{}(bucket[c], bucket[c + 1])) ++c;
    if (!Later{}(e, bucket[c])) break;
    bucket[i] = bucket[c];
    slots_[bucket[i].slot].pos = static_cast<std::uint32_t>(i);
    i = c;
  }
  bucket[i] = e;
  slots_[e.slot].pos = static_cast<std::uint32_t>(i);
}

void Engine::bucket_push(std::vector<Entry>& bucket, const Entry& entry) {
  bucket.push_back(entry);
  sift_up(bucket, bucket.size() - 1);
}

void Engine::bucket_remove(std::vector<Entry>& bucket, std::size_t i) {
  const Entry moved = bucket.back();
  bucket.pop_back();
  if (i == bucket.size()) return;  // removed the tail entry itself
  bucket[i] = moved;
  slots_[moved.slot].pos = static_cast<std::uint32_t>(i);
  sift_down(bucket, i);
  // If sift_down left it in place it may still beat its parent.
  if (slots_[moved.slot].pos == i) sift_up(bucket, i);
}

void Engine::mark_occupied(std::uint64_t abs_bucket) {
  const std::size_t p = abs_bucket & kBucketMask;
  occupied_[p >> 6] |= std::uint64_t{1} << (p & 63);
}

void Engine::clear_occupied(std::uint64_t abs_bucket) {
  const std::size_t p = abs_bucket & kBucketMask;
  occupied_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
}

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.time = t;
  s.seq = seq;

  const std::uint64_t b = bucket_of(t);
  if (b < cursor_ + kNumBuckets) {
    s.state = SlotState::kNear;
    auto& bucket = buckets_[b & kBucketMask];
    if (bucket.empty()) mark_occupied(b);
    bucket_push(bucket, Entry{t, seq, slot});
    ++near_count_;
    if (b < scan_hint_) scan_hint_ = b;
  } else {
    s.state = SlotState::kFar;
    far_.emplace(std::make_pair(t, seq), slot);
    ++stats_.overflowed;
  }
  ++pending_;
  ++stats_.scheduled;
  stats_.peak_pending = std::max(stats_.peak_pending, pending_);
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | s.generation;
}

bool Engine::cancel(EventId id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(hi - 1);
  Slot& s = slots_[slot];
  if (s.state == SlotState::kFree ||
      s.generation != static_cast<std::uint32_t>(id & 0xFFFFFFFFu)) {
    return false;  // already fired or cancelled
  }

  if (s.state == SlotState::kNear) {
    const std::uint64_t b = bucket_of(s.time);
    auto& bucket = buckets_[b & kBucketMask];
    // The slot knows its heap position, so removal is a targeted O(log b)
    // sift — bucket occupancy grows with cluster size, and every successful
    // RPC lands here, so an O(b) scan would dominate 10k-LC runs.
    bucket_remove(bucket, s.pos);
    if (bucket.empty()) clear_occupied(b);
    --near_count_;
  } else {
    far_.erase(std::make_pair(s.time, s.seq));
  }
  free_slot(slot);
  ++stats_.cancelled;
  return true;
}

void Engine::promote_far() {
  const std::uint64_t horizon = cursor_ + kNumBuckets;
  while (!far_.empty()) {
    const auto it = far_.begin();
    const std::uint64_t b = bucket_of(it->first.first);
    if (b >= horizon) break;
    const std::uint32_t slot = it->second;
    Slot& s = slots_[slot];
    s.state = SlotState::kNear;
    auto& bucket = buckets_[b & kBucketMask];
    if (bucket.empty()) mark_occupied(b);
    bucket_push(bucket, Entry{s.time, s.seq, slot});
    ++near_count_;
    if (b < scan_hint_) scan_hint_ = b;
    far_.erase(it);
    ++stats_.promoted;
  }
}

bool Engine::peek(Time& time, std::uint64_t& abs_bucket) {
  if (near_count_ > 0) {
    // A near event always precedes every far event (far buckets lie beyond
    // the near window), so the first occupied bucket holds the winner.
    std::uint64_t b = std::max(scan_hint_, cursor_);
    for (;;) {
      assert(b < cursor_ + kNumBuckets);
      const std::size_t p = b & kBucketMask;
      const std::uint64_t word = occupied_[p >> 6] >> (p & 63);
      if (word != 0) {
        b += static_cast<std::uint64_t>(std::countr_zero(word));
        break;
      }
      b += 64 - (p & 63);  // jump to the next bitmap word
    }
    scan_hint_ = b;
    time = buckets_[b & kBucketMask].front().time;
    abs_bucket = b;
    return true;
  }
  time = far_.begin()->first.first;
  abs_bucket = bucket_of(time);
  return false;
}

std::size_t Engine::run_until(Time until) {
  stopped_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t fired = 0;
  while (pending_ > 0 && !stopped_) {
    Time t = 0.0;
    std::uint64_t b = 0;
    const bool near = peek(t, b);
    if (t > until) break;

    std::uint32_t slot;
    if (near) {
      auto& bucket = buckets_[b & kBucketMask];
      slot = bucket.front().slot;
      bucket_remove(bucket, 0);
      if (bucket.empty()) clear_occupied(b);
      --near_count_;
    } else {
      slot = far_.begin()->second;
      far_.erase(far_.begin());
    }
    // Advancing the cursor widens the near window; pull far events that the
    // new horizon now covers before the callback schedules against it.
    cursor_ = b;
    scan_hint_ = std::max(scan_hint_, b);
    now_ = t;
    promote_far();

    auto fn = std::move(slots_[slot].fn);
    free_slot(slot);
    fn();
    ++fired;
    ++processed_;
    ++stats_.fired;
  }
  if (pending_ == 0 && until != kTimeInfinity && now_ < until) {
    // Advance the clock to the horizon so callers can rely on now()==until.
    now_ = until;
  }
  stats_.run_wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return fired;
}

std::size_t Engine::queued_entries() const {
  std::size_t n = far_.size();
  for (const auto& bucket : buckets_) n += bucket.size();
  return n;
}

}  // namespace snooze::sim
