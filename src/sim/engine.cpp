#include "sim/engine.hpp"

#include <cassert>

namespace snooze::sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

EventId Engine::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

bool Engine::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

std::size_t Engine::run_until(Time until) {
  stopped_ = false;
  std::size_t fired = 0;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.time > until) break;
    Event ev{top.time, top.id, std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ev.fn();
    ++fired;
    ++processed_;
  }
  if (queue_.empty() && until != kTimeInfinity && now_ < until) {
    // Advance the clock to the horizon so callers can rely on now()==until.
    now_ = until;
  }
  return fired;
}

}  // namespace snooze::sim
