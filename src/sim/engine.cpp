#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>

namespace snooze::sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {
  static_assert(sizeof(Entry) == 16, "bucket entries must pack 4 per cache line");
  static_assert(sizeof(Slot) == 32, "hot slot records must pack 2 per cache line");
}

EventId Engine::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint32_t Engine::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  fns_.emplace_back();
  const auto slot = static_cast<std::uint32_t>(slots_.size() - 1);
  assert(slot <= kSlotMask && "event slab exceeded the 2^24 entry-key budget");
  return slot;
}

void Engine::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  fns_[slot] = nullptr;  // release the closure eagerly (it may pin shared state)
  s.state = SlotState::kFree;
  ++s.generation;  // outstanding handles to this event become stale
  s.next_free = free_head_;
  free_head_ = slot;
  --pending_;
}

void Engine::bucket_push(Bucket& bucket, const Entry& entry) {
  if (bucket.empty()) {
    // A drained ring restarts from index 0 so long-lived buckets don't
    // accrete dead prefix across window wraps.
    bucket.v.clear();
    bucket.head = 0;
    bucket.v.push_back(entry);
    return;
  }
  if (entry_before(bucket.v.back(), entry)) {  // the monotone common case
    bucket.v.push_back(entry);
    return;
  }
  const auto it = std::upper_bound(bucket.v.begin() + bucket.head,
                                   bucket.v.end(), entry, &Engine::entry_before);
  bucket.v.insert(it, entry);
}

void Engine::bucket_pop_front(Bucket& bucket) {
  ++bucket.head;
  if (bucket.empty()) {
    bucket.v.clear();
    bucket.head = 0;
  }
}

void Engine::bucket_cancel(Bucket& bucket, const Entry& entry) {
  const auto begin = bucket.v.begin() + bucket.head;
  const auto it =
      std::lower_bound(begin, bucket.v.end(), entry, &Engine::entry_before);
  assert(it != bucket.v.end() && it->key == entry.key);
  // Shift whichever side is shorter; cancels typically arrive in the same
  // seq order the entries did (each RPC reply cancels its own guard), which
  // makes this a one-element move at the ring's head.
  if (it - begin <= bucket.v.end() - it - 1) {
    std::move_backward(begin, it, it + 1);
    ++bucket.head;
  } else {
    bucket.v.erase(it);
  }
  if (bucket.empty()) {
    bucket.v.clear();
    bucket.head = 0;
  }
}

void Engine::mark_occupied(std::uint64_t abs_bucket) {
  const std::size_t p = abs_bucket & bucket_mask_;
  occupied_[p >> 6] |= std::uint64_t{1} << (p & 63);
}

void Engine::clear_occupied(std::uint64_t abs_bucket) {
  const std::size_t p = abs_bucket & bucket_mask_;
  occupied_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
}

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  fns_[slot] = std::move(fn);
  s.time = t;
  s.seq = seq;

  const std::uint64_t b = bucket_of(t);
  if (b < cursor_ + num_buckets_) {
    s.state = SlotState::kNear;
    auto& bucket = buckets_[b & bucket_mask_];
    if (bucket.empty()) mark_occupied(b);
    bucket_push(bucket, Entry{t, seq << kSlotBits | slot});
    ++near_count_;
    if (b < scan_hint_) scan_hint_ = b;
  } else {
    s.state = SlotState::kFar;
    far_.emplace(std::make_pair(t, seq), slot);
    if (t < far_min_time_) {
      far_min_time_ = t;
      far_min_bucket_ = b;
    }
    ++stats_.overflowed;
  }
  ++pending_;
  ++stats_.scheduled;
  stats_.peak_pending = std::max(stats_.peak_pending, pending_);
  const EventId id = (static_cast<std::uint64_t>(slot) + 1) << 32 | s.generation;
  if (--retune_countdown_ == 0) maybe_retune();
  return id;
}

bool Engine::cancel(EventId id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(hi - 1);
  Slot& s = slots_[slot];
  if (s.state == SlotState::kFree ||
      s.generation != static_cast<std::uint32_t>(id & 0xFFFFFFFFu)) {
    return false;  // already fired or cancelled
  }

  if (s.state == SlotState::kNear) {
    const std::uint64_t b = bucket_of(s.time);
    auto& bucket = buckets_[b & bucket_mask_];
    // (time, seq) relocates the entry by binary search — every successful
    // RPC lands here, so this must not degrade to a full-bucket scan.
    bucket_cancel(bucket, Entry{s.time, s.seq << kSlotBits | slot});
    if (bucket.empty()) clear_occupied(b);
    --near_count_;
  } else {
    far_.erase(std::make_pair(s.time, s.seq));
    if (s.time <= far_min_time_) update_far_min();
  }
  free_slot(slot);
  ++stats_.cancelled;
  if (--retune_countdown_ == 0) maybe_retune();
  return true;
}

void Engine::promote_far() {
  const std::uint64_t horizon = cursor_ + num_buckets_;
  while (!far_.empty()) {
    const auto it = far_.begin();
    const std::uint64_t b = bucket_of(it->first.first);
    if (b >= horizon) break;
    const std::uint32_t slot = it->second;
    Slot& s = slots_[slot];
    s.state = SlotState::kNear;
    auto& bucket = buckets_[b & bucket_mask_];
    if (bucket.empty()) mark_occupied(b);
    bucket_push(bucket, Entry{s.time, s.seq << kSlotBits | slot});
    ++near_count_;
    if (b < scan_hint_) scan_hint_ = b;
    far_.erase(it);
    ++stats_.promoted;
  }
  update_far_min();
}

void Engine::update_far_min() {
  if (far_.empty()) {
    far_min_time_ = kTimeInfinity;
    far_min_bucket_ = std::numeric_limits<std::uint64_t>::max();
  } else {
    far_min_time_ = far_.begin()->first.first;
    far_min_bucket_ = bucket_of(far_min_time_);
  }
}

void Engine::maybe_retune() {
  retune_countdown_ = kRetuneInterval;
  const std::size_t target = std::clamp(
      std::bit_ceil(pending_ * kBucketsPerEvent + 1), kMinBuckets, kMaxBuckets);
  // 4x hysteresis in both directions: a population oscillating around a
  // power-of-two boundary must not flip the geometry back and forth.
  if (target >= num_buckets_ * 4 || target * 4 <= num_buckets_) {
    resize_buckets(target);
  }
}

void Engine::resize_buckets(std::size_t new_count) {
  std::vector<Bucket> old = std::move(buckets_);

  num_buckets_ = new_count;
  bucket_mask_ = new_count - 1;
  width_ = kWindowSeconds / static_cast<double>(new_count);
  inv_width_ = static_cast<double>(new_count) / kWindowSeconds;
  buckets_.assign(new_count, {});
  occupied_.assign(new_count / 64, 0);
  // All pending times are >= now_, so every rehashed entry lands at or past
  // the new cursor; the old cursor/hint are meaningless under the new width.
  cursor_ = bucket_of(now_);
  scan_hint_ = cursor_;
  near_count_ = 0;

  const std::uint64_t horizon = cursor_ + num_buckets_;
  for (auto& src : old) {
    for (std::size_t i = src.head; i < src.v.size(); ++i) {
      const Entry& e = src.v[i];
      const std::uint32_t slot = entry_slot(e);
      const std::uint64_t b = bucket_of(e.time);
      if (b < horizon) {
        auto& bucket = buckets_[b & bucket_mask_];
        if (bucket.empty()) mark_occupied(b);
        bucket_push(bucket, e);
        ++near_count_;
      } else {
        // The new horizon can sit up to one old bucket earlier in absolute
        // time; entries past it spill to the far map like any overflow.
        Slot& s = slots_[slot];
        s.state = SlotState::kFar;
        far_.emplace(std::make_pair(s.time, s.seq), slot);
        ++stats_.overflowed;
      }
    }
  }
  // The cached far minimum's bucket index is stale under the new width.
  update_far_min();
  // Symmetrically, the new horizon can cover times the old one did not.
  if (far_min_bucket_ < horizon) promote_far();
  ++stats_.resizes;
}

bool Engine::peek(Time& time, std::uint64_t& abs_bucket) {
  if (near_count_ > 0) {
    // A near event always precedes every far event (far buckets lie beyond
    // the near window), so the first occupied bucket holds the winner.
    std::uint64_t b = std::max(scan_hint_, cursor_);
    for (;;) {
      assert(b < cursor_ + num_buckets_);
      const std::size_t p = b & bucket_mask_;
      const std::uint64_t word = occupied_[p >> 6] >> (p & 63);
      if (word != 0) {
        b += static_cast<std::uint64_t>(std::countr_zero(word));
        break;
      }
      b += 64 - (p & 63);  // jump to the next bitmap word
    }
    scan_hint_ = b;
    time = buckets_[b & bucket_mask_].front().time;
    abs_bucket = b;
    return true;
  }
  time = far_.begin()->first.first;
  abs_bucket = bucket_of(time);
  return false;
}

std::size_t Engine::run_until(Time until) {
  stopped_ = false;
  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t fired = 0;
  while (pending_ > 0 && !stopped_) {
    Time t = 0.0;
    std::uint64_t b = 0;
    const bool near = peek(t, b);
    if (t > until) break;

    std::uint32_t slot;
    if (near) {
      auto& bucket = buckets_[b & bucket_mask_];
      slot = entry_slot(bucket.front());
      bucket_pop_front(bucket);
      if (bucket.empty()) clear_occupied(b);
      --near_count_;
    } else {
      slot = far_.begin()->second;
      far_.erase(far_.begin());
      update_far_min();
    }
    // Advancing the cursor widens the near window; pull far events that the
    // new horizon now covers before the callback schedules against it. The
    // cached minimum's bucket index keeps this one integer compare per pop —
    // no tree walk, no int→float conversion.
    cursor_ = b;
    scan_hint_ = std::max(scan_hint_, b);
    now_ = t;
    if (far_min_bucket_ < cursor_ + num_buckets_) promote_far();

    auto fn = std::move(fns_[slot]);
    free_slot(slot);
    fn();
    ++fired;
    ++processed_;
    ++stats_.fired;
    if (--retune_countdown_ == 0) maybe_retune();
  }
  if (pending_ == 0 && until != kTimeInfinity && now_ < until) {
    // Advance the clock to the horizon so callers can rely on now()==until.
    now_ = until;
  }
  stats_.run_wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return fired;
}

std::size_t Engine::queued_entries() const {
  std::size_t n = far_.size();
  for (const auto& bucket : buckets_) n += bucket.size();
  return n;
}

}  // namespace snooze::sim
