// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, sequence) order, so
// two events scheduled for the same instant fire in scheduling order. All
// components of the simulated Snooze deployment (network, coordination
// service, controllers) run on one engine; virtual time is in seconds.
//
// The event queue is an indexed calendar queue sized for 10k-LC topologies:
//
//   - near events (within ~64 s of the drain cursor) live in fixed-width
//     time buckets, each a small binary heap of 24-byte POD entries, so
//     schedule/pop touch a handful of cache lines instead of sifting a
//     global heap of closures;
//   - far events overflow into an ordered map and are promoted in bulk as
//     the cursor advances;
//   - callbacks are stored once in a slab of pooled slots; EventId encodes
//     (slot, generation), making cancel() a true O(1) removal — the entry
//     is taken out of its bucket immediately, no tombstone ever reaches the
//     hot pop path. Every successful RPC cancels its timeout this way.
//
// Determinism contract: events pop in exactly (time ascending, scheduling
// sequence ascending) order — byte-identical to the original binary-heap
// engine, which the golden-trace suite (tests/golden_trace_test.cpp) pins.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace snooze::sim {

/// Virtual time in seconds since simulation start.
using Time = double;

constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Handle identifying a scheduled event; usable to cancel it. Encodes the
/// slab slot and a generation counter, so handles of fired/cancelled events
/// are recognized as stale. 0 is never a valid handle.
using EventId = std::uint64_t;

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Time delay, std::function<void()> fn);

  /// Schedule `fn` at absolute virtual time `t` (t >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Cancel a pending event: the entry is physically removed from the queue
  /// and its slot recycled. Returns false if it already fired or was
  /// cancelled (stale handles are detected via the generation counter).
  bool cancel(EventId id);

  /// Run until the event queue is empty or `until` is reached (whichever is
  /// first). Returns the number of events processed.
  std::size_t run_until(Time until);

  /// Run until the queue drains completely.
  std::size_t run() { return run_until(kTimeInfinity); }

  /// Abort the current run_until loop after the current event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return pending_; }
  [[nodiscard]] std::size_t processed_events() const { return processed_; }

  /// Physical entries held by the queue (buckets + overflow). Always equals
  /// pending_events(): cancellation removes entries instead of tombstoning
  /// them. The leak tests assert on exactly this equality.
  [[nodiscard]] std::size_t queued_entries() const;

  /// Queue/throughput counters. Cheap enough to maintain unconditionally;
  /// telemetry mirrors them into the metrics registry on demand
  /// (Telemetry::sample_engine) so sampling never schedules events.
  struct Stats {
    std::uint64_t scheduled = 0;    ///< total schedule()/schedule_at() calls
    std::uint64_t fired = 0;        ///< events whose callback ran
    std::uint64_t cancelled = 0;    ///< events removed by cancel()
    std::uint64_t overflowed = 0;   ///< events that entered the far map
    std::uint64_t promoted = 0;     ///< far events moved into near buckets
    std::size_t peak_pending = 0;   ///< high-water mark of pending events
    double run_wall_seconds = 0.0;  ///< wall-clock time spent inside run_until
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fired events per wall-clock second across all run_until calls so far
  /// (0 before the first run).
  [[nodiscard]] double events_per_second() const {
    return stats_.run_wall_seconds > 0.0
               ? static_cast<double>(stats_.fired) / stats_.run_wall_seconds
               : 0.0;
  }

  /// The engine-global RNG; fork() it for per-component streams.
  util::Rng& rng() { return rng_; }

 private:
  // Calendar geometry: 16384 buckets of 1/256 s cover a 64 s near window —
  // heartbeats, RPC timeouts and retry backoffs all land in buckets; only
  // long-lived timers (VM lifetimes, soak horizons) take the far map. The
  // narrow width keeps per-bucket occupancy (and thus sift depth) low even
  // with 10k LCs heartbeating: fewer scattered position updates per event.
  static constexpr double kBucketWidth = 1.0 / 256.0;
  static constexpr double kInvBucketWidth = 256.0;
  static constexpr std::size_t kNumBuckets = 16384;
  static constexpr std::size_t kBucketMask = kNumBuckets - 1;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Bucket-heap element; PODs this small make sift operations cache-cheap.
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Min-heap order on (time, seq) — the engine-wide determinism contract.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  enum class SlotState : std::uint8_t { kFree, kNear, kFar };

  /// Callback storage; stable address for the event's lifetime.
  struct Slot {
    std::function<void()> fn;
    Time time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    /// Index of this event's Entry within its bucket heap (near events
    /// only). Maintained by the sift routines so cancel() jumps straight to
    /// the entry instead of scanning the bucket — at 10k LCs buckets hold
    /// dozens of entries and a linear scan per cancel dominates the run.
    std::uint32_t pos = 0;
    SlotState state = SlotState::kFree;
  };

  [[nodiscard]] static std::uint64_t bucket_of(Time t) {
    const double scaled = t * kInvBucketWidth;
    // Clamp anything beyond the representable horizon (including +inf) into
    // the far map; the cast below would otherwise be UB.
    if (scaled >= 9.2e18) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(scaled);
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  void mark_occupied(std::uint64_t abs_bucket);
  void clear_occupied(std::uint64_t abs_bucket);
  // Position-tracking binary-heap primitives over one bucket; every entry
  // move updates slots_[entry.slot].pos.
  void bucket_push(std::vector<Entry>& bucket, const Entry& entry);
  void bucket_remove(std::vector<Entry>& bucket, std::size_t i);
  void sift_up(std::vector<Entry>& bucket, std::size_t i);
  void sift_down(std::vector<Entry>& bucket, std::size_t i);
  /// Move far events whose bucket is now inside the near window.
  void promote_far();
  /// Locate the next pending event without consuming it. Returns false when
  /// the queue is empty; otherwise fills (time, abs_bucket) of the winner.
  bool peek(Time& time, std::uint64_t& abs_bucket);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t pending_ = 0;
  bool stopped_ = false;
  Stats stats_;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;

  /// Drain cursor: absolute index of the bucket of the last popped event.
  /// Every pending near event lives in [cursor_, cursor_ + kNumBuckets).
  std::uint64_t cursor_ = 0;
  /// First absolute bucket that may be occupied (scan hint; always >= valid).
  std::uint64_t scan_hint_ = 0;
  std::vector<std::vector<Entry>> buckets_{kNumBuckets};
  std::vector<std::uint64_t> occupied_ = std::vector<std::uint64_t>(kNumBuckets / 64, 0);
  std::size_t near_count_ = 0;

  /// Far events, ordered by (time, seq); key order == pop order.
  std::map<std::pair<Time, std::uint64_t>, std::uint32_t> far_;

  util::Rng rng_;
};

}  // namespace snooze::sim
