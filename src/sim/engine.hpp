// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, sequence) order, so
// two events scheduled for the same instant fire in scheduling order. All
// components of the simulated Snooze deployment (network, coordination
// service, controllers) run on one engine; virtual time is in seconds.
//
// The event queue is an indexed calendar queue sized for 100k-LC topologies:
//
//   - near events (within 64 s of the drain cursor) live in fixed-width
//     time buckets, each a sorted ring of 16-byte POD entries: control-plane
//     events cluster on shared instants and arrive in (time, seq) order, so
//     the common insert is a push_back, the pop a head-index bump — no
//     sifting a global heap of closures, no per-entry position bookkeeping;
//   - the bucket geometry is population-adaptive: the 64 s window is carved
//     into more (narrower) buckets as the pending-event count grows, keeping
//     per-bucket occupancy — and thus sift depth and scattered position
//     updates — roughly constant from 100 to 100k LCs. Rescaling rehashes
//     the near entries but never reorders anything: pop order is a pure
//     function of (time, seq), not of the geometry;
//   - far events overflow into an ordered map and are promoted in bulk as
//     the cursor advances; the far map's minimum time is cached so the
//     per-pop promotion check is a float compare, not a tree walk;
//   - callbacks are stored once in a slab of pooled slots, split hot/cold:
//     the queue paths touch only the 32-byte bookkeeping records, never the
//     std::function cold array. EventId encodes (slot, generation), making
//     cancel() a true removal — binary search by (time, seq) inside the
//     sorted bucket, shorter-side shift — so no tombstone ever reaches the
//     hot pop path.
//
// Determinism contract: events pop in exactly (time ascending, scheduling
// sequence ascending) order — byte-identical to the original binary-heap
// engine, which the golden-trace suite (tests/golden_trace_test.cpp) pins.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace snooze::sim {

/// Virtual time in seconds since simulation start.
using Time = double;

constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Handle identifying a scheduled event; usable to cancel it. Encodes the
/// slab slot and a generation counter, so handles of fired/cancelled events
/// are recognized as stale. 0 is never a valid handle.
using EventId = std::uint64_t;

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Time delay, std::function<void()> fn);

  /// Schedule `fn` at absolute virtual time `t` (t >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Cancel a pending event: the entry is physically removed from the queue
  /// and its slot recycled. Returns false if it already fired or was
  /// cancelled (stale handles are detected via the generation counter).
  bool cancel(EventId id);

  /// Run until the event queue is empty or `until` is reached (whichever is
  /// first). Returns the number of events processed.
  std::size_t run_until(Time until);

  /// Run until the queue drains completely.
  std::size_t run() { return run_until(kTimeInfinity); }

  /// Abort the current run_until loop after the current event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return pending_; }
  [[nodiscard]] std::size_t processed_events() const { return processed_; }

  /// Physical entries held by the queue (buckets + overflow). Always equals
  /// pending_events(): cancellation removes entries instead of tombstoning
  /// them. The leak tests assert on exactly this equality.
  [[nodiscard]] std::size_t queued_entries() const;

  /// Current calendar geometry (population-adaptive; see maybe_retune()).
  [[nodiscard]] std::size_t bucket_count() const { return num_buckets_; }
  [[nodiscard]] double bucket_width() const { return width_; }

  /// Queue/throughput counters. Cheap enough to maintain unconditionally;
  /// telemetry mirrors them into the metrics registry on demand
  /// (Telemetry::sample_engine) so sampling never schedules events.
  struct Stats {
    std::uint64_t scheduled = 0;    ///< total schedule()/schedule_at() calls
    std::uint64_t fired = 0;        ///< events whose callback ran
    std::uint64_t cancelled = 0;    ///< events removed by cancel()
    std::uint64_t overflowed = 0;   ///< events that entered the far map
    std::uint64_t promoted = 0;     ///< far events moved into near buckets
    std::uint64_t resizes = 0;      ///< bucket-geometry retunes (grow + shrink)
    std::size_t peak_pending = 0;   ///< high-water mark of pending events
    double run_wall_seconds = 0.0;  ///< wall-clock time spent inside run_until
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fired events per wall-clock second across all run_until calls so far
  /// (0 before the first run).
  [[nodiscard]] double events_per_second() const {
    return stats_.run_wall_seconds > 0.0
               ? static_cast<double>(stats_.fired) / stats_.run_wall_seconds
               : 0.0;
  }

  /// The engine-global RNG; fork() it for per-component streams.
  util::Rng& rng() { return rng_; }

 private:
  // Calendar geometry: a fixed 64 s near window carved into a power-of-two
  // number of buckets. The count scales with the pending-event population
  // (kMinBuckets at <1k pending up to kMaxBuckets at 100k-LC scale), so
  // per-bucket occupancy stays O(1): heartbeats, RPC timeouts and retry
  // backoffs all land in buckets; only long-lived timers (VM lifetimes,
  // soak horizons) take the far map. Both window and widths are powers of
  // two, so bucket_of() is an exact scale-and-truncate — no rounding drift
  // across rescales.
  static constexpr double kWindowSeconds = 64.0;
  static constexpr std::size_t kMinBuckets = std::size_t{1} << 14;  // 1/256 s
  /// The cap is where the table stops paying for itself: narrower buckets
  /// pull distinct instants apart (worth +6-14% events/s at 25k-100k LCs
  /// going 2^19 → 2^20, measured under the sorted-ring buckets), but past
  /// 2^20 the bucket-header array and occupancy bitmap outgrow cache and
  /// 2^21 measures flat-to-worse at 50k-100k. Same-instant events can never
  /// be split by geometry, so beyond the cap occupancy is bounded by the
  /// clustering the workload itself dictates.
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;  // 1/16384 s
  /// Retune cadence: geometry is re-evaluated every this many queue
  /// operations (schedules + pops + cancels) — deterministic, no clocks.
  static constexpr std::uint32_t kRetuneInterval = 1024;
  /// Target ~16 buckets per pending event; growth/shrink trigger only on a
  /// >=4x mismatch so the geometry never thrashes around a boundary.
  static constexpr std::size_t kBucketsPerEvent = 16;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Bucket element, packed to 16 bytes (4 per cache line): the slot index
  /// shares a word with the sequence number. Slots are bounded far below
  /// 2^24 concurrent events in practice; seq gets the remaining 40 bits
  /// (~10^12 events). For equal times the key compares exactly like seq —
  /// seqs are unique, so the low slot bits never decide an ordering.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  struct Entry {
    Time time;
    std::uint64_t key;  ///< seq << kSlotBits | slot
  };
  [[nodiscard]] static std::uint32_t entry_slot(const Entry& e) {
    return static_cast<std::uint32_t>(e.key & kSlotMask);
  }
  /// Strict (time, seq) order — the engine-wide determinism contract.
  [[nodiscard]] static bool entry_before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  /// One calendar bucket: a ring over a sorted vector. Control-plane
  /// workloads cluster many events on the same instant and schedule them in
  /// ascending (time, seq) order — heartbeat fan-outs, reply timers, retry
  /// backoffs all append monotonically — so keeping the vector sorted makes
  /// the common insert a push_back, the pop a head-index bump, and an
  /// in-seq-order cancel a one-element shift. A binary heap here pays a
  /// full-depth sift plus scattered position-index writes on every pop of a
  /// cluster; the sorted ring pays nothing. Out-of-order inserts (far-map
  /// promotions racing fresh schedules, mixed-width instants at small
  /// populations) fall back to binary search + contiguous 16-byte-POD
  /// memmove, which stays cheap at observed cluster sizes.
  struct Bucket {
    std::vector<Entry> v;
    std::uint32_t head = 0;  ///< first live element; [head, v.size()) is sorted
    [[nodiscard]] bool empty() const { return head == v.size(); }
    [[nodiscard]] std::size_t size() const { return v.size() - head; }
    [[nodiscard]] const Entry& front() const { return v[head]; }
  };

  enum class SlotState : std::uint8_t { kFree, kNear, kFar };

  /// Hot per-event bookkeeping (32 bytes): everything the queue paths touch.
  /// The callback itself lives in the parallel cold array fns_ and is only
  /// accessed on schedule and fire. (time, seq) is enough to re-locate the
  /// entry inside its sorted bucket on cancel — no position index to
  /// maintain on every entry move.
  struct Slot {
    Time time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    SlotState state = SlotState::kFree;
  };

  [[nodiscard]] std::uint64_t bucket_of(Time t) const {
    const double scaled = t * inv_width_;
    // Clamp anything beyond the representable horizon (including +inf) into
    // the far map; the cast below would otherwise be UB.
    if (scaled >= 9.2e18) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(scaled);
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  void mark_occupied(std::uint64_t abs_bucket);
  void clear_occupied(std::uint64_t abs_bucket);
  // Sorted-ring primitives over one bucket.
  static void bucket_push(Bucket& bucket, const Entry& entry);
  static void bucket_pop_front(Bucket& bucket);
  static void bucket_cancel(Bucket& bucket, const Entry& entry);
  /// Move far events whose bucket is now inside the near window.
  void promote_far();
  /// Absolute time of the first bucket past the near window.
  [[nodiscard]] Time horizon_time() const {
    return static_cast<double>(cursor_ + num_buckets_) * width_;
  }
  /// Recompute the cached minimum of the far map (time and bucket) after any
  /// mutation of its front or of the bucket width.
  void update_far_min();
  /// Re-evaluate the bucket geometry against the pending population
  /// (amortized: called every kRetuneInterval queue operations).
  void maybe_retune();
  /// Rebuild the near buckets under a new bucket count (same 64 s window).
  void resize_buckets(std::size_t new_count);
  /// Locate the next pending event without consuming it. Returns false when
  /// the queue is empty; otherwise fills (time, abs_bucket) of the winner.
  bool peek(Time& time, std::uint64_t& abs_bucket);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t pending_ = 0;
  bool stopped_ = false;
  Stats stats_;

  std::vector<Slot> slots_;
  std::vector<std::function<void()>> fns_;  ///< cold callback array (|| slots_)
  std::uint32_t free_head_ = kNoSlot;

  /// Drain cursor: absolute index of the bucket of the last popped event.
  /// Every pending near event lives in [cursor_, cursor_ + num_buckets_).
  std::uint64_t cursor_ = 0;
  /// First absolute bucket that may be occupied (scan hint; always >= valid).
  std::uint64_t scan_hint_ = 0;
  std::size_t num_buckets_ = kMinBuckets;
  std::uint64_t bucket_mask_ = kMinBuckets - 1;
  double width_ = kWindowSeconds / static_cast<double>(kMinBuckets);
  double inv_width_ = static_cast<double>(kMinBuckets) / kWindowSeconds;
  std::vector<Bucket> buckets_{kMinBuckets};
  std::vector<std::uint64_t> occupied_ = std::vector<std::uint64_t>(kMinBuckets / 64, 0);
  std::size_t near_count_ = 0;
  std::uint32_t retune_countdown_ = kRetuneInterval;

  /// Far events, ordered by (time, seq); key order == pop order. The
  /// minimum is cached both as a time and as its absolute bucket index so
  /// the hot pop path's promotion check is a single integer compare against
  /// cursor_ + num_buckets_ — no tree walk, no int→float conversion.
  std::map<std::pair<Time, std::uint64_t>, std::uint32_t> far_;
  Time far_min_time_ = kTimeInfinity;
  std::uint64_t far_min_bucket_ = std::numeric_limits<std::uint64_t>::max();

  util::Rng rng_;
};

}  // namespace snooze::sim
