// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, sequence) order, so
// two events scheduled for the same instant fire in scheduling order. All
// components of the simulated Snooze deployment (network, coordination
// service, controllers) run on one engine; virtual time is in seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace snooze::sim {

/// Virtual time in seconds since simulation start.
using Time = double;

constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Time delay, std::function<void()> fn);

  /// Schedule `fn` at absolute virtual time `t` (t >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. Cancellation is O(1); the queue entry is skipped lazily.
  bool cancel(EventId id);

  /// Run until the event queue is empty or `until` is reached (whichever is
  /// first). Returns the number of events processed.
  std::size_t run_until(Time until);

  /// Run until the queue drains completely.
  std::size_t run() { return run_until(kTimeInfinity); }

  /// Abort the current run_until loop after the current event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::size_t processed_events() const { return processed_; }

  /// The engine-global RNG; fork() it for per-component streams.
  util::Rng& rng() { return rng_; }

 private:
  struct Event {
    Time time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  util::Rng rng_;
};

}  // namespace snooze::sim
