// Structured event trace: components append (time, actor, kind, detail)
// records; tests and examples query or dump them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"

namespace snooze::sim {

struct TraceRecord {
  Time time;
  std::string actor;
  std::string kind;
  std::string detail;
};

class Trace {
 public:
  explicit Trace(Engine& engine) : engine_(engine) {}

  void record(std::string_view actor, std::string_view kind, std::string_view detail = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }

  /// All records of the given kind, in time order.
  [[nodiscard]] std::vector<TraceRecord> of_kind(std::string_view kind) const;

  /// Count of records of the given kind.
  [[nodiscard]] std::size_t count(std::string_view kind) const;

  /// Time of the first record of the given kind at/after `from`, or a
  /// negative value if none exists.
  [[nodiscard]] Time first_time(std::string_view kind, Time from = 0.0) const;

  void clear() { records_.clear(); }

  /// Order-sensitive FNV-1a fingerprint over every record (time bits, actor,
  /// kind, detail). Two runs with the same seed must produce the same hash;
  /// chaos tests use this to assert determinism.
  [[nodiscard]] std::uint64_t hash() const;

  /// Human-readable dump (for examples / debugging).
  [[nodiscard]] std::string dump() const;

 private:
  Engine& engine_;
  std::vector<TraceRecord> records_;
};

}  // namespace snooze::sim
