// Structured event trace: components append (time, actor, kind, detail)
// records; tests and examples query or dump them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"

namespace snooze::sim {

struct TraceRecord {
  Time time;
  std::string actor;
  std::string kind;
  std::string detail;
};

class Trace {
 public:
  explicit Trace(Engine& engine) : engine_(engine) {}

  void record(std::string_view actor, std::string_view kind, std::string_view detail = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }

  /// Bound memory for long soak runs: keep (at least) the newest `n` records,
  /// discarding the oldest. 0 (the default) keeps everything. Trimming is
  /// amortized O(1): the buffer is allowed to grow to 2n before the oldest n
  /// records are dropped in one chunk, so `records()` may transiently hold up
  /// to 2n-1 entries — the newest n are always present. Note that `hash()`
  /// covers only retained records; determinism comparisons must use the same
  /// capacity on both runs.
  void set_max_records(std::size_t n);
  [[nodiscard]] std::size_t max_records() const { return max_records_; }

  /// Records discarded so far by the ring-buffer cap.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// All records of the given kind, in time order.
  [[nodiscard]] std::vector<TraceRecord> of_kind(std::string_view kind) const;

  /// Count of records of the given kind.
  [[nodiscard]] std::size_t count(std::string_view kind) const;

  /// Time of the first record of the given kind at/after `from`, or a
  /// negative value if none exists.
  [[nodiscard]] Time first_time(std::string_view kind, Time from = 0.0) const;

  void clear() {
    records_.clear();
    dropped_ = 0;
  }

  /// Order-sensitive FNV-1a fingerprint over every record (time bits, actor,
  /// kind, detail). Two runs with the same seed must produce the same hash;
  /// chaos tests use this to assert determinism.
  [[nodiscard]] std::uint64_t hash() const;

  /// Human-readable dump (for examples / debugging).
  [[nodiscard]] std::string dump() const;

 private:
  void trim();

  Engine& engine_;
  std::vector<TraceRecord> records_;
  std::size_t max_records_ = 0;  ///< 0 = unbounded
  std::uint64_t dropped_ = 0;
};

}  // namespace snooze::sim
