#include "sim/trace.hpp"

#include <cstdio>
#include <sstream>

namespace snooze::sim {

void Trace::record(std::string_view actor, std::string_view kind, std::string_view detail) {
  records_.push_back(TraceRecord{engine_.now(), std::string(actor), std::string(kind),
                                 std::string(detail)});
}

std::vector<TraceRecord> Trace::of_kind(std::string_view kind) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

std::size_t Trace::count(std::string_view kind) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

Time Trace::first_time(std::string_view kind, Time from) const {
  for (const auto& r : records_) {
    if (r.time >= from && r.kind == kind) return r.time;
  }
  return -1.0;
}

std::string Trace::dump() const {
  std::ostringstream out;
  for (const auto& r : records_) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%10.3f", r.time);
    out << ts << "  " << r.actor << "  " << r.kind;
    if (!r.detail.empty()) out << "  " << r.detail;
    out << '\n';
  }
  return out.str();
}

}  // namespace snooze::sim
