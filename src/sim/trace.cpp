#include "sim/trace.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace snooze::sim {

void Trace::record(std::string_view actor, std::string_view kind, std::string_view detail) {
  records_.push_back(TraceRecord{engine_.now(), std::string(actor), std::string(kind),
                                 std::string(detail)});
  if (max_records_ != 0 && records_.size() >= 2 * max_records_) trim();
}

void Trace::set_max_records(std::size_t n) {
  max_records_ = n;
  if (max_records_ != 0 && records_.size() > max_records_) trim();
}

void Trace::trim() {
  const std::size_t excess = records_.size() - max_records_;
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(excess));
  dropped_ += excess;
}

std::vector<TraceRecord> Trace::of_kind(std::string_view kind) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

std::size_t Trace::count(std::string_view kind) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

Time Trace::first_time(std::string_view kind, Time from) const {
  for (const auto& r : records_) {
    if (r.time >= from && r.kind == kind) return r.time;
  }
  return -1.0;
}

std::uint64_t Trace::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 0x100000001b3ULL;
  };
  auto mix_str = [&mix_byte](const std::string& s) {
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0xffU);  // field separator
  };
  for (const auto& r : records_) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.time));
    std::memcpy(&bits, &r.time, sizeof(bits));
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(bits >> (8 * i)));
    mix_str(r.actor);
    mix_str(r.kind);
    mix_str(r.detail);
  }
  return h;
}

std::string Trace::dump() const {
  std::ostringstream out;
  for (const auto& r : records_) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%10.3f", r.time);
    out << ts << "  " << r.actor << "  " << r.kind;
    if (!r.detail.empty()) out << "  " << r.detail;
    out << '\n';
  }
  return out.str();
}

}  // namespace snooze::sim
