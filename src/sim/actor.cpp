#include "sim/actor.hpp"

#include <utility>

namespace snooze::sim {

Actor::Actor(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)), alive_(std::make_shared<bool>(true)) {}

Actor::~Actor() { *alive_ = false; }

void Actor::crash() { *alive_ = false; }

void Actor::recover() {
  if (*alive_) return;
  alive_ = std::make_shared<bool>(true);
}

EventId Actor::after(Time delay, std::function<void()> fn) {
  if (!*alive_) return 0;
  auto token = alive_;
  return engine_.schedule(delay, [token, fn = std::move(fn)] {
    if (*token) fn();
  });
}

void Actor::every(Time period, std::function<bool()> fn) {
  if (!*alive_) return;
  auto token = alive_;
  // Self-rescheduling closure; stops when the token dies or fn returns false.
  // The closure holds only a weak reference to itself (each scheduled event
  // owns the strong one), so ending the chain releases the closure instead
  // of leaking a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, token, period, fn = std::move(fn),
           weak = std::weak_ptr<std::function<void()>>(tick)] {
    if (!*token) return;
    if (!fn()) return;
    if (!*token) return;  // fn may have crashed the actor
    if (auto self = weak.lock()) {
      engine_.schedule(period, [self] { (*self)(); });
    }
  };
  engine_.schedule(period, [tick] { (*tick)(); });
}

void Actor::cancel(EventId id) { engine_.cancel(id); }

}  // namespace snooze::sim
