// Actor base class: a named simulation participant with timer helpers.
//
// Actors own their pending timers; a crashed/destroyed actor's callbacks are
// guarded so late events never touch dead state (the lifetime token pattern).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "sim/engine.hpp"

namespace snooze::sim {

class Actor {
 public:
  Actor(Engine& engine, std::string name);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Engine& engine() const { return engine_; }
  [[nodiscard]] Time now() const { return engine_.now(); }

  /// True while the actor participates in the simulation; crash() clears it.
  [[nodiscard]] bool alive() const { return *alive_; }

  /// Take the actor out of the simulation: all pending timers are
  /// invalidated and future after()/every() calls are ignored.
  virtual void crash();

  /// Bring a crashed actor back (fresh lifetime token; no timers restored).
  virtual void recover();

 protected:
  /// Schedule a member callback `delay` seconds from now. The callback is
  /// dropped if the actor crashes or is destroyed in the meantime.
  EventId after(Time delay, std::function<void()> fn);

  /// Recurring timer with a fixed period, starting one period from now.
  /// Returns the id of the *first* tick; subsequent ticks keep running until
  /// crash()/destruction or until `fn` returns false.
  void every(Time period, std::function<bool()> fn);

  /// Cancel a pending after() event.
  void cancel(EventId id);

 private:
  Engine& engine_;
  std::string name_;
  std::shared_ptr<bool> alive_;
};

}  // namespace snooze::sim
