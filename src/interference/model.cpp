#include "interference/model.hpp"

#include <algorithm>

namespace snooze::interference {

TopologySpec TopologySpec::uniform(std::size_t n, double llc_mb, double mem_bw_gbps) {
  TopologySpec topo;
  topo.sockets.assign(n, SocketSpec{llc_mb, mem_bw_gbps});
  return topo;
}

const char* to_string(CacheIntensity intensity) {
  switch (intensity) {
    case CacheIntensity::kNone: return "none";
    case CacheIntensity::kLow: return "low";
    case CacheIntensity::kMedium: return "medium";
    case CacheIntensity::kHigh: return "high";
  }
  return "?";
}

double sensitivity(CacheIntensity intensity) {
  switch (intensity) {
    case CacheIntensity::kNone: return 0.0;
    case CacheIntensity::kLow: return 0.3;
    case CacheIntensity::kMedium: return 0.6;
    case CacheIntensity::kHigh: return 1.0;
  }
  return 0.0;
}

double degradation_multiplier(const MemProfile& vm, const SocketPressure& neighbors,
                              const SocketSpec& socket) {
  // A profile-less VM, and a VM alone on its socket, run at full speed by
  // definition; the early return keeps the 1.0 exact (no FP round-trip).
  if (!vm.present() || neighbors.vms == 0) return 1.0;

  // Overcommit of the shared resources once this VM joins its neighbors.
  // Demands below capacity degrade nothing (the working sets fit); only the
  // fraction past capacity is contended.
  const double llc_cap = std::max(socket.llc_mb, 1e-9);
  const double bw_cap = std::max(socket.mem_bw_gbps, 1e-9);
  const double llc_over =
      std::max(0.0, (vm.llc_mb + neighbors.llc_demand_mb - socket.llc_mb) / llc_cap);
  const double bw_over =
      std::max(0.0, (vm.bw_gbps + neighbors.bw_demand_gbps - socket.mem_bw_gbps) / bw_cap);

  // Cache thrash hurts more than bandwidth queuing (misses serialize on the
  // same bandwidth the streams already saturate).
  const double pressure = 1.5 * llc_over + 1.0 * bw_over;
  return 1.0 / (1.0 + sensitivity(vm.intensity) * pressure);
}

double worst_multiplier(const std::vector<MemProfile>& all, const SocketSpec& socket) {
  double worst = 1.0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    SocketPressure neighbors;
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (j != i) neighbors += all[j];
    }
    worst = std::min(worst, degradation_multiplier(all[i], neighbors, socket));
  }
  return worst;
}

}  // namespace snooze::interference
