// Memory-subsystem interference model (HotCloud'12-style).
//
// The hypervisor's flat capacity vector hides what co-located VMs do to each
// other on the shared memory subsystem: last-level cache and memory
// bandwidth are per-socket resources that reservations do not cover. This
// library models a host as a set of sockets (cores sharing one LLC and one
// memory-bandwidth pool), gives a VM a memory-subsystem profile
// (cache-intensity class + bandwidth demand) and maps per-socket co-location
// pressure to a deterministic throughput multiplier in (0, 1].
//
// Contract (pinned by tests/interference_test.cpp):
//   * the multiplier is always in (0, 1];
//   * it is exactly 1.0 for a VM alone on its socket, for a VM without a
//     profile, and on a flat (socket-less) host;
//   * it is monotone non-increasing in added co-location pressure.
//
// Everything here is pure arithmetic — no RNG, no clocks — so enabling the
// model on a topology-less deployment leaves every simulation bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snooze::interference {

/// One socket: cores sharing a last-level cache and a memory-bandwidth pool.
struct SocketSpec {
  double llc_mb = 16.0;       ///< shared last-level cache size
  double mem_bw_gbps = 25.6;  ///< socket memory bandwidth
};

/// Host memory topology. An empty socket list is a *flat* host — the
/// pre-interference model where co-location is free; every multiplier is 1.
struct TopologySpec {
  std::vector<SocketSpec> sockets;

  [[nodiscard]] bool flat() const { return sockets.empty(); }
  [[nodiscard]] std::size_t socket_count() const {
    return sockets.empty() ? 1 : sockets.size();
  }

  /// `n` identical sockets.
  static TopologySpec uniform(std::size_t n, double llc_mb = 16.0,
                              double mem_bw_gbps = 25.6);
};

/// How aggressively a VM uses the shared cache (its *sensitivity* to and
/// *generation* of contention scale together, as in the HotCloud'12 LLC
/// miss-rate classification). kNone marks "no profile": the VM is invisible
/// to the model and experiences no degradation.
enum class CacheIntensity : std::uint8_t { kNone = 0, kLow, kMedium, kHigh };

const char* to_string(CacheIntensity intensity);

/// Sensitivity weight of a class: how much of the socket overcommit turns
/// into slowdown for a VM of this class.
double sensitivity(CacheIntensity intensity);

/// A VM's memory-subsystem profile (serializable; rides in VmDescriptor).
struct MemProfile {
  CacheIntensity intensity = CacheIntensity::kNone;
  double llc_mb = 0.0;     ///< LLC working-set demand
  double bw_gbps = 0.0;    ///< sustained memory-bandwidth demand

  [[nodiscard]] bool present() const { return intensity != CacheIntensity::kNone; }

  friend bool operator==(const MemProfile&, const MemProfile&) = default;
};

/// Aggregated demand of a set of co-located VMs on one socket.
struct SocketPressure {
  double llc_demand_mb = 0.0;
  double bw_demand_gbps = 0.0;
  std::uint32_t vms = 0;  ///< profiled VMs contributing to the demand

  SocketPressure& operator+=(const MemProfile& p) {
    if (p.present()) {
      llc_demand_mb += p.llc_mb;
      bw_demand_gbps += p.bw_gbps;
      ++vms;
    }
    return *this;
  }
};

/// Throughput multiplier in (0, 1] for a VM with profile `vm` sharing
/// `socket` with `neighbors` (the pressure of the *other* VMs on the
/// socket). Exactly 1.0 when the VM has no profile or no profiled neighbor.
double degradation_multiplier(const MemProfile& vm, const SocketPressure& neighbors,
                              const SocketSpec& socket);

/// Worst (smallest) multiplier across a profiled population `all` packed on
/// one socket: each VM sees the others as its neighbors. 1.0 for <= 1 VM.
double worst_multiplier(const std::vector<MemProfile>& all, const SocketSpec& socket);

}  // namespace snooze::interference
