// Physical host model: VM slots, reservation accounting, power state and
// energy metering. The Local Controller actor drives it with virtual-time
// stamps; the Host itself holds no reference to the simulation engine so it
// is equally usable from the standalone consolidation benchmarks.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy_meter.hpp"
#include "hypervisor/resources.hpp"
#include "hypervisor/vm.hpp"
#include "interference/model.hpp"

namespace snooze::hypervisor {

struct HostSpec {
  std::string name = "host";
  ResourceVector capacity{1.0, 1.0, 1.0};
  energy::PowerModel power;
  /// Socket/LLC-domain layout. Flat (empty) by default: co-location is free
  /// and every interference multiplier is exactly 1.
  interference::TopologySpec topology;
};

class Host {
 public:
  explicit Host(HostSpec spec, double start_time = 0.0);

  [[nodiscard]] const HostSpec& spec() const { return spec_; }
  [[nodiscard]] const ResourceVector& capacity() const { return spec_.capacity; }

  // --- VM management ------------------------------------------------------
  /// Reserved (requested) capacity of all hosted VMs.
  [[nodiscard]] ResourceVector reserved() const;

  /// Actual consumption at time t (sum of VM usage, trace-driven).
  [[nodiscard]] ResourceVector used(double t) const;

  /// Bottleneck-dimension utilization of actual usage at time t, in [0,1+].
  [[nodiscard]] double utilization(double t) const;

  /// True if a VM with demand `requested` fits next to the current VMs.
  [[nodiscard]] bool can_place(const ResourceVector& requested) const;

  /// Add a VM (caller checked can_place, asserts otherwise in debug).
  /// `socket` pins the VM to a socket; kAutoSocket picks the least-pressured
  /// one deterministically. Ignored on flat hosts (everything lands on 0).
  static constexpr std::size_t kAutoSocket = static_cast<std::size_t>(-1);
  Vm& place(VmSpec spec, UtilizationFn utilization = nullptr,
            std::size_t socket = kAutoSocket);

  /// Move an already-constructed VM object onto this host.
  Vm& adopt(std::unique_ptr<Vm> vm, std::size_t socket = kAutoSocket);

  /// Remove and return the VM (nullptr if unknown).
  std::unique_ptr<Vm> evict(VmId id);

  [[nodiscard]] Vm* find(VmId id);
  [[nodiscard]] const Vm* find(VmId id) const;
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
  [[nodiscard]] bool idle() const { return vms_.empty(); }
  [[nodiscard]] std::vector<VmId> vm_ids() const;
  [[nodiscard]] const std::map<VmId, std::unique_ptr<Vm>>& vms() const { return vms_; }

  // --- interference -------------------------------------------------------
  [[nodiscard]] const interference::TopologySpec& topology() const {
    return spec_.topology;
  }
  [[nodiscard]] std::size_t socket_count() const { return spec_.topology.socket_count(); }

  /// Socket the VM runs on (0 for flat hosts / unknown VMs).
  [[nodiscard]] std::size_t socket_of(VmId id) const;

  /// Aggregated memory-subsystem demand of the profiled VMs on `socket`.
  [[nodiscard]] interference::SocketPressure socket_pressure(std::size_t socket) const;

  /// Bottleneck utilization of the VMs pinned to `socket` against an even
  /// per-socket share of host capacity (flat host: whole-host utilization).
  [[nodiscard]] double socket_utilization(std::size_t socket, double t) const;

  /// Throughput multiplier in (0,1] the VM currently experiences from its
  /// socket neighbors. Exactly 1.0 on flat hosts and for unknown VMs.
  [[nodiscard]] double vm_penalty(VmId id) const;

  /// Smallest multiplier across all hosted VMs (1.0 when none degraded).
  [[nodiscard]] double worst_penalty() const;

  // --- power --------------------------------------------------------------
  [[nodiscard]] energy::PowerState power_state() const { return meter_.state(); }
  void set_power_state(double t, energy::PowerState state);

  /// Refresh the energy meter with the utilization at time t (call on any
  /// change and periodically for trace-driven drift).
  void touch(double t);

  [[nodiscard]] double energy_joules(double t) const { return meter_.joules(t); }
  [[nodiscard]] const energy::EnergyMeter& meter() const { return meter_; }

 private:
  [[nodiscard]] std::size_t pick_socket(const interference::MemProfile& profile,
                                        std::size_t requested) const;

  HostSpec spec_;
  std::map<VmId, std::unique_ptr<Vm>> vms_;
  std::map<VmId, std::size_t> socket_of_;
  energy::EnergyMeter meter_;
  VmId next_local_id_ = 1;
};

}  // namespace snooze::hypervisor
