#include "hypervisor/host.hpp"

#include <algorithm>
#include <cassert>

namespace snooze::hypervisor {

Host::Host(HostSpec spec, double start_time)
    : spec_(std::move(spec)), meter_(spec_.power, start_time) {}

ResourceVector Host::reserved() const {
  ResourceVector total;
  for (const auto& [id, vm] : vms_) total += vm->spec().requested;
  return total;
}

ResourceVector Host::used(double t) const {
  ResourceVector total;
  for (const auto& [id, vm] : vms_) total += vm->used(t);
  return total;
}

double Host::utilization(double t) const {
  return used(t).max_utilization(spec_.capacity);
}

bool Host::can_place(const ResourceVector& requested) const {
  return (reserved() + requested).fits_within(spec_.capacity);
}

Vm& Host::place(VmSpec spec, UtilizationFn utilization) {
  assert(can_place(spec.requested));
  if (spec.id == kNullVm) spec.id = next_local_id_++;
  auto vm = std::make_unique<Vm>(spec, std::move(utilization));
  vm->set_state(VmState::kRunning);
  Vm& ref = *vm;
  vms_[spec.id] = std::move(vm);
  return ref;
}

Vm& Host::adopt(std::unique_ptr<Vm> vm) {
  assert(vm != nullptr);
  assert(can_place(vm->spec().requested));
  Vm& ref = *vm;
  vms_[vm->id()] = std::move(vm);
  return ref;
}

std::unique_ptr<Vm> Host::evict(VmId id) {
  const auto it = vms_.find(id);
  if (it == vms_.end()) return nullptr;
  std::unique_ptr<Vm> vm = std::move(it->second);
  vms_.erase(it);
  return vm;
}

Vm* Host::find(VmId id) {
  const auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.get();
}

const Vm* Host::find(VmId id) const {
  const auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.get();
}

std::vector<VmId> Host::vm_ids() const {
  std::vector<VmId> out;
  out.reserve(vms_.size());
  for (const auto& [id, vm] : vms_) out.push_back(id);
  return out;
}

void Host::set_power_state(double t, energy::PowerState state) {
  const double cpu = used(t).cpu() / std::max(1e-9, spec_.capacity.cpu());
  meter_.update(t, state, cpu);
}

void Host::touch(double t) { set_power_state(t, meter_.state()); }

}  // namespace snooze::hypervisor
