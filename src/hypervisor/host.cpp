#include "hypervisor/host.hpp"

#include <algorithm>
#include <cassert>

namespace snooze::hypervisor {

Host::Host(HostSpec spec, double start_time)
    : spec_(std::move(spec)), meter_(spec_.power, start_time) {}

ResourceVector Host::reserved() const {
  ResourceVector total;
  for (const auto& [id, vm] : vms_) total += vm->spec().requested;
  return total;
}

ResourceVector Host::used(double t) const {
  ResourceVector total;
  // Effective usage: contention slows a VM down, so it delivers (and burns)
  // a penalty-scaled share. On flat hosts the multiplier is exactly 1.0 and
  // the scaling is a bit-exact no-op.
  for (const auto& [id, vm] : vms_) total += vm->used(t).scaled(vm_penalty(id));
  return total;
}

double Host::utilization(double t) const {
  return used(t).max_utilization(spec_.capacity);
}

bool Host::can_place(const ResourceVector& requested) const {
  return (reserved() + requested).fits_within(spec_.capacity);
}

Vm& Host::place(VmSpec spec, UtilizationFn utilization, std::size_t socket) {
  assert(can_place(spec.requested));
  if (spec.id == kNullVm) spec.id = next_local_id_++;
  const std::size_t s = pick_socket(spec.mem_profile, socket);
  auto vm = std::make_unique<Vm>(spec, std::move(utilization));
  vm->set_state(VmState::kRunning);
  Vm& ref = *vm;
  vms_[spec.id] = std::move(vm);
  socket_of_[ref.id()] = s;
  return ref;
}

Vm& Host::adopt(std::unique_ptr<Vm> vm, std::size_t socket) {
  assert(vm != nullptr);
  assert(can_place(vm->spec().requested));
  const std::size_t s = pick_socket(vm->spec().mem_profile, socket);
  Vm& ref = *vm;
  vms_[vm->id()] = std::move(vm);
  socket_of_[ref.id()] = s;
  return ref;
}

std::unique_ptr<Vm> Host::evict(VmId id) {
  const auto it = vms_.find(id);
  if (it == vms_.end()) return nullptr;
  std::unique_ptr<Vm> vm = std::move(it->second);
  vms_.erase(it);
  socket_of_.erase(id);
  return vm;
}

Vm* Host::find(VmId id) {
  const auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.get();
}

const Vm* Host::find(VmId id) const {
  const auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.get();
}

std::vector<VmId> Host::vm_ids() const {
  std::vector<VmId> out;
  out.reserve(vms_.size());
  for (const auto& [id, vm] : vms_) out.push_back(id);
  return out;
}

std::size_t Host::socket_of(VmId id) const {
  const auto it = socket_of_.find(id);
  return it == socket_of_.end() ? 0 : it->second;
}

interference::SocketPressure Host::socket_pressure(std::size_t socket) const {
  interference::SocketPressure pressure;
  for (const auto& [id, vm] : vms_) {
    if (socket_of(id) == socket) pressure += vm->spec().mem_profile;
  }
  return pressure;
}

double Host::socket_utilization(std::size_t socket, double t) const {
  if (spec_.topology.flat()) return utilization(t);
  ResourceVector total;
  for (const auto& [id, vm] : vms_) {
    if (socket_of(id) == socket) total += vm->used(t).scaled(vm_penalty(id));
  }
  const double share = 1.0 / static_cast<double>(socket_count());
  return total.max_utilization(spec_.capacity.scaled(share));
}

double Host::vm_penalty(VmId id) const {
  if (spec_.topology.flat()) return 1.0;
  const auto it = vms_.find(id);
  if (it == vms_.end() || !it->second->spec().mem_profile.present()) return 1.0;
  const std::size_t s = socket_of(id);
  interference::SocketPressure neighbors;
  for (const auto& [other_id, vm] : vms_) {
    if (other_id != id && socket_of(other_id) == s) neighbors += vm->spec().mem_profile;
  }
  const std::size_t spec_idx = std::min(s, spec_.topology.sockets.size() - 1);
  return interference::degradation_multiplier(it->second->spec().mem_profile, neighbors,
                                              spec_.topology.sockets[spec_idx]);
}

double Host::worst_penalty() const {
  double worst = 1.0;
  if (spec_.topology.flat()) return worst;
  for (const auto& [id, vm] : vms_) worst = std::min(worst, vm_penalty(id));
  return worst;
}

std::size_t Host::pick_socket(const interference::MemProfile& profile,
                              std::size_t requested) const {
  if (spec_.topology.flat()) return 0;
  const std::size_t n = spec_.topology.sockets.size();
  if (requested != kAutoSocket) return std::min(requested, n - 1);
  // Least-pressured socket: fewest profiled VMs, then lowest combined demand
  // relative to capacity, then lowest index — fully deterministic.
  std::vector<std::size_t> population(n, 0);
  for (const auto& [id, s] : socket_of_) {
    if (s < n) ++population[s];
  }
  std::size_t best = 0;
  double best_score = 1e300;
  for (std::size_t s = 0; s < n; ++s) {
    const interference::SocketPressure p = socket_pressure(s);
    const auto& sock = spec_.topology.sockets[s];
    const double demand = p.llc_demand_mb / std::max(sock.llc_mb, 1e-9) +
                          p.bw_demand_gbps / std::max(sock.mem_bw_gbps, 1e-9);
    const double score = profile.present()
                             ? demand + 1e-3 * static_cast<double>(population[s])
                             : static_cast<double>(population[s]);
    if (score < best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

void Host::set_power_state(double t, energy::PowerState state) {
  const double cpu = used(t).cpu() / std::max(1e-9, spec_.capacity.cpu());
  meter_.update(t, state, cpu);
}

void Host::touch(double t) { set_power_state(t, meter_.state()); }

}  // namespace snooze::hypervisor
