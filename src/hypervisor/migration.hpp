// Live-migration cost model (pre-copy, KVM/Xen style).
//
// Iterative pre-copy: round 0 transfers the full RAM footprint; each later
// round transfers the pages dirtied during the previous round. Iteration
// stops when the residual set is small enough (or a round cap is hit), then
// the VM is paused for the stop-and-copy downtime.
#pragma once

#include <cstddef>

namespace snooze::hypervisor {

struct MigrationCost {
  double total_s = 0.0;     ///< wall time from start to VM resumed on target
  double downtime_s = 0.0;  ///< stop-and-copy pause
  std::size_t rounds = 0;   ///< pre-copy rounds performed
  double transferred_mb = 0.0;
};

struct MigrationModel {
  double bandwidth_mbps = 1000.0;    ///< migration link bandwidth (megabit/s)
  double stop_copy_threshold_mb = 64.0;  ///< residual size to stop iterating
  std::size_t max_rounds = 30;

  /// Cost of migrating a VM with the given RAM footprint and dirty rate.
  [[nodiscard]] MigrationCost cost(double memory_mb, double dirty_rate_mbps) const;
};

}  // namespace snooze::hypervisor
