// Virtual machine model.
//
// A VM has a *requested* capacity (what the client asked for — the packing
// input) and a time-varying *utilization* multiplier in [0,1] driving its
// actual consumption (what monitoring observes). The utilization source is
// injected as a function so the workload library can supply traces without a
// dependency cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "hypervisor/resources.hpp"
#include "interference/model.hpp"

namespace snooze::hypervisor {

using VmId = std::uint64_t;
constexpr VmId kNullVm = 0;

/// Utilization multiplier at virtual time t, in [0, 1].
using UtilizationFn = std::function<double(double t)>;

enum class VmState { kPending, kBooting, kRunning, kMigrating, kStopped, kFailed };

const char* to_string(VmState state);

struct VmSpec {
  VmId id = kNullVm;
  ResourceVector requested;    ///< reserved capacity (packing input)
  double memory_mb = 2048.0;   ///< RAM footprint, drives migration duration
  double dirty_rate_mbps = 50.0;  ///< page-dirty rate during live migration
  /// Memory-subsystem profile (LLC working set + bandwidth demand). Absent
  /// by default: the VM is invisible to the interference model.
  interference::MemProfile mem_profile;
};

class Vm {
 public:
  explicit Vm(VmSpec spec, UtilizationFn utilization = nullptr);

  [[nodiscard]] VmId id() const { return spec_.id; }
  [[nodiscard]] const VmSpec& spec() const { return spec_; }
  [[nodiscard]] VmState state() const { return state_; }
  void set_state(VmState state) { state_ = state; }

  /// Actual consumption at time t: requested * utilization(t).
  [[nodiscard]] ResourceVector used(double t) const;

  /// Utilization multiplier at time t (1.0 if no trace installed).
  [[nodiscard]] double utilization(double t) const;

  void set_utilization(UtilizationFn fn) { utilization_ = std::move(fn); }

 private:
  VmSpec spec_;
  VmState state_ = VmState::kPending;
  UtilizationFn utilization_;
};

}  // namespace snooze::hypervisor
