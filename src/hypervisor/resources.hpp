// Multi-dimensional resource vectors.
//
// Snooze monitors CPU, memory and network utilization (paper §II.A); the
// consolidation problem is therefore a 3-dimensional vector bin-packing.
// Values are normalized "capacity units" (a demand of 0.25 on a host of
// capacity 1.0 uses a quarter of that dimension).
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace snooze::hypervisor {

class ResourceVector {
 public:
  static constexpr std::size_t kDims = 3;
  enum Dim : std::size_t { kCpu = 0, kMemory = 1, kNetwork = 2 };

  constexpr ResourceVector() : v_{} {}
  constexpr ResourceVector(double cpu, double memory, double network)
      : v_{cpu, memory, network} {}

  [[nodiscard]] constexpr double cpu() const { return v_[kCpu]; }
  [[nodiscard]] constexpr double memory() const { return v_[kMemory]; }
  [[nodiscard]] constexpr double network() const { return v_[kNetwork]; }

  [[nodiscard]] constexpr double operator[](std::size_t d) const { return v_[d]; }
  constexpr double& operator[](std::size_t d) { return v_[d]; }

  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) { return a += b; }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) { return a -= b; }
  [[nodiscard]] ResourceVector scaled(double factor) const;

  friend bool operator==(const ResourceVector&, const ResourceVector&) = default;

  /// True if every component of this vector is <= the corresponding
  /// component of `capacity` (with a small epsilon for FP accumulation).
  [[nodiscard]] bool fits_within(const ResourceVector& capacity) const;

  /// True if any component is (strictly) negative beyond epsilon.
  [[nodiscard]] bool any_negative() const;

  [[nodiscard]] double l1_norm() const;
  [[nodiscard]] double l2_norm() const;
  [[nodiscard]] double max_component() const;
  [[nodiscard]] double dot(const ResourceVector& o) const;

  /// Component-wise ratio against a capacity, returning the largest ratio
  /// (i.e. the bottleneck dimension's utilization).
  [[nodiscard]] double max_utilization(const ResourceVector& capacity) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<double, kDims> v_;
};

}  // namespace snooze::hypervisor
