#include "hypervisor/migration.hpp"

#include <algorithm>

namespace snooze::hypervisor {

MigrationCost MigrationModel::cost(double memory_mb, double dirty_rate_mbps) const {
  MigrationCost out;
  // Convert link bandwidth from megabit/s to MB/s.
  const double bw_mb_s = std::max(1e-6, bandwidth_mbps / 8.0);
  const double dirty_mb_s = std::max(0.0, dirty_rate_mbps / 8.0);

  double residual_mb = std::max(0.0, memory_mb);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const double round_time = residual_mb / bw_mb_s;
    out.total_s += round_time;
    out.transferred_mb += residual_mb;
    ++out.rounds;
    const double dirtied = dirty_mb_s * round_time;
    if (dirtied >= residual_mb || dirty_mb_s >= bw_mb_s) {
      // Dirtying outpaces the link: no convergence, go to stop-and-copy now.
      residual_mb = std::min(residual_mb, std::max(dirtied, stop_copy_threshold_mb));
      break;
    }
    residual_mb = dirtied;
    if (residual_mb <= stop_copy_threshold_mb) break;
  }
  out.downtime_s = residual_mb / bw_mb_s;
  out.total_s += out.downtime_s;
  out.transferred_mb += residual_mb;
  return out;
}

}  // namespace snooze::hypervisor
