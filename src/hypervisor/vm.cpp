#include "hypervisor/vm.hpp"

#include <algorithm>

namespace snooze::hypervisor {

const char* to_string(VmState state) {
  switch (state) {
    case VmState::kPending: return "PENDING";
    case VmState::kBooting: return "BOOTING";
    case VmState::kRunning: return "RUNNING";
    case VmState::kMigrating: return "MIGRATING";
    case VmState::kStopped: return "STOPPED";
    case VmState::kFailed: return "FAILED";
  }
  return "?";
}

Vm::Vm(VmSpec spec, UtilizationFn utilization)
    : spec_(spec), utilization_(std::move(utilization)) {}

double Vm::utilization(double t) const {
  if (!utilization_) return 1.0;
  return std::clamp(utilization_(t), 0.0, 1.0);
}

ResourceVector Vm::used(double t) const { return spec_.requested.scaled(utilization(t)); }

}  // namespace snooze::hypervisor
