#include "hypervisor/resources.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace snooze::hypervisor {

namespace {
constexpr double kEps = 1e-9;
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  for (std::size_t d = 0; d < kDims; ++d) v_[d] += o.v_[d];
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  for (std::size_t d = 0; d < kDims; ++d) v_[d] -= o.v_[d];
  return *this;
}

ResourceVector ResourceVector::scaled(double factor) const {
  ResourceVector out = *this;
  for (std::size_t d = 0; d < kDims; ++d) out.v_[d] *= factor;
  return out;
}

bool ResourceVector::fits_within(const ResourceVector& capacity) const {
  for (std::size_t d = 0; d < kDims; ++d) {
    if (v_[d] > capacity.v_[d] + kEps) return false;
  }
  return true;
}

bool ResourceVector::any_negative() const {
  for (std::size_t d = 0; d < kDims; ++d) {
    if (v_[d] < -kEps) return true;
  }
  return false;
}

double ResourceVector::l1_norm() const {
  double sum = 0.0;
  for (double x : v_) sum += std::abs(x);
  return sum;
}

double ResourceVector::l2_norm() const {
  double sum = 0.0;
  for (double x : v_) sum += x * x;
  return std::sqrt(sum);
}

double ResourceVector::max_component() const {
  return *std::max_element(v_.begin(), v_.end());
}

double ResourceVector::dot(const ResourceVector& o) const {
  double sum = 0.0;
  for (std::size_t d = 0; d < kDims; ++d) sum += v_[d] * o.v_[d];
  return sum;
}

double ResourceVector::max_utilization(const ResourceVector& capacity) const {
  double worst = 0.0;
  for (std::size_t d = 0; d < kDims; ++d) {
    if (capacity.v_[d] > kEps) worst = std::max(worst, v_[d] / capacity.v_[d]);
  }
  return worst;
}

std::string ResourceVector::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(cpu=%.3f mem=%.3f net=%.3f)", v_[kCpu], v_[kMemory],
                v_[kNetwork]);
  return buf;
}

}  // namespace snooze::hypervisor
