// Graphviz export of the live hierarchy — the paper's CLI "supports ...
// live visualizing and exporting of the hierarchy organization" (§II.A).
#pragma once

#include <string>

#include "core/system.hpp"

namespace snooze::cli {

/// Render the current EP / GL / GM / LC organization as a Graphviz digraph:
/// EPs point at the GL they know, the GL at its registered GMs, each GM at
/// its LCs; node labels carry VM counts and power states.
std::string hierarchy_dot(core::SnoozeSystem& system);

}  // namespace snooze::cli
