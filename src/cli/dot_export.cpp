#include "cli/dot_export.hpp"

#include <map>
#include <sstream>

namespace snooze::cli {

std::string hierarchy_dot(core::SnoozeSystem& system) {
  std::ostringstream out;
  out << "digraph snooze {\n";
  out << "  rankdir=TB;\n";
  out << "  node [shape=box, fontsize=10];\n";

  std::map<net::Address, std::string> lc_names;
  for (const auto& lc : system.local_controllers()) {
    lc_names[lc->address()] = lc->name();
  }

  core::GroupManager* gl = system.leader();
  const std::string gl_node = gl != nullptr ? gl->name() : "no_gl";
  if (gl != nullptr) {
    out << "  \"" << gl_node << "\" [label=\"GL " << gl->name() << "\\n"
        << gl->known_gm_count() << " GMs\", style=filled, fillcolor=gold];\n";
  } else {
    out << "  \"no_gl\" [label=\"no GL elected\", style=dashed];\n";
  }

  for (const auto& ep : system.entry_points()) {
    if (!ep->alive()) continue;
    out << "  \"" << ep->name() << "\" [label=\"EP " << ep->name()
        << "\", style=filled, fillcolor=lightblue];\n";
    if (ep->known_gl() != net::kNullAddress && gl != nullptr) {
      out << "  \"" << ep->name() << "\" -> \"" << gl_node << "\";\n";
    }
  }

  for (const auto& gm : system.group_managers()) {
    if (!gm->alive() || gm->is_leader()) continue;
    out << "  \"" << gm->name() << "\" [label=\"GM " << gm->name() << "\\n"
        << gm->lc_count() << " LCs, " << gm->vm_count()
        << " VMs\", style=filled, fillcolor=palegreen];\n";
    if (gl != nullptr) {
      out << "  \"" << gl_node << "\" -> \"" << gm->name() << "\";\n";
    }
    for (const core::LcInfo& info : gm->lc_infos()) {
      const auto name_it = lc_names.find(info.lc);
      const std::string lc_label =
          name_it != lc_names.end() ? name_it->second : std::to_string(info.lc);
      out << "  \"" << lc_label << "\" [label=\"" << lc_label << "\\n"
          << info.vm_count << " VMs"
          << (info.powered_on ? "" : " (low power)") << "\""
          << (info.powered_on ? "" : ", style=filled, fillcolor=gray80") << "];\n";
      out << "  \"" << gm->name() << "\" -> \"" << lc_label << "\";\n";
    }
  }

  // Unassigned (still-joining) LCs float free at the bottom.
  for (const auto& lc : system.local_controllers()) {
    if (!lc->alive() || lc->assigned()) continue;
    out << "  \"" << lc->name() << "\" [label=\"" << lc->name()
        << "\\n(joining)\", style=dotted];\n";
  }

  out << "}\n";
  return out.str();
}

}  // namespace snooze::cli
