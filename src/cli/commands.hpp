// Command-line interface over a simulated Snooze deployment (paper §II.A:
// "a command line interface (CLI) is implemented on top of those services.
// It supports the VM management as well as live visualizing and exporting of
// the hierarchy organization").
//
// The interpreter is a library (CliSession) so it is unit-testable; the
// snooze_cli binary wires it to stdin/stdout.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "obs/health_monitor.hpp"
#include "obs/incident.hpp"
#include "ops/autoscaler.hpp"
#include "ops/upgrade.hpp"

namespace snooze::cli {

struct CommandResult {
  bool ok = true;
  bool quit = false;
  std::string output;
};

class CliSession {
 public:
  /// Takes ownership of a running (or about-to-run) system.
  explicit CliSession(std::unique_ptr<core::SnoozeSystem> system);

  /// Convenience: build + start a deployment from basic parameters.
  static std::unique_ptr<CliSession> boot(std::size_t gms, std::size_t lcs,
                                          std::uint64_t seed, bool energy_savings);

  /// Execute one command line; never throws (errors come back in .output).
  CommandResult execute(const std::string& line);

  /// One help screen listing every command.
  [[nodiscard]] static std::string help();

  [[nodiscard]] core::SnoozeSystem& system() { return *system_; }
  [[nodiscard]] obs::HealthMonitor& monitor() { return *monitor_; }

 private:
  CommandResult cmd_submit(const std::vector<std::string>& args);
  CommandResult cmd_run(const std::vector<std::string>& args);
  CommandResult cmd_hierarchy();
  CommandResult cmd_export_dot(const std::vector<std::string>& args);
  CommandResult cmd_stats();
  CommandResult cmd_fail(const std::vector<std::string>& args);
  CommandResult cmd_failover(const std::vector<std::string>& args);
  CommandResult cmd_chaos(const std::vector<std::string>& args);
  CommandResult cmd_metrics(const std::vector<std::string>& args);
  CommandResult cmd_trace(const std::vector<std::string>& args);
  CommandResult cmd_health(const std::vector<std::string>& args);
  CommandResult cmd_incident(const std::vector<std::string>& args);
  /// Run the passive incident engine over the current trace snapshot.
  [[nodiscard]] obs::IncidentReport analyze_incidents_now() const;
  CommandResult cmd_slo();
  CommandResult cmd_top(const std::vector<std::string>& args);
  CommandResult cmd_upgrade(const std::vector<std::string>& args);
  CommandResult cmd_autoscale(const std::vector<std::string>& args);

  std::unique_ptr<core::SnoozeSystem> system_;
  /// Always-on health sampler over system_ (declared after it: destroyed
  /// first, constructed second).
  std::unique_ptr<obs::HealthMonitor> monitor_;
  /// Long-horizon operations, created on demand by their commands.
  std::unique_ptr<ops::Autoscaler> autoscaler_;
  std::unique_ptr<ops::RollingUpgrade> upgrade_;
};

/// Tokenize a command line on whitespace.
std::vector<std::string> tokenize(const std::string& line);

}  // namespace snooze::cli
