#include "cli/commands.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "chaos/runner.hpp"
#include "cli/dot_export.hpp"
#include "telemetry/export.hpp"

namespace snooze::cli {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}

CliSession::CliSession(std::unique_ptr<core::SnoozeSystem> system)
    : system_(std::move(system)),
      monitor_(std::make_unique<obs::HealthMonitor>(*system_)) {
  monitor_->start();
  // Keep submit-latency exemplars so `metrics show` and incident reports can
  // link a tail bucket to its span tree. Passive: no events, no RNG.
  system_->telemetry()
      .metrics()
      .histogram("client.submit_latency")
      .enable_exemplars();
}

std::unique_ptr<CliSession> CliSession::boot(std::size_t gms, std::size_t lcs,
                                             std::uint64_t seed, bool energy_savings) {
  core::SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = gms;
  spec.local_controllers = lcs;
  spec.seed = seed;
  spec.config.energy_savings = energy_savings;
  auto system = std::make_unique<core::SnoozeSystem>(spec);
  system->start();
  system->run_until_stable(300.0);
  return std::make_unique<CliSession>(std::move(system));
}

std::string CliSession::help() {
  return "commands:\n"
         "  submit <n> [cpu] [mem] [net] [lifetime_s]  submit n VMs\n"
         "  run <seconds>                              advance virtual time\n"
         "  hierarchy                                  print the hierarchy\n"
         "  export-dot [file]                          Graphviz of the hierarchy\n"
         "  stats                                      counters and energy\n"
         "  fail gl | fail gm <i> | fail lc <i>        inject a crash\n"
         "  failover show                              epochs, fences and reconciliation\n"
         "  chaos seed <n> [duration]                  seeded chaos run + invariants\n"
         "  chaos script <file>                        run a fault-schedule script\n"
         "  chaos show <n> [duration]                  print the schedule for a seed\n"
         "  metrics show                               telemetry counters/gauges/histograms\n"
         "  metrics csv <file>                         export all metrics as CSV\n"
         "  trace export <file>                        Chrome trace_event JSON (Perfetto)\n"
         "  trace csv <file>                           span time series as CSV\n"
         "  health                                     time-series dashboard\n"
         "  health csv <file>                          export the time series as CSV\n"
         "  health path                                critical-path phase breakdown\n"
         "  incident list                              episodes + root-cause hypotheses\n"
         "  incident show <id>                         evidence chain for one episode\n"
         "  incident csv <file>                        export the incident report\n"
         "  slo                                        SLIs vs SLO thresholds (pass/fail)\n"
         "  top [n]                                    busiest LC nodes (incl. per-socket\n"
         "                                             util and interference penalty)\n"
         "  upgrade start [version] [wave_size]        SLO-gated rolling upgrade\n"
         "  upgrade status                             waves, versions, pauses\n"
         "  autoscale on | off | status                GL-driven LC power scaling\n"
         "  help                                       this screen\n"
         "  quit                                       leave\n";
}

CommandResult CliSession::execute(const std::string& line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return {};
  const std::string& cmd = tokens.front();
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "help") return {true, false, help()};
  if (cmd == "quit" || cmd == "exit") return {true, true, ""};
  if (cmd == "submit") return cmd_submit(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "hierarchy") return cmd_hierarchy();
  if (cmd == "export-dot") return cmd_export_dot(args);
  if (cmd == "stats") return cmd_stats();
  if (cmd == "fail") return cmd_fail(args);
  if (cmd == "failover") return cmd_failover(args);
  if (cmd == "chaos") return cmd_chaos(args);
  if (cmd == "metrics") return cmd_metrics(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "health") return cmd_health(args);
  if (cmd == "incident") return cmd_incident(args);
  if (cmd == "slo") return cmd_slo();
  if (cmd == "top") return cmd_top(args);
  if (cmd == "upgrade") return cmd_upgrade(args);
  if (cmd == "autoscale") return cmd_autoscale(args);
  return {false, false, "unknown command '" + cmd + "' (try 'help')\n"};
}

CommandResult CliSession::cmd_submit(const std::vector<std::string>& args) {
  if (args.empty()) return {false, false, "usage: submit <n> [cpu] [mem] [net] [lifetime]\n"};
  const auto n = static_cast<std::size_t>(std::strtoull(args[0].c_str(), nullptr, 10));
  if (n == 0 || n > 100000) return {false, false, "submit: bad VM count\n"};
  auto dim = [&](std::size_t i, double def) {
    return args.size() > i ? std::strtod(args[i].c_str(), nullptr) : def;
  };
  const double cpu = dim(1, 0.125);
  const double mem = dim(2, cpu);
  const double net = dim(3, cpu);
  const double lifetime = dim(4, 0.0);
  std::vector<core::VmDescriptor> vms;
  for (std::size_t i = 0; i < n; ++i) {
    core::TraceSpec trace;
    trace.kind = core::TraceSpec::Kind::kConstant;
    trace.a = 0.7;
    vms.push_back(system_->make_vm({cpu, mem, net}, lifetime, trace));
  }
  const auto before_ok = system_->client().succeeded();
  const auto before_fail = system_->client().failed();
  system_->client().submit_all(std::move(vms), 0.1);
  system_->engine().run_until(system_->engine().now() + 0.1 * static_cast<double>(n) +
                              60.0);
  std::ostringstream out;
  out << "submitted " << n << ": " << (system_->client().succeeded() - before_ok)
      << " placed, " << (system_->client().failed() - before_fail) << " failed; "
      << system_->running_vm_count() << " VMs running\n";
  return {true, false, out.str()};
}

CommandResult CliSession::cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) return {false, false, "usage: run <seconds>\n"};
  const double seconds = std::strtod(args[0].c_str(), nullptr);
  if (seconds <= 0.0) return {false, false, "run: seconds must be positive\n"};
  system_->engine().run_until(system_->engine().now() + seconds);
  std::ostringstream out;
  out << "t=" << system_->engine().now() << "s\n";
  return {true, false, out.str()};
}

CommandResult CliSession::cmd_hierarchy() {
  return {true, false, system_->hierarchy_dump()};
}

CommandResult CliSession::cmd_export_dot(const std::vector<std::string>& args) {
  const std::string dot = hierarchy_dot(*system_);
  if (args.empty()) return {true, false, dot};
  std::ofstream out(args[0]);
  if (!out) return {false, false, "export-dot: cannot open " + args[0] + "\n"};
  out << dot;
  return {true, false, "wrote " + args[0] + "\n"};
}

CommandResult CliSession::cmd_stats() {
  std::ostringstream out;
  out << "t=" << system_->engine().now() << "s\n";
  out << "VMs running: " << system_->running_vm_count() << "\n";
  out << "LCs assigned/suspended: " << system_->assigned_lc_count() << "/"
      << system_->suspended_lc_count() << "\n";
  out << "client: " << system_->client().succeeded() << " ok, "
      << system_->client().failed() << " failed\n";
  out << "energy: " << system_->total_energy() / 1000.0 << " kJ\n";
  out << "useful work: " << system_->total_work() << " VM-s\n";
  const auto net_stats = system_->network().stats();
  out << "control messages: " << net_stats.messages_sent << " sent, "
      << net_stats.messages_dropped << " dropped\n";
  std::uint64_t migrations = 0, suspends = 0, wakeups = 0;
  for (const auto& gm : system_->group_managers()) {
    migrations += gm->counters().migrations_completed;
    suspends += gm->counters().suspends;
    wakeups += gm->counters().wakeups;
  }
  out << "migrations/suspends/wakeups: " << migrations << "/" << suspends << "/"
      << wakeups << "\n";
  return {true, false, out.str()};
}

CommandResult CliSession::cmd_fail(const std::vector<std::string>& args) {
  if (args.empty()) return {false, false, "usage: fail gl | fail gm <i> | fail lc <i>\n"};
  if (args[0] == "gl") {
    const int index = system_->fail_gl();
    if (index < 0) return {false, false, "fail gl: no leader elected\n"};
    return {true, false, "crashed the GL (gm index " + std::to_string(index) + ")\n"};
  }
  if (args.size() < 2) return {false, false, "usage: fail gm <i> | fail lc <i>\n"};
  const auto index = static_cast<std::size_t>(std::strtoull(args[1].c_str(), nullptr, 10));
  if (args[0] == "gm") {
    if (index >= system_->group_managers().size()) {
      return {false, false, "fail gm: index out of range\n"};
    }
    system_->fail_gm(index);
    return {true, false, "crashed gm-" + std::to_string(index) + "\n"};
  }
  if (args[0] == "lc") {
    if (index >= system_->local_controllers().size()) {
      return {false, false, "fail lc: index out of range\n"};
    }
    system_->fail_lc(index);
    return {true, false, "crashed lc-" + std::to_string(index) + "\n"};
  }
  return {false, false, "fail: unknown target '" + args[0] + "'\n"};
}

CommandResult CliSession::cmd_failover(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "show") {
    return {false, false, "usage: failover show\n"};
  }
  std::ostringstream out;
  out << "group managers (authority epochs):\n";
  std::uint64_t stepdowns = 0, reconciliations = 0;
  for (const auto& gm : system_->group_managers()) {
    out << "  " << gm->name() << ": "
        << (gm->alive() ? (gm->is_leader() ? "GL" : "gm") : "down")
        << " epoch=" << gm->epoch();
    if (gm->reconciling()) out << " [reconciling]";
    out << "\n";
    stepdowns += gm->counters().stepdowns;
    reconciliations += gm->counters().reconciliations;
  }
  out << "local controllers (GM lease epochs):\n";
  for (const auto& lc : system_->local_controllers()) {
    out << "  " << lc->name() << ": lease=" << lc->lease_epoch()
        << " gl_seen=" << lc->gl_epoch_seen()
        << " fenced=" << lc->fence_rejected()
        << " stale_accepts=" << lc->stale_accepts() << "\n";
  }
  const auto& registry = system_->telemetry().metrics();
  out << "failover history: " << stepdowns << " stepdowns, " << reconciliations
      << " reconciliations\n";
  if (const auto* epoch = registry.find_gauge("failover.epoch")) {
    out << "current GL epoch (failover.epoch): "
        << static_cast<std::uint64_t>(epoch->current()) << "\n";
  }
  if (const auto* fenced = registry.find_counter("fence.rejected")) {
    out << "fence.rejected: " << fenced->value() << "\n";
  }
  if (const auto* recon = registry.find_histogram("reconcile.duration")) {
    out << "reconcile.duration: count=" << recon->count() << " mean="
        << recon->mean() << "s max=" << recon->max() << "s\n";
  }
  return {true, false, out.str()};
}

CommandResult CliSession::cmd_chaos(const std::vector<std::string>& args) {
  const std::string usage =
      "usage: chaos seed <n> [duration] | chaos script <file> | chaos show <n> [duration]\n";
  if (args.size() < 2) return {false, false, usage};

  // Chaos runs execute on a fresh cluster shaped like this session's (the
  // interactive deployment stays untouched); the seed fully determines the
  // run, so a failure reported here reproduces anywhere.
  chaos::ChaosRunConfig cfg;
  cfg.topology.entry_points = system_->spec().entry_points;
  cfg.topology.group_managers = system_->spec().group_managers;
  cfg.topology.local_controllers = system_->spec().local_controllers;
  cfg.config = system_->spec().config;

  auto finish = [](const chaos::ChaosRunResult& result) {
    std::ostringstream out;
    out << result.report;
    out << "trace hash: " << std::hex << result.trace_hash << std::dec << "\n";
    return CommandResult{result.ok(), false, out.str()};
  };

  if (args[0] == "seed" || args[0] == "show") {
    char* end = nullptr;
    cfg.seed = std::strtoull(args[1].c_str(), &end, 10);
    if (end == args[1].c_str() || *end != '\0') {
      return {false, false, "chaos: bad seed '" + args[1] + "'\n"};
    }
    if (args.size() > 2) {
      const double duration = std::strtod(args[2].c_str(), nullptr);
      if (duration <= 0.0) return {false, false, "chaos: bad duration\n"};
      cfg.spec.duration = duration;
    }
    if (args[0] == "show") {
      const auto schedule =
          chaos::generate_schedule(cfg.spec, cfg.topology, cfg.seed);
      return {true, false, schedule.to_script()};
    }
    return finish(chaos::run_chaos(cfg));
  }
  if (args[0] == "script") {
    std::ifstream in(args[1]);
    if (!in) return {false, false, "chaos: cannot open " + args[1] + "\n"};
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const auto schedule = chaos::parse_script(text.str());
      return finish(chaos::run_chaos_schedule(cfg, schedule));
    } catch (const std::exception& e) {
      return {false, false, std::string(e.what()) + "\n"};
    }
  }
  return {false, false, usage};
}

namespace {

CommandResult write_file(const std::string& path, const std::string& content,
                         const std::string& cmd) {
  std::ofstream out(path);
  if (!out) return {false, false, cmd + ": cannot open " + path + "\n"};
  out << content;
  return {true, false, "wrote " + path + "\n"};
}

}  // namespace

CommandResult CliSession::cmd_metrics(const std::vector<std::string>& args) {
  const std::string usage = "usage: metrics show | metrics csv <file>\n";
  if (args.empty()) return {false, false, usage};
  // Engine gauges are pull-sampled so observation never schedules events.
  system_->telemetry().sample_engine(system_->engine());
  const auto& registry = system_->telemetry().metrics();
  if (args[0] == "show") return {true, false, telemetry::metrics_table(registry)};
  if (args[0] == "csv") {
    if (args.size() < 2) return {false, false, usage};
    return write_file(args[1], telemetry::metrics_csv(registry), "metrics csv");
  }
  return {false, false, usage};
}

CommandResult CliSession::cmd_trace(const std::vector<std::string>& args) {
  const std::string usage = "usage: trace export <file> | trace csv <file>\n";
  if (args.size() < 2) return {false, false, usage};
  const auto& spans = system_->telemetry().spans();
  if (args[0] == "export") {
    // Spans plus Perfetto counter lanes from the health monitor's series and
    // incident windows/evidence instants from the passive incident engine.
    monitor_->sample_now();
    return write_file(
        args[1],
        obs::chrome_trace_with_incidents(
            obs::chrome_trace_with_counters(spans, system_->engine().now(),
                                            monitor_->store()),
            analyze_incidents_now()),
        "trace export");
  }
  if (args[0] == "csv") {
    return write_file(args[1], telemetry::spans_csv(spans), "trace csv");
  }
  return {false, false, usage};
}

CommandResult CliSession::cmd_health(const std::vector<std::string>& args) {
  // Pull-refresh so the dashboard reflects the current virtual time even if
  // the last periodic tick is up to one period old.
  monitor_->sample_now();
  if (args.empty()) return {true, false, monitor_->dashboard()};
  if (args[0] == "csv") {
    if (args.size() < 2) return {false, false, "usage: health csv <file>\n"};
    return write_file(args[1], monitor_->store().csv(), "health csv");
  }
  if (args[0] == "path") return {true, false, monitor_->critical_path().table()};
  return {false, false, "usage: health | health csv <file> | health path\n"};
}

obs::IncidentReport CliSession::analyze_incidents_now() const {
  obs::AddressNames names;
  for (const auto& gm : system_->group_managers()) {
    names[gm->address()] = gm->name();
  }
  for (const auto& lc : system_->local_controllers()) {
    names[lc->address()] = lc->name();
  }
  return obs::analyze_incidents(system_->trace().records(),
                                &system_->telemetry().spans(),
                                system_->engine().now(), names);
}

CommandResult CliSession::cmd_incident(const std::vector<std::string>& args) {
  const std::string usage =
      "usage: incident list | incident show <id> | incident csv <file>\n";
  if (args.empty()) return {false, false, usage};
  const obs::IncidentReport report = analyze_incidents_now();
  if (args[0] == "list") {
    if (report.episodes.empty()) return {true, false, "no incidents\n"};
    return {true, false, report.table()};
  }
  if (args[0] == "show") {
    if (args.size() < 2) return {false, false, usage};
    const int id = static_cast<int>(std::strtol(args[1].c_str(), nullptr, 10));
    return {true, false, report.show(id, &system_->telemetry().spans())};
  }
  if (args[0] == "csv") {
    if (args.size() < 2) return {false, false, usage};
    return write_file(args[1], report.csv(), "incident csv");
  }
  return {false, false, usage};
}

CommandResult CliSession::cmd_slo() {
  monitor_->sample_now();
  return {true, false, monitor_->slo_table()};
}

CommandResult CliSession::cmd_top(const std::vector<std::string>& args) {
  std::size_t n = 10;
  if (!args.empty()) {
    n = static_cast<std::size_t>(std::strtoull(args[0].c_str(), nullptr, 10));
    if (n == 0) return {false, false, "usage: top [n]\n"};
  }
  monitor_->sample_now();
  return {true, false, monitor_->top(n)};
}

namespace {

const char* upgrade_state_name(ops::UpgradeState state) {
  switch (state) {
    case ops::UpgradeState::kIdle: return "idle";
    case ops::UpgradeState::kRunning: return "running";
    case ops::UpgradeState::kPaused: return "paused";
    case ops::UpgradeState::kDone: return "done";
    case ops::UpgradeState::kRolledBack: return "rolled_back";
  }
  return "?";
}

}  // namespace

CommandResult CliSession::cmd_upgrade(const std::vector<std::string>& args) {
  const std::string usage = "usage: upgrade start [version] [wave_size] | upgrade status\n";
  if (args.empty()) return {false, false, usage};

  auto versions = [this](std::ostringstream& out) {
    std::uint32_t lo = ~0u, hi = 0;
    for (const auto& lc : system_->local_controllers()) {
      lo = std::min(lo, lc->software_version());
      hi = std::max(hi, lc->software_version());
    }
    for (const auto& gm : system_->group_managers()) {
      lo = std::min(lo, gm->software_version());
      hi = std::max(hi, gm->software_version());
    }
    out << "fleet versions: v" << lo << (hi != lo ? ".." : "")
        << (hi != lo ? "v" + std::to_string(hi) : "") << "\n";
  };

  if (args[0] == "status") {
    std::ostringstream out;
    versions(out);
    if (upgrade_) {
      out << "upgrade: " << upgrade_state_name(upgrade_->state()) << ", waves "
          << upgrade_->waves_completed() << "/" << upgrade_->wave_count()
          << ", nodes upgraded " << upgrade_->nodes_upgraded() << ", pauses "
          << upgrade_->pauses() << ", rollbacks " << upgrade_->rollbacks() << "\n";
    } else {
      out << "no upgrade run in this session\n";
    }
    return {true, false, out.str()};
  }
  if (args[0] != "start") return {false, false, usage};
  if (upgrade_ && !upgrade_->finished()) {
    return {false, false, "upgrade: already in progress (see 'upgrade status')\n"};
  }

  ops::UpgradeConfig cfg;
  // Default target: one above the highest version currently deployed.
  std::uint32_t current = 0;
  for (const auto& lc : system_->local_controllers()) {
    current = std::max(current, lc->software_version());
  }
  for (const auto& gm : system_->group_managers()) {
    current = std::max(current, gm->software_version());
  }
  cfg.target_version = current + 1;
  if (args.size() > 1) {
    const auto v = std::strtoul(args[1].c_str(), nullptr, 10);
    if (v == 0) return {false, false, "upgrade: bad version\n"};
    cfg.target_version = static_cast<std::uint32_t>(v);
  }
  if (args.size() > 2) {
    const auto w = std::strtoul(args[2].c_str(), nullptr, 10);
    if (w == 0) return {false, false, "upgrade: bad wave size\n"};
    cfg.wave_size = w;
  }
  upgrade_ = std::make_unique<ops::RollingUpgrade>(*system_, monitor_.get(), cfg);
  upgrade_->start();
  // Drive the run to completion (or a pause that outlives the bound — the
  // session stays interactive either way; 'run' advances a paused upgrade).
  const sim::Time bound = system_->engine().now() + 3600.0;
  while (!upgrade_->finished() && system_->engine().now() < bound &&
         upgrade_->state() != ops::UpgradeState::kPaused) {
    system_->engine().run_until(system_->engine().now() + 5.0);
  }
  std::ostringstream out;
  out << "upgrade to v" << cfg.target_version << ": "
      << upgrade_state_name(upgrade_->state()) << " after "
      << upgrade_->waves_completed() << "/" << upgrade_->wave_count() << " waves ("
      << upgrade_->nodes_upgraded() << " nodes, " << upgrade_->pauses()
      << " pauses, " << upgrade_->forced_drains() << " forced drains)\n";
  versions(out);
  return {upgrade_->state() != ops::UpgradeState::kRolledBack, false, out.str()};
}

CommandResult CliSession::cmd_autoscale(const std::vector<std::string>& args) {
  const std::string usage = "usage: autoscale on | off | status\n";
  if (args.empty()) return {false, false, usage};
  if (args[0] == "on") {
    if (!autoscaler_) autoscaler_ = std::make_unique<ops::Autoscaler>(*system_);
    autoscaler_->start();
    return {true, false, "autoscaler on (advance time with 'run' to let it act)\n"};
  }
  if (args[0] == "off") {
    if (autoscaler_) autoscaler_->stop();
    return {true, false, "autoscaler off\n"};
  }
  if (args[0] != "status") return {false, false, usage};
  std::ostringstream out;
  if (!autoscaler_) {
    out << "autoscaler: never enabled\n";
  } else {
    out << "autoscaler: " << (autoscaler_->running() ? "on" : "off")
        << ", scale_ups " << autoscaler_->scale_ups() << ", scale_downs "
        << autoscaler_->scale_downs();
    if (!std::isnan(autoscaler_->last_utilization())) {
      out << ", fleet utilization " << autoscaler_->last_utilization();
    }
    out << "\n";
  }
  out << "suspended LCs: " << system_->suspended_lc_count() << "/"
      << system_->local_controllers().size() << "\n";
  return {true, false, out.str()};
}

}  // namespace snooze::cli
