#include "chaos/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "hypervisor/vm.hpp"

namespace snooze::chaos {

InvariantChecker::InvariantChecker(core::SnoozeSystem& system)
    : InvariantChecker(system, Options{}) {}

InvariantChecker::InvariantChecker(core::SnoozeSystem& system, Options options)
    : sim::Actor(system.engine(), "invariants"), system_(system), options_(options) {}

void InvariantChecker::start() {
  // Seed the monotonicity baselines so the first sample has no false delta.
  for (const auto& lc : system_.local_controllers()) {
    last_energy_[lc->name()] = lc->energy_joules(now());
  }
  last_total_energy_ = system_.total_energy();
  last_traffic_ = system_.network().stats();
  every(options_.sample_period, [this] {
    sample();
    return true;
  });
}

void InvariantChecker::note_accepted(core::VmId id) { accepted_.push_back(id); }

void InvariantChecker::excuse_vms(const std::vector<core::VmId>& ids) {
  excused_.insert(ids.begin(), ids.end());
}

void InvariantChecker::violation(const std::string& message) {
  std::ostringstream out;
  out << "t=" << now() << ": " << message;
  violations_.push_back(out.str());
  // Also land the breach in the deterministic trace so the incident engine
  // can open an episode on it. Healthy runs record nothing here, so golden
  // traces are unaffected.
  system_.trace().record(name(), "invariant.violation", message);
}

void InvariantChecker::sample() {
  check_leaders();
  check_duplicates();
  check_energy();
  check_traffic();
  check_epochs();
}

void InvariantChecker::check_epochs() {
  // No accepted command from a stale epoch: every fence keeps a tripwire
  // counting authority-bearing commands that reached the apply path while
  // below the receiver's high-water mark. The sum must never move.
  std::uint64_t stale = 0;
  for (const auto& gm : system_.group_managers()) stale += gm->stale_accepts();
  for (const auto& lc : system_.local_controllers()) stale += lc->stale_accepts();
  if (stale > last_stale_accepts_) {
    violation("stale-epoch command applied: fence tripwires advanced by " +
              std::to_string(stale - last_stale_accepts_));
  }
  last_stale_accepts_ = stale;

  // Distinct terms: two live, mutually reachable leaders must disagree on
  // their election epoch (equal epochs mean the fencing tokens cannot order
  // them and the fence is useless).
  std::vector<core::GroupManager*> leaders;
  for (const auto& gm : system_.group_managers()) {
    if (gm->alive() && gm->is_leader()) leaders.push_back(gm.get());
  }
  for (std::size_t i = 0; i < leaders.size(); ++i) {
    for (std::size_t j = i + 1; j < leaders.size(); ++j) {
      if (leaders[i]->epoch() == leaders[j]->epoch() &&
          system_.network().reachable(leaders[i]->address(), leaders[j]->address())) {
        violation("two reachable leaders share election epoch " +
                  std::to_string(leaders[i]->epoch()));
      }
    }
  }
}

void InvariantChecker::check_leaders() {
  // Collect live leaders, then look for a pair that can still talk to each
  // other: leaders on both sides of a partition are the expected Snooze
  // behaviour, mutually reachable leaders must resolve within the grace.
  std::vector<core::GroupManager*> leaders;
  for (const auto& gm : system_.group_managers()) {
    if (gm->alive() && gm->is_leader()) leaders.push_back(gm.get());
  }
  bool reachable_pair = false;
  for (std::size_t i = 0; i < leaders.size() && !reachable_pair; ++i) {
    for (std::size_t j = i + 1; j < leaders.size(); ++j) {
      if (system_.network().reachable(leaders[i]->address(), leaders[j]->address()) &&
          system_.network().reachable(leaders[j]->address(), leaders[i]->address())) {
        reachable_pair = true;
        break;
      }
    }
  }
  if (!reachable_pair) {
    multi_leader_since_ = -1.0;
    return;
  }
  if (multi_leader_since_ < 0.0) {
    multi_leader_since_ = now();
    return;
  }
  if (now() - multi_leader_since_ > options_.multi_leader_grace) {
    violation("split-brain: " + std::to_string(leaders.size()) +
              " mutually reachable group leaders persisted past the grace window");
    multi_leader_since_ = now();  // re-arm so one incident reports once per window
  }
}

void InvariantChecker::check_duplicates() {
  // A VM counts towards duplication while actively running (or booting) on a
  // host; the migration source parked in kMigrating is the legal transient.
  std::map<core::VmId, int> active_hosts;
  for (const auto& lc : system_.local_controllers()) {
    if (!lc->alive()) continue;
    for (const auto& [id, vm] : lc->host().vms()) {
      const auto state = vm->state();
      if (state == hypervisor::VmState::kBooting ||
          state == hypervisor::VmState::kRunning) {
        ++active_hosts[id];
      }
    }
  }
  for (auto it = duplicate_since_.begin(); it != duplicate_since_.end();) {
    const auto found = active_hosts.find(it->first);
    if (found == active_hosts.end() || found->second < 2) {
      it = duplicate_since_.erase(it);  // resolved
    } else {
      ++it;
    }
  }
  for (const auto& [id, count] : active_hosts) {
    if (count < 2) continue;
    const auto [it, inserted] = duplicate_since_.emplace(id, now());
    if (inserted) continue;
    if (now() - it->second > options_.duplicate_grace) {
      violation("duplicate VM " + std::to_string(id) + " active on " +
                std::to_string(count) + " hosts past the grace window");
      it->second = now();  // one report per exceeded window
    }
  }
}

void InvariantChecker::check_energy() {
  constexpr double kSlack = 1e-9;
  double total = 0.0;
  for (const auto& lc : system_.local_controllers()) {
    const double joules = lc->energy_joules(now());
    total += joules;
    auto [it, inserted] = last_energy_.emplace(lc->name(), joules);
    if (!inserted) {
      if (joules + kSlack < it->second) {
        violation("energy meter of " + lc->name() + " went backwards (" +
                  std::to_string(it->second) + " -> " + std::to_string(joules) + " J)");
      }
      it->second = joules;
    }
  }
  if (total + kSlack < last_total_energy_) {
    violation("total energy went backwards");
  }
  last_total_energy_ = total;
}

void InvariantChecker::check_traffic() {
  const net::TrafficStats& s = system_.network().stats();
  if (s.messages_sent < last_traffic_.messages_sent ||
      s.messages_delivered < last_traffic_.messages_delivered ||
      s.messages_dropped < last_traffic_.messages_dropped ||
      s.messages_duplicated < last_traffic_.messages_duplicated ||
      s.bytes_sent < last_traffic_.bytes_sent) {
    violation("traffic counters went backwards");
  }
  if (s.messages_delivered + s.messages_dropped >
      s.messages_sent + s.messages_duplicated) {
    violation("traffic accounting inconsistent: delivered + dropped > sent + duplicated");
  }
  last_traffic_ = s;
}

bool InvariantChecker::final_check(sim::Time bound) {
  const bool converged = system_.run_until_stable(now() + bound);
  if (!converged) {
    violation("hierarchy failed to reconverge within " + std::to_string(bound) +
              "s after the last fault healed");
  }
  std::size_t leaders = 0;
  for (const auto& gm : system_.group_managers()) {
    if (gm->alive() && gm->is_leader()) ++leaders;
  }
  if (leaders != 1) {
    violation("expected exactly one group leader after healing, found " +
              std::to_string(leaders));
  }

  std::map<core::VmId, int> hosts;
  for (const auto& lc : system_.local_controllers()) {
    if (!lc->alive()) continue;
    for (const auto& [id, vm] : lc->host().vms()) {
      const auto state = vm->state();
      if (state == hypervisor::VmState::kBooting ||
          state == hypervisor::VmState::kRunning ||
          state == hypervisor::VmState::kMigrating) {
        ++hosts[id];
      }
    }
  }
  for (const core::VmId id : accepted_) {
    if (excused_.count(id) > 0) continue;
    const auto it = hosts.find(id);
    const int count = it == hosts.end() ? 0 : it->second;
    if (count == 0) {
      violation("accepted VM " + std::to_string(id) + " lost (hosted nowhere)");
    } else if (count > 1) {
      violation("accepted VM " + std::to_string(id) + " hosted " +
                std::to_string(count) + " times after healing");
    }
  }
  return converged;
}

std::string InvariantChecker::report() const {
  if (violations_.empty()) {
    return "all invariants held (" + std::to_string(accepted_.size()) +
           " accepted VMs, " + std::to_string(excused_.size()) + " excused)\n";
  }
  std::ostringstream out;
  out << violations_.size() << " invariant violation(s):\n";
  for (const auto& v : violations_) out << "  " << v << '\n';
  return out.str();
}

}  // namespace snooze::chaos
