#include "chaos/runner.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "chaos/ground_truth.hpp"
#include "chaos/injector.hpp"
#include "core/system.hpp"
#include "obs/health_monitor.hpp"

namespace snooze::chaos {

ChaosRunResult run_chaos(const ChaosRunConfig& cfg) {
  return run_chaos_schedule(cfg,
                            generate_schedule(cfg.spec, cfg.topology, cfg.seed));
}

ChaosRunResult run_chaos_schedule(const ChaosRunConfig& cfg,
                                  const FaultSchedule& schedule) {
  core::SystemSpec spec;
  spec.entry_points = cfg.topology.entry_points;
  spec.group_managers = cfg.topology.group_managers;
  spec.local_controllers = cfg.topology.local_controllers;
  spec.host_template.topology = cfg.host_topology;
  spec.config = cfg.config;
  spec.seed = cfg.seed;
  core::SnoozeSystem system(spec);
  system.trace().set_max_records(cfg.max_trace_records);
  if (cfg.incidents) {
    // Retain exemplars so the incident report can link the worst submit
    // bucket to its span tree. Passive: no events, no RNG, no trace records.
    system.telemetry()
        .metrics()
        .histogram("client.submit_latency")
        .enable_exemplars();
  }
  system.start();
  system.run_until_stable(cfg.stabilize_bound);

  InvariantChecker checker(system, cfg.invariants);
  checker.start();
  ChaosInjector injector(system, schedule, &checker);
  const sim::Time chaos_start = system.engine().now();
  injector.start();

  std::unique_ptr<obs::HealthMonitor> monitor;
  if (cfg.health_monitor) {
    monitor = std::make_unique<obs::HealthMonitor>(system);
    monitor->start();
  }

  std::unique_ptr<ops::Autoscaler> autoscaler;
  if (cfg.ops.autoscaler) {
    autoscaler = std::make_unique<ops::Autoscaler>(system, cfg.ops.autoscaler_config);
    autoscaler->start();
  }
  std::unique_ptr<ops::RollingUpgrade> upgrade;
  if (cfg.ops.upgrade_at >= 0.0) {
    upgrade = std::make_unique<ops::RollingUpgrade>(system, monitor.get(),
                                                    cfg.ops.upgrade_config);
    ops::RollingUpgrade* up = upgrade.get();
    system.engine().schedule(cfg.ops.upgrade_at, [up] { up->start(); });
  }

  // Stagger the workload across the fault window so submissions race the
  // injected failures. VMs run unbounded: each accepted one must survive to
  // the final check unless its host was deliberately crashed.
  for (std::size_t i = 0; i < cfg.vms; ++i) {
    const interference::MemProfile profile =
        cfg.vm_profiles.empty() ? interference::MemProfile{}
                                : cfg.vm_profiles[i % cfg.vm_profiles.size()];
    system.engine().schedule(
        cfg.vm_inter_arrival * static_cast<double>(i + 1),
        [&system, &checker, profile] {
      const core::VmDescriptor vm = system.make_vm({0.15, 0.15, 0.15}, 0.0, {}, profile);
      const core::VmId id = vm.id;
      system.client().submit(vm, [&checker, id](bool ok, net::Address, sim::Time) {
        if (ok) checker.note_accepted(id);
      });
    });
  }

  // Optional flash crowd: finite-lifetime VMs (they terminate on their own,
  // so they are not registered with the invariant checker — a legitimately
  // expired VM is not a lost one).
  if (cfg.burst_at >= 0.0) {
    for (std::size_t i = 0; i < cfg.burst_vms; ++i) {
      system.engine().schedule(
          cfg.burst_at + cfg.burst_inter_arrival * static_cast<double>(i),
          [&system, &cfg] {
            system.client().submit(
                system.make_vm({0.15, 0.15, 0.15}, cfg.burst_lifetime),
                [](bool, net::Address, sim::Time) {});
          });
    }
  }

  system.engine().run_until(chaos_start + schedule.duration + 1.0);
  injector.heal_all_remaining();

  ChaosRunResult result;
  result.converged = checker.final_check(cfg.converge_bound);
  result.invariants_ok = checker.ok();
  result.violations = checker.violations();
  result.faults_injected = injector.faults_injected();
  result.vms_accepted = checker.accepted_count();
  result.vms_excused = checker.excused_count();

  const net::TrafficStats& stats = system.network().stats();
  result.messages_sent = stats.messages_sent;
  result.messages_dropped = stats.messages_dropped;
  result.messages_duplicated = stats.messages_duplicated;
  for (const auto& gm : system.group_managers()) {
    result.fence_rejected += gm->fence_rejected();
    result.stale_accepts += gm->stale_accepts();
    result.stepdowns += gm->counters().stepdowns;
    result.slow_flags += gm->counters().slow_flags;
    result.probations += gm->counters().probations;
    result.quarantines += gm->counters().quarantines;
    result.reinstatements += gm->counters().reinstatements;
    result.quarantine_flaps += gm->counters().quarantine_flaps;
  }
  for (const auto& lc : system.local_controllers()) {
    result.fence_rejected += lc->fence_rejected();
    result.stale_accepts += lc->stale_accepts();
  }

  // Fingerprint: the full event trace plus the network counters. Identical
  // config + seed must reproduce this value bit for bit.
  std::uint64_t h = system.trace().hash();
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(stats.messages_sent);
  mix(stats.messages_delivered);
  mix(stats.messages_dropped);
  mix(stats.messages_duplicated);
  mix(stats.bytes_sent);
  result.trace_hash = h;
  if (const auto* c = system.telemetry().metrics().find_counter("rpc.hedges")) {
    result.rpc_hedges = c->value();
  }
  if (const auto* c = system.telemetry().metrics().find_counter("rpc.hedges_won")) {
    result.rpc_hedges_won = c->value();
  }
  if (cfg.capture_trace) result.trace_records = system.trace().records();

  if (monitor) {
    monitor->sample_now();  // final sample at run end
    result.slo_alerts_fired = monitor->alerts_fired();
    result.slo_alerts_cleared = monitor->alerts_cleared();
    result.failover_episodes = monitor->failover_episodes();
    const double mttr = monitor->failover_mttr();
    result.failover_mttr_s = std::isnan(mttr) ? -1.0 : mttr;
    if (cfg.capture_timeseries) result.timeseries_csv = monitor->store().csv();
  }
  if (autoscaler) {
    result.scale_ups = autoscaler->scale_ups();
    result.scale_downs = autoscaler->scale_downs();
  }
  if (upgrade) {
    result.upgrade_done = upgrade->state() == ops::UpgradeState::kDone;
    result.upgrade_rolled_back = upgrade->state() == ops::UpgradeState::kRolledBack;
    result.upgrade_waves_completed = upgrade->waves_completed();
    result.upgrade_nodes = upgrade->nodes_upgraded();
    result.upgrade_pauses = upgrade->pauses();
  }

  if (cfg.incidents) {
    obs::AddressNames names;
    for (const auto& gm : system.group_managers()) {
      names[gm->address()] = gm->name();
    }
    for (const auto& lc : system.local_controllers()) {
      names[lc->address()] = lc->name();
    }
    const double run_end = system.engine().now();
    result.incidents =
        obs::analyze_incidents(system.trace().records(),
                               &system.telemetry().spans(), run_end, names,
                               cfg.incident_config);
    const auto faults =
        extract_injected_faults(system.trace().records(), run_end);
    const AttributionScore score = score_attribution(result.incidents, faults);
    result.injected_faults_labeled = faults.size();
    result.attribution_tp = score.true_positives;
    result.attribution_fp = score.false_positives;
    result.attribution_recalled = score.faults_recalled;
    result.attribution_precision = score.precision();
    result.attribution_recall = score.recall();
    result.incident_table = result.incidents.table();
    result.incident_csv = result.incidents.csv();
  }

  std::ostringstream report;
  report << "chaos run: seed=" << cfg.seed << " faults=" << result.faults_injected
         << " accepted=" << result.vms_accepted << " excused=" << result.vms_excused
         << " converged=" << (result.converged ? "yes" : "no")
         << " fenced=" << result.fence_rejected
         << " stale_accepts=" << result.stale_accepts
         << " stepdowns=" << result.stepdowns
         << " alerts=" << result.slo_alerts_fired;
  if (result.slow_flags + result.probations + result.quarantines > 0) {
    report << " slow_flags=" << result.slow_flags
           << " probations=" << result.probations
           << " quarantines=" << result.quarantines
           << " reinstated=" << result.reinstatements
           << " flaps=" << result.quarantine_flaps;
  }
  if (autoscaler) {
    report << " scale_ups=" << result.scale_ups
           << " scale_downs=" << result.scale_downs;
  }
  if (upgrade) {
    report << " upgrade=" << (result.upgrade_done ? "done"
                              : result.upgrade_rolled_back ? "rolled_back"
                                                           : "incomplete")
           << " upgraded_nodes=" << result.upgrade_nodes;
  }
  report << "\n" << checker.report();
  result.report = report.str();
  return result;
}

}  // namespace snooze::chaos
