#include "chaos/runner.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "chaos/injector.hpp"
#include "core/system.hpp"
#include "obs/health_monitor.hpp"

namespace snooze::chaos {

ChaosRunResult run_chaos(const ChaosRunConfig& cfg) {
  return run_chaos_schedule(cfg,
                            generate_schedule(cfg.spec, cfg.topology, cfg.seed));
}

ChaosRunResult run_chaos_schedule(const ChaosRunConfig& cfg,
                                  const FaultSchedule& schedule) {
  core::SystemSpec spec;
  spec.entry_points = cfg.topology.entry_points;
  spec.group_managers = cfg.topology.group_managers;
  spec.local_controllers = cfg.topology.local_controllers;
  spec.config = cfg.config;
  spec.seed = cfg.seed;
  core::SnoozeSystem system(spec);
  system.start();
  system.run_until_stable(cfg.stabilize_bound);

  InvariantChecker checker(system, cfg.invariants);
  checker.start();
  ChaosInjector injector(system, schedule, &checker);
  const sim::Time chaos_start = system.engine().now();
  injector.start();

  std::unique_ptr<obs::HealthMonitor> monitor;
  if (cfg.health_monitor) {
    monitor = std::make_unique<obs::HealthMonitor>(system);
    monitor->start();
  }

  // Stagger the workload across the fault window so submissions race the
  // injected failures. VMs run unbounded: each accepted one must survive to
  // the final check unless its host was deliberately crashed.
  for (std::size_t i = 0; i < cfg.vms; ++i) {
    system.engine().schedule(
        cfg.vm_inter_arrival * static_cast<double>(i + 1), [&system, &checker] {
      const core::VmDescriptor vm = system.make_vm({0.15, 0.15, 0.15});
      const core::VmId id = vm.id;
      system.client().submit(vm, [&checker, id](bool ok, net::Address, sim::Time) {
        if (ok) checker.note_accepted(id);
      });
    });
  }

  system.engine().run_until(chaos_start + schedule.duration + 1.0);
  injector.heal_all_remaining();

  ChaosRunResult result;
  result.converged = checker.final_check(cfg.converge_bound);
  result.invariants_ok = checker.ok();
  result.violations = checker.violations();
  result.faults_injected = injector.faults_injected();
  result.vms_accepted = checker.accepted_count();
  result.vms_excused = checker.excused_count();

  const net::TrafficStats& stats = system.network().stats();
  result.messages_sent = stats.messages_sent;
  result.messages_dropped = stats.messages_dropped;
  result.messages_duplicated = stats.messages_duplicated;
  for (const auto& gm : system.group_managers()) {
    result.fence_rejected += gm->fence_rejected();
    result.stale_accepts += gm->stale_accepts();
    result.stepdowns += gm->counters().stepdowns;
  }
  for (const auto& lc : system.local_controllers()) {
    result.fence_rejected += lc->fence_rejected();
    result.stale_accepts += lc->stale_accepts();
  }

  // Fingerprint: the full event trace plus the network counters. Identical
  // config + seed must reproduce this value bit for bit.
  std::uint64_t h = system.trace().hash();
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(stats.messages_sent);
  mix(stats.messages_delivered);
  mix(stats.messages_dropped);
  mix(stats.messages_duplicated);
  mix(stats.bytes_sent);
  result.trace_hash = h;
  if (cfg.capture_trace) result.trace_records = system.trace().records();

  if (monitor) {
    monitor->sample_now();  // final sample at run end
    result.slo_alerts_fired = monitor->alerts_fired();
    result.slo_alerts_cleared = monitor->alerts_cleared();
    result.failover_episodes = monitor->failover_episodes();
    const double mttr = monitor->failover_mttr();
    result.failover_mttr_s = std::isnan(mttr) ? -1.0 : mttr;
    if (cfg.capture_timeseries) result.timeseries_csv = monitor->store().csv();
  }

  std::ostringstream report;
  report << "chaos run: seed=" << cfg.seed << " faults=" << result.faults_injected
         << " accepted=" << result.vms_accepted << " excused=" << result.vms_excused
         << " converged=" << (result.converged ? "yes" : "no")
         << " fenced=" << result.fence_rejected
         << " stale_accepts=" << result.stale_accepts
         << " stepdowns=" << result.stepdowns
         << " alerts=" << result.slo_alerts_fired << "\n"
         << checker.report();
  result.report = report.str();
  return result;
}

}  // namespace snooze::chaos
