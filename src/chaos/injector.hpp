// Executes a FaultSchedule against a running SnoozeSystem.
//
// The injector is a DES actor: every action is scheduled at its absolute
// time and applied through the system's own fault hooks (component fail()/
// restart(), network partitions, per-link fault knobs, global loss). GL
// targets are resolved at execution time — "crash gl" crashes whichever GM
// holds the leadership when the action fires — and the resolved node is
// remembered per pair id so the matching recover/heal finds it.
#pragma once

#include <map>
#include <set>

#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"
#include "core/system.hpp"
#include "sim/actor.hpp"

namespace snooze::chaos {

class ChaosInjector final : public sim::Actor {
 public:
  /// `checker` may be null; when set, VMs on a deliberately crashed LC are
  /// excused from the no-VM-lost invariant (the paper terminates them).
  ChaosInjector(core::SnoozeSystem& system, FaultSchedule schedule,
                InvariantChecker* checker = nullptr);

  /// Schedule every action; call before running the engine.
  void start();

  /// Undo every still-open fault immediately: restart crashed components,
  /// clear partitions, link/node faults and global loss. Called by the
  /// runner after the schedule horizon so the final liveness check starts
  /// from a connected cluster.
  void heal_all_remaining();

  [[nodiscard]] std::size_t faults_injected() const { return faults_injected_; }

 private:
  void execute(const FaultAction& action);
  void do_crash(const FaultAction& action);
  void do_recover(const FaultAction& action);
  void do_isolate(const FaultAction& action);
  void do_heal(const FaultAction& action);
  void do_link(const FaultAction& action, bool install);
  void apply_partitions();
  /// Live target of (role, index); kNullAddress when it cannot be resolved.
  [[nodiscard]] net::Address resolve_address(NodeRole role, int index);
  void trace(std::string_view kind, std::string_view detail = {});

  core::SnoozeSystem& system_;
  FaultSchedule schedule_;
  InvariantChecker* checker_;

  /// pair id -> concrete (role, index) fixed at injection time.
  std::map<int, std::pair<NodeRole, int>> pair_targets_;
  /// pair id -> isolated address (for heal by pair).
  std::map<int, net::Address> pair_isolated_;
  std::set<net::Address> isolated_;
  std::size_t faults_injected_ = 0;
};

}  // namespace snooze::chaos
