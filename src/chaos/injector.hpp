// Executes a FaultSchedule against a running SnoozeSystem.
//
// The injector is a DES actor: every action is scheduled at its absolute
// time and applied through the system's own fault hooks (component fail()/
// restart(), network partitions, per-link fault knobs, global loss). GL
// targets are resolved at execution time — "crash gl" crashes whichever GM
// holds the leadership when the action fires — and the resolved node is
// remembered per pair id so the matching recover/heal finds it.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"
#include "core/system.hpp"
#include "sim/actor.hpp"
#include "telemetry/telemetry.hpp"

namespace snooze::chaos {

class ChaosInjector final : public sim::Actor {
 public:
  /// `checker` may be null; when set, VMs on a deliberately crashed LC are
  /// excused from the no-VM-lost invariant (the paper terminates them).
  ChaosInjector(core::SnoozeSystem& system, FaultSchedule schedule,
                InvariantChecker* checker = nullptr);

  /// Schedule every action; call before running the engine.
  void start();

  /// Undo every still-open fault immediately: restart crashed components,
  /// clear partitions, link/node faults and global loss. Called by the
  /// runner after the schedule horizon so the final liveness check starts
  /// from a connected cluster.
  void heal_all_remaining();

  [[nodiscard]] std::size_t faults_injected() const { return faults_injected_; }

 private:
  void execute(const FaultAction& action);
  void do_crash(const FaultAction& action);
  void do_recover(const FaultAction& action);
  void do_isolate(const FaultAction& action);
  void do_heal(const FaultAction& action);
  void do_link(const FaultAction& action, bool install);
  /// Gray faults: service-time stretch (gm/lc), CPU steal (lc), and the
  /// seeded latency-burst link process. Install with the action's severity /
  /// knobs, uninstall back to healthy.
  void do_slow(const FaultAction& action, bool install);
  void do_steal(const FaultAction& action, bool install);
  void do_flaky(const FaultAction& action, bool install);
  void apply_partitions();
  /// Live target of (role, index); kNullAddress when it cannot be resolved.
  [[nodiscard]] net::Address resolve_address(NodeRole role, int index);
  /// Every address the target owns (main endpoint first, then auxiliary
  /// endpoints such as a GM's coordination client). Isolation must cut the
  /// whole set at once: partitioning only the main endpoint would leave the
  /// GL's election session alive, so no successor is ever elected and the
  /// failover path silently goes unexercised. Empty when unresolvable.
  [[nodiscard]] std::vector<net::Address> resolve_addresses(NodeRole role, int index);
  void trace(std::string_view kind, std::string_view detail = {});

  /// Telemetry sink of the system under test (may be null).
  [[nodiscard]] telemetry::Telemetry* tel() const {
    return system_.network().telemetry();
  }
  /// Count one injected fault in both the legacy counter and the registry.
  void count_fault();
  /// Open a fault-window span (child of the chaos root) for an injected fault.
  [[nodiscard]] telemetry::SpanContext begin_fault_span(std::string_view kind,
                                                        std::string detail);
  /// Close a fault-window span and invalidate the stored context.
  void end_fault_span(telemetry::SpanContext& span, const char* status = "healed");

  core::SnoozeSystem& system_;
  FaultSchedule schedule_;
  InvariantChecker* checker_;

  /// pair id -> concrete (role, index) fixed at injection time.
  std::map<int, std::pair<NodeRole, int>> pair_targets_;
  /// pair id -> isolated island's primary address (for heal by pair).
  std::map<int, net::Address> pair_isolated_;
  /// primary address -> all addresses of the isolated node, forming one
  /// partition island in Network::set_partitions.
  std::map<net::Address, std::set<net::Address>> isolated_;
  std::size_t faults_injected_ = 0;

  // Open fault windows, so each inject/heal pair shows up as one span whose
  // duration is the window. Keyed the same way the heal actions look targets up.
  telemetry::SpanContext chaos_root_;
  std::map<std::pair<NodeRole, int>, telemetry::SpanContext> crash_spans_;
  std::map<net::Address, telemetry::SpanContext> isolate_spans_;
  std::map<std::pair<net::Address, net::Address>, telemetry::SpanContext> link_spans_;
  std::map<std::pair<NodeRole, int>, telemetry::SpanContext> slow_spans_;
  std::map<std::pair<NodeRole, int>, telemetry::SpanContext> steal_spans_;
  std::map<std::pair<net::Address, net::Address>, telemetry::SpanContext> flaky_spans_;
  telemetry::SpanContext drop_span_;
};

}  // namespace snooze::chaos
