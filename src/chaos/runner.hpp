// End-to-end chaos run: build a cluster, submit a workload, execute a fault
// schedule with invariants continuously checked, heal, and verify liveness.
//
// The whole run is a pure function of its configuration (seed included):
// two runs with identical inputs produce identical event traces, exposed as
// a fingerprint hash for reproducibility checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/schedule.hpp"
#include "core/config.hpp"
#include "interference/model.hpp"
#include "obs/incident.hpp"
#include "ops/autoscaler.hpp"
#include "ops/upgrade.hpp"
#include "sim/trace.hpp"

namespace snooze::chaos {

struct ChaosRunConfig {
  Topology topology{};
  std::uint64_t seed = 1;
  ChaosSpec spec{};
  core::SnoozeConfig config{};

  std::size_t vms = 12;                 ///< workload size
  sim::Time vm_inter_arrival = 1.5;     ///< submission spacing
  /// Socket/LLC topology stamped on every host (flat = default single-pool
  /// hosts; enabling it alone changes no event order — the interference
  /// model only bites when VM profiles are present too).
  interference::TopologySpec host_topology{};
  /// Memory-subsystem profiles cycled over the staggered submissions
  /// (VM i gets vm_profiles[i % size]; empty = unprofiled workload).
  /// Burst VMs stay unprofiled.
  std::vector<interference::MemProfile> vm_profiles;
  sim::Time stabilize_bound = 30.0;  ///< initial hierarchy formation bound
  /// Post-heal reconvergence bound. A node recovered right at the horizon
  /// still needs a full boot (90 s with the default power model) before it
  /// can even start rejoining, so the bound must cover boot + election +
  /// assignment.
  sim::Time converge_bound = 150.0;
  InvariantChecker::Options invariants{};
  /// Copy the full event trace into ChaosRunResult::trace_records (the
  /// golden-trace suite diffs individual records, not just the hash).
  bool capture_trace = false;
  /// Run a HealthMonitor alongside the chaos schedule: cluster state is
  /// sampled every SloConfig::sample_period and SLO alert transitions are
  /// recorded in the sim trace (so goldens pin them). The monitor is
  /// read-only; runs without alert transitions keep their trace hash.
  bool health_monitor = true;
  /// Copy the monitor's time-series CSV into ChaosRunResult::timeseries_csv.
  bool capture_timeseries = false;
  /// Run the incident engine offline once the run is over: segment the
  /// trace into episodes, rank root-cause hypotheses, and score them against
  /// the injected schedule's ground-truth labels. Strictly passive — the
  /// engine only reads records after the last event, so enabling it cannot
  /// change the trace hash (exemplars are additionally retained on the
  /// submit-latency histogram to link reports to span trees).
  bool incidents = false;
  obs::IncidentConfig incident_config{};
  /// sim::Trace ring cap (see Trace::set_max_records). Chaos runs default to
  /// ring mode so long-horizon schedules hold memory flat; the cap is far
  /// above what any short scenario records, so goldens never trim and their
  /// hashes are unchanged. 0 = unbounded.
  std::size_t max_trace_records = 65536;

  // --- long-horizon operations (all off by default — adding an actor would
  // perturb event order and every golden hash) ------------------------------
  struct OpsOptions {
    bool autoscaler = false;
    ops::AutoscalerConfig autoscaler_config{};
    /// Start a rolling upgrade this long after the chaos window opens
    /// (< 0: no upgrade). The upgrade gates on the run's HealthMonitor.
    sim::Time upgrade_at = -1.0;
    ops::UpgradeConfig upgrade_config{};
  };
  OpsOptions ops{};

  /// Optional flash-crowd burst: `burst_vms` submissions starting this long
  /// after the chaos window opens (< 0: none), with a finite lifetime so the
  /// demand recedes again — one full autoscale cycle (wake on the spike,
  /// suspend on the trough) fits in a single scenario.
  sim::Time burst_at = -1.0;
  std::size_t burst_vms = 0;
  sim::Time burst_inter_arrival = 0.25;
  sim::Time burst_lifetime = 60.0;
};

struct ChaosRunResult {
  bool converged = false;      ///< hierarchy re-stabilized after healing
  bool invariants_ok = false;  ///< no invariant violation at any point
  std::vector<std::string> violations;
  std::uint64_t trace_hash = 0;  ///< deterministic run fingerprint
  std::vector<sim::TraceRecord> trace_records;  ///< filled when capture_trace
  std::size_t faults_injected = 0;
  std::size_t vms_accepted = 0;
  std::size_t vms_excused = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  /// Stale commands rejected by epoch fences (GMs + LCs) across the run.
  std::uint64_t fence_rejected = 0;
  /// Fence tripwires: stale commands that reached an apply path (must be 0).
  std::uint64_t stale_accepts = 0;
  /// Leadership terms abandoned after a stale-epoch signal or session expiry.
  std::uint64_t stepdowns = 0;
  // --- gray-failure detection / containment (summed over GMs) --------------
  std::uint64_t slow_flags = 0;        ///< peer-relative slow flags raised
  std::uint64_t probations = 0;        ///< LCs placed on probation
  std::uint64_t quarantines = 0;       ///< probation -> quarantine escalations
  std::uint64_t reinstatements = 0;    ///< quarantined LCs returned to service
  std::uint64_t quarantine_flaps = 0;  ///< same LC quarantined more than once
  std::uint64_t rpc_hedges = 0;        ///< backup attempts launched
  std::uint64_t rpc_hedges_won = 0;    ///< backups that beat the primary
  // --- observability (filled when cfg.health_monitor) ----------------------
  std::uint64_t slo_alerts_fired = 0;
  std::uint64_t slo_alerts_cleared = 0;
  std::uint64_t failover_episodes = 0;
  double failover_mttr_s = -1.0;   ///< < 0: no completed failover episode
  std::string timeseries_csv;      ///< filled when cfg.capture_timeseries
  // --- incident attribution (filled when cfg.incidents) --------------------
  obs::IncidentReport incidents;     ///< episodes + ranked hypotheses
  std::string incident_table;        ///< rendered report (deterministic)
  std::string incident_csv;
  std::size_t injected_faults_labeled = 0;  ///< ground-truth faults extracted
  std::size_t attribution_tp = 0;    ///< matched node-blaming hypotheses
  std::size_t attribution_fp = 0;    ///< hypotheses matching no fault
  std::size_t attribution_recalled = 0;  ///< faults matched by >= 1 hypothesis
  double attribution_precision = 1.0;
  double attribution_recall = 1.0;
  // --- long-horizon operations (filled when cfg.ops enables them) ----------
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  bool upgrade_done = false;
  bool upgrade_rolled_back = false;
  std::uint64_t upgrade_waves_completed = 0;
  std::uint64_t upgrade_nodes = 0;
  std::uint64_t upgrade_pauses = 0;
  std::string report;

  [[nodiscard]] bool ok() const { return converged && invariants_ok; }
};

/// Generate a schedule from cfg.seed and run it.
[[nodiscard]] ChaosRunResult run_chaos(const ChaosRunConfig& cfg);

/// Run an explicit schedule (e.g. parsed from a script) on a fresh cluster.
[[nodiscard]] ChaosRunResult run_chaos_schedule(const ChaosRunConfig& cfg,
                                                const FaultSchedule& schedule);

}  // namespace snooze::chaos
