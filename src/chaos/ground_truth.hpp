// Ground-truth labeling + attribution scoring for the incident engine.
//
// The injector already writes its own labels into the trace: every executed
// action leaves a `chaos.*` record with the *resolved* target ("chaos.crash
// gl (gm-1)" names the GM that actually held leadership, "chaos.slow lc-1
// factor=4" names the stretched node). This module re-reads those records
// into a fault schedule — injection time, clear time, fault class, target —
// and grades an `obs::IncidentReport` against it: a node-blaming hypothesis
// is a true positive when its class and target match an injected fault whose
// active window overlaps the episode; an injected fault is recalled when at
// least one hypothesis matches it. Anonymous (targetless) hypotheses are
// deliberately unscored — they are the engine's honest "something happened
// here" fallback, not an attribution claim.
//
// This is the only place diagnosis and ground truth meet: the evidence
// collector in `obs/causality.hpp` skips every `chaos.*` record, so the
// score measures reconstruction from observable behavior, not label leaks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/causality.hpp"
#include "obs/incident.hpp"
#include "sim/trace.hpp"

namespace snooze::chaos {

/// One executed fault, as labeled by the injector's trace records.
struct InjectedFault {
  double at = 0.0;        ///< injection time
  double cleared = 0.0;   ///< recover/heal time (run end if never healed)
  obs::FaultClass fault_class = obs::FaultClass::kUnknown;
  std::string target;     ///< resolved node/link label; empty for global drop
  std::string kind;       ///< injector record kind ("chaos.crash", ...)
};

/// Rebuild the executed fault schedule from `chaos.*` records. Skipped
/// actions (`chaos.skip`) never became faults and are not included.
[[nodiscard]] std::vector<InjectedFault> extract_injected_faults(
    const std::vector<sim::TraceRecord>& records, double run_end);

struct AttributionScore {
  std::size_t true_positives = 0;   ///< matched node-blaming hypotheses
  std::size_t false_positives = 0;  ///< node-blaming hypotheses matching nothing
  std::size_t faults_total = 0;
  std::size_t faults_recalled = 0;  ///< faults matched by >= 1 hypothesis

  [[nodiscard]] double precision() const {
    const std::size_t n = true_positives + false_positives;
    return n == 0 ? 1.0 : static_cast<double>(true_positives) / n;
  }
  [[nodiscard]] double recall() const {
    return faults_total == 0
               ? 1.0
               : static_cast<double>(faults_recalled) / faults_total;
  }
};

/// Grade the report against the injected schedule and back-annotate each
/// matched hypothesis with its fault index and detection latency (first
/// supporting evidence minus injection time). `slack_s` widens each fault's
/// active window on both sides to absorb detection lag past the heal.
AttributionScore score_attribution(obs::IncidentReport& report,
                                   const std::vector<InjectedFault>& faults,
                                   double slack_s = 10.0);

}  // namespace snooze::chaos
