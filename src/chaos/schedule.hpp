// Declarative fault schedules for chaos testing.
//
// A FaultSchedule is a time-ordered list of fault actions (node crashes and
// recoveries, isolation windows, lossy/duplicating/reordering links, global
// loss) that a ChaosInjector executes against a running SnoozeSystem. A
// schedule can be generated from a seed (one seed fully determines the run,
// FoundationDB-style) or parsed from a small text script, and every schedule
// can be serialized back to that script form for reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace snooze::chaos {

enum class ActionKind {
  kCrash,       ///< hard-crash one node
  kRecover,     ///< restart a previously crashed node
  kIsolate,     ///< partition one node away from everyone else
  kHeal,        ///< end one isolation window
  kHealAll,     ///< end every isolation / link fault / global loss at once
  kLink,        ///< install fault knobs on one node pair (both directions)
  kUnlink,      ///< remove the knobs installed by a matching kLink
  kGlobalDrop,  ///< set the global message-loss probability

  // Gray (fail-slow) faults: the node stays up and keeps heartbeating, but
  // degrades. These are what the slowness detector + quarantine machinery
  // are built to catch.
  kSlow,     ///< stretch one node's service times by `severity` (factor > 1)
  kUnslow,   ///< end a matching kSlow window
  kSteal,    ///< CPU steal on one LC: `severity` fraction of cycles stolen
  kUnsteal,  ///< end a matching kSteal window
  kFlaky,    ///< seeded latency-burst process on one node pair (both ways)
  kUnflaky,  ///< remove the knobs installed by a matching kFlaky
};

enum class NodeRole { kNone, kGl, kGm, kLc, kEp };

[[nodiscard]] const char* to_string(ActionKind kind);
[[nodiscard]] const char* to_string(NodeRole role);

/// One timed fault action. Crash/isolate actions may target "the current GL"
/// (role kGl, index -1), resolved by the injector at execution time; the
/// matching recover/heal then refers to the same concrete node through the
/// shared `pair` id.
struct FaultAction {
  sim::Time at = 0.0;
  ActionKind kind = ActionKind::kCrash;
  NodeRole role = NodeRole::kNone;
  int index = -1;  ///< node index within its role; -1 = resolve (GL only)
  NodeRole role2 = NodeRole::kNone;  ///< second endpoint for kLink/kUnlink
  int index2 = -1;
  int pair = 0;  ///< links inject/heal action pairs; 0 = unpaired
  net::LinkFaults faults;  ///< knobs for kLink / kFlaky
  double drop = 0.0;       ///< probability for kGlobalDrop
  double severity = 0.0;   ///< stretch factor for kSlow, steal frac for kSteal
};

struct FaultSchedule {
  std::vector<FaultAction> actions;
  sim::Time duration = 120.0;  ///< injection horizon (all windows heal by it)

  /// Stable-sort actions by time (generation appends heals out of order).
  void sort();

  /// Serialize to the script grammar parse_script() accepts; running the
  /// round-tripped schedule reproduces the run exactly.
  [[nodiscard]] std::string to_script() const;
};

/// Knobs of the seeded schedule generator.
struct ChaosSpec {
  sim::Time duration = 120.0;
  double fault_rate = 0.05;  ///< expected fault injections per virtual second

  // Every crash/isolation/link window heals at least min_heal_time after it
  // opens, plus an exponential extra with the given mean (all clamped to the
  // schedule horizon so the system always gets a chance to reconverge).
  sim::Time min_heal_time = 5.0;
  sim::Time mean_extra_heal = 10.0;

  // Relative weights of the fault kinds.
  double weight_crash_gl = 1.0;
  double weight_crash_gm = 1.0;
  double weight_crash_lc = 2.0;
  double weight_crash_ep = 0.5;
  double weight_isolate = 1.0;
  double weight_link = 2.0;
  double weight_global_drop = 0.5;
  // Gray-fault weights default to 0 so crash-focused specs (and the seeded
  // schedules pinned by existing tests) are unchanged; gray soaks opt in.
  double weight_slow = 0.0;
  double weight_steal = 0.0;
  double weight_flaky = 0.0;

  // Upper bounds for randomly drawn link/global knobs.
  double max_link_drop = 0.5;
  double max_duplicate = 0.3;
  double max_reorder = 0.3;
  sim::Time max_extra_latency = 0.2;
  double max_global_drop = 0.05;
  // Drawn ranges for gray faults: slow factor in [1.5, max_slow_factor],
  // steal fraction in [0.1, max_steal_frac], burst latency in
  // [0.05, max_flaky_latency].
  double max_slow_factor = 4.0;
  double max_steal_frac = 0.6;
  sim::Time max_flaky_latency = 0.5;

  // Targeting floors: never crash/isolate below this many live nodes of a
  // role (keeps a quorum path so reconvergence stays possible).
  std::size_t min_live_gms = 1;
  std::size_t min_live_lcs = 1;
  std::size_t min_live_eps = 1;
};

/// Cluster shape the schedule targets (indices are validated against it).
struct Topology {
  std::size_t group_managers = 3;
  std::size_t local_controllers = 9;
  std::size_t entry_points = 2;
};

/// Generate a random schedule; `seed` fully determines the result.
[[nodiscard]] FaultSchedule generate_schedule(const ChaosSpec& spec, const Topology& topo,
                                              std::uint64_t seed);

/// Parse the script grammar (one action per line, `#` comments):
///
///   duration <t>
///   <t> crash  gl [#id] | gm <i> [#id] | lc <i> [#id] | ep <i> [#id]
///   <t> recover #id | <role> <i>
///   <t> isolate gl [#id] | gm <i> [#id] | lc <i> [#id] | ep <i> [#id]
///   <t> heal    #id | <role> <i> | all
///   <t> link <role> <i> <role> <j> drop=<p> [dup=<p>] [reorder=<p>]
///                                  [rdelay=<s>] [lat=<s>]
///   <t> unlink <role> <i> <role> <j>
///   <t> drop <p>
///   <t> slow <role> <i> factor=<x> [#id]      (x > 1; gm/lc targets)
///   <t> unslow #id | <role> <i>
///   <t> steal lc <i> frac=<f> [#id]           (f in (0,1))
///   <t> unsteal #id | lc <i>
///   <t> flaky <role> <i> <role> <j> lat=<s> [start=<p>] [stop=<p>]
///   <t> unflaky <role> <i> <role> <j>
///
/// Throws std::runtime_error with a line-numbered message on bad input.
[[nodiscard]] FaultSchedule parse_script(const std::string& text);

}  // namespace snooze::chaos
