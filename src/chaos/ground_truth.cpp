#include "chaos/ground_truth.hpp"

#include <algorithm>
#include <map>
#include <string_view>
#include <utility>

namespace snooze::chaos {

namespace {

using obs::FaultClass;

/// "gl (gm-1)" -> "gm-1"; anything else is already the resolved label.
std::string crash_target(std::string_view detail) {
  const auto l = detail.find('(');
  const auto r = detail.find(')');
  if (l != std::string_view::npos && r != std::string_view::npos && r > l) {
    return std::string(detail.substr(l + 1, r - l - 1));
  }
  return std::string(detail);
}

/// "lc-1 factor=4" -> "lc-1".
std::string first_token(std::string_view detail) {
  return std::string(detail.substr(0, detail.find(' ')));
}

/// "lc-001" and "lc-1" name the same node: system actor names zero-pad the
/// index while injector labels don't. Canonicalize to "<role>-<number>".
std::string normalize_node(std::string_view label) {
  const auto dash = label.rfind('-');
  if (dash == std::string_view::npos || dash + 1 >= label.size()) {
    return std::string(label);
  }
  std::string_view num = label.substr(dash + 1);
  if (num.find_first_not_of("0123456789") != std::string_view::npos) {
    return std::string(label);
  }
  std::size_t i = 0;
  while (i + 1 < num.size() && num[i] == '0') ++i;
  return std::string(label.substr(0, dash + 1)) + std::string(num.substr(i));
}

/// "gm-0 <-> lc-3 drop=0.5" -> "gm-0 <-> lc-3" (same for " lat=").
std::string link_target(std::string_view detail) {
  for (std::string_view suffix : {" drop=", " lat="}) {
    const auto pos = detail.find(suffix);
    if (pos != std::string_view::npos) return std::string(detail.substr(0, pos));
  }
  return std::string(detail);
}

}  // namespace

std::vector<InjectedFault> extract_injected_faults(
    const std::vector<sim::TraceRecord>& records, double run_end) {
  std::vector<InjectedFault> faults;
  // (class, target) -> index of the currently-active fault, so a heal closes
  // the right window and repeated faults on one target stay distinct.
  std::map<std::pair<int, std::string>, std::size_t> active;

  auto open = [&](const sim::TraceRecord& r, FaultClass fc, std::string target) {
    active[{static_cast<int>(fc), target}] = faults.size();
    faults.push_back(InjectedFault{r.time, run_end, fc, std::move(target), r.kind});
  };
  auto close = [&](double time, FaultClass fc, const std::string& target) {
    const auto it = active.find({static_cast<int>(fc), target});
    if (it == active.end()) return;
    faults[it->second].cleared = time;
    active.erase(it);
  };
  auto close_all = [&](double time, bool network_only) {
    for (auto it = active.begin(); it != active.end();) {
      const auto fc = static_cast<FaultClass>(it->first.first);
      if (!network_only || fc == FaultClass::kNetwork) {
        faults[it->second].cleared = time;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (const auto& r : records) {
    if (r.kind.rfind("chaos.", 0) != 0) continue;
    if (r.kind == "chaos.crash") {
      open(r, FaultClass::kCrash, crash_target(r.detail));
    } else if (r.kind == "chaos.recover") {
      close(r.time, FaultClass::kCrash, r.detail);
    } else if (r.kind == "chaos.slow" || r.kind == "chaos.steal") {
      open(r, FaultClass::kFailSlow, first_token(r.detail));
    } else if (r.kind == "chaos.unslow" || r.kind == "chaos.unsteal") {
      close(r.time, FaultClass::kFailSlow, r.detail);
    } else if (r.kind == "chaos.isolate") {
      open(r, FaultClass::kNetwork, r.detail);
    } else if (r.kind == "chaos.link" || r.kind == "chaos.flaky") {
      open(r, FaultClass::kNetwork, link_target(r.detail));
    } else if (r.kind == "chaos.unlink" || r.kind == "chaos.unflaky") {
      close(r.time, FaultClass::kNetwork, link_target(r.detail));
    } else if (r.kind == "chaos.drop") {
      open(r, FaultClass::kNetwork, std::string());
    } else if (r.kind == "chaos.heal") {
      if (r.detail == "final") {
        close_all(r.time, false);
      } else if (r.detail == "all") {
        close_all(r.time, true);
      } else {
        close(r.time, FaultClass::kNetwork, r.detail);
      }
    }
  }
  return faults;
}

AttributionScore score_attribution(obs::IncidentReport& report,
                                   const std::vector<InjectedFault>& faults,
                                   double slack_s) {
  AttributionScore score;
  score.faults_total = faults.size();
  std::vector<bool> recalled(faults.size(), false);

  for (auto& ep : report.episodes) {
    for (auto& h : ep.hypotheses) {
      if (h.target.empty()) continue;  // anonymous fallback: unscored
      const std::string want = normalize_node(h.target);
      int best = -1;
      for (std::size_t i = 0; i < faults.size(); ++i) {
        const InjectedFault& f = faults[i];
        if (f.fault_class != h.fault_class) continue;
        if (normalize_node(f.target) != want) continue;
        if (ep.opened > f.cleared + slack_s || ep.closed < f.at - slack_s) {
          continue;
        }
        // Prefer the fault whose injection the evidence saw first.
        if (best < 0 || std::abs(faults[best].at - h.first_evidence) >
                            std::abs(f.at - h.first_evidence)) {
          best = static_cast<int>(i);
        }
      }
      if (best >= 0) {
        ++score.true_positives;
        recalled[best] = true;
        h.matched_fault = best;
        h.detection_latency_s = std::max(0.0, h.first_evidence - faults[best].at);
      } else {
        ++score.false_positives;
      }
    }
  }
  for (const bool r : recalled) {
    if (r) ++score.faults_recalled;
  }
  return score;
}

}  // namespace snooze::chaos
