// Continuously checked safety invariants for chaos runs.
//
// The InvariantChecker samples a running SnoozeSystem at a fixed period and
// records violations of properties that must hold no matter which faults are
// injected:
//
//   * at most one GL within any mutually reachable set of nodes (two leaders
//     separated by a partition are legitimate; two that can exchange traffic
//     for longer than a grace window are split-brain),
//   * no VM instance running on two hosts past a grace window (migration has
//     a legal transient while the destination holds the copy),
//   * per-node and total energy meters are monotone,
//   * traffic counters are monotone and consistent
//     (delivered + dropped <= sent + duplicated),
//   * no authority-bearing command from a stale epoch is ever applied (the
//     fence tripwires in every GM and LC must stay at zero), and no two
//     mutually reachable leaders claim the same election epoch.
//
// After the last fault heals, final_check() additionally asserts liveness:
// the hierarchy reconverges within a bound, exactly one GL exists, and every
// accepted VM (minus those excused because their host was deliberately
// crashed) is hosted exactly once.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/actor.hpp"

namespace snooze::chaos {

class InvariantChecker final : public sim::Actor {
 public:
  struct Options {
    sim::Time sample_period = 0.5;
    /// How long two mutually reachable leaders may coexist before it counts
    /// as split-brain (covers the legitimate post-heal abdication delay).
    sim::Time multi_leader_grace = 20.0;
    /// How long one VM id may run on two hosts before it counts as a
    /// duplicate (covers the migration adopt/ack window).
    sim::Time duplicate_grace = 15.0;
  };

  explicit InvariantChecker(core::SnoozeSystem& system);
  InvariantChecker(core::SnoozeSystem& system, Options options);

  /// Begin periodic sampling.
  void start();

  /// Record that the cloud accepted this VM; final_check() requires it to be
  /// hosted exactly once unless excused.
  void note_accepted(core::VmId id);

  /// Excuse VMs whose host is about to be deliberately crashed (the paper's
  /// semantics terminate a failed node's VMs, so "lost" is expected).
  void excuse_vms(const std::vector<core::VmId>& ids);

  /// Liveness check after the last fault healed: runs the system until the
  /// hierarchy stabilizes (at most `bound` longer), then asserts exactly one
  /// leader and exactly-once hosting of all accepted, non-excused VMs.
  /// Returns true when the hierarchy reconverged in time.
  bool final_check(sim::Time bound);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const { return violations_; }
  [[nodiscard]] std::size_t accepted_count() const { return accepted_.size(); }
  [[nodiscard]] std::size_t excused_count() const { return excused_.size(); }

  /// Multi-line summary (violations or "all invariants held").
  [[nodiscard]] std::string report() const;

 private:
  void sample();
  void check_leaders();
  void check_duplicates();
  void check_energy();
  void check_traffic();
  void check_epochs();
  void violation(const std::string& message);

  core::SnoozeSystem& system_;
  Options options_;

  std::vector<core::VmId> accepted_;
  std::set<core::VmId> excused_;

  sim::Time multi_leader_since_ = -1.0;
  std::uint64_t last_stale_accepts_ = 0;
  std::map<core::VmId, sim::Time> duplicate_since_;
  std::map<std::string, double> last_energy_;
  double last_total_energy_ = 0.0;
  net::TrafficStats last_traffic_;

  std::vector<std::string> violations_;
};

}  // namespace snooze::chaos
