#include "chaos/schedule.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace snooze::chaos {

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kCrash: return "crash";
    case ActionKind::kRecover: return "recover";
    case ActionKind::kIsolate: return "isolate";
    case ActionKind::kHeal: return "heal";
    case ActionKind::kHealAll: return "heal";
    case ActionKind::kLink: return "link";
    case ActionKind::kUnlink: return "unlink";
    case ActionKind::kGlobalDrop: return "drop";
    case ActionKind::kSlow: return "slow";
    case ActionKind::kUnslow: return "unslow";
    case ActionKind::kSteal: return "steal";
    case ActionKind::kUnsteal: return "unsteal";
    case ActionKind::kFlaky: return "flaky";
    case ActionKind::kUnflaky: return "unflaky";
  }
  return "?";
}

const char* to_string(NodeRole role) {
  switch (role) {
    case NodeRole::kNone: return "none";
    case NodeRole::kGl: return "gl";
    case NodeRole::kGm: return "gm";
    case NodeRole::kLc: return "lc";
    case NodeRole::kEp: return "ep";
  }
  return "?";
}

void FaultSchedule::sort() {
  std::stable_sort(actions.begin(), actions.end(),
                   [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
}

namespace {

std::string format_time(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

void append_target(std::ostringstream& out, NodeRole role, int index) {
  out << ' ' << to_string(role);
  if (role != NodeRole::kGl) out << ' ' << index;
}

}  // namespace

std::string FaultSchedule::to_script() const {
  std::ostringstream out;
  out << "# snooze chaos schedule\n";
  out << "duration " << format_time(duration) << '\n';
  for (const FaultAction& a : actions) {
    out << format_time(a.at) << ' ' << to_string(a.kind);
    switch (a.kind) {
      case ActionKind::kCrash:
      case ActionKind::kIsolate:
        append_target(out, a.role, a.index);
        if (a.pair != 0) out << " #" << a.pair;
        break;
      case ActionKind::kRecover:
      case ActionKind::kHeal:
        if (a.pair != 0) {
          out << " #" << a.pair;
        } else {
          append_target(out, a.role, a.index);
        }
        break;
      case ActionKind::kHealAll:
        out << " all";
        break;
      case ActionKind::kLink:
        append_target(out, a.role, a.index);
        append_target(out, a.role2, a.index2);
        out << " drop=" << a.faults.drop;
        if (a.faults.duplicate > 0.0) out << " dup=" << a.faults.duplicate;
        if (a.faults.reorder > 0.0) {
          out << " reorder=" << a.faults.reorder
              << " rdelay=" << a.faults.reorder_delay;
        }
        if (a.faults.extra_latency > 0.0) out << " lat=" << a.faults.extra_latency;
        break;
      case ActionKind::kUnlink:
        append_target(out, a.role, a.index);
        append_target(out, a.role2, a.index2);
        break;
      case ActionKind::kGlobalDrop:
        out << ' ' << a.drop;
        break;
      case ActionKind::kSlow:
        append_target(out, a.role, a.index);
        out << " factor=" << a.severity;
        if (a.pair != 0) out << " #" << a.pair;
        break;
      case ActionKind::kSteal:
        append_target(out, a.role, a.index);
        out << " frac=" << a.severity;
        if (a.pair != 0) out << " #" << a.pair;
        break;
      case ActionKind::kUnslow:
      case ActionKind::kUnsteal:
        if (a.pair != 0) {
          out << " #" << a.pair;
        } else {
          append_target(out, a.role, a.index);
        }
        break;
      case ActionKind::kFlaky:
        append_target(out, a.role, a.index);
        append_target(out, a.role2, a.index2);
        out << " lat=" << a.faults.flaky_latency << " start=" << a.faults.flaky_start
            << " stop=" << a.faults.flaky_stop;
        break;
      case ActionKind::kUnflaky:
        append_target(out, a.role, a.index);
        append_target(out, a.role2, a.index2);
        break;
    }
    out << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Seeded generation
// ---------------------------------------------------------------------------

FaultSchedule generate_schedule(const ChaosSpec& spec, const Topology& topo,
                                std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5C4A05);
  FaultSchedule schedule;
  schedule.duration = spec.duration;
  int next_pair = 1;

  // Targets currently inside an open crash/isolation window (a GL crash
  // consumes a GM slot: the leader is one of the GMs).
  std::set<std::pair<NodeRole, int>> busy;
  std::size_t down_gms = 0;
  std::size_t down_lcs = 0;
  std::size_t down_eps = 0;
  bool gl_window_open = false;

  // Node pairs with an open link-fault window.
  std::set<std::array<int, 4>> busy_links;

  // Targets inside an open gray-fault (slow/steal) window. Kept separate
  // from `busy`: a gray node is still up, but stacking a second gray fault
  // on it would make the window pairing ambiguous.
  std::set<std::pair<NodeRole, int>> busy_gray;

  auto heal_time = [&](sim::Time at) {
    sim::Time t = at + spec.min_heal_time;
    if (spec.mean_extra_heal > 0.0) {
      t += rng.exponential(1.0 / spec.mean_extra_heal);
    }
    return std::min(t, spec.duration);
  };

  auto random_node = [&](util::Rng& r) {
    // Pick a role/index pair over the whole cluster, GMs and LCs only (link
    // faults between control-plane nodes are where the protocols hurt).
    const std::size_t n = topo.group_managers + topo.local_controllers;
    const std::size_t i = r.uniform_int<std::size_t>(0, n - 1);
    if (i < topo.group_managers) {
      return std::pair<NodeRole, int>{NodeRole::kGm, static_cast<int>(i)};
    }
    return std::pair<NodeRole, int>{NodeRole::kLc,
                                    static_cast<int>(i - topo.group_managers)};
  };

  sim::Time t = 0.0;
  if (spec.fault_rate <= 0.0) return schedule;
  while (true) {
    t += rng.exponential(spec.fault_rate);
    if (t >= spec.duration) break;

    enum { kGl, kGm, kLc, kEp, kIso, kLink, kDrop, kSlowK, kStealK, kFlakyK };
    const std::array<double, 10> weights{
        spec.weight_crash_gl, spec.weight_crash_gm, spec.weight_crash_lc,
        spec.weight_crash_ep, spec.weight_isolate,  spec.weight_link,
        spec.weight_global_drop, spec.weight_slow,  spec.weight_steal,
        spec.weight_flaky};
    const std::size_t kind = rng.weighted_index(weights);

    FaultAction inject;
    inject.at = t;

    auto open_window = [&](ActionKind open_kind, ActionKind close_kind, NodeRole role,
                           int index) {
      inject.kind = open_kind;
      inject.role = role;
      inject.index = index;
      inject.pair = next_pair++;
      FaultAction close;
      close.at = heal_time(t);
      close.kind = close_kind;
      close.pair = inject.pair;
      schedule.actions.push_back(inject);
      schedule.actions.push_back(close);
    };

    switch (kind) {
      case kGl: {
        // The GL is resolved at execution time; one open GL window at a time
        // and only while a spare GM exists to take over.
        if (gl_window_open) continue;
        if (topo.group_managers - down_gms <= spec.min_live_gms) continue;
        gl_window_open = true;
        ++down_gms;
        const bool isolate = rng.chance(0.4);
        open_window(isolate ? ActionKind::kIsolate : ActionKind::kCrash,
                    isolate ? ActionKind::kHeal : ActionKind::kRecover,
                    NodeRole::kGl, -1);
        // Re-open the slot at heal time (processed in time order below).
        FaultAction& close = schedule.actions.back();
        close.role = NodeRole::kGl;  // marker for the bookkeeping pass
        break;
      }
      case kGm: {
        if (topo.group_managers - down_gms <= spec.min_live_gms) continue;
        const int i = rng.uniform_int<int>(0, static_cast<int>(topo.group_managers) - 1);
        if (busy.count({NodeRole::kGm, i}) > 0) continue;
        busy.insert({NodeRole::kGm, i});
        ++down_gms;
        open_window(ActionKind::kCrash, ActionKind::kRecover, NodeRole::kGm, i);
        break;
      }
      case kLc: {
        if (topo.local_controllers - down_lcs <= spec.min_live_lcs) continue;
        const int i =
            rng.uniform_int<int>(0, static_cast<int>(topo.local_controllers) - 1);
        if (busy.count({NodeRole::kLc, i}) > 0) continue;
        busy.insert({NodeRole::kLc, i});
        ++down_lcs;
        const bool isolate = rng.chance(0.3);
        open_window(isolate ? ActionKind::kIsolate : ActionKind::kCrash,
                    isolate ? ActionKind::kHeal : ActionKind::kRecover,
                    NodeRole::kLc, i);
        break;
      }
      case kEp: {
        if (topo.entry_points - down_eps <= spec.min_live_eps) continue;
        const int i = rng.uniform_int<int>(0, static_cast<int>(topo.entry_points) - 1);
        if (busy.count({NodeRole::kEp, i}) > 0) continue;
        busy.insert({NodeRole::kEp, i});
        ++down_eps;
        open_window(ActionKind::kCrash, ActionKind::kRecover, NodeRole::kEp, i);
        break;
      }
      case kIso: {
        if (topo.group_managers - down_gms <= spec.min_live_gms) continue;
        const int i = rng.uniform_int<int>(0, static_cast<int>(topo.group_managers) - 1);
        if (busy.count({NodeRole::kGm, i}) > 0) continue;
        busy.insert({NodeRole::kGm, i});
        ++down_gms;
        open_window(ActionKind::kIsolate, ActionKind::kHeal, NodeRole::kGm, i);
        break;
      }
      case kLink: {
        const auto a = random_node(rng);
        const auto b = random_node(rng);
        if (a == b) continue;
        const std::array<int, 4> key{static_cast<int>(a.first), a.second,
                                     static_cast<int>(b.first), b.second};
        if (busy_links.count(key) > 0) continue;
        busy_links.insert(key);
        inject.kind = ActionKind::kLink;
        inject.role = a.first;
        inject.index = a.second;
        inject.role2 = b.first;
        inject.index2 = b.second;
        inject.faults.drop = rng.uniform(0.05, spec.max_link_drop);
        if (rng.chance(0.4)) inject.faults.duplicate = rng.uniform(0.0, spec.max_duplicate);
        if (rng.chance(0.4)) {
          inject.faults.reorder = rng.uniform(0.0, spec.max_reorder);
          inject.faults.reorder_delay = rng.uniform(0.01, 0.2);
        }
        if (rng.chance(0.3)) {
          inject.faults.extra_latency = rng.uniform(0.0, spec.max_extra_latency);
        }
        FaultAction close;
        close.at = heal_time(t);
        close.kind = ActionKind::kUnlink;
        close.role = a.first;
        close.index = a.second;
        close.role2 = b.first;
        close.index2 = b.second;
        schedule.actions.push_back(inject);
        schedule.actions.push_back(close);
        break;
      }
      case kSlowK: {
        const auto n = random_node(rng);
        if (busy.count(n) > 0 || busy_gray.count(n) > 0) continue;
        busy_gray.insert(n);
        inject.severity = rng.uniform(1.5, spec.max_slow_factor);
        open_window(ActionKind::kSlow, ActionKind::kUnslow, n.first, n.second);
        break;
      }
      case kStealK: {
        const int i =
            rng.uniform_int<int>(0, static_cast<int>(topo.local_controllers) - 1);
        if (busy.count({NodeRole::kLc, i}) > 0 ||
            busy_gray.count({NodeRole::kLc, i}) > 0) {
          continue;
        }
        busy_gray.insert({NodeRole::kLc, i});
        inject.severity = rng.uniform(0.1, spec.max_steal_frac);
        open_window(ActionKind::kSteal, ActionKind::kUnsteal, NodeRole::kLc, i);
        break;
      }
      case kFlakyK: {
        const auto a = random_node(rng);
        const auto b = random_node(rng);
        if (a == b) continue;
        const std::array<int, 4> key{static_cast<int>(a.first), a.second,
                                     static_cast<int>(b.first), b.second};
        if (busy_links.count(key) > 0) continue;
        busy_links.insert(key);
        inject.kind = ActionKind::kFlaky;
        inject.role = a.first;
        inject.index = a.second;
        inject.role2 = b.first;
        inject.index2 = b.second;
        inject.faults.flaky_latency = rng.uniform(0.05, spec.max_flaky_latency);
        FaultAction close;
        close.at = heal_time(t);
        close.kind = ActionKind::kUnflaky;
        close.role = a.first;
        close.index = a.second;
        close.role2 = b.first;
        close.index2 = b.second;
        schedule.actions.push_back(inject);
        schedule.actions.push_back(close);
        break;
      }
      case kDrop:
      default: {
        inject.kind = ActionKind::kGlobalDrop;
        inject.drop = rng.uniform(0.005, spec.max_global_drop);
        FaultAction close;
        close.at = heal_time(t);
        close.kind = ActionKind::kGlobalDrop;
        close.drop = 0.0;
        schedule.actions.push_back(inject);
        schedule.actions.push_back(close);
        break;
      }
    }

    // Re-open windows whose heal time has passed. A simple rescan keeps the
    // bookkeeping honest without a second queue; schedules are tiny.
    busy.clear();
    busy_links.clear();
    busy_gray.clear();
    down_gms = down_lcs = down_eps = 0;
    gl_window_open = false;
    std::set<int> healed;
    for (const FaultAction& a : schedule.actions) {
      const bool closes = a.kind == ActionKind::kRecover || a.kind == ActionKind::kHeal ||
                          a.kind == ActionKind::kUnlink ||
                          a.kind == ActionKind::kUnslow ||
                          a.kind == ActionKind::kUnsteal ||
                          a.kind == ActionKind::kUnflaky;
      if (closes && a.at <= t) {
        if (a.pair != 0) healed.insert(a.pair);
        if (a.kind == ActionKind::kUnlink || a.kind == ActionKind::kUnflaky) {
          busy_links.erase({static_cast<int>(a.role), a.index,
                            static_cast<int>(a.role2), a.index2});
        }
      }
    }
    for (const FaultAction& a : schedule.actions) {
      if ((a.kind == ActionKind::kLink || a.kind == ActionKind::kFlaky) && a.at <= t) {
        const ActionKind closer =
            a.kind == ActionKind::kLink ? ActionKind::kUnlink : ActionKind::kUnflaky;
        bool open = true;
        for (const FaultAction& c : schedule.actions) {
          if (c.kind == closer && c.at <= t && c.role == a.role &&
              c.index == a.index && c.role2 == a.role2 && c.index2 == a.index2 &&
              c.at >= a.at) {
            open = false;
            break;
          }
        }
        if (open) {
          busy_links.insert({static_cast<int>(a.role), a.index,
                             static_cast<int>(a.role2), a.index2});
        }
      }
      if ((a.kind == ActionKind::kSlow || a.kind == ActionKind::kSteal) && a.at <= t &&
          (a.pair == 0 || healed.count(a.pair) == 0)) {
        busy_gray.insert({a.role, a.index});
      }
      if ((a.kind != ActionKind::kCrash && a.kind != ActionKind::kIsolate) || a.at > t) {
        continue;
      }
      if (a.pair != 0 && healed.count(a.pair) > 0) continue;
      if (a.role == NodeRole::kGl) {
        gl_window_open = true;
        ++down_gms;
      } else {
        busy.insert({a.role, a.index});
        if (a.role == NodeRole::kGm) ++down_gms;
        if (a.role == NodeRole::kLc) ++down_lcs;
        if (a.role == NodeRole::kEp) ++down_eps;
      }
    }
  }

  schedule.sort();
  return schedule;
}

// ---------------------------------------------------------------------------
// Script parsing
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void fail_at(std::size_t line, const std::string& message) {
  throw std::runtime_error("chaos script line " + std::to_string(line) + ": " + message);
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#' && (tok.size() < 2 || !std::isdigit(static_cast<unsigned char>(tok[1])))) {
      break;  // trailing comment ("#id" pair refs keep their digits)
    }
    out.push_back(tok);
  }
  return out;
}

double parse_number(const std::string& tok, std::size_t line, const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(tok, &used);
    if (used != tok.size()) fail_at(line, std::string("bad ") + what + " '" + tok + "'");
    return value;
  } catch (const std::logic_error&) {
    fail_at(line, std::string("bad ") + what + " '" + tok + "'");
  }
}

NodeRole parse_role(const std::string& tok, std::size_t line) {
  if (tok == "gl") return NodeRole::kGl;
  if (tok == "gm") return NodeRole::kGm;
  if (tok == "lc") return NodeRole::kLc;
  if (tok == "ep") return NodeRole::kEp;
  fail_at(line, "unknown role '" + tok + "'");
}

/// Parse "<role> [<i>]" starting at tokens[pos]; advances pos.
void parse_target(const std::vector<std::string>& tokens, std::size_t& pos,
                  std::size_t line, NodeRole& role, int& index) {
  if (pos >= tokens.size()) fail_at(line, "expected a target role");
  role = parse_role(tokens[pos++], line);
  if (role == NodeRole::kGl) {
    index = -1;
    return;
  }
  if (pos >= tokens.size()) fail_at(line, "expected a node index");
  index = static_cast<int>(parse_number(tokens[pos++], line, "node index"));
  if (index < 0) fail_at(line, "node index must be >= 0");
}

/// Parse an optional trailing "#id"; returns 0 when absent.
int parse_pair(const std::vector<std::string>& tokens, std::size_t& pos,
               std::size_t line) {
  if (pos >= tokens.size() || tokens[pos][0] != '#') return 0;
  const int id = static_cast<int>(parse_number(tokens[pos].substr(1), line, "pair id"));
  ++pos;
  return id;
}

}  // namespace

FaultSchedule parse_script(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "duration") {
      if (tokens.size() < 2) fail_at(line_no, "duration needs a value");
      schedule.duration = parse_number(tokens[1], line_no, "duration");
      continue;
    }

    FaultAction action;
    action.at = parse_number(tokens[0], line_no, "time");
    if (action.at < 0.0) fail_at(line_no, "time must be >= 0");
    if (tokens.size() < 2) fail_at(line_no, "expected an action verb");
    const std::string& verb = tokens[1];
    std::size_t pos = 2;

    if (verb == "crash" || verb == "isolate") {
      action.kind = verb == "crash" ? ActionKind::kCrash : ActionKind::kIsolate;
      parse_target(tokens, pos, line_no, action.role, action.index);
      action.pair = parse_pair(tokens, pos, line_no);
    } else if (verb == "recover" || verb == "heal") {
      if (pos < tokens.size() && tokens[pos] == "all") {
        if (verb != "heal") fail_at(line_no, "'all' only applies to heal");
        action.kind = ActionKind::kHealAll;
        ++pos;
      } else if (pos < tokens.size() && tokens[pos][0] == '#') {
        action.kind = verb == "recover" ? ActionKind::kRecover : ActionKind::kHeal;
        action.pair = parse_pair(tokens, pos, line_no);
        if (action.pair == 0) fail_at(line_no, "bad pair reference");
      } else {
        action.kind = verb == "recover" ? ActionKind::kRecover : ActionKind::kHeal;
        parse_target(tokens, pos, line_no, action.role, action.index);
      }
    } else if (verb == "link") {
      action.kind = ActionKind::kLink;
      parse_target(tokens, pos, line_no, action.role, action.index);
      parse_target(tokens, pos, line_no, action.role2, action.index2);
      bool saw_knob = false;
      for (; pos < tokens.size(); ++pos) {
        const std::string& knob = tokens[pos];
        const auto eq = knob.find('=');
        if (eq == std::string::npos) fail_at(line_no, "bad link knob '" + knob + "'");
        const std::string key = knob.substr(0, eq);
        const double value = parse_number(knob.substr(eq + 1), line_no, key.c_str());
        if (key == "drop") {
          action.faults.drop = value;
        } else if (key == "dup") {
          action.faults.duplicate = value;
        } else if (key == "reorder") {
          action.faults.reorder = value;
        } else if (key == "rdelay") {
          action.faults.reorder_delay = value;
        } else if (key == "lat") {
          action.faults.extra_latency = value;
        } else {
          fail_at(line_no, "unknown link knob '" + key + "'");
        }
        saw_knob = true;
      }
      if (!saw_knob) fail_at(line_no, "link needs at least one knob (e.g. drop=0.2)");
      pos = tokens.size();
    } else if (verb == "unlink") {
      action.kind = ActionKind::kUnlink;
      parse_target(tokens, pos, line_no, action.role, action.index);
      parse_target(tokens, pos, line_no, action.role2, action.index2);
    } else if (verb == "drop") {
      action.kind = ActionKind::kGlobalDrop;
      if (pos >= tokens.size()) fail_at(line_no, "drop needs a probability");
      action.drop = parse_number(tokens[pos++], line_no, "probability");
      if (action.drop < 0.0 || action.drop > 1.0) {
        fail_at(line_no, "probability must be in [0,1]");
      }
    } else if (verb == "slow" || verb == "steal") {
      action.kind = verb == "slow" ? ActionKind::kSlow : ActionKind::kSteal;
      parse_target(tokens, pos, line_no, action.role, action.index);
      if (verb == "steal" && action.role != NodeRole::kLc) {
        fail_at(line_no, "steal only applies to lc nodes");
      }
      if (verb == "slow" && action.role != NodeRole::kGm && action.role != NodeRole::kLc) {
        fail_at(line_no, "slow only applies to gm/lc nodes");
      }
      const char* knob = verb == "slow" ? "factor" : "frac";
      if (pos >= tokens.size() ||
          tokens[pos].rfind(std::string(knob) + "=", 0) != 0) {
        fail_at(line_no, verb + std::string(" needs ") + knob + "=<value>");
      }
      action.severity =
          parse_number(tokens[pos++].substr(std::string(knob).size() + 1), line_no, knob);
      if (verb == "slow" && action.severity <= 1.0) {
        fail_at(line_no, "slow factor must be > 1");
      }
      if (verb == "steal" && (action.severity <= 0.0 || action.severity >= 1.0)) {
        fail_at(line_no, "steal fraction must be in (0,1)");
      }
      action.pair = parse_pair(tokens, pos, line_no);
    } else if (verb == "unslow" || verb == "unsteal") {
      action.kind = verb == "unslow" ? ActionKind::kUnslow : ActionKind::kUnsteal;
      if (pos < tokens.size() && tokens[pos][0] == '#') {
        action.pair = parse_pair(tokens, pos, line_no);
        if (action.pair == 0) fail_at(line_no, "bad pair reference");
      } else {
        parse_target(tokens, pos, line_no, action.role, action.index);
      }
    } else if (verb == "flaky") {
      action.kind = ActionKind::kFlaky;
      parse_target(tokens, pos, line_no, action.role, action.index);
      parse_target(tokens, pos, line_no, action.role2, action.index2);
      bool saw_lat = false;
      for (; pos < tokens.size(); ++pos) {
        const std::string& knob = tokens[pos];
        const auto eq = knob.find('=');
        if (eq == std::string::npos) fail_at(line_no, "bad flaky knob '" + knob + "'");
        const std::string key = knob.substr(0, eq);
        const double value = parse_number(knob.substr(eq + 1), line_no, key.c_str());
        if (key == "lat") {
          if (value <= 0.0) fail_at(line_no, "flaky lat must be > 0");
          action.faults.flaky_latency = value;
          saw_lat = true;
        } else if (key == "start" || key == "stop") {
          if (value <= 0.0 || value > 1.0) {
            fail_at(line_no, "flaky " + key + " must be in (0,1]");
          }
          (key == "start" ? action.faults.flaky_start : action.faults.flaky_stop) = value;
        } else {
          fail_at(line_no, "unknown flaky knob '" + key + "'");
        }
      }
      if (!saw_lat) fail_at(line_no, "flaky needs lat=<seconds>");
      pos = tokens.size();
    } else if (verb == "unflaky") {
      action.kind = ActionKind::kUnflaky;
      parse_target(tokens, pos, line_no, action.role, action.index);
      parse_target(tokens, pos, line_no, action.role2, action.index2);
    } else {
      fail_at(line_no, "unknown action '" + verb + "'");
    }
    if (pos != tokens.size()) {
      fail_at(line_no, "unexpected trailing token '" + tokens[pos] + "'");
    }
    schedule.actions.push_back(action);
    schedule.duration = std::max(schedule.duration, action.at);
  }
  schedule.sort();
  return schedule;
}

}  // namespace snooze::chaos
