#include "chaos/injector.hpp"

#include <algorithm>
#include <sstream>

namespace snooze::chaos {

namespace {

std::string target_label(NodeRole role, int index) {
  std::string out = to_string(role);
  if (index >= 0) out += "-" + std::to_string(index);
  return out;
}

}  // namespace

ChaosInjector::ChaosInjector(core::SnoozeSystem& system, FaultSchedule schedule,
                             InvariantChecker* checker)
    : sim::Actor(system.engine(), "chaos"),
      system_(system),
      schedule_(std::move(schedule)),
      checker_(checker) {
  schedule_.sort();
}

void ChaosInjector::trace(std::string_view kind, std::string_view detail) {
  system_.trace().record(name(), kind, detail);
}

void ChaosInjector::count_fault() {
  ++faults_injected_;
  telemetry::count(tel(), "chaos.faults_injected");
}

telemetry::SpanContext ChaosInjector::begin_fault_span(std::string_view kind,
                                                       std::string detail) {
  return telemetry::begin_span(tel(), chaos_root_, std::string(kind), "chaos",
                               std::move(detail));
}

void ChaosInjector::end_fault_span(telemetry::SpanContext& span, const char* status) {
  telemetry::end_span(tel(), span, status);
  span = {};
}

void ChaosInjector::start() {
  if (auto* t = tel()) {
    chaos_root_ = t->spans().begin(
        t->spans().new_trace(), 0, "chaos.run", "chaos",
        std::to_string(schedule_.actions.size()) + " actions");
  }
  // Action times are relative to injection start (the cluster may have spent
  // arbitrary virtual time stabilizing before the chaos phase begins).
  for (const FaultAction& action : schedule_.actions) {
    after(std::max(0.0, action.at), [this, action] { execute(action); });
  }
  trace("chaos.start", std::to_string(schedule_.actions.size()) + " actions");
}

net::Address ChaosInjector::resolve_address(NodeRole role, int index) {
  const std::vector<net::Address> addrs = resolve_addresses(role, index);
  return addrs.empty() ? net::kNullAddress : addrs.front();
}

std::vector<net::Address> ChaosInjector::resolve_addresses(NodeRole role, int index) {
  switch (role) {
    case NodeRole::kGl: {
      const net::Address gl = system_.gl_address();
      if (gl == net::kNullAddress) return {};
      for (auto& gm : system_.group_managers()) {
        if (gm->address() == gl) return gm->network_addresses();
      }
      return {gl};
    }
    case NodeRole::kGm: {
      auto& gms = system_.group_managers();
      if (index < 0 || static_cast<std::size_t>(index) >= gms.size()) {
        return {};
      }
      return gms[static_cast<std::size_t>(index)]->network_addresses();
    }
    case NodeRole::kLc: {
      auto& lcs = system_.local_controllers();
      if (index < 0 || static_cast<std::size_t>(index) >= lcs.size()) {
        return {};
      }
      return {lcs[static_cast<std::size_t>(index)]->address()};
    }
    case NodeRole::kEp: {
      auto& eps = system_.entry_points();
      if (index < 0 || static_cast<std::size_t>(index) >= eps.size()) {
        return {};
      }
      return {eps[static_cast<std::size_t>(index)]->address()};
    }
    case NodeRole::kNone:
      break;
  }
  return {};
}

void ChaosInjector::execute(const FaultAction& action) {
  switch (action.kind) {
    case ActionKind::kCrash:
      do_crash(action);
      break;
    case ActionKind::kRecover:
      do_recover(action);
      break;
    case ActionKind::kIsolate:
      do_isolate(action);
      break;
    case ActionKind::kHeal:
      do_heal(action);
      break;
    case ActionKind::kHealAll:
      isolated_.clear();
      pair_isolated_.clear();
      apply_partitions();
      system_.network().clear_all_faults();
      system_.network().set_drop_probability(0.0);
      // Crashed nodes stay down and gray node faults (slow/steal) persist
      // (kHealAll only mends the network), so their fault windows stay open.
      for (auto& [addr, span] : isolate_spans_) end_fault_span(span);
      isolate_spans_.clear();
      for (auto& [link, span] : link_spans_) end_fault_span(span);
      link_spans_.clear();
      for (auto& [link, span] : flaky_spans_) end_fault_span(span);
      flaky_spans_.clear();
      if (drop_span_.valid()) end_fault_span(drop_span_);
      trace("chaos.heal", "all");
      break;
    case ActionKind::kLink:
      do_link(action, true);
      break;
    case ActionKind::kUnlink:
      do_link(action, false);
      break;
    case ActionKind::kGlobalDrop:
      system_.network().set_drop_probability(action.drop);
      if (action.drop > 0.0) {
        count_fault();
        if (!drop_span_.valid()) {
          drop_span_ = begin_fault_span("chaos.drop", std::to_string(action.drop));
        }
      } else if (drop_span_.valid()) {
        end_fault_span(drop_span_);
      }
      trace("chaos.drop", std::to_string(action.drop));
      break;
    case ActionKind::kSlow:
      do_slow(action, true);
      break;
    case ActionKind::kUnslow:
      do_slow(action, false);
      break;
    case ActionKind::kSteal:
      do_steal(action, true);
      break;
    case ActionKind::kUnsteal:
      do_steal(action, false);
      break;
    case ActionKind::kFlaky:
      do_flaky(action, true);
      break;
    case ActionKind::kUnflaky:
      do_flaky(action, false);
      break;
  }
}

void ChaosInjector::do_crash(const FaultAction& action) {
  NodeRole role = action.role;
  int index = action.index;
  if (role == NodeRole::kGl) {
    // Resolve the current leader; without one the action is a no-op (the
    // cluster is already leaderless, which is chaos enough).
    index = system_.fail_gl();
    if (index < 0) {
      trace("chaos.skip", "crash gl: no leader");
      return;
    }
    role = NodeRole::kGm;
    if (action.pair != 0) pair_targets_[action.pair] = {role, index};
    count_fault();
    crash_spans_[{role, index}] =
        begin_fault_span("chaos.crash", "gl (gm-" + std::to_string(index) + ")");
    trace("chaos.crash", "gl (gm-" + std::to_string(index) + ")");
    return;
  }
  if (action.pair != 0) pair_targets_[action.pair] = {role, index};
  switch (role) {
    case NodeRole::kGm: {
      auto& gms = system_.group_managers();
      if (index < 0 || static_cast<std::size_t>(index) >= gms.size() ||
          !gms[static_cast<std::size_t>(index)]->alive()) {
        trace("chaos.skip", "crash " + target_label(role, index));
        return;
      }
      gms[static_cast<std::size_t>(index)]->fail();
      break;
    }
    case NodeRole::kLc: {
      auto& lcs = system_.local_controllers();
      if (index < 0 || static_cast<std::size_t>(index) >= lcs.size() ||
          !lcs[static_cast<std::size_t>(index)]->alive()) {
        trace("chaos.skip", "crash " + target_label(role, index));
        return;
      }
      auto& lc = *lcs[static_cast<std::size_t>(index)];
      // The node's VMs die with it by design; they must not count as lost.
      if (checker_ != nullptr) checker_->excuse_vms(lc.host().vm_ids());
      lc.fail();
      break;
    }
    case NodeRole::kEp: {
      auto& eps = system_.entry_points();
      if (index < 0 || static_cast<std::size_t>(index) >= eps.size()) {
        trace("chaos.skip", "crash " + target_label(role, index));
        return;
      }
      eps[static_cast<std::size_t>(index)]->fail();
      break;
    }
    default:
      trace("chaos.skip", "crash: bad target");
      return;
  }
  count_fault();
  crash_spans_[{role, index}] =
      begin_fault_span("chaos.crash", target_label(role, index));
  trace("chaos.crash", target_label(role, index));
}

void ChaosInjector::do_recover(const FaultAction& action) {
  NodeRole role = action.role;
  int index = action.index;
  if (action.pair != 0) {
    const auto it = pair_targets_.find(action.pair);
    if (it == pair_targets_.end()) {
      trace("chaos.skip", "recover #" + std::to_string(action.pair) + ": never crashed");
      return;
    }
    role = it->second.first;
    index = it->second.second;
    pair_targets_.erase(it);
  }
  switch (role) {
    case NodeRole::kGm: {
      auto& gms = system_.group_managers();
      if (index >= 0 && static_cast<std::size_t>(index) < gms.size() &&
          !gms[static_cast<std::size_t>(index)]->alive()) {
        gms[static_cast<std::size_t>(index)]->restart();
      }
      break;
    }
    case NodeRole::kLc: {
      auto& lcs = system_.local_controllers();
      if (index >= 0 && static_cast<std::size_t>(index) < lcs.size() &&
          !lcs[static_cast<std::size_t>(index)]->alive()) {
        lcs[static_cast<std::size_t>(index)]->restart();
      }
      break;
    }
    case NodeRole::kEp: {
      auto& eps = system_.entry_points();
      if (index >= 0 && static_cast<std::size_t>(index) < eps.size() &&
          !eps[static_cast<std::size_t>(index)]->alive()) {
        eps[static_cast<std::size_t>(index)]->restart();
      }
      break;
    }
    default:
      trace("chaos.skip", "recover: bad target");
      return;
  }
  const auto span_it = crash_spans_.find({role, index});
  if (span_it != crash_spans_.end()) {
    end_fault_span(span_it->second, "recovered");
    crash_spans_.erase(span_it);
  }
  trace("chaos.recover", target_label(role, index));
}

void ChaosInjector::apply_partitions() {
  // Isolation islands: all addresses of an isolated node form one partition
  // group (its own endpoints stay mutually reachable); per Network::blocked()
  // semantics, grouped nodes cannot reach any node outside their group, while
  // ungrouped nodes keep talking normally.
  std::vector<std::set<net::Address>> partitions;
  partitions.reserve(isolated_.size());
  for (const auto& [primary, island] : isolated_) partitions.push_back(island);
  system_.network().set_partitions(std::move(partitions));
}

void ChaosInjector::do_isolate(const FaultAction& action) {
  const std::vector<net::Address> addrs =
      resolve_addresses(action.role, action.index);
  if (addrs.empty()) {
    trace("chaos.skip", "isolate " + target_label(action.role, action.index));
    return;
  }
  const net::Address primary = addrs.front();
  if (action.pair != 0) pair_isolated_[action.pair] = primary;
  if (isolated_.count(primary) > 0) return;  // already isolated
  isolated_[primary] = std::set<net::Address>(addrs.begin(), addrs.end());
  apply_partitions();
  count_fault();
  isolate_spans_[primary] =
      begin_fault_span("chaos.isolate", target_label(action.role, action.index));
  trace("chaos.isolate", target_label(action.role, action.index));
}

void ChaosInjector::do_heal(const FaultAction& action) {
  net::Address addr = net::kNullAddress;
  if (action.pair != 0) {
    const auto it = pair_isolated_.find(action.pair);
    if (it == pair_isolated_.end()) {
      trace("chaos.skip", "heal #" + std::to_string(action.pair) + ": not isolated");
      return;
    }
    addr = it->second;
    pair_isolated_.erase(it);
  } else {
    addr = resolve_address(action.role, action.index);
  }
  if (addr == net::kNullAddress || isolated_.erase(addr) == 0) {
    trace("chaos.skip", "heal: target not isolated");
    return;
  }
  apply_partitions();
  const auto span_it = isolate_spans_.find(addr);
  if (span_it != isolate_spans_.end()) {
    end_fault_span(span_it->second);
    isolate_spans_.erase(span_it);
  }
  trace("chaos.heal", target_label(action.role, action.index));
}

void ChaosInjector::do_link(const FaultAction& action, bool install) {
  const net::Address a = resolve_address(action.role, action.index);
  const net::Address b = resolve_address(action.role2, action.index2);
  if (a == net::kNullAddress || b == net::kNullAddress || a == b) {
    trace("chaos.skip", "link: bad endpoints");
    return;
  }
  std::ostringstream detail;
  detail << target_label(action.role, action.index) << " <-> "
         << target_label(action.role2, action.index2);
  const std::pair<net::Address, net::Address> link_key = std::minmax(a, b);
  if (install) {
    system_.network().set_link_faults(a, b, action.faults);
    system_.network().set_link_faults(b, a, action.faults);
    count_fault();
    detail << " drop=" << action.faults.drop;
    link_spans_[link_key] = begin_fault_span("chaos.link", detail.str());
  } else {
    system_.network().clear_link_faults(a, b);
    system_.network().clear_link_faults(b, a);
    const auto span_it = link_spans_.find(link_key);
    if (span_it != link_spans_.end()) {
      end_fault_span(span_it->second);
      link_spans_.erase(span_it);
    }
  }
  trace(install ? "chaos.link" : "chaos.unlink", detail.str());
}

void ChaosInjector::do_slow(const FaultAction& action, bool install) {
  NodeRole role = action.role;
  int index = action.index;
  if (!install && action.pair != 0) {
    const auto it = pair_targets_.find(action.pair);
    if (it == pair_targets_.end()) {
      trace("chaos.skip", "unslow #" + std::to_string(action.pair) + ": never slowed");
      return;
    }
    role = it->second.first;
    index = it->second.second;
    pair_targets_.erase(it);
  }
  // A dead node cannot be slow; the knob survives restarts by design (the
  // injector, not the component, owns the fault window), so we still clear it
  // on uninstall even if the node crashed mid-window.
  const double factor = install ? action.severity : 1.0;
  switch (role) {
    case NodeRole::kGm: {
      auto& gms = system_.group_managers();
      if (index < 0 || static_cast<std::size_t>(index) >= gms.size()) {
        trace("chaos.skip", "slow " + target_label(role, index));
        return;
      }
      gms[static_cast<std::size_t>(index)]->set_service_stretch(factor);
      break;
    }
    case NodeRole::kLc: {
      auto& lcs = system_.local_controllers();
      if (index < 0 || static_cast<std::size_t>(index) >= lcs.size()) {
        trace("chaos.skip", "slow " + target_label(role, index));
        return;
      }
      lcs[static_cast<std::size_t>(index)]->set_service_stretch(factor);
      break;
    }
    default:
      trace("chaos.skip", "slow: bad target");
      return;
  }
  if (install) {
    if (action.pair != 0) pair_targets_[action.pair] = {role, index};
    count_fault();
    std::ostringstream detail;
    detail << target_label(role, index) << " factor=" << action.severity;
    slow_spans_[{role, index}] = begin_fault_span("chaos.slow", detail.str());
    trace("chaos.slow", detail.str());
  } else {
    const auto span_it = slow_spans_.find({role, index});
    if (span_it != slow_spans_.end()) {
      end_fault_span(span_it->second);
      slow_spans_.erase(span_it);
    }
    trace("chaos.unslow", target_label(role, index));
  }
}

void ChaosInjector::do_steal(const FaultAction& action, bool install) {
  NodeRole role = action.role;
  int index = action.index;
  if (!install && action.pair != 0) {
    const auto it = pair_targets_.find(action.pair);
    if (it == pair_targets_.end()) {
      trace("chaos.skip", "unsteal #" + std::to_string(action.pair) + ": never stolen");
      return;
    }
    role = it->second.first;
    index = it->second.second;
    pair_targets_.erase(it);
  }
  auto& lcs = system_.local_controllers();
  if (role != NodeRole::kLc || index < 0 ||
      static_cast<std::size_t>(index) >= lcs.size()) {
    trace("chaos.skip", "steal " + target_label(role, index));
    return;
  }
  lcs[static_cast<std::size_t>(index)]->set_cpu_steal(install ? action.severity : 0.0);
  if (install) {
    if (action.pair != 0) pair_targets_[action.pair] = {role, index};
    count_fault();
    std::ostringstream detail;
    detail << target_label(role, index) << " frac=" << action.severity;
    steal_spans_[{role, index}] = begin_fault_span("chaos.steal", detail.str());
    trace("chaos.steal", detail.str());
  } else {
    const auto span_it = steal_spans_.find({role, index});
    if (span_it != steal_spans_.end()) {
      end_fault_span(span_it->second);
      steal_spans_.erase(span_it);
    }
    trace("chaos.unsteal", target_label(role, index));
  }
}

void ChaosInjector::do_flaky(const FaultAction& action, bool install) {
  const net::Address a = resolve_address(action.role, action.index);
  const net::Address b = resolve_address(action.role2, action.index2);
  if (a == net::kNullAddress || b == net::kNullAddress || a == b) {
    trace("chaos.skip", "flaky: bad endpoints");
    return;
  }
  std::ostringstream detail;
  detail << target_label(action.role, action.index) << " <-> "
         << target_label(action.role2, action.index2);
  const std::pair<net::Address, net::Address> link_key = std::minmax(a, b);
  if (install) {
    system_.network().set_link_faults(a, b, action.faults);
    system_.network().set_link_faults(b, a, action.faults);
    count_fault();
    detail << " lat=" << action.faults.flaky_latency;
    flaky_spans_[link_key] = begin_fault_span("chaos.flaky", detail.str());
  } else {
    system_.network().clear_link_faults(a, b);
    system_.network().clear_link_faults(b, a);
    const auto span_it = flaky_spans_.find(link_key);
    if (span_it != flaky_spans_.end()) {
      end_fault_span(span_it->second);
      flaky_spans_.erase(span_it);
    }
  }
  trace(install ? "chaos.flaky" : "chaos.unflaky", detail.str());
}

void ChaosInjector::heal_all_remaining() {
  for (auto& gm : system_.group_managers()) {
    if (!gm->alive()) gm->restart();
  }
  for (auto& lc : system_.local_controllers()) {
    if (!lc->alive()) lc->restart();
  }
  for (auto& ep : system_.entry_points()) {
    if (!ep->alive()) ep->restart();
  }
  // Gray node faults end with the run: the final liveness check must start
  // from a fleet that is not just connected but also full-speed.
  for (auto& gm : system_.group_managers()) gm->set_service_stretch(1.0);
  for (auto& lc : system_.local_controllers()) {
    lc->set_service_stretch(1.0);
    lc->set_cpu_steal(0.0);
  }
  isolated_.clear();
  pair_isolated_.clear();
  pair_targets_.clear();
  apply_partitions();
  system_.network().clear_all_faults();
  system_.network().set_drop_probability(0.0);
  for (auto& [key, span] : crash_spans_) end_fault_span(span, "recovered");
  crash_spans_.clear();
  for (auto& [addr, span] : isolate_spans_) end_fault_span(span);
  isolate_spans_.clear();
  for (auto& [link, span] : link_spans_) end_fault_span(span);
  link_spans_.clear();
  for (auto& [key, span] : slow_spans_) end_fault_span(span);
  slow_spans_.clear();
  for (auto& [key, span] : steal_spans_) end_fault_span(span);
  steal_spans_.clear();
  for (auto& [link, span] : flaky_spans_) end_fault_span(span);
  flaky_spans_.clear();
  if (drop_span_.valid()) end_fault_span(drop_span_);
  if (chaos_root_.valid()) end_fault_span(chaos_root_, "ok");
  trace("chaos.heal", "final");
}

}  // namespace snooze::chaos
