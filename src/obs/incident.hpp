// Incident engine: episode segmentation + ranked root-cause attribution.
//
// Consumes the evidence stream from `obs/causality.hpp` and segments the run
// into *incident episodes*: an episode opens at the first strong signal (a
// death log, an SLO burn alert, a failover detection, a containment-ladder
// action, an invariant breach) and closes hysteretically — it absorbs every
// further signal that arrives within `quiet_close_s` of the last one, and is
// considered closed at the time of its final signal once the trace has been
// quiet that long. Within each episode the engine tallies vote mass per
// (fault class, blamed node) pair and emits ranked hypotheses; blast radius
// comes from the `client.submit` span trees overlapping the window.
//
// The engine is strictly passive and offline: it reads a snapshot of the
// trace and span collector after the run, touches no clock, RNG, or event
// queue, and therefore cannot perturb a deterministic run — same-seed chaos
// hashes and golden traces are byte-identical whether or not it runs.
//
// Ground truth stays out of this layer by design. `chaos/ground_truth.hpp`
// extracts the injected schedule from the `chaos.*` records this engine
// refuses to read, scores the hypotheses against it, and back-annotates
// matches + detection latency into the report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/causality.hpp"
#include "sim/trace.hpp"
#include "telemetry/span.hpp"

namespace snooze::obs {

struct IncidentConfig {
  /// An episode closes once no signal has arrived for this long; the close
  /// timestamp is the last signal, not the end of the quiet window.
  double quiet_close_s = 30.0;
  /// Minimum vote mass for a node-blaming hypothesis to be reported. 2.0 =
  /// at least one ladder action or two corroborating weak signals; a single
  /// death log (3.0) clears it alone.
  double min_vote_mass = 2.0;
};

/// One ranked root-cause candidate for an episode.
struct Hypothesis {
  FaultClass fault_class = FaultClass::kUnknown;
  std::string target;           ///< blamed node; empty = anonymous (weak)
  double vote_mass = 0.0;
  double confidence = 0.0;      ///< vote_mass / episode total
  double first_evidence = 0.0;  ///< time of the earliest supporting vote
  std::string rationale;        ///< up to three "kind@t" supporting cites
  // Filled by chaos::score_attribution when ground truth is available:
  int matched_fault = -1;           ///< index into the injected schedule
  double detection_latency_s = -1;  ///< first_evidence - injection time
};

struct IncidentEpisode {
  int id = 0;
  double opened = 0.0;          ///< first signal
  double closed = 0.0;          ///< last signal (quiet window elapsed after)
  bool open_at_end = false;     ///< run ended inside the quiet window
  std::string opened_by;        ///< kind of the opening record
  std::vector<Evidence> evidence;      ///< full causal chain, time order
  std::vector<Hypothesis> hypotheses;  ///< ranked by vote mass, best first
  // Blast radius over [opened, closed]:
  std::uint64_t submits = 0;         ///< client.submit spans overlapping
  std::uint64_t failed_submits = 0;  ///< ... that ended "failed"
  std::uint64_t alerts = 0;          ///< slo.alert signals inside
  std::vector<std::string> affected_vms;    ///< sorted vm ids (from spans)
  std::vector<std::string> affected_nodes;  ///< sorted actors + targets
  // Slowest client.submit span overlapping the window (0 = none closed):
  std::uint64_t slowest_submit_span = 0;
  double slowest_submit_s = 0.0;

  [[nodiscard]] double mttr_s() const { return closed - opened; }
};

struct IncidentReport {
  std::vector<IncidentEpisode> episodes;
  double run_end = 0.0;

  /// One row per hypothesis (episodes without one get an "unknown" row).
  [[nodiscard]] std::string table() const;
  /// Machine-readable: one CSV row per hypothesis.
  [[nodiscard]] std::string csv() const;
  /// Detailed single-episode view: timeline, ranked hypotheses, blast
  /// radius, and the slowest submit's span tree (when a collector is given).
  [[nodiscard]] std::string show(int id,
                                 const telemetry::SpanCollector* spans) const;
};

/// Run the engine over a trace snapshot. `spans` may be null (blast radius
/// then counts trace records only); `run_end` bounds the last episode.
[[nodiscard]] IncidentReport analyze_incidents(
    const std::vector<sim::TraceRecord>& records,
    const telemetry::SpanCollector* spans, double run_end,
    const AddressNames& names, const IncidentConfig& cfg = {});

/// Splice incident windows ("X" duration events) and weighted evidence
/// ("i" instants) into a chrome://tracing JSON export, following the same
/// in-place append as `chrome_trace_with_counters`.
[[nodiscard]] std::string chrome_trace_with_incidents(
    std::string base, const IncidentReport& report);

}  // namespace snooze::obs
