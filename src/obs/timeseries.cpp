#include "obs/timeseries.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/csv.hpp"

namespace snooze::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

std::size_t TimeSeriesStore::add_column(std::string name) {
  assert(rows_.empty() && "register every column before the first append_row");
  columns_.push_back(std::move(name));
  return columns_.size() - 1;
}

void TimeSeriesStore::append_row(double t, const std::vector<double>& values) {
  assert(values.size() == columns_.size());
  rows_.push_back(Row{t, values});
  if (max_rows_ != 0 && rows_.size() > max_rows_) {
    rows_.pop_front();
    ++dropped_;
  }
}

double TimeSeriesStore::latest(std::size_t col) const {
  return rows_.empty() ? kNaN : rows_.back().values[col];
}

double TimeSeriesStore::latest_time() const {
  return rows_.empty() ? kNaN : rows_.back().time;
}

std::size_t TimeSeriesStore::window_base(double window) const {
  const double cutoff = rows_.back().time - window;
  // Rows are few thousand at most; a backwards linear scan beats binary
  // search bookkeeping for the short windows the SLIs use.
  std::size_t i = rows_.size() - 1;
  while (i > 0 && rows_[i - 1].time > cutoff) --i;
  return i > 0 ? i - 1 : 0;
}

double TimeSeriesStore::delta_over(std::size_t col, double window) const {
  if (rows_.size() < 2) return kNaN;
  const std::size_t base = window_base(window);
  return rows_.back().values[col] - rows_[base].values[col];
}

double TimeSeriesStore::span_over(double window) const {
  if (rows_.size() < 2) return kNaN;
  return rows_.back().time - rows_[window_base(window)].time;
}

std::string TimeSeriesStore::csv() const {
  std::vector<std::string> header;
  header.reserve(columns_.size() + 1);
  header.emplace_back("time");
  for (const std::string& c : columns_) header.push_back(c);
  std::string out = util::csv_row(header);
  out += '\n';
  std::vector<std::string> cells(columns_.size() + 1);
  for (const Row& row : rows_) {
    cells[0] = fmt(row.time);
    for (std::size_t i = 0; i < row.values.size(); ++i) cells[i + 1] = fmt(row.values[i]);
    out += util::csv_row(cells);
    out += '\n';
  }
  return out;
}

}  // namespace snooze::obs
