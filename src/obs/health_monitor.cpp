#include "obs/health_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "telemetry/export.hpp"
#include "util/table.hpp"

namespace snooze::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kRateWindow = 60.0;  ///< trailing window for per-minute rates

std::string fmt6(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

const char* power_state_name(energy::PowerState s) {
  switch (s) {
    case energy::PowerState::kOn: return "on";
    case energy::PowerState::kSuspended: return "suspended";
    case energy::PowerState::kOff: return "off";
    case energy::PowerState::kSuspending: return "suspending";
    case energy::PowerState::kResuming: return "resuming";
    case energy::PowerState::kBooting: return "booting";
  }
  return "?";
}

}  // namespace

HealthMonitor::HealthMonitor(core::SnoozeSystem& system, std::size_t max_rows)
    : sim::Actor(system.engine(), "health"), system_(system), store_(max_rows),
      slo_(system.spec().config.slo) {
  col_.hosts_on = store_.add_column("hosts.on");
  col_.hosts_suspended = store_.add_column("hosts.suspended");
  col_.hosts_off = store_.add_column("hosts.off");
  col_.lcs_assigned = store_.add_column("lcs.assigned");
  col_.vms_running = store_.add_column("vms.running");
  col_.energy_j = store_.add_column("energy.joules");
  col_.energy_on_j = store_.add_column("energy.on_joules");
  col_.energy_suspended_j = store_.add_column("energy.suspended_joules");
  col_.energy_off_j = store_.add_column("energy.off_joules");
  col_.work_vm_s = store_.add_column("work.vm_seconds");
  col_.hb_staleness = store_.add_column("heartbeat.staleness_max_s");
  col_.queue_depth = store_.add_column("engine.queue_depth");
  col_.placements = store_.add_column("placements.total");
  col_.migrations = store_.add_column("migrations.total");
  col_.submits = store_.add_column("submits.total");
  col_.fence_rejected = store_.add_column("fence.rejected_total");
  col_.mttr_s = store_.add_column("failover.mttr_s");
  col_.failovers = store_.add_column("failover.episodes");
  col_.submit_p50 = store_.add_column("submit.p50_s");
  col_.submit_p99 = store_.add_column("submit.p99_s");
  col_.slo_firing = store_.add_column("slo.firing");
  col_.slo_flaps = store_.add_column("slo.flaps_per_hour");
  col_.interference_p99 = store_.add_column("interference.p99_penalty");
  col_.degraded_vm_s = store_.add_column("interference.degraded_vm_s");
  col_.summary_bytes_per_gm = store_.add_column("summary.bytes_per_gm_period");
  col_.summary_staleness = store_.add_column("summary.staleness_s");
  col_.gray_slow_nodes = store_.add_column("gray.slow_nodes");
  col_.gray_quarantined = store_.add_column("gray.quarantined");
  col_.rpc_hedges_won = store_.add_column("rpc.hedges_won");
  col_.breaker_open_s = store_.add_column("breaker.open_s");
}

void HealthMonitor::start() {
  if (started_) return;
  started_ = true;
  sample_now();
  every(slo_.config().sample_period, [this] {
    tick();
    return true;
  });
}

void HealthMonitor::tick() { sample_now(); }

double HealthMonitor::failover_mttr() const {
  return mttr_count_ ? mttr_sum_ / static_cast<double>(mttr_count_) : kNaN;
}

void HealthMonitor::scan_trace() {
  const sim::Trace& trace = system_.trace();
  const auto& records = trace.records();
  const std::uint64_t dropped = trace.dropped();
  const std::uint64_t total = dropped + records.size();
  if (total < scanned_records_) {
    // The trace was cleared (dropped resets with it): restart from whatever
    // is retained now rather than indexing past the end.
    scanned_records_ = dropped;
    episode_started_ = -1.0;
    current_gl_.clear();
  }
  if (scanned_records_ < dropped) {
    // The ring trimmed records the scan never saw. An election or
    // reconciliation may have been inside the gap, so closing an open episode
    // against the next boundary would fabricate an MTTR sample; drop the open
    // episode and the GL identity instead and resume from the retained tail.
    ++scan_gaps_;
    episode_started_ = -1.0;
    current_gl_.clear();
    scanned_records_ = dropped;
  }
  const std::size_t begin =
      std::min(static_cast<std::size_t>(scanned_records_ - dropped), records.size());
  for (std::size_t i = begin; i < records.size(); ++i) {
    const sim::TraceRecord& r = records[i];
    if (r.kind == "gm.elected_gl") {
      current_gl_ = r.actor;
    } else if (r.kind == "gm.fail") {
      if (r.actor == current_gl_ && !current_gl_.empty() && episode_started_ < 0.0) {
        episode_started_ = r.time;  // the acting GL died: recovery clock starts
      }
    } else if (r.kind == "gl.reconciled") {
      if (episode_started_ >= 0.0) {
        mttr_sum_ += r.time - episode_started_;
        ++mttr_count_;
        episode_started_ = -1.0;
      }
      current_gl_ = r.actor;
    }
  }
  scanned_records_ = total;
}

void HealthMonitor::sample_now() {
  const double now = engine().now();
  if (store_.row_count() > 0 && store_.latest_time() == now) return;

  scan_trace();

  // --- host / VM / hierarchy state ----------------------------------------
  double on = 0.0, suspended = 0.0, off = 0.0, assigned = 0.0;
  double staleness = 0.0;
  for (const auto& lc : system_.local_controllers()) {
    if (!lc->alive()) {
      off += 1.0;
      continue;
    }
    switch (energy::power_class(lc->power_state())) {
      case energy::PowerClass::kOn: on += 1.0; break;
      case energy::PowerClass::kSuspended: suspended += 1.0; break;
      case energy::PowerClass::kOff: off += 1.0; break;
    }
    if (lc->assigned()) {
      assigned += 1.0;
      if (!lc->suspended()) staleness = std::max(staleness, lc->gm_heartbeat_age(now));
    }
  }

  // --- energy / work --------------------------------------------------------
  const auto energy_split = system_.total_energy_by_state();
  const double energy_total = system_.total_energy();
  const double work = system_.total_work();

  // --- throughput counters (cumulative; rates derived over the window) -----
  double placements = 0.0, migrations = 0.0, fence_rejected = 0.0;
  for (const auto& gm : system_.group_managers()) {
    placements += static_cast<double>(gm->counters().placements_ok);
    migrations += static_cast<double>(gm->counters().migrations_completed);
    fence_rejected += static_cast<double>(gm->fence_rejected());
  }
  for (const auto& lc : system_.local_controllers()) {
    fence_rejected += static_cast<double>(lc->fence_rejected());
  }

  // --- interference ---------------------------------------------------------
  // Per-VM penalties across profiled running VMs (read-only host state).
  std::vector<double> penalties;
  double penalty_sum = 0.0;
  for (const auto& lc : system_.local_controllers()) {
    if (!lc->alive() || lc->suspended()) continue;
    const hypervisor::Host& host = lc->host();
    for (const auto& [id, vm] : host.vms()) {
      if (!vm->spec().mem_profile.present()) continue;
      const double penalty = 1.0 - host.vm_penalty(id);
      penalties.push_back(penalty);
      penalty_sum += penalty;
    }
  }
  double interference_p99 = kNaN;
  if (!penalties.empty()) {
    std::sort(penalties.begin(), penalties.end());
    const std::size_t idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(penalties.size() - 1) + 0.5);
    interference_p99 = penalties[std::min(idx, penalties.size() - 1)];
  }
  if (last_sample_time_ >= 0.0) {
    degraded_vm_s_accum_ += last_penalty_sum_ * (now - last_sample_time_);
  }
  last_penalty_sum_ = penalty_sum;
  last_sample_time_ = now;

  // --- summary protocol (delta-summary deployments only) -------------------
  // Bytes per summary-sending GM per period over the trailing rate window,
  // and the stalest GM summary at the acting GL. Both NaN in full-summary
  // mode so pre-delta deployments evaluate (and alert) exactly as before.
  // Normalized per sender, not per LC: a converged delta stream costs one
  // near-empty header per GM per period whatever the fleet shape, so the
  // same threshold works for a 4-LC test cluster and a 200-LC production
  // shape.
  double summary_bytes_per_gm = kNaN;
  double summary_staleness = kNaN;
  if (system_.spec().config.delta_summaries) {
    double total_bytes = 0.0;
    double senders = 0.0;
    for (const auto& gm : system_.group_managers()) {
      total_bytes += static_cast<double>(gm->counters().summary_bytes_sent);
      if (gm->is_leader()) {
        const double s = gm->summary_staleness();
        if (s >= 0.0) summary_staleness = s;
      } else if (gm->alive()) {
        ++senders;
      }
    }
    while (!summary_bytes_window_.empty() &&
           now - summary_bytes_window_.front().time > kRateWindow) {
      summary_bytes_window_.erase(summary_bytes_window_.begin());
    }
    if (!summary_bytes_window_.empty() && senders > 0.0) {
      const BytesSample& oldest = summary_bytes_window_.front();
      if (now > oldest.time) {
        const double rate = (total_bytes - oldest.bytes) / (now - oldest.time);
        summary_bytes_per_gm =
            rate * system_.spec().config.gm_summary_period / senders;
      }
    }
    summary_bytes_window_.push_back({now, total_bytes});
  }

  // --- gray-failure detection ----------------------------------------------
  // Slow nodes = LCs held on probation or in quarantine by their GM, plus GMs
  // the acting GL flags (read-only state, so sampling stays deterministic).
  double gray_slow = 0.0, gray_quarantined = 0.0, breaker_open_s = 0.0;
  for (const auto& gm : system_.group_managers()) {
    gray_slow += static_cast<double>(gm->probation_count() + gm->quarantined_count());
    gray_quarantined += static_cast<double>(gm->quarantined_count());
    if (gm->is_leader()) gray_slow += static_cast<double>(gm->gm_probation_count());
    breaker_open_s += gm->breaker_open_seconds();
  }
  double hedges_won = 0.0;
  if (const telemetry::Counter* c =
          system_.telemetry().metrics().find_counter("rpc.hedges_won")) {
    hedges_won = static_cast<double>(c->value());
  }
  telemetry::gauge_set(&system_.telemetry(), "gray.slow_nodes", gray_slow);
  telemetry::gauge_set(&system_.telemetry(), "gray.quarantined", gray_quarantined);

  // --- latency percentiles --------------------------------------------------
  double p50 = kNaN, p99 = kNaN;
  if (const telemetry::Histogram* h =
          system_.telemetry().metrics().find_histogram("client.submit_latency");
      h != nullptr && h->count() > 0) {
    p50 = h->percentile(0.5);
    p99 = h->percentile(0.99);
  }

  std::vector<double> row(store_.column_count());
  row[col_.hosts_on] = on;
  row[col_.hosts_suspended] = suspended;
  row[col_.hosts_off] = off;
  row[col_.lcs_assigned] = assigned;
  row[col_.vms_running] = static_cast<double>(system_.running_vm_count());
  row[col_.energy_j] = energy_total;
  row[col_.energy_on_j] = energy_split[static_cast<std::size_t>(energy::PowerClass::kOn)];
  row[col_.energy_suspended_j] =
      energy_split[static_cast<std::size_t>(energy::PowerClass::kSuspended)];
  row[col_.energy_off_j] = energy_split[static_cast<std::size_t>(energy::PowerClass::kOff)];
  row[col_.work_vm_s] = work;
  row[col_.hb_staleness] = staleness;
  row[col_.queue_depth] = static_cast<double>(system_.engine().pending_events());
  row[col_.placements] = placements;
  row[col_.migrations] = migrations;
  row[col_.submits] = static_cast<double>(system_.client().submitted());
  row[col_.fence_rejected] = fence_rejected;
  row[col_.mttr_s] = failover_mttr();
  row[col_.failovers] = static_cast<double>(mttr_count_);
  row[col_.submit_p50] = p50;
  row[col_.submit_p99] = p99;
  row[col_.slo_firing] = static_cast<double>(slo_.firing_count());
  // Flap rate normalized to per-hour whatever the configured window.
  const double flap_window = slo_.config().flap_window_s;
  row[col_.slo_flaps] =
      flap_window > 0.0 ? slo_.flaps_in_window(now) * 3600.0 / flap_window : 0.0;
  row[col_.interference_p99] = interference_p99;
  row[col_.degraded_vm_s] = degraded_vm_s_accum_;
  row[col_.summary_bytes_per_gm] = summary_bytes_per_gm;
  row[col_.summary_staleness] = summary_staleness;
  row[col_.gray_slow_nodes] = gray_slow;
  row[col_.gray_quarantined] = gray_quarantined;
  row[col_.rpc_hedges_won] = hedges_won;
  row[col_.breaker_open_s] = breaker_open_s;
  store_.append_row(now, row);

  evaluate_slos(now);
}

std::vector<std::string> HealthMonitor::sli_names() {
  return {"degraded_vm_rate",    "energy_per_vm_hour",
          "failover_mttr",       "fence_rejected_rate",
          "heartbeat_staleness", "interference_p99_penalty",
          "submit_p50",          "submit_p99",
          "summary_bytes_per_gm", "summary_staleness"};
}

void HealthMonitor::evaluate_slos(double now) {
  const core::SloConfig& cfg = slo_.config();

  // Energy per VM-hour: undefined until enough useful work accumulated.
  const double vm_hours = store_.latest(col_.work_vm_s) / 3600.0;
  const double energy_sli = vm_hours >= cfg.energy_min_vm_hours
                                ? store_.latest(col_.energy_j) / vm_hours
                                : kNaN;

  // Stale-command rejections per minute over the trailing window.
  double fence_rate = kNaN;
  double degraded_rate = kNaN;
  const double span = store_.span_over(kRateWindow);
  if (!std::isnan(span) && span > 0.0) {
    fence_rate = store_.delta_over(col_.fence_rejected, kRateWindow) * 60.0 / span;
    // Degraded-VM-seconds accumulated per minute. NaN until a profiled VM
    // has ever reported (rate 0.0 would count as a "good" sample and feed
    // the hysteresis streaks of pre-interference deployments).
    if (degraded_vm_s_accum_ > 0.0 || last_penalty_sum_ > 0.0) {
      degraded_rate = store_.delta_over(col_.degraded_vm_s, kRateWindow) * 60.0 / span;
    }
  }

  // Fixed evaluation order: SLI names sort the trace records deterministically.
  const struct {
    const char* name;
    double value;
    double threshold;
  } slis[] = {
      {"degraded_vm_rate", degraded_rate, cfg.degraded_vm_seconds_per_min_max},
      {"energy_per_vm_hour", energy_sli, cfg.energy_per_vm_hour_max_j},
      {"failover_mttr", failover_mttr(), cfg.failover_mttr_max_s},
      {"fence_rejected_rate", fence_rate, cfg.fence_rejected_per_min_max},
      {"heartbeat_staleness", store_.latest(col_.hb_staleness), cfg.heartbeat_staleness_max_s},
      {"interference_p99_penalty", store_.latest(col_.interference_p99),
       cfg.interference_p99_penalty_max},
      {"submit_p50", store_.latest(col_.submit_p50), cfg.submit_p50_max_s},
      {"submit_p99", store_.latest(col_.submit_p99), cfg.submit_p99_max_s},
      {"summary_bytes_per_gm", store_.latest(col_.summary_bytes_per_gm),
       cfg.summary_bytes_per_gm_period_max},
      {"summary_staleness", store_.latest(col_.summary_staleness),
       cfg.summary_staleness_max_s},
  };
  for (const auto& sli : slis) {
    const auto transition = slo_.observe(sli.name, sli.value, sli.threshold, now);
    if (!transition) continue;
    if (transition->fired) {
      ++alerts_fired_;
    } else {
      ++alerts_cleared_;
    }
    std::string detail = std::string("sli=") + sli.name +
                         " value=" + fmt6(transition->value) +
                         " threshold=" + fmt6(transition->threshold);
    system_.trace().record("health", transition->fired ? "slo.alert" : "slo.clear",
                           detail);
    telemetry::count(&system_.telemetry(),
                     transition->fired ? "slo.alerts_fired" : "slo.alerts_cleared");
  }
  telemetry::gauge_set(&system_.telemetry(), "slo.firing",
                       static_cast<double>(slo_.firing_count()));
  telemetry::gauge_set(&system_.telemetry(), "slo.flaps_per_hour",
                       store_.latest(col_.slo_flaps));
}

CriticalPathReport HealthMonitor::critical_path() const {
  return analyze_critical_path(system_.telemetry().spans(), system_.engine().now());
}

std::string HealthMonitor::dashboard() const {
  std::ostringstream out;
  if (store_.row_count() == 0) return "no samples yet\n";
  out << "health @ t=" << util::Table::num(store_.latest_time(), 2) << " s ("
      << store_.row_count() << " samples, cadence "
      << util::Table::num(slo_.config().sample_period, 2) << " s)\n";
  util::Table table({"series", "latest", "delta/60s"});
  for (std::size_t c = 0; c < store_.column_count(); ++c) {
    const double delta = store_.delta_over(c, kRateWindow);
    table.add_row({store_.columns()[c], util::Table::num(store_.latest(c), 3),
                   std::isnan(delta) ? "-" : util::Table::num(delta, 3)});
  }
  out << table.to_string();
  return out.str();
}

std::string HealthMonitor::slo_table() const {
  std::ostringstream out;
  const auto& status = slo_.status();
  if (status.empty()) return "no SLIs evaluated yet\n";
  util::Table table({"sli", "value", "threshold", "state", "burn", "fired"});
  std::size_t firing = 0;
  for (const auto& [name, s] : status) {
    if (s.firing()) ++firing;
    table.add_row({name, std::isnan(s.value) ? "-" : util::Table::num(s.value, 3),
                   util::Table::num(s.threshold, 3), s.firing() ? "FIRING" : "OK",
                   std::to_string(s.burn_streak), std::to_string(s.times_fired)});
  }
  out << table.to_string();
  out << (firing == 0 ? "all SLOs met" : std::to_string(firing) + " SLO(s) violated")
      << "\n";
  return out.str();
}

std::string HealthMonitor::top(std::size_t n) const {
  const double now = system_.engine().now();
  struct Node {
    const core::LocalController* lc;
    std::size_t vms;
    double energy;
  };
  std::vector<Node> nodes;
  for (const auto& lc : system_.local_controllers()) {
    nodes.push_back({lc.get(), lc->alive() ? lc->vm_count() : 0, lc->energy_joules(now)});
  }
  std::sort(nodes.begin(), nodes.end(), [](const Node& a, const Node& b) {
    if (a.vms != b.vms) return a.vms > b.vms;
    if (a.energy != b.energy) return a.energy > b.energy;
    return a.lc->name() < b.lc->name();
  });
  if (n != 0 && nodes.size() > n) nodes.resize(n);

  util::Table table({"node", "power", "vms", "util", "sock_util", "penalty", "gray",
                     "hb_age", "energy_j"});
  for (const Node& node : nodes) {
    const core::LocalController& lc = *node.lc;
    const bool alive = lc.alive();
    std::string gray = "-";
    for (const auto& gm : system_.group_managers()) {
      const int health = gm->lc_health_of(lc.address());
      if (health < 0) continue;
      gray = health == 0 ? "ok" : health == 1 ? "probation" : "quarantine";
      break;
    }
    std::string sock_util = "-";
    std::string penalty = "-";
    if (alive) {
      const hypervisor::Host& host = lc.host();
      if (!host.topology().flat()) {
        sock_util.clear();
        for (std::size_t s = 0; s < host.socket_count(); ++s) {
          if (s != 0) sock_util += "/";
          sock_util += util::Table::pct(host.socket_utilization(s, now));
        }
      }
      const double worst = host.worst_penalty();
      if (worst < 1.0) penalty = util::Table::pct(1.0 - worst);
    }
    table.add_row({lc.name(), alive ? power_state_name(lc.power_state()) : "dead",
                   std::to_string(node.vms),
                   alive ? util::Table::pct(lc.host().utilization(now)) : "-", sock_util,
                   penalty, gray,
                   alive ? util::Table::num(lc.gm_heartbeat_age(now), 2) : "-",
                   util::Table::num(node.energy, 0)});
  }
  return table.to_string();
}

std::string chrome_trace_with_counters(const telemetry::SpanCollector& spans,
                                       sim::Time now, const TimeSeriesStore& store) {
  std::string base = telemetry::chrome_trace_json(spans, now);
  // base ends with "]}" closing traceEvents and the object; splice counter
  // events in before the "]".
  if (base.size() < 2 || base.compare(base.size() - 2, 2, "]}") != 0) return base;
  const bool have_events = base.size() >= 3 && base[base.size() - 3] != '[';
  base.resize(base.size() - 2);

  std::ostringstream out;
  out << base;
  bool first = !have_events;
  char buf[160];
  for (std::size_t row = 0; row < store.row_count(); ++row) {
    const double ts_us = store.time_at(row) * 1e6;
    for (std::size_t col = 0; col < store.column_count(); ++col) {
      const double value = store.value_at(row, col);
      if (std::isnan(value)) continue;  // Perfetto counters need finite values
      std::snprintf(buf, sizeof(buf),
                    "%s{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\",\"ts\":%.3f,"
                    "\"args\":{\"value\":%.10g}}",
                    first ? "" : ",", store.columns()[col].c_str(), ts_us, value);
      first = false;
      out << buf;
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace snooze::obs
