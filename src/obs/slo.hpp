// SLI/SLO evaluation with burn/clear hysteresis.
//
// The evaluator is fed one value per SLI per sampling tick and compares it
// to its threshold (all SLOs are maxima: "stay below"). An alert FIRES after
// `burn_samples` consecutive breaching ticks — a single bad sample is noise,
// a streak is an error-budget burn — and CLEARS only after `clear_samples`
// consecutive ticks below `clear_fraction * threshold`, so an SLI oscillating
// around its threshold cannot flap the alert. NaN means "no data": it resets
// the burn streak but does not advance the clear streak (absence of evidence
// neither fires nor clears).
//
// State transitions are returned to the caller (the HealthMonitor), which
// records them in the sim trace so golden tests and chaos invariants can pin
// exactly when alerts fired.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.hpp"

namespace snooze::obs {

struct SloTransition {
  std::string sli;
  bool fired = false;  ///< true: Ok -> Firing; false: Firing -> Ok
  double value = 0.0;
  double threshold = 0.0;
};

class SloEvaluator {
 public:
  enum class AlertState { kOk, kFiring };

  struct SliStatus {
    double value = 0.0;       ///< last observed value (NaN = no data yet)
    double threshold = 0.0;
    AlertState state = AlertState::kOk;
    int burn_streak = 0;      ///< consecutive breaching samples
    int clear_streak = 0;     ///< consecutive clearly-good samples while firing
    std::uint64_t times_fired = 0;
    [[nodiscard]] bool firing() const { return state == AlertState::kFiring; }
  };

  explicit SloEvaluator(const core::SloConfig& config) : config_(config) {}

  /// Feed one sample of an SLI; returns the transition if the alert state
  /// changed on this sample. `now` (virtual time, seconds) timestamps any
  /// transition for the trailing-window flap counter.
  std::optional<SloTransition> observe(std::string_view sli, double value,
                                       double threshold, double now = 0.0);

  [[nodiscard]] const std::map<std::string, SliStatus, std::less<>>& status() const {
    return slis_;
  }
  [[nodiscard]] std::size_t firing_count() const;

  /// Alert flaps: fire + clear transitions across all SLIs inside the
  /// trailing SloConfig::flap_window_s window ending at `now`. A first-class
  /// SLI for soak gating — a stable run transitions rarely, a flapping one
  /// oscillates. O(expired) amortized; the deque is bounded by the window.
  [[nodiscard]] double flaps_in_window(double now);
  [[nodiscard]] std::uint64_t total_transitions() const { return total_transitions_; }
  [[nodiscard]] const core::SloConfig& config() const { return config_; }

 private:
  void prune_transitions(double now);

  core::SloConfig config_;
  std::map<std::string, SliStatus, std::less<>> slis_;
  std::deque<double> transition_times_;  ///< pruned to the flap window
  std::uint64_t total_transitions_ = 0;
};

}  // namespace snooze::obs
