// Peer-relative fail-slow detection.
//
// Gray failures degrade a node without killing it: heartbeats keep flowing,
// so crash detectors stay silent while operations crawl. The scorer's core
// idea is that absolute latency thresholds are untunable (a loaded fleet is
// legitimately slower than an idle one), but a *peer-relative* baseline is
// self-calibrating: track a latency EWMA per peer per operation kind, then
// score each peer against the robust fleet baseline (median / MAD across
// peers). A node whose robust z-score stays above `z_flag` for a sustained
// window is flagged slow; hysteresis (`z_clear` < `z_flag`) keeps a node
// near the threshold from flapping.
//
// Header-only and engine-free: callers feed samples and periodically call
// evaluate(now). Used by the GM to score its LCs (probe RTT, StartVm ack,
// migration slowdown) and by the GL to score its GMs (probe RTT, summary
// turnaround).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace snooze::obs {

/// Operation kinds the scorer tracks, each with its own fleet baseline
/// (probe RTTs and migration slowdowns live on different scales).
enum class SlownessMetric : std::uint8_t {
  kProbe = 0,      ///< latency-probe round trip
  kStartVm,        ///< StartVm request -> ack latency
  kMigration,      ///< actual / predicted migration duration ratio
  kSummary,        ///< GM summary inter-arrival gap at the GL
};
inline constexpr std::size_t kSlownessMetricCount = 4;

struct SlownessConfig {
  double ewma_alpha = 0.3;  ///< per-peer per-metric EWMA smoothing
  double z_flag = 4.0;      ///< robust z-score that marks a peer slow
  double z_clear = 2.0;     ///< hysteretic clear threshold
  sim::Time sustain_s = 10.0;  ///< score must stay above z_flag this long
};

/// Tracks per-peer operation latencies and flags sustained outliers.
/// Peers are keyed by an opaque id (a net::Address in practice).
class SlownessScorer {
 public:
  SlownessScorer() = default;
  explicit SlownessScorer(SlownessConfig config) : config_(config) {}

  /// Feed one latency/ratio observation for a peer.
  void add_sample(std::uint64_t peer, SlownessMetric metric, double value) {
    auto& state = peers_[peer];
    auto& m = state.metric[static_cast<std::size_t>(metric)];
    if (m.count == 0) {
      m.ewma = value;
    } else {
      m.ewma += config_.ewma_alpha * (value - m.ewma);
    }
    ++m.count;
  }

  /// Drop all state for a peer (left the group, crashed, re-registered).
  void forget(std::uint64_t peer) { peers_.erase(peer); }

  /// Drop everything (leadership change: a new scorer view starts cold).
  void clear() { peers_.clear(); }

  /// Recompute every peer's score against the current fleet baseline and
  /// update flags (with sustain + hysteresis). Call periodically — typically
  /// right after a probe round.
  void evaluate(sim::Time now) {
    for (std::size_t mi = 0; mi < kSlownessMetricCount; ++mi) {
      // Collect this metric's EWMAs across peers that have samples.
      scratch_.clear();
      for (const auto& [peer, state] : peers_) {
        const auto& m = state.metric[mi];
        if (m.count > 0) scratch_.push_back(m.ewma);
      }
      // Peer-relative scoring needs peers to be relative to: with fewer
      // than 3 observed peers the baseline is meaningless, so the metric
      // contributes no score (never flags in tiny groups).
      if (scratch_.size() < 3) {
        for (auto& [peer, state] : peers_) state.z[mi] = 0.0;
        continue;
      }
      const double median = robust_median(scratch_);
      for (auto& v : scratch_) v = std::abs(v - median);
      double mad = robust_median(scratch_);
      // MAD floor: a perfectly uniform fleet (common in simulation) has
      // MAD 0; floor it at a fraction of the median so only genuinely
      // disproportionate latencies score high.
      mad = std::max(mad, std::max(0.05 * std::abs(median), 1e-9));
      for (auto& [peer, state] : peers_) {
        const auto& m = state.metric[mi];
        state.z[mi] = (m.count > 0) ? (m.ewma - median) / mad : 0.0;
      }
    }
    for (auto& [peer, state] : peers_) {
      double score = 0.0;
      for (std::size_t mi = 0; mi < kSlownessMetricCount; ++mi) {
        score = std::max(score, state.z[mi]);
      }
      state.score = score;
      if (state.flagged) {
        if (score < config_.z_clear) {
          state.flagged = false;
          state.above_since = -1.0;
        }
      } else if (score > config_.z_flag) {
        if (state.above_since < 0.0) state.above_since = now;
        if (now - state.above_since >= config_.sustain_s) state.flagged = true;
      } else {
        state.above_since = -1.0;
      }
    }
  }

  /// Is the peer currently flagged slow? Unknown peers are not.
  [[nodiscard]] bool flagged(std::uint64_t peer) const {
    auto it = peers_.find(peer);
    return it != peers_.end() && it->second.flagged;
  }

  /// Latest robust z-score (max over metrics); 0 for unknown peers.
  [[nodiscard]] double score(std::uint64_t peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? 0.0 : it->second.score;
  }

  [[nodiscard]] std::size_t flagged_count() const {
    std::size_t n = 0;
    for (const auto& [peer, state] : peers_) {
      if (state.flagged) ++n;
    }
    return n;
  }

 private:
  struct MetricState {
    double ewma = 0.0;
    std::uint64_t count = 0;
  };
  struct PeerState {
    MetricState metric[kSlownessMetricCount];
    double z[kSlownessMetricCount] = {};
    double score = 0.0;
    bool flagged = false;
    sim::Time above_since = -1.0;  ///< when score first exceeded z_flag
  };

  /// Median via nth_element (mutates the scratch vector).
  static double robust_median(std::vector<double>& v) {
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
    double hi = v[mid];
    if (v.size() % 2 == 0) {
      double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
      return 0.5 * (lo + hi);
    }
    return hi;
  }

  SlownessConfig config_;
  std::unordered_map<std::uint64_t, PeerState> peers_;
  std::vector<double> scratch_;  ///< reused across evaluate() calls
};

}  // namespace snooze::obs
