#include "obs/incident.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace snooze::obs {

namespace {

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fmt6(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out.push_back(sep);
    out += p;
  }
  return out;
}

/// Value after "vm=" in a span detail, or empty.
std::string parse_vm(std::string_view detail) {
  const auto pos = detail.find("vm=");
  if (pos == std::string_view::npos) return {};
  auto rest = detail.substr(pos + 3);
  const auto space = rest.find(' ');
  return std::string(rest.substr(0, space));
}

/// Build the ranked hypothesis list for one episode's evidence.
void rank_hypotheses(IncidentEpisode& ep, const IncidentConfig& cfg) {
  struct Tally {
    double mass = 0.0;
    double first = 0.0;
    std::vector<std::string> cites;
  };
  std::map<std::pair<int, std::string>, Tally> tallies;
  double total = 0.0;
  for (const auto& e : ep.evidence) {
    if (e.weight <= 0.0) continue;
    total += e.weight;
    auto& t = tallies[{static_cast<int>(e.implies), e.target}];
    if (t.mass == 0.0 || e.time < t.first) t.first = e.time;
    t.mass += e.weight;
    if (t.cites.size() < 3) t.cites.push_back(e.kind + "@" + fmt2(e.time));
  }
  if (total <= 0.0) return;

  std::vector<Hypothesis> all;
  for (const auto& [key, t] : tallies) {
    Hypothesis h;
    h.fault_class = static_cast<FaultClass>(key.first);
    h.target = key.second;
    h.vote_mass = t.mass;
    h.confidence = t.mass / total;
    h.first_evidence = t.first;
    h.rationale = join(t.cites, ' ');
    all.push_back(std::move(h));
  }
  std::stable_sort(all.begin(), all.end(), [](const Hypothesis& a,
                                              const Hypothesis& b) {
    if (a.vote_mass != b.vote_mass) return a.vote_mass > b.vote_mass;
    if (a.fault_class != b.fault_class) return a.fault_class < b.fault_class;
    return a.target < b.target;
  });
  // Report every node-blaming hypothesis that clears the mass floor; if none
  // does, fall back to the single strongest candidate (possibly anonymous)
  // so an episode is never silently unexplained.
  for (auto& h : all) {
    if (!h.target.empty() && h.vote_mass >= cfg.min_vote_mass) {
      ep.hypotheses.push_back(std::move(h));
    }
  }
  if (ep.hypotheses.empty()) ep.hypotheses.push_back(std::move(all.front()));
}

/// Blast radius + slowest-submit linkage for one closed episode.
void measure_blast(IncidentEpisode& ep,
                   const std::vector<sim::TraceRecord>& records,
                   const telemetry::SpanCollector* spans, double run_end) {
  std::set<std::string> nodes;
  for (const auto& e : ep.evidence) {
    if (e.kind == "slo.alert") ++ep.alerts;
    if (e.weight > 0.0 && e.actor != "health" && e.actor != "invariants") {
      nodes.insert(e.actor);
    }
    if (!e.target.empty()) nodes.insert(e.target);
  }
  for (const auto& h : ep.hypotheses) {
    if (!h.target.empty()) nodes.insert(h.target);
  }
  ep.affected_nodes.assign(nodes.begin(), nodes.end());

  if (spans != nullptr) {
    std::set<std::string> vms;
    for (const auto& s : spans->spans()) {
      if (s.parent_id != 0 || s.name != "client.submit") continue;
      const double end = s.open() ? run_end : s.end;
      if (s.start > ep.closed || end < ep.opened) continue;
      ++ep.submits;
      if (s.status == "failed") ++ep.failed_submits;
      const std::string vm = parse_vm(s.detail);
      if (!vm.empty()) vms.insert(vm);
      const double dur = end - s.start;
      if (!s.open() && dur > ep.slowest_submit_s) {
        ep.slowest_submit_s = dur;
        ep.slowest_submit_span = s.span_id;
      }
    }
    ep.affected_vms.assign(vms.begin(), vms.end());
  } else {
    for (const auto& r : records) {
      if (r.kind == "client.submit_failed" && r.time >= ep.opened &&
          r.time <= ep.closed) {
        ++ep.failed_submits;
      }
    }
  }
}

}  // namespace

IncidentReport analyze_incidents(const std::vector<sim::TraceRecord>& records,
                                 const telemetry::SpanCollector* spans,
                                 double run_end, const AddressNames& names,
                                 const IncidentConfig& cfg) {
  IncidentReport report;
  report.run_end = run_end;
  const std::vector<Evidence> stream = collect_evidence(records, names);

  IncidentEpisode current;
  bool open = false;
  double last_signal = 0.0;
  auto finalize = [&](bool at_end) {
    current.id = static_cast<int>(report.episodes.size()) + 1;
    current.closed = last_signal;
    current.open_at_end = at_end && run_end - last_signal < cfg.quiet_close_s;
    rank_hypotheses(current, cfg);
    measure_blast(current, records, spans, run_end);
    report.episodes.push_back(std::move(current));
    current = IncidentEpisode{};
    open = false;
  };

  for (const auto& e : stream) {
    if (open && e.time - last_signal > cfg.quiet_close_s) finalize(false);
    if (!open) {
      if (!e.opener) continue;  // clears/recoveries never open an episode
      current.opened = e.time;
      current.opened_by = e.kind;
      open = true;
    }
    last_signal = e.time;
    current.evidence.push_back(e);
  }
  if (open) finalize(true);
  return report;
}

std::string IncidentReport::table() const {
  util::Table t({"ep", "opened s", "closed s", "mttr s", "opened by", "cause",
                 "target", "conf", "votes", "detect s", "submits", "failed",
                 "alerts"});
  for (const auto& ep : episodes) {
    const std::string closed =
        fmt2(ep.closed) + (ep.open_at_end ? "+" : "");
    bool first = true;
    auto episode_cell = [&](std::string value) {
      return first ? value : std::string();
    };
    auto add = [&](const Hypothesis* h) {
      t.add_row({episode_cell(std::to_string(ep.id)),
                 episode_cell(fmt2(ep.opened)), episode_cell(closed),
                 episode_cell(fmt2(ep.mttr_s())), episode_cell(ep.opened_by),
                 h != nullptr ? to_string(h->fault_class) : "unknown",
                 h != nullptr && !h->target.empty() ? h->target : "-",
                 h != nullptr ? fmt2(h->confidence) : "-",
                 h != nullptr ? util::Table::num(h->vote_mass, 1) : "-",
                 h != nullptr && h->detection_latency_s >= 0.0
                     ? fmt2(h->detection_latency_s)
                     : "-",
                 episode_cell(std::to_string(ep.submits)),
                 episode_cell(std::to_string(ep.failed_submits)),
                 episode_cell(std::to_string(ep.alerts))});
      first = false;
    };
    if (ep.hypotheses.empty()) {
      add(nullptr);
    } else {
      for (const auto& h : ep.hypotheses) add(&h);
    }
  }
  return t.to_string();
}

std::string IncidentReport::csv() const {
  std::ostringstream out;
  out << util::csv_row({"episode", "opened_s", "closed_s", "mttr_s",
                        "open_at_end", "opened_by", "rank", "fault_class",
                        "target", "confidence", "votes", "first_evidence_s",
                        "matched_fault", "detect_s", "submits",
                        "failed_submits", "alerts", "affected_vms",
                        "affected_nodes"})
      << "\n";
  for (const auto& ep : episodes) {
    int rank = 0;
    for (const auto& h : ep.hypotheses) {
      out << util::csv_row(
                 {std::to_string(ep.id), fmt6(ep.opened), fmt6(ep.closed),
                  fmt6(ep.mttr_s()), ep.open_at_end ? "1" : "0", ep.opened_by,
                  std::to_string(++rank), to_string(h.fault_class), h.target,
                  fmt6(h.confidence), fmt6(h.vote_mass),
                  fmt6(h.first_evidence), std::to_string(h.matched_fault),
                  fmt6(h.detection_latency_s), std::to_string(ep.submits),
                  std::to_string(ep.failed_submits),
                  std::to_string(ep.alerts), join(ep.affected_vms, ';'),
                  join(ep.affected_nodes, ';')})
          << "\n";
    }
  }
  return out.str();
}

std::string IncidentReport::show(int id,
                                 const telemetry::SpanCollector* spans) const {
  const IncidentEpisode* ep = nullptr;
  for (const auto& e : episodes) {
    if (e.id == id) ep = &e;
  }
  if (ep == nullptr) return "no such episode: " + std::to_string(id) + "\n";

  std::ostringstream out;
  out << "incident #" << ep->id << ": opened " << fmt2(ep->opened) << "s by "
      << ep->opened_by << ", closed " << fmt2(ep->closed) << "s"
      << (ep->open_at_end ? " (open at run end)" : "") << ", mttr "
      << fmt2(ep->mttr_s()) << "s\n";
  out << "blast radius: " << ep->submits << " submits (" << ep->failed_submits
      << " failed), " << ep->alerts << " alerts, "
      << ep->affected_vms.size() << " vms";
  if (!ep->affected_vms.empty()) out << " [" << join(ep->affected_vms, ' ') << "]";
  out << ", nodes [" << join(ep->affected_nodes, ' ') << "]\n";

  out << "hypotheses:\n";
  if (ep->hypotheses.empty()) out << "  (none — no weighted evidence)\n";
  int rank = 0;
  for (const auto& h : ep->hypotheses) {
    out << "  #" << ++rank << " " << to_string(h.fault_class) << " "
        << (h.target.empty() ? "(anonymous)" : h.target) << " conf "
        << fmt2(h.confidence) << " votes " << util::Table::num(h.vote_mass, 1)
        << " — " << h.rationale;
    if (h.detection_latency_s >= 0.0) {
      out << " (detected " << fmt2(h.detection_latency_s)
          << "s after injection)";
    }
    out << "\n";
  }

  out << "timeline:\n";
  for (const auto& e : ep->evidence) {
    out << "  " << fmt2(e.time) << "s  " << e.actor << "  " << e.kind;
    if (!e.detail.empty()) out << " [" << e.detail << "]";
    if (e.weight > 0.0) {
      out << "  -> " << to_string(e.implies);
      if (!e.target.empty()) out << " " << e.target;
      out << " +" << util::Table::num(e.weight, 1);
    }
    out << "\n";
  }

  if (spans != nullptr && ep->slowest_submit_span != 0) {
    const telemetry::SpanRecord* root = spans->find(ep->slowest_submit_span);
    if (root != nullptr) {
      out << "slowest submit in window: span " << root->span_id << " ("
          << fmt2(ep->slowest_submit_s) << "s, " << root->detail << ")\n";
      // One level of the span tree is enough to see where the time went;
      // children are already in begin() order.
      for (const auto* child : spans->children_of(root->span_id)) {
        out << "  " << fmt2(child->start) << "s  " << child->name << " ("
            << fmt2(child->duration(run_end)) << "s, "
            << (child->status.empty() ? "open" : child->status) << ")\n";
      }
    }
  }
  return out.str();
}

std::string chrome_trace_with_incidents(std::string base,
                                        const IncidentReport& report) {
  if (base.size() < 2 || base.compare(base.size() - 2, 2, "]}") != 0) {
    return base;
  }
  const bool have_events = base.size() >= 3 && base[base.size() - 3] != '[';
  base.resize(base.size() - 2);

  std::ostringstream out;
  out << base;
  bool first = !have_events;
  char buf[256];
  for (const auto& ep : report.episodes) {
    const char* cause = ep.hypotheses.empty()
                            ? "unknown"
                            : to_string(ep.hypotheses.front().fault_class);
    const std::string target =
        ep.hypotheses.empty() ? "" : ep.hypotheses.front().target;
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"X\",\"pid\":1,\"tid\":9990,\"cat\":\"incident\","
                  "\"name\":\"incident#%d %s %s\",\"ts\":%.3f,\"dur\":%.3f}",
                  first ? "" : ",", ep.id, cause, target.c_str(),
                  ep.opened * 1e6,
                  std::max(ep.mttr_s(), 1e-6) * 1e6);
    first = false;
    out << buf;
    for (const auto& e : ep.evidence) {
      if (e.weight <= 0.0) continue;
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"i\",\"pid\":1,\"tid\":9990,\"s\":\"g\","
                    "\"cat\":\"incident\",\"name\":\"%s %s\",\"ts\":%.3f}",
                    e.kind.c_str(), e.target.c_str(), e.time * 1e6);
      out << buf;
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace snooze::obs
