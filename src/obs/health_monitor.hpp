// HealthMonitor: the always-on observability head of a SnoozeSystem.
//
// A periodic actor samples cluster state on the DES clock into a
// TimeSeriesStore (fixed cadence = SloConfig::sample_period), derives SLIs
// from the samples / metrics registry / sim trace, feeds them through the
// SloEvaluator, and records every alert transition in the sim trace
// (actor "health", kinds "slo.alert" / "slo.clear") so golden traces and
// chaos invariants can pin alerting behaviour.
//
// Determinism: the tick only *reads* system state — no RNG, no network
// traffic — so enabling the monitor does not move any existing event, and in
// runs where no alert transitions occur the trace hash is unchanged.
//
// SLI formulas (evaluated each tick):
//   submit_p50/p99        client.submit_latency histogram percentiles (s)
//   failover_mttr         mean of gm.fail(acting GL) -> gl.reconciled episode
//                         durations observed in the sim trace (s)
//   energy_per_vm_hour    total joules / VM-hours of useful work; undefined
//                         (NaN) until energy_min_vm_hours accumulated
//   fence_rejected_rate   stale-command rejections per minute over a trailing
//                         60 s window of the series
//   heartbeat_staleness   max age of the newest GM heartbeat across assigned,
//                         powered-on LCs (s)
//   interference_p99      p99 of (1 - throughput multiplier) across profiled
//                         running VMs; NaN while none report
//   degraded_vm_rate      degraded-VM-seconds accumulated per minute over a
//                         trailing 60 s window
//   summary_bytes_per_gm  GM->GL summary bytes per sending (alive, non-GL) GM
//                         per summary period over a trailing 60 s window; NaN
//                         until delta summaries are enabled (full-summary
//                         deployments keep their golden traces bit-for-bit)
//   summary_staleness     age of the stalest GM summary at the acting GL (s);
//                         NaN without delta summaries or without a leader
//   gray.slow_nodes       nodes currently flagged slow: LCs on probation or in
//                         quarantine (summed over GMs) + GMs the GL flags
//   gray.quarantined      LCs currently quarantined (evacuated + suspended)
//   rpc.hedges_won        cumulative hedged calls where the backup beat the
//                         primary (telemetry registry)
//   breaker.open_s        cumulative circuit-breaker open seconds across GM
//                         endpoints
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "obs/critical_path.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/actor.hpp"

namespace snooze::obs {

class HealthMonitor final : public sim::Actor {
 public:
  /// `max_rows` bounds the time-series ring (0 = unbounded).
  explicit HealthMonitor(core::SnoozeSystem& system, std::size_t max_rows = 4096);

  /// Begin periodic sampling at SloConfig::sample_period.
  void start();

  /// Take one sample at the current virtual time. Idempotent per timestamp:
  /// a second call at the same virtual time is a no-op, so pull-based
  /// readers (CLI) can refresh right before rendering without double-feeding
  /// the hysteresis streaks.
  void sample_now();

  [[nodiscard]] const TimeSeriesStore& store() const { return store_; }
  [[nodiscard]] const SloEvaluator& slo() const { return slo_; }

  /// Every SLI name the monitor is contracted to evaluate, sorted — the
  /// naming-lint test cross-checks this list against what evaluate_slos
  /// actually fed the SloEvaluator, so a drifting or silently-dropped SLI
  /// fails tier-1 instead of rotting as NaN.
  [[nodiscard]] static std::vector<std::string> sli_names();
  [[nodiscard]] std::uint64_t alerts_fired() const { return alerts_fired_; }
  [[nodiscard]] std::uint64_t alerts_cleared() const { return alerts_cleared_; }

  /// Completed failover episodes observed so far and their mean duration
  /// (NaN while no episode has completed).
  [[nodiscard]] std::uint64_t failover_episodes() const { return mttr_count_; }
  [[nodiscard]] double failover_mttr() const;

  /// Latest fleet p99 interference penalty (NaN while no profiled VM runs).
  [[nodiscard]] double interference_p99() const {
    return store_.latest(col_.interference_p99);
  }
  /// Time-integral of summed per-VM interference penalty (degraded VM-seconds).
  [[nodiscard]] double degraded_vm_seconds() const { return degraded_vm_s_accum_; }

  /// Times the trace ring trimmed records the incremental scan never saw.
  /// Each gap resets the open-episode bookkeeping (an election or
  /// reconciliation may have been inside the trimmed span); MTTR episodes
  /// spanning a gap are dropped rather than mis-closed.
  [[nodiscard]] std::uint64_t scan_gaps() const { return scan_gaps_; }

  /// Critical-path breakdown over all completed submissions so far.
  [[nodiscard]] CriticalPathReport critical_path() const;

  // --- renderers (deterministic ASCII) -------------------------------------
  [[nodiscard]] std::string dashboard() const;  ///< latest series + 60 s rates
  [[nodiscard]] std::string slo_table() const;  ///< SLIs vs thresholds, pass/fail
  [[nodiscard]] std::string top(std::size_t n) const;  ///< busiest LC nodes

 private:
  void tick();
  void scan_trace();  ///< incremental MTTR episode extraction
  void evaluate_slos(double now);

  core::SnoozeSystem& system_;
  TimeSeriesStore store_;
  SloEvaluator slo_;

  // Column indices (registered once in the constructor).
  struct Cols {
    std::size_t hosts_on, hosts_suspended, hosts_off, lcs_assigned, vms_running;
    std::size_t energy_j, energy_on_j, energy_suspended_j, energy_off_j;
    std::size_t work_vm_s, hb_staleness, queue_depth;
    std::size_t placements, migrations, submits, fence_rejected;
    std::size_t mttr_s, failovers, submit_p50, submit_p99, slo_firing, slo_flaps;
    std::size_t interference_p99, degraded_vm_s;
    std::size_t summary_bytes_per_gm, summary_staleness;
    std::size_t gray_slow_nodes, gray_quarantined, rpc_hedges_won, breaker_open_s;
  } col_{};

  /// Trailing-window state of the summary-bytes SLI: (time, cumulative GM
  /// summary bytes) samples within the rate window.
  struct BytesSample {
    double time;
    double bytes;
  };
  std::vector<BytesSample> summary_bytes_window_;

  /// Degraded-VM-seconds integrator: every profiled running VM contributes
  /// (1 - multiplier) seconds per second of wall time, accumulated sample to
  /// sample (left Riemann sum on the monitor cadence).
  double degraded_vm_s_accum_ = 0.0;
  double last_penalty_sum_ = 0.0;
  double last_sample_time_ = -1.0;

  // Incremental sim-trace scan state (survives ring-buffer trimming via the
  // dropped() offset).
  std::uint64_t scanned_records_ = 0;
  std::uint64_t scan_gaps_ = 0;    ///< ring trimmed unscanned records
  std::string current_gl_;      ///< actor name of the acting GL
  double episode_started_ = -1.0;  ///< < 0: no failover episode open
  double mttr_sum_ = 0.0;
  std::uint64_t mttr_count_ = 0;

  std::uint64_t alerts_fired_ = 0;
  std::uint64_t alerts_cleared_ = 0;
  bool started_ = false;
};

/// Chrome trace JSON of the span collector with Perfetto counter tracks
/// ("ph":"C") appended for every time-series column, so the series render as
/// counter lanes above the span timeline in the Perfetto UI.
[[nodiscard]] std::string chrome_trace_with_counters(
    const telemetry::SpanCollector& spans, sim::Time now, const TimeSeriesStore& store);

}  // namespace snooze::obs
