// Ring-buffered, fixed-cadence time series sampled on the DES clock.
//
// The store is row-oriented: the HealthMonitor registers its columns once,
// then appends one full row per sampling tick, so every series shares the
// same timestamps and the CSV export is a plain wide table. A bounded ring
// keeps memory constant on soak runs; `dropped()` reports evicted rows so
// window queries can tell "no data" from "data aged out".
//
// Determinism: the store never reads the clock, RNG or event queue itself —
// values and timestamps come from the caller — so two same-seed runs fill
// byte-identical stores and csv() output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace snooze::obs {

class TimeSeriesStore {
 public:
  /// `max_rows` bounds retained history (0 = unbounded).
  explicit TimeSeriesStore(std::size_t max_rows = 4096) : max_rows_(max_rows) {}

  /// Register a column before the first append_row(). Returns its index.
  std::size_t add_column(std::string name);

  /// Append one sampling tick: `t` must be non-decreasing and `values` must
  /// hold exactly one entry per registered column.
  void append_row(double t, const std::vector<double>& values);

  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t max_rows() const { return max_rows_; }

  /// Timestamp / value of a retained row (0 = oldest retained).
  [[nodiscard]] double time_at(std::size_t row) const { return rows_[row].time; }
  [[nodiscard]] double value_at(std::size_t row, std::size_t col) const {
    return rows_[row].values[col];
  }

  /// Newest value of a column; NaN when the store is empty.
  [[nodiscard]] double latest(std::size_t col) const;
  /// Newest timestamp; NaN when the store is empty.
  [[nodiscard]] double latest_time() const;

  /// Change of a (cumulative) column over the trailing `window` seconds:
  /// latest minus the value at the newest row that is at least `window` old.
  /// Falls back to the oldest retained row when history is shorter than the
  /// window (rate estimates over a young run use the span actually covered —
  /// see span_over()); NaN with fewer than two rows.
  [[nodiscard]] double delta_over(std::size_t col, double window) const;
  /// Seconds actually covered by delta_over() with the same window.
  [[nodiscard]] double span_over(double window) const;

  /// Wide CSV: header "time,<col>,..." then one row per retained sample.
  /// Fixed "%.10g" formatting keeps same-seed runs byte-identical.
  [[nodiscard]] std::string csv() const;

 private:
  struct Row {
    double time;
    std::vector<double> values;
  };
  /// Index of the newest row older than (latest - window); 0 when history is
  /// shorter than the window.
  [[nodiscard]] std::size_t window_base(double window) const;

  std::vector<std::string> columns_;
  std::deque<Row> rows_;
  std::size_t max_rows_;
  std::uint64_t dropped_ = 0;
};

}  // namespace snooze::obs
