#include "obs/critical_path.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "util/table.hpp"

namespace snooze::obs {

namespace {

// Phase indices double as nesting priority: when spans of two phases cover
// the same instant, the higher index (deeper pipeline stage) wins.
enum Phase : int { kWait = -1, kDiscovery = 0, kDispatch = 1, kScheduling = 2, kLcStart = 3 };
constexpr std::array<const char*, 4> kPhaseNames = {"discovery", "dispatch",
                                                    "scheduling", "lc_start"};

Phase classify(const std::string& name) {
  if (name == "rpc:ep.gl_query" || name == "ep.gl_query") return kDiscovery;
  if (name == "rpc:gl.submit_vm" || name == "gl.dispatch" || name == "rpc:gm.place_vm") {
    return kDispatch;
  }
  if (name == "gm.place") return kScheduling;
  if (name == "rpc:lc.start_vm" || name == "lc.start_vm") return kLcStart;
  return kWait;  // unknown: ignored, falls through to the enclosing phase
}

struct Interval {
  double start;
  double end;
  Phase phase;
};

}  // namespace

CriticalPathReport analyze_critical_path(const telemetry::SpanCollector& spans,
                                         sim::Time now) {
  CriticalPathReport report;
  std::array<double, 5> seconds{};  // 4 phases + wait (last slot)

  // Group spans by trace so one pass serves every submission.
  std::map<std::uint64_t, std::vector<const telemetry::SpanRecord*>> by_trace;
  std::map<std::uint64_t, const telemetry::SpanRecord*> roots;
  for (const telemetry::SpanRecord& s : spans.spans()) {
    by_trace[s.trace_id].push_back(&s);
    if (s.parent_id == 0 && s.name == "client.submit") roots[s.trace_id] = &s;
  }

  std::vector<Interval> intervals;
  std::vector<double> bounds;
  for (const auto& [trace_id, root] : roots) {
    if (root->open() || root->status != "ok") continue;  // never reached running
    const double t0 = root->start;
    const double t1 = root->end;
    if (!(t1 > t0)) continue;

    intervals.clear();
    bounds.clear();
    bounds.push_back(t0);
    bounds.push_back(t1);
    for (const telemetry::SpanRecord* s : by_trace[trace_id]) {
      const Phase phase = classify(s->name);
      if (phase == kWait) continue;
      const double start = std::max(s->start, t0);
      const double end = std::min(s->open() ? static_cast<double>(now) : s->end, t1);
      if (!(end > start)) continue;
      intervals.push_back({start, end, phase});
      bounds.push_back(start);
      bounds.push_back(end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    // Elementary-interval sweep: assign each slice to the deepest cover.
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      const double lo = bounds[i];
      const double hi = bounds[i + 1];
      const double mid = lo + 0.5 * (hi - lo);
      int best = kWait;
      for (const Interval& iv : intervals) {
        if (iv.start <= mid && mid < iv.end) best = std::max(best, static_cast<int>(iv.phase));
      }
      seconds[best == kWait ? 4 : static_cast<std::size_t>(best)] += hi - lo;
    }
    ++report.traces;
    report.total_seconds += t1 - t0;
  }

  double attributed = 0.0;
  for (std::size_t i = 0; i < kPhaseNames.size(); ++i) {
    report.phases.push_back({kPhaseNames[i], seconds[i],
                             report.total_seconds > 0.0 ? seconds[i] / report.total_seconds
                                                        : 0.0});
    attributed += seconds[i];
  }
  report.phases.push_back({"wait", seconds[4],
                           report.total_seconds > 0.0 ? seconds[4] / report.total_seconds
                                                      : 0.0});
  report.coverage = report.total_seconds > 0.0 ? attributed / report.total_seconds : 0.0;
  return report;
}

std::string CriticalPathReport::table() const {
  std::ostringstream out;
  util::Table table({"phase", "seconds", "share"});
  for (const Phase& p : phases) {
    table.add_row({p.name, util::Table::num(p.seconds, 4),
                   util::Table::num(100.0 * p.fraction, 1) + "%"});
  }
  out << table.to_string();
  out << "submissions analyzed: " << traces << ", total "
      << util::Table::num(total_seconds, 3) << " s, coverage "
      << util::Table::num(100.0 * coverage, 1) << "%\n";
  return out.str();
}

}  // namespace snooze::obs
