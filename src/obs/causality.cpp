#include "obs/causality.hpp"

#include <cstdlib>
#include <string_view>

namespace snooze::obs {

namespace {

/// Parse the numeric value after `key=` in a record detail ("lc=17",
/// "gm=23 score=..."). Returns 0 when absent.
std::uint64_t parse_u64(std::string_view detail, std::string_view key) {
  const auto pos = detail.find(key);
  if (pos == std::string_view::npos) return 0;
  const char* start = detail.data() + pos + key.size();
  return std::strtoull(start, nullptr, 10);
}

/// Value after "sli=" up to the next space.
std::string parse_sli(std::string_view detail) {
  const auto pos = detail.find("sli=");
  if (pos == std::string_view::npos) return {};
  auto rest = detail.substr(pos + 4);
  const auto space = rest.find(' ');
  return std::string(rest.substr(0, space));
}

std::string name_of(const AddressNames& names, std::uint64_t addr) {
  const auto it = names.find(addr);
  if (it != names.end()) return it->second;
  return "addr:" + std::to_string(addr);
}

}  // namespace

const char* to_string(FaultClass fc) {
  switch (fc) {
    case FaultClass::kCrash: return "crash";
    case FaultClass::kFailSlow: return "fail-slow";
    case FaultClass::kNetwork: return "network";
    case FaultClass::kOverload: return "overload";
    case FaultClass::kUnknown: return "unknown";
  }
  return "unknown";
}

std::vector<Evidence> collect_evidence(
    const std::vector<sim::TraceRecord>& records, const AddressNames& names) {
  std::vector<Evidence> out;
  // Leadership context, accumulated from the start of the retained trace so
  // an election can implicate its predecessor.
  std::string current_gl;
  std::map<std::string, double> failed_at;  // actor -> last death-log time

  auto add = [&](const sim::TraceRecord& r, FaultClass implies,
                 std::string target, double weight, bool opener) {
    out.push_back(Evidence{r.time, r.actor, r.kind, r.detail, implies,
                           std::move(target), weight, opener});
  };

  for (const auto& r : records) {
    // Ground-truth labels from the injector are off limits: diagnosis must
    // come from the system's own records.
    if (r.actor == "chaos" || r.kind.rfind("chaos.", 0) == 0) continue;

    if (r.kind == "gm.fail" || r.kind == "lc.fail") {
      // Death log from the crashing actor itself: certain identity.
      failed_at[r.actor] = r.time;
      add(r, FaultClass::kCrash, r.actor, 3.0, true);
    } else if (r.kind == "gm.elected_gl") {
      // A re-election implicates the previous leader. If the predecessor
      // logged its own death recently this corroborates a crash; a leader
      // that vanished *without* a death log was cut off, not killed.
      if (!current_gl.empty() && current_gl != r.actor) {
        const auto it = failed_at.find(current_gl);
        const bool crashed = it != failed_at.end() && r.time - it->second <= 60.0;
        if (crashed) {
          add(r, FaultClass::kCrash, current_gl, 1.0, true);
        } else {
          add(r, FaultClass::kNetwork, current_gl, 2.0, true);
        }
      }
      current_gl = r.actor;
    } else if (r.kind == "gl.gm_failed" || r.kind == "gm.lc_failed") {
      // Heartbeat-timeout detection; the record names no victim, so it
      // opens/extends an episode but casts no vote.
      add(r, FaultClass::kUnknown, {}, 0.0, true);
    } else if (r.kind == "gm.lc_probation") {
      add(r, FaultClass::kFailSlow, name_of(names, parse_u64(r.detail, "lc=")),
          2.0, true);
    } else if (r.kind == "gm.lc_quarantined") {
      add(r, FaultClass::kFailSlow, name_of(names, parse_u64(r.detail, "lc=")),
          3.0, true);
    } else if (r.kind == "gl.gm_slow") {
      add(r, FaultClass::kFailSlow, name_of(names, parse_u64(r.detail, "gm=")),
          2.0, true);
    } else if (r.kind == "slo.alert") {
      const std::string sli = parse_sli(r.detail);
      if (sli.rfind("submit_", 0) == 0) {
        add(r, FaultClass::kOverload, {}, 0.5, true);
      } else {
        add(r, FaultClass::kUnknown, {}, 0.25, true);
      }
    } else if (r.kind == "invariant.violation") {
      add(r, FaultClass::kUnknown, {}, 1.0, true);
    } else if (r.kind == "gl.reconciled" || r.kind == "gm.stepdown" ||
               r.kind == "gm.restart" || r.kind == "lc.restart" ||
               r.kind == "lc.rejoin" || r.kind == "gm.lc_fenced_off" ||
               r.kind == "gm.lc_probation_cleared" ||
               r.kind == "gm.lc_reinstated" || r.kind == "gl.gm_slow_cleared" ||
               r.kind == "slo.clear") {
      // Recovery / clear markers: timeline context only. They extend an
      // open episode (recovery is part of the incident) but never open one
      // and never vote.
      add(r, FaultClass::kUnknown, {}, 0.0, false);
    }
  }
  return out;
}

}  // namespace snooze::obs
