// Critical-path analysis of VM submission traces.
//
// Walks the span tree of every completed `client.submit` root span and
// attributes each instant of its wall-clock to a phase of the submission
// pipeline via an interval sweep: at any time, the instant belongs to the
// *deepest* known phase whose span covers it (an LC start nested inside a
// placement RPC counts as lc_start, not dispatch). Instants covered by no
// known child span are client-side wait (retry backoff between attempts,
// GL re-discovery during failover).
//
//   discovery   rpc:ep.gl_query / ep.gl_query     (which GL do I talk to?)
//   dispatch    rpc:gl.submit_vm / gl.dispatch / rpc:gm.place_vm
//   scheduling  gm.place                           (placement decision)
//   lc_start    rpc:lc.start_vm / lc.start_vm      (boot on the node)
//   wait        uncovered gaps in the root span
//
// `coverage` is the share attributed to the four mechanism phases (i.e.
// excluding wait): the fraction of submit→running latency the pipeline can
// actually explain. Spans with unrecognized names are ignored, so their time
// falls through to the nearest enclosing known phase instead of silently
// inflating coverage.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "telemetry/span.hpp"

namespace snooze::obs {

struct CriticalPathReport {
  struct Phase {
    std::string name;
    double seconds = 0.0;
    double fraction = 0.0;  ///< of total_seconds
  };

  std::vector<Phase> phases;   ///< fixed order: discovery, dispatch, scheduling, lc_start, wait
  std::size_t traces = 0;      ///< completed-ok submissions analyzed
  double total_seconds = 0.0;  ///< summed root-span wall-clock
  double coverage = 0.0;       ///< non-wait share of total_seconds

  /// Rendered per-phase table (deterministic).
  [[nodiscard]] std::string table() const;
};

/// Analyze every closed, successful client.submit trace in the collector.
[[nodiscard]] CriticalPathReport analyze_critical_path(
    const telemetry::SpanCollector& spans, sim::Time now);

}  // namespace snooze::obs
