// Causal evidence extraction for incident analysis.
//
// Walks the deterministic event trace and turns the records a fault leaves
// behind into typed *evidence*: a timestamped observation that implies a
// fault class and (when the record names one) a blamed node, with a vote
// weight reflecting how specific the signal is. A death log (`gm.fail`,
// `lc.fail`) is near-certain identity evidence; a containment-ladder record
// (`gm.lc_probation`, `gl.gm_slow`) names its victim by network address; a
// failover election implicates the previous leader; an SLO alert is weak,
// anonymous evidence of overload.
//
// Deliberately excluded: every `chaos.*` record. Those are the injector's
// ground-truth labels — the diagnosis layer must reconstruct what happened
// from the system's own observable behavior, and the scorer in
// `chaos/ground_truth.hpp` then grades it against the labels it never saw.
//
// Extraction is a pure function of the trace (plus the address→name map the
// caller supplies for ladder records, which carry numeric addresses): no
// clocks, no RNG, no events scheduled. Same trace, same evidence.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace snooze::obs {

/// Root-cause taxonomy. Matches the injector's fault kinds coarsely:
/// crash/restart → kCrash, slow/steal → kFailSlow, isolate/link/drop →
/// kNetwork; kOverload is a workload-pressure diagnosis no injector action
/// maps to directly, and kUnknown is the honest "signals, no identity".
enum class FaultClass { kCrash, kFailSlow, kNetwork, kOverload, kUnknown };

[[nodiscard]] const char* to_string(FaultClass fc);

/// One observation in an episode's causal chain.
struct Evidence {
  double time = 0.0;
  std::string actor;       ///< who recorded it
  std::string kind;        ///< trace record kind ("gm.fail", "slo.alert", ...)
  std::string detail;      ///< original record detail
  FaultClass implies = FaultClass::kUnknown;
  std::string target;      ///< blamed node name ("lc-3"); empty = anonymous
  double weight = 0.0;     ///< vote mass toward (implies, target); 0 = timeline-only
  bool opener = false;     ///< strong enough to open an episode by itself
};

/// Maps numeric network addresses (as they appear in `lc=<addr>` /
/// `gm=<addr>` details) back to node names. Built by the caller from the
/// live system; an unmapped address degrades to "addr:<n>".
using AddressNames = std::map<std::uint64_t, std::string>;

/// Extract the evidence stream from a trace, in record order. The full
/// record span is scanned (leadership context accumulates from the start of
/// the run), but only fault-implicating records become evidence.
[[nodiscard]] std::vector<Evidence> collect_evidence(
    const std::vector<sim::TraceRecord>& records, const AddressNames& names);

}  // namespace snooze::obs
