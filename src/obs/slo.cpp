#include "obs/slo.hpp"

#include <cmath>

namespace snooze::obs {

std::optional<SloTransition> SloEvaluator::observe(std::string_view sli, double value,
                                                   double threshold, double now) {
  auto it = slis_.find(sli);
  if (it == slis_.end()) it = slis_.emplace(std::string(sli), SliStatus{}).first;
  SliStatus& s = it->second;
  s.value = value;
  s.threshold = threshold;

  if (std::isnan(value)) {
    // No data: a breach streak cannot continue, but silence is not evidence
    // of recovery either.
    s.burn_streak = 0;
    return std::nullopt;
  }

  const bool breached = value > threshold;
  const bool clearly_good = value < config_.clear_fraction * threshold;

  s.burn_streak = breached ? s.burn_streak + 1 : 0;
  s.clear_streak = clearly_good ? s.clear_streak + 1 : 0;

  std::optional<SloTransition> transition;
  if (s.state == AlertState::kOk) {
    if (s.burn_streak >= config_.burn_samples) {
      s.state = AlertState::kFiring;
      s.clear_streak = 0;
      ++s.times_fired;
      transition = SloTransition{std::string(sli), true, value, threshold};
    }
  } else {
    if (s.clear_streak >= config_.clear_samples) {
      s.state = AlertState::kOk;
      s.burn_streak = 0;
      transition = SloTransition{std::string(sli), false, value, threshold};
    }
  }

  if (transition) {
    ++total_transitions_;
    transition_times_.push_back(now);
    prune_transitions(now);
  }
  return transition;
}

double SloEvaluator::flaps_in_window(double now) {
  prune_transitions(now);
  return static_cast<double>(transition_times_.size());
}

void SloEvaluator::prune_transitions(double now) {
  const double horizon = now - config_.flap_window_s;
  while (!transition_times_.empty() && transition_times_.front() < horizon) {
    transition_times_.pop_front();
  }
}

std::size_t SloEvaluator::firing_count() const {
  std::size_t n = 0;
  for (const auto& [name, s] : slis_) {
    if (s.firing()) ++n;
  }
  return n;
}

}  // namespace snooze::obs
