// Pooled message allocation.
//
// Every RPC allocates a correlation wrapper and most components allocate a
// fresh heartbeat/report message per period; at 10k LCs that is tens of
// thousands of short-lived shared_ptr blocks per virtual second.
// make_message<T>() routes the combined control-block + payload allocation
// of std::allocate_shared through a per-size-class freelist, so steady-state
// traffic recycles blocks instead of hitting the global allocator.
//
// The pool is intentionally not thread-safe: the simulator is single
// threaded by design (the ACO thread pool never allocates messages).
// Determinism: allocation order has no observable effect on the simulation.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace snooze::net {

namespace detail {

/// Freelist of raw blocks of one size class; blocks are returned to the list
/// on deallocation and reused LIFO (the hottest block stays cache-warm).
template <std::size_t Size, std::size_t Align>
class BlockPool {
 public:
  static void* allocate() {
    if (head_ == nullptr) {
      return ::operator new(Size, std::align_val_t{Align});
    }
    Node* node = head_;
    head_ = node->next;
    return node;
  }

  static void deallocate(void* p) {
    Node* node = static_cast<Node*>(p);
    node->next = head_;
    head_ = node;
  }

 private:
  struct Node {
    Node* next;
  };
  static_assert(Size >= sizeof(Node));
  static inline Node* head_ = nullptr;
};

}  // namespace detail

/// Minimal allocator over BlockPool; std::allocate_shared rebinds it to its
/// internal node type, so single-object allocations hit the freelist and the
/// control block and payload share one pooled block.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    if (n == 1) {
      return static_cast<T*>(detail::BlockPool<sizeof(T), alignof(T)>::allocate());
    }
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      detail::BlockPool<sizeof(T), alignof(T)>::deallocate(p);
    } else {
      ::operator delete(p, std::align_val_t{alignof(T)});
    }
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

/// Drop-in replacement for std::make_shared on hot message paths.
template <typename T, typename... Args>
std::shared_ptr<T> make_message(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{}, std::forward<Args>(args)...);
}

}  // namespace snooze::net
