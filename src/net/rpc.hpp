// Request/response layer over the simulated network.
//
// Snooze components are "RESTful web services" in the paper; RpcEndpoint is
// the simulated equivalent: each component owns one endpoint that supports
// fire-and-forget sends, multicast, and correlated request/response calls
// with timeouts. Request handlers receive a Responder and may reply
// immediately or later (e.g. a Group Manager deferring a placement response
// until a suspended node has been woken up).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "sim/actor.hpp"

namespace snooze::net {

/// Envelope wrapper carrying RPC correlation metadata.
struct RpcWrap final : Message {
  std::uint64_t rpc_id = 0;
  bool is_reply = false;
  MsgPtr inner;

  [[nodiscard]] std::string_view type() const override { return "rpc"; }
  [[nodiscard]] std::size_t wire_size() const override {
    // correlation id + flags + authority epoch
    return 24 + (inner ? inner->wire_size() : 0);
  }
};

/// Capability to answer one specific request; copyable, may outlive the
/// handler invocation (deferred replies). Replying twice is a no-op at the
/// caller (the first reply wins; the second finds no pending call).
class Responder {
 public:
  Responder(Network* network, Address self, Address to, std::uint64_t rpc_id,
            telemetry::SpanContext ctx = {})
      : network_(network), self_(self), to_(to), rpc_id_(rpc_id), ctx_(ctx) {}

  void respond(MsgPtr reply) const;

  /// Trace context of the request being answered (the rpc-attempt span).
  [[nodiscard]] const telemetry::SpanContext& ctx() const { return ctx_; }

 private:
  Network* network_;
  Address self_;
  Address to_;
  std::uint64_t rpc_id_;
  telemetry::SpanContext ctx_;
};

/// Backoff schedule for call_with_retries().
///
/// Retries use *decorrelated jitter* (next delay drawn uniformly from
/// [base_backoff, prev * 3], clamped to max_backoff): after a partition
/// heals, callers that timed out together fan out across the whole delay
/// range instead of re-sending in lockstep, so the recovering node is not
/// hit by a synchronized retry storm. The legacy exponential schedule
/// (backoff()) remains for round-based pacing outside the RPC layer.
struct RetryPolicy {
  int max_attempts = 3;
  sim::Time base_backoff = 0.5;
  double multiplier = 2.0;
  sim::Time max_backoff = 30.0;
  double jitter = 0.5;
  /// Overall deadline for the whole call_with_retries() sequence, measured
  /// from the first attempt: no retry is *started* at or past this budget
  /// (an attempt already in flight still runs to its own timeout).
  /// 0 = unbounded (attempts alone limit the sequence).
  sim::Time max_total = 0.0;

  /// Exponential schedule: delay before the attempt following failed attempt
  /// `attempt` (1-based), base * multiplier^(n-1) plus uniform jitter of up
  /// to `jitter` times that backoff.
  [[nodiscard]] sim::Time backoff(int attempt, util::Rng& rng) const;

  /// Decorrelated-jitter schedule: delay after a failed attempt whose own
  /// backoff was `prev` (pass 0 for the first failure).
  [[nodiscard]] sim::Time next_backoff(sim::Time prev, util::Rng& rng) const;
};

class RpcEndpoint final : public Endpoint {
 public:
  /// Handler for one-way messages.
  using MessageHandler = std::function<void(const Envelope&)>;
  /// Handler for requests; reply now or keep the Responder for later.
  using RequestHandler = std::function<void(const Envelope&, Responder)>;
  /// Completion callback for call(): ok=false means timeout (reply null).
  using ReplyCallback = std::function<void(bool ok, const MsgPtr& reply)>;

  RpcEndpoint(sim::Engine& engine, Network& network, Address address, std::string name);
  ~RpcEndpoint() override;

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  [[nodiscard]] Address address() const { return address_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() const { return network_; }

  void set_message_handler(MessageHandler handler) { on_oneway_ = std::move(handler); }
  void set_request_handler(RequestHandler handler) { on_request_ = std::move(handler); }

  /// Fire-and-forget unicast.
  void send(Address to, MsgPtr msg);

  /// Fire-and-forget multicast to a heartbeat group.
  void multicast(GroupId group, MsgPtr msg);

  /// Request/response with timeout. The callback always fires exactly once.
  void call(Address to, MsgPtr request, sim::Time timeout, ReplyCallback cb);

  /// call() with automatic re-send on timeout: up to policy.max_attempts
  /// tries separated by decorrelated-jitter backoff (deterministic per
  /// engine seed), the whole sequence capped by policy.max_total. The
  /// callback fires exactly once, with the first successful reply or the
  /// final timeout. Replies — including explicit rejections — never trigger
  /// a retry; only transport-level timeouts do, so request handlers must
  /// stay idempotent under duplicated requests.
  void call_with_retries(Address to, MsgPtr request, sim::Time timeout,
                         RetryPolicy policy, ReplyCallback cb);

  /// Simulate a process crash: detach from the network and drop all pending
  /// calls *without* firing their callbacks (the process is gone).
  void go_down();
  /// Reattach after recovery.
  void go_up();
  [[nodiscard]] bool up() const { return up_; }

  void on_message(const Envelope& env) override;

 private:
  struct PendingCall {
    ReplyCallback cb;
    sim::EventId timeout_event = 0;
    telemetry::SpanContext span;  ///< per-attempt rpc span (invalid if untraced)
    sim::Time started = 0.0;
  };

  void attempt_call(Address to, MsgPtr request, sim::Time timeout,
                    const RetryPolicy& policy, int attempt, sim::Time prev_backoff,
                    sim::Time deadline, ReplyCallback cb);

  sim::Engine& engine_;
  Network& network_;
  Address address_;
  std::string name_;
  bool up_ = true;
  std::uint64_t next_rpc_id_ = 1;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::shared_ptr<bool> alive_;
  MessageHandler on_oneway_;
  RequestHandler on_request_;
};

}  // namespace snooze::net
