// Request/response layer over the simulated network.
//
// Snooze components are "RESTful web services" in the paper; RpcEndpoint is
// the simulated equivalent: each component owns one endpoint that supports
// fire-and-forget sends, multicast, and correlated request/response calls
// with timeouts. Request handlers receive a Responder and may reply
// immediately or later (e.g. a Group Manager deferring a placement response
// until a suspended node has been woken up).
//
// Gray-failure hardening: multi-attempt calls (retries, hedges) share a call
// group, so a *slow* reply that arrives after its attempt's soft timeout but
// before the overall call gave up still wins — it cancels the scheduled
// retry instead of racing it. call_with_hedging() launches one backup
// attempt after a p99-derived delay (idempotent call sites only), and a
// per-destination circuit breaker (closed/open/half-open on consecutive
// timeouts) lets opted-in callers fail fast at known-bad destinations.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "sim/actor.hpp"

namespace snooze::net {

/// Envelope wrapper carrying RPC correlation metadata.
struct RpcWrap final : Message {
  std::uint64_t rpc_id = 0;
  bool is_reply = false;
  MsgPtr inner;

  [[nodiscard]] std::string_view type() const override { return "rpc"; }
  [[nodiscard]] std::size_t wire_size() const override {
    // correlation id + flags + authority epoch
    return 24 + (inner ? inner->wire_size() : 0);
  }
};

/// Capability to answer one specific request; copyable, may outlive the
/// handler invocation (deferred replies). Replying twice is a no-op at the
/// caller (the first reply wins; the second finds no pending call).
class Responder {
 public:
  Responder(Network* network, Address self, Address to, std::uint64_t rpc_id,
            telemetry::SpanContext ctx = {})
      : network_(network), self_(self), to_(to), rpc_id_(rpc_id), ctx_(ctx) {}

  void respond(MsgPtr reply) const;

  /// Trace context of the request being answered (the rpc-attempt span).
  [[nodiscard]] const telemetry::SpanContext& ctx() const { return ctx_; }

 private:
  Network* network_;
  Address self_;
  Address to_;
  std::uint64_t rpc_id_;
  telemetry::SpanContext ctx_;
};

/// Backoff schedule for call_with_retries().
///
/// Retries use *decorrelated jitter* (next delay drawn uniformly from
/// [base_backoff, prev * 3], clamped to max_backoff): after a partition
/// heals, callers that timed out together fan out across the whole delay
/// range instead of re-sending in lockstep, so the recovering node is not
/// hit by a synchronized retry storm. The legacy exponential schedule
/// (backoff()) remains for round-based pacing outside the RPC layer.
struct RetryPolicy {
  int max_attempts = 3;
  sim::Time base_backoff = 0.5;
  double multiplier = 2.0;
  sim::Time max_backoff = 30.0;
  double jitter = 0.5;
  /// Overall deadline for the whole call_with_retries() sequence, measured
  /// from the first attempt: no retry is *started* at or past this budget
  /// (an attempt already in flight still runs to its own timeout).
  /// 0 = unbounded (attempts alone limit the sequence).
  sim::Time max_total = 0.0;
  /// Consult the destination's circuit breaker before each attempt and fail
  /// fast while it is open. Opt-in: legacy call sites (elections, heartbeat
  /// companions) keep their exact timing unless they ask for it.
  bool use_breaker = false;

  /// Exponential schedule: delay before the attempt following failed attempt
  /// `attempt` (1-based), base * multiplier^(n-1) plus uniform jitter of up
  /// to `jitter` times that backoff.
  [[nodiscard]] sim::Time backoff(int attempt, util::Rng& rng) const;

  /// Decorrelated-jitter schedule: delay after a failed attempt whose own
  /// backoff was `prev` (pass 0 for the first failure).
  [[nodiscard]] sim::Time next_backoff(sim::Time prev, util::Rng& rng) const;
};

/// Hedge pacing for call_with_hedging().
struct HedgePolicy {
  /// Fixed delay before the backup attempt; 0 = derive from the observed
  /// p99 latency to that destination (clamped to [min_delay, max_delay]).
  sim::Time hedge_delay = 0.0;
  sim::Time min_delay = 0.02;
  sim::Time max_delay = 2.0;
};

/// Per-destination circuit-breaker knobs (one config per endpoint).
struct BreakerConfig {
  int threshold = 5;            ///< consecutive timeouts that open the breaker
  sim::Time open_duration = 10.0;  ///< open -> half-open after this long
};

class RpcEndpoint final : public Endpoint {
 public:
  /// Handler for one-way messages.
  using MessageHandler = std::function<void(const Envelope&)>;
  /// Handler for requests; reply now or keep the Responder for later.
  using RequestHandler = std::function<void(const Envelope&, Responder)>;
  /// Completion callback for call(): ok=false means timeout (reply null).
  using ReplyCallback = std::function<void(bool ok, const MsgPtr& reply)>;

  RpcEndpoint(sim::Engine& engine, Network& network, Address address, std::string name);
  ~RpcEndpoint() override;

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  [[nodiscard]] Address address() const { return address_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() const { return network_; }

  void set_message_handler(MessageHandler handler) { on_oneway_ = std::move(handler); }
  void set_request_handler(RequestHandler handler) { on_request_ = std::move(handler); }
  void set_breaker_config(BreakerConfig config) { breaker_config_ = config; }

  /// Fire-and-forget unicast.
  void send(Address to, MsgPtr msg);

  /// Fire-and-forget multicast to a heartbeat group.
  void multicast(GroupId group, MsgPtr msg);

  /// Request/response with timeout. The callback always fires exactly once.
  void call(Address to, MsgPtr request, sim::Time timeout, ReplyCallback cb);

  /// call() with automatic re-send on timeout: up to policy.max_attempts
  /// tries separated by decorrelated-jitter backoff (deterministic per
  /// engine seed), the whole sequence capped by policy.max_total. The
  /// callback fires exactly once, with the first successful reply or the
  /// final timeout. Replies — including explicit rejections — never trigger
  /// a retry; only transport-level timeouts do, so request handlers must
  /// stay idempotent under duplicated requests. A reply that arrives after
  /// its own attempt timed out but before the overall call resolved still
  /// completes the call and cancels the pending retry (slow != lost).
  void call_with_retries(Address to, MsgPtr request, sim::Time timeout,
                         RetryPolicy policy, ReplyCallback cb);

  /// Tail-latency hedging: send the request, and if no reply lands within
  /// the hedge delay, send one backup copy of the same request to the same
  /// destination. First reply wins; the caller sees exactly one callback.
  /// Only valid for idempotent requests (probes, monitor pulls, summary
  /// fetches) — the destination may execute the request twice.
  void call_with_hedging(Address to, MsgPtr request, sim::Time timeout,
                         HedgePolicy policy, ReplyCallback cb);

  /// Circuit-breaker state for `to` (consulted by opted-in retry calls).
  [[nodiscard]] bool breaker_open(Address to) const;
  /// Cumulative seconds any of this endpoint's breakers spent open.
  [[nodiscard]] double breaker_open_seconds() const;

  /// Simulate a process crash: detach from the network and drop all pending
  /// calls *without* firing their callbacks (the process is gone).
  void go_down();
  /// Reattach after recovery.
  void go_up();
  [[nodiscard]] bool up() const { return up_; }

  void on_message(const Envelope& env) override;

 private:
  struct PendingCall {
    ReplyCallback cb;             ///< set for plain call(); empty when grouped
    sim::EventId timeout_event = 0;
    telemetry::SpanContext span;  ///< per-attempt rpc span (invalid if untraced)
    sim::Time started = 0.0;
    Address to = kNullAddress;
    std::uint64_t group = 0;  ///< call-group id; 0 = plain single-shot call
    bool timed_out = false;   ///< soft timeout fired, reply may still win
  };

  /// One logical multi-attempt call (retry sequence or hedge pair). The
  /// group owns the user callback; completion (first reply, final timeout,
  /// breaker fast-fail) fires it exactly once and reaps every attempt.
  struct CallGroup {
    ReplyCallback cb;
    Address to = kNullAddress;
    std::vector<std::uint64_t> attempts;  ///< outstanding attempt rpc ids
    sim::EventId pending_event = 0;       ///< scheduled retry / hedge launch
    bool hedged = false;
    std::uint64_t primary = 0;  ///< first attempt id (hedge accounting)
  };

  /// Latency history + breaker state for one destination.
  struct DestStats {
    static constexpr std::size_t kRing = 32;
    std::array<float, kRing> latency{};
    std::size_t count = 0;  ///< total samples (ring index = count % kRing)
    int consecutive_timeouts = 0;
    enum class Breaker { kClosed, kOpen, kHalfOpen } breaker = Breaker::kClosed;
    sim::Time open_until = 0.0;
    sim::Time opened_at = 0.0;
  };

  void attempt_call(Address to, MsgPtr request, sim::Time timeout,
                    const RetryPolicy& policy, int attempt, sim::Time prev_backoff,
                    sim::Time deadline, std::uint64_t group_id);
  /// Send one grouped attempt; `on_timeout` runs at its soft timeout (the
  /// pending entry stays alive so a late reply can still win the group).
  std::uint64_t send_attempt(Address to, const MsgPtr& request, sim::Time timeout,
                             std::uint64_t group_id, std::function<void()> on_timeout);
  /// Resolve a call group exactly once and reap its outstanding attempts.
  void complete_group(std::uint64_t group_id, bool ok, const MsgPtr& reply,
                      std::uint64_t winner);
  /// Fail the group if every attempt timed out and nothing else is scheduled.
  void finish_if_exhausted(std::uint64_t group_id);
  /// Fire `cb(false, nullptr)` asynchronously (breaker fast-fail path).
  void fail_async(ReplyCallback cb);

  [[nodiscard]] sim::Time hedge_delay(Address to, const HedgePolicy& policy) const;
  /// True when the breaker permits an attempt now (may transition to
  /// half-open as a side effect).
  bool breaker_allows(Address to);
  void note_reply(Address to, sim::Time latency);
  void note_timeout(Address to);

  sim::Engine& engine_;
  Network& network_;
  Address address_;
  std::string name_;
  bool up_ = true;
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t next_group_id_ = 1;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::unordered_map<std::uint64_t, CallGroup> groups_;
  std::unordered_map<Address, DestStats> dest_stats_;
  BreakerConfig breaker_config_;
  double breaker_open_s_ = 0.0;
  std::shared_ptr<bool> alive_;
  MessageHandler on_oneway_;
  RequestHandler on_request_;
};

}  // namespace snooze::net
