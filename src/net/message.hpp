// Wire-message base type.
//
// Protocol payloads derive from Message and are carried by value-semantics
// shared_ptrs (a delivered message is immutable and may be multicast to many
// receivers). wire_size() feeds the control-traffic accounting used by the
// management-overhead experiment (E6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "telemetry/context.hpp"

namespace snooze::net {

/// Network address of a simulated node (EP/GL/GM/LC/client/service).
using Address = std::uint32_t;

constexpr Address kNullAddress = 0;

struct Message {
  virtual ~Message() = default;
  /// Stable type tag, used for tracing and dispatch diagnostics.
  [[nodiscard]] virtual std::string_view type() const = 0;
  /// Approximate serialized size in bytes (for overhead accounting).
  [[nodiscard]] virtual std::size_t wire_size() const { return 128; }

  /// Causal trace context; set by the sender before the message is handed to
  /// the network (a default/invalid context marks untraced traffic).
  telemetry::SpanContext ctx;

  /// Authority epoch of the sender (fencing token). Leaders stamp every
  /// authority-bearing command with the epoch of the election term (or
  /// lease) under which they act; receivers reject commands whose epoch is
  /// below the highest they have seen for that authority domain. Zero marks
  /// unfenced traffic (heartbeats, client requests, administrative paths).
  std::uint64_t epoch = 0;
};

using MsgPtr = std::shared_ptr<const Message>;

/// Downcast helper: returns nullptr when the payload is of a different type.
template <typename T>
const T* msg_cast(const Message& msg) {
  return dynamic_cast<const T*>(&msg);
}

template <typename T>
const T* msg_cast(const MsgPtr& msg) {
  return msg ? dynamic_cast<const T*>(msg.get()) : nullptr;
}

/// Envelope delivered to an endpoint.
struct Envelope {
  Address from = kNullAddress;
  Address to = kNullAddress;
  MsgPtr payload;
  /// Trace context the receiver should parent its spans under. For plain
  /// sends this mirrors payload->ctx; for RPC requests RpcEndpoint rewrites
  /// it to the per-attempt rpc span so retries stay distinguishable.
  telemetry::SpanContext ctx;
  /// Sender's authority epoch, mirrored from the payload (for RPC requests,
  /// from the wrapped inner message) so fencing checks read the envelope.
  std::uint64_t epoch = 0;
};

/// Receiver interface registered with the Network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Envelope& env) = 0;
};

}  // namespace snooze::net
