#include "net/network.hpp"

#include <cassert>

namespace snooze::net {

Network::Network(sim::Engine& engine, LatencyModel latency)
    : engine_(engine), latency_(latency) {}

void Network::attach(Address addr, Endpoint* endpoint) {
  assert(addr != kNullAddress && endpoint != nullptr);
  endpoints_[addr] = endpoint;
  next_address_ = std::max(next_address_, addr + 1);
}

void Network::detach(Address addr) { endpoints_.erase(addr); }

bool Network::attached(Address addr) const { return endpoints_.count(addr) > 0; }

Address Network::allocate_address() { return next_address_++; }

bool Network::blocked(Address from, Address to) const {
  if (partitions_.empty()) return false;
  for (const auto& group : partitions_) {
    const bool has_from = group.count(from) > 0;
    const bool has_to = group.count(to) > 0;
    if (has_from || has_to) {
      if (has_from && has_to) return false;
      // Keep scanning: a node may legitimately appear in no group (then it
      // is isolated from every grouped node).
      if (has_from != has_to) return true;
    }
  }
  return false;
}

bool Network::send(Address from, Address to, MsgPtr msg) {
  assert(msg != nullptr);
  if (down_.count(from)) return false;
  ++stats_.messages_sent;
  stats_.bytes_sent += msg->wire_size();
  auto& sender = per_node_[from];
  ++sender.messages_sent;
  sender.bytes_sent += msg->wire_size();

  if (down_.count(to) || blocked(from, to) ||
      (drop_probability_ > 0.0 && engine_.rng().chance(drop_probability_))) {
    ++stats_.messages_dropped;
    ++per_node_[from].messages_dropped;
    return true;  // sent but lost in transit
  }

  const sim::Time latency = latency_.sample(engine_.rng());
  engine_.schedule(latency, [this, env = Envelope{from, to, std::move(msg)}]() mutable {
    // Re-check at delivery time: the receiver may have crashed or detached
    // while the message was in flight.
    if (down_.count(env.to)) {
      ++stats_.messages_dropped;
      return;
    }
    const auto it = endpoints_.find(env.to);
    if (it == endpoints_.end()) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    ++per_node_[env.to].messages_delivered;
    it->second->on_message(env);
  });
  return true;
}

void Network::multicast(Address from, GroupId group, const MsgPtr& msg) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  // Copy membership: delivery callbacks may mutate the group.
  const std::vector<Address> members(it->second.begin(), it->second.end());
  for (Address member : members) {
    if (member == from) continue;
    send(from, member, msg);
  }
}

void Network::join_group(GroupId group, Address member) { groups_[group].insert(member); }

void Network::leave_group(GroupId group, Address member) {
  const auto it = groups_.find(group);
  if (it != groups_.end()) it->second.erase(member);
}

std::size_t Network::group_size(GroupId group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

void Network::set_node_up(Address addr, bool up) {
  if (up) {
    down_.erase(addr);
  } else {
    down_.insert(addr);
  }
}

bool Network::node_up(Address addr) const { return down_.count(addr) == 0; }

void Network::set_partitions(std::vector<std::set<Address>> partitions) {
  partitions_ = std::move(partitions);
}

TrafficStats Network::node_stats(Address addr) const {
  const auto it = per_node_.find(addr);
  return it == per_node_.end() ? TrafficStats{} : it->second;
}

void Network::reset_stats() {
  stats_ = TrafficStats{};
  per_node_.clear();
}

}  // namespace snooze::net
