#include "net/network.hpp"

#include <algorithm>
#include <cassert>

namespace snooze::net {

Network::Network(sim::Engine& engine, LatencyModel latency)
    : engine_(engine), latency_(latency) {}

void Network::attach(Address addr, Endpoint* endpoint) {
  assert(addr != kNullAddress && endpoint != nullptr);
  endpoints_[addr] = endpoint;
  next_address_ = std::max(next_address_, addr + 1);
}

void Network::detach(Address addr) { endpoints_.erase(addr); }

bool Network::attached(Address addr) const { return endpoints_.count(addr) > 0; }

Address Network::allocate_address() { return next_address_++; }

bool Network::blocked(Address from, Address to) const {
  if (partitions_.empty()) return false;
  for (const auto& group : partitions_) {
    const bool has_from = group.count(from) > 0;
    const bool has_to = group.count(to) > 0;
    if (has_from || has_to) {
      if (has_from && has_to) return false;
      // Keep scanning: a node may legitimately appear in no group (then it
      // is isolated from every grouped node).
      if (has_from != has_to) return true;
    }
  }
  return false;
}

LinkFaults Network::effective_faults(Address from, Address to) const {
  LinkFaults out;
  out.drop = drop_probability_;
  out.reorder_delay = 0.0;
  out.flaky_latency = 0.0;
  auto fold = [&out](const LinkFaults& f) {
    // Independent loss processes compose; the strongest duplication /
    // reordering / flaky knob wins; latency spikes stack.
    out.drop = 1.0 - (1.0 - out.drop) * (1.0 - f.drop);
    out.duplicate = std::max(out.duplicate, f.duplicate);
    if (f.reorder > out.reorder ||
        (f.reorder == out.reorder && f.reorder_delay > out.reorder_delay)) {
      out.reorder = f.reorder;
      out.reorder_delay = f.reorder_delay;
    }
    out.extra_latency += f.extra_latency;
    if (f.flaky_latency > out.flaky_latency) {
      out.flaky_latency = f.flaky_latency;
      out.flaky_start = f.flaky_start;
      out.flaky_stop = f.flaky_stop;
    }
  };
  if (const auto it = node_faults_.find(from); it != node_faults_.end()) fold(it->second);
  if (const auto it = node_faults_.find(to); it != node_faults_.end()) fold(it->second);
  if (const auto it = link_faults_.find({from, to}); it != link_faults_.end()) {
    fold(it->second);
  }
  return out;
}

void Network::deliver_after(sim::Time delay, Envelope env) {
  std::uint32_t index;
  if (delivery_free_ != kNoDelivery) {
    index = delivery_free_;
    delivery_free_ = deliveries_[index].next_free;
    deliveries_[index].env = std::move(env);
  } else {
    index = static_cast<std::uint32_t>(deliveries_.size());
    deliveries_.push_back(PendingDelivery{std::move(env), kNoDelivery});
  }
  engine_.schedule(delay, [this, index] { complete_delivery(index); });
}

void Network::complete_delivery(std::uint32_t index) {
  // Take the envelope and recycle the slab entry up front: on_message may
  // send (and thus park) new deliveries.
  Envelope env = std::move(deliveries_[index].env);
  deliveries_[index].env = Envelope{};
  deliveries_[index].next_free = delivery_free_;
  delivery_free_ = index;

  // Re-check at delivery time: the receiver may have crashed or detached
  // while the message was in flight.
  if (down_.count(env.to)) {
    ++stats_.messages_dropped;
    if (counters_.dropped != nullptr) counters_.dropped->inc();
    return;
  }
  const auto it = endpoints_.find(env.to);
  if (it == endpoints_.end()) {
    ++stats_.messages_dropped;
    if (counters_.dropped != nullptr) counters_.dropped->inc();
    return;
  }
  ++stats_.messages_delivered;
  ++per_node_[env.to].messages_delivered;
  if (counters_.delivered != nullptr) counters_.delivered->inc();
  it->second->on_message(env);
}

bool Network::send(Address from, Address to, MsgPtr msg) {
  assert(msg != nullptr);
  if (down_.count(from)) return false;
  const std::size_t size = msg->wire_size();
  ++stats_.messages_sent;
  stats_.bytes_sent += size;
  auto& sender = per_node_[from];
  ++sender.messages_sent;
  sender.bytes_sent += size;
  auto& link = link_traffic_[link_key(from, to)];
  ++link.messages;
  link.bytes += size;
  if (counters_.sent != nullptr) {
    counters_.sent->inc();
    counters_.bytes->inc(size);
  }

  LinkFaults faults;
  if (any_faults_) {
    faults = effective_faults(from, to);
  } else {
    faults.drop = 0.0;
    faults.reorder_delay = 0.0;
  }
  if (down_.count(to) || blocked(from, to) ||
      (faults.drop > 0.0 && engine_.rng().chance(faults.drop))) {
    ++stats_.messages_dropped;
    ++sender.messages_dropped;
    if (counters_.dropped != nullptr) counters_.dropped->inc();
    return true;  // sent but lost in transit
  }

  sim::Time latency = latency_.sample(engine_.rng()) + faults.extra_latency;
  if (faults.reorder > 0.0 && engine_.rng().chance(faults.reorder)) {
    // Bounded reordering: hold the message back so later sends overtake it.
    latency += engine_.rng().uniform(0.0, faults.reorder_delay);
  }
  if (faults.flaky_latency > 0.0) {
    // Flaky link: advance the per-link burst state one step, then stretch
    // this message if the link is inside a burst episode.
    bool& bursting = flaky_bursting_[{from, to}];
    bursting = bursting ? !engine_.rng().chance(faults.flaky_stop)
                        : engine_.rng().chance(faults.flaky_start);
    if (bursting) {
      latency += engine_.rng().uniform(faults.flaky_latency * 0.5,
                                       faults.flaky_latency);
    }
  }
  const bool duplicated =
      faults.duplicate > 0.0 && engine_.rng().chance(faults.duplicate);
  Envelope env{from, to, msg, msg->ctx, msg->epoch};
  deliver_after(latency, env);
  if (duplicated) {
    ++stats_.messages_duplicated;
    if (counters_.duplicated != nullptr) counters_.duplicated->inc();
    deliver_after(latency + latency_.sample(engine_.rng()), std::move(env));
  }
  return true;
}

void Network::multicast(Address from, GroupId group, const MsgPtr& msg) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  // Snapshot membership into the reused scratch buffer: deliveries are
  // always asynchronous (send() only schedules), so the group cannot mutate
  // inside this loop, but join/leave between batched sends must not
  // invalidate iteration. One buffer serves every multicast — the per-call
  // vector allocation was measurable at heartbeat fan-out scale.
  multicast_scratch_.assign(it->second.begin(), it->second.end());
  for (Address member : multicast_scratch_) {
    if (member == from) continue;
    send(from, member, msg);
  }
}

void Network::join_group(GroupId group, Address member) { groups_[group].insert(member); }

void Network::leave_group(GroupId group, Address member) {
  const auto it = groups_.find(group);
  if (it != groups_.end()) it->second.erase(member);
}

std::size_t Network::group_size(GroupId group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

void Network::set_node_up(Address addr, bool up) {
  if (up) {
    down_.erase(addr);
  } else {
    down_.insert(addr);
  }
}

bool Network::node_up(Address addr) const { return down_.count(addr) == 0; }

void Network::set_partitions(std::vector<std::set<Address>> partitions) {
  partitions_ = std::move(partitions);
}

bool Network::reachable(Address from, Address to) const {
  return down_.count(from) == 0 && down_.count(to) == 0 && !blocked(from, to);
}

void Network::update_fault_flag() {
  any_faults_ =
      drop_probability_ > 0.0 || !link_faults_.empty() || !node_faults_.empty();
}

void Network::set_link_faults(Address from, Address to, LinkFaults faults) {
  if (faults.clear()) {
    link_faults_.erase({from, to});
    flaky_bursting_.erase({from, to});
  } else {
    link_faults_[{from, to}] = faults;
  }
  update_fault_flag();
}

void Network::clear_link_faults(Address from, Address to) {
  link_faults_.erase({from, to});
  flaky_bursting_.erase({from, to});
  update_fault_flag();
}

LinkFaults Network::link_faults(Address from, Address to) const {
  const auto it = link_faults_.find({from, to});
  return it == link_faults_.end() ? LinkFaults{} : it->second;
}

void Network::set_node_faults(Address node, LinkFaults faults) {
  if (faults.clear()) {
    node_faults_.erase(node);
  } else {
    node_faults_[node] = faults;
  }
  update_fault_flag();
}

void Network::clear_node_faults(Address node) {
  node_faults_.erase(node);
  update_fault_flag();
}

void Network::clear_all_faults() {
  link_faults_.clear();
  node_faults_.clear();
  flaky_bursting_.clear();
  update_fault_flag();
}

TrafficStats Network::node_stats(Address addr) const {
  const auto it = per_node_.find(addr);
  return it == per_node_.end() ? TrafficStats{} : it->second;
}

void Network::reset_stats() {
  stats_ = TrafficStats{};
  per_node_.clear();
  link_traffic_.clear();
}

void Network::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    counters_ = {};
    return;
  }
  auto& registry = telemetry_->metrics();
  counters_.sent = &registry.counter("net.messages_sent");
  counters_.delivered = &registry.counter("net.messages_delivered");
  counters_.dropped = &registry.counter("net.messages_dropped");
  counters_.duplicated = &registry.counter("net.messages_duplicated");
  counters_.bytes = &registry.counter("net.bytes_sent");
}

}  // namespace snooze::net
