// Simulated datacenter network.
//
// Models unicast with a configurable latency distribution, multicast groups
// (the heartbeat channels of the Snooze hierarchy), and fault injection:
// node crashes (blackhole), probabilistic message loss (global, per node and
// per directed link), message duplication, bounded reordering, latency
// spikes, and partitions. Also the accounting point for the control-traffic
// measurements of the management-overhead experiment.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "sim/engine.hpp"
#include "telemetry/telemetry.hpp"

namespace snooze::net {

/// Identifier of a multicast group (e.g. the GL heartbeat channel).
using GroupId = std::uint32_t;

/// Per-link latency model: base + uniform jitter.
struct LatencyModel {
  sim::Time base = 0.5e-3;    ///< one-way base latency (seconds)
  sim::Time jitter = 0.2e-3;  ///< uniform extra in [0, jitter)

  [[nodiscard]] sim::Time sample(util::Rng& rng) const {
    return base + (jitter > 0.0 ? rng.uniform(0.0, jitter) : 0.0);
  }
};

/// Aggregate traffic counters (global and per node).
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;  ///< extra copies created by faults
  std::uint64_t bytes_sent = 0;
};

/// Offered traffic on one directed link (counted at the send point, before
/// loss is decided, so it reflects what the sender put on the wire).
struct LinkTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Fault knobs applied to traffic on a node or a directed link. Several
/// scopes may apply to one message (global, sender node, receiver node,
/// link): drop probabilities compose independently, extra latencies add up,
/// duplication/reordering use the strongest applicable knob.
struct LinkFaults {
  double drop = 0.0;            ///< probability a message is silently lost
  double duplicate = 0.0;       ///< probability a second copy is delivered
  double reorder = 0.0;         ///< probability of an extra reorder delay
  sim::Time reorder_delay = 0.05;  ///< max extra delay when reordered (uniform)
  sim::Time extra_latency = 0.0;   ///< deterministic added latency (spike)

  // Gray-failure knob: a seeded two-state burst process. While a link is
  // "bursting", every message gets uniform extra latency in
  // [flaky_latency/2, flaky_latency]; the state machine advances one step per
  // message (enter with flaky_start, leave with flaky_stop), so a single
  // fault entry produces correlated latency episodes rather than iid spikes.
  sim::Time flaky_latency = 0.0;  ///< max burst latency; 0 disables the knob
  double flaky_start = 0.05;      ///< per-message probability a burst begins
  double flaky_stop = 0.25;       ///< per-message probability a burst ends

  [[nodiscard]] bool clear() const {
    return drop == 0.0 && duplicate == 0.0 && reorder == 0.0 &&
           extra_latency == 0.0 && flaky_latency == 0.0;
  }
};

class Network {
 public:
  Network(sim::Engine& engine, LatencyModel latency = {});

  // --- topology -----------------------------------------------------------
  /// Register `endpoint` to receive messages addressed to `addr`.
  void attach(Address addr, Endpoint* endpoint);
  void detach(Address addr);
  [[nodiscard]] bool attached(Address addr) const;

  /// Allocate a fresh, never-used address.
  Address allocate_address();

  // --- messaging ----------------------------------------------------------
  /// Send `msg` from `from` to `to`; returns false if dropped at the source
  /// (sender down, receiver unknown is still "sent", loss decided at source).
  bool send(Address from, Address to, MsgPtr msg);

  /// Deliver to every member of `group` except the sender.
  void multicast(Address from, GroupId group, const MsgPtr& msg);

  void join_group(GroupId group, Address member);
  void leave_group(GroupId group, Address member);
  [[nodiscard]] std::size_t group_size(GroupId group) const;

  // --- fault injection ----------------------------------------------------
  /// A down node neither sends nor receives (traffic is blackholed).
  void set_node_up(Address addr, bool up);
  [[nodiscard]] bool node_up(Address addr) const;

  /// Probability in [0,1] that any given message is silently lost.
  void set_drop_probability(double p) {
    drop_probability_ = p;
    update_fault_flag();
  }

  /// Fault knobs for one directed link (from -> to). Replaces any previous
  /// setting for that link; a clear LinkFaults value removes the entry.
  void set_link_faults(Address from, Address to, LinkFaults faults);
  void clear_link_faults(Address from, Address to);
  [[nodiscard]] LinkFaults link_faults(Address from, Address to) const;

  /// Fault knobs applied to every message a node sends or receives.
  void set_node_faults(Address node, LinkFaults faults);
  void clear_node_faults(Address node);

  /// Remove every per-link and per-node fault entry (global drop and
  /// partitions are separate knobs and stay untouched).
  void clear_all_faults();

  /// Partition the network into groups; traffic crosses partitions only if
  /// both ends are in the same group. Empty vector clears the partition.
  void set_partitions(std::vector<std::set<Address>> partitions);

  /// True when traffic can flow from `from` to `to` right now (both nodes
  /// up and no partition in between). Probabilistic loss is not considered.
  [[nodiscard]] bool reachable(Address from, Address to) const;

  // --- accounting ---------------------------------------------------------
  [[nodiscard]] const TrafficStats& stats() const { return stats_; }
  [[nodiscard]] TrafficStats node_stats(Address addr) const;
  /// Offered traffic per directed link, keyed (from << 32) | to.
  [[nodiscard]] const std::unordered_map<std::uint64_t, LinkTraffic>& link_traffic()
      const {
    return link_traffic_;
  }
  [[nodiscard]] static std::uint64_t link_key(Address from, Address to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  void reset_stats();

  /// Attach the telemetry sink all endpoints on this network report through.
  /// The global traffic counters are mirrored into its MetricsRegistry from
  /// the moment of attachment; pass nullptr to detach.
  void set_telemetry(telemetry::Telemetry* telemetry);
  [[nodiscard]] telemetry::Telemetry* telemetry() const { return telemetry_; }

  [[nodiscard]] sim::Engine& engine() const { return engine_; }

 private:
  static constexpr std::uint32_t kNoDelivery = 0xFFFFFFFFu;

  /// In-flight message parked in the delivery slab until its engine event
  /// fires. Pooling the envelope here keeps the scheduled closure down to
  /// (this, index) — small and trivially copyable, so std::function stores
  /// it inline instead of heap-allocating per delivery.
  struct PendingDelivery {
    Envelope env;
    std::uint32_t next_free = kNoDelivery;
  };

  [[nodiscard]] bool blocked(Address from, Address to) const;
  /// Combined fault view for one message (global + nodes + link).
  [[nodiscard]] LinkFaults effective_faults(Address from, Address to) const;
  void deliver_after(sim::Time delay, Envelope env);
  void complete_delivery(std::uint32_t index);
  void update_fault_flag();

  sim::Engine& engine_;
  LatencyModel latency_;
  Address next_address_ = 1;
  std::unordered_map<Address, Endpoint*> endpoints_;
  std::set<Address> down_;
  std::map<GroupId, std::set<Address>> groups_;
  std::vector<std::set<Address>> partitions_;
  double drop_probability_ = 0.0;
  std::map<std::pair<Address, Address>, LinkFaults> link_faults_;
  std::map<Address, LinkFaults> node_faults_;
  /// Burst state of the flaky-link process per directed link. Advanced one
  /// step per message that crosses a link with flaky_latency > 0; erased
  /// whenever the faults feeding it are cleared.
  std::map<std::pair<Address, Address>, bool> flaky_bursting_;
  /// True while any probabilistic fault source is configured; when false,
  /// send() skips the per-message fault fold entirely (the common case on
  /// the 10k-LC scaling path).
  bool any_faults_ = false;
  std::vector<PendingDelivery> deliveries_;
  std::uint32_t delivery_free_ = kNoDelivery;
  /// Reused multicast membership snapshot (one allocation, not one per send).
  std::vector<Address> multicast_scratch_;
  TrafficStats stats_;
  std::unordered_map<Address, TrafficStats> per_node_;
  std::unordered_map<std::uint64_t, LinkTraffic> link_traffic_;

  telemetry::Telemetry* telemetry_ = nullptr;
  /// Cached registry handles: send() is the hottest path in the simulator,
  /// so the name lookup happens once, at set_telemetry() time.
  struct {
    telemetry::Counter* sent = nullptr;
    telemetry::Counter* delivered = nullptr;
    telemetry::Counter* dropped = nullptr;
    telemetry::Counter* duplicated = nullptr;
    telemetry::Counter* bytes = nullptr;
  } counters_;
};

}  // namespace snooze::net
