#include "net/rpc.hpp"

#include <cassert>

namespace snooze::net {

void Responder::respond(MsgPtr reply) const {
  assert(reply != nullptr);
  auto wrap = std::make_shared<RpcWrap>();
  wrap->rpc_id = rpc_id_;
  wrap->is_reply = true;
  wrap->inner = std::move(reply);
  // Send through the network directly: if the responding node has crashed in
  // the meantime the network blackholes it (sender is in the down set).
  network_->send(self_, to_, std::move(wrap));
}

RpcEndpoint::RpcEndpoint(sim::Engine& engine, Network& network, Address address,
                         std::string name)
    : engine_(engine),
      network_(network),
      address_(address),
      name_(std::move(name)),
      alive_(std::make_shared<bool>(true)) {
  network_.attach(address_, this);
}

RpcEndpoint::~RpcEndpoint() {
  *alive_ = false;
  network_.detach(address_);
}

void RpcEndpoint::send(Address to, MsgPtr msg) {
  if (!up_) return;
  network_.send(address_, to, std::move(msg));
}

void RpcEndpoint::multicast(GroupId group, MsgPtr msg) {
  if (!up_) return;
  network_.multicast(address_, group, msg);
}

void RpcEndpoint::call(Address to, MsgPtr request, sim::Time timeout, ReplyCallback cb) {
  assert(cb);
  if (!up_) return;
  auto wrap = std::make_shared<RpcWrap>();
  wrap->rpc_id = next_rpc_id_++;
  wrap->is_reply = false;
  wrap->inner = std::move(request);

  const std::uint64_t id = wrap->rpc_id;
  PendingCall pending;
  pending.cb = std::move(cb);
  auto token = alive_;
  pending.timeout_event = engine_.schedule(timeout, [this, token, id] {
    if (!*token) return;
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto callback = std::move(it->second.cb);
    pending_.erase(it);
    callback(false, nullptr);
  });
  pending_.emplace(id, std::move(pending));
  network_.send(address_, to, std::move(wrap));
}

void RpcEndpoint::go_down() {
  if (!up_) return;
  up_ = false;
  network_.set_node_up(address_, false);
  // A crashed process loses its in-flight calls silently.
  for (auto& [id, pending] : pending_) engine_.cancel(pending.timeout_event);
  pending_.clear();
}

void RpcEndpoint::go_up() {
  if (up_) return;
  up_ = true;
  network_.set_node_up(address_, true);
}

void RpcEndpoint::on_message(const Envelope& env) {
  if (!up_) return;
  const auto* wrap = msg_cast<RpcWrap>(env.payload);
  if (wrap == nullptr) {
    if (on_oneway_) on_oneway_(env);
    return;
  }
  if (!wrap->is_reply) {
    if (!on_request_) return;
    Envelope inner_env{env.from, env.to, wrap->inner};
    on_request_(inner_env, Responder(&network_, address_, env.from, wrap->rpc_id));
    return;
  }
  const auto it = pending_.find(wrap->rpc_id);
  if (it == pending_.end()) return;  // late reply after timeout
  engine_.cancel(it->second.timeout_event);
  auto callback = std::move(it->second.cb);
  pending_.erase(it);
  callback(true, wrap->inner);
}

}  // namespace snooze::net
