#include "net/rpc.hpp"

#include <algorithm>
#include <cassert>

#include "net/pool.hpp"

namespace snooze::net {

sim::Time RetryPolicy::backoff(int attempt, util::Rng& rng) const {
  sim::Time delay = base_backoff;
  for (int i = 1; i < attempt; ++i) delay *= multiplier;
  delay = std::min(delay, max_backoff);
  if (jitter > 0.0) delay += rng.uniform(0.0, jitter * delay);
  return delay;
}

sim::Time RetryPolicy::next_backoff(sim::Time prev, util::Rng& rng) const {
  // AWS-style decorrelated jitter: sleep = min(cap, uniform(base, prev * 3)).
  // The upper bound grows from the *previous actual sleep*, so consecutive
  // delays decorrelate instead of marching up a shared exponential ladder.
  const sim::Time upper = std::max(base_backoff, prev * 3.0);
  sim::Time delay = upper <= base_backoff ? base_backoff
                                          : rng.uniform(base_backoff, upper);
  return std::min(delay, max_backoff);
}

void Responder::respond(MsgPtr reply) const {
  assert(reply != nullptr);
  auto wrap = make_message<RpcWrap>();
  wrap->rpc_id = rpc_id_;
  wrap->is_reply = true;
  wrap->inner = std::move(reply);
  wrap->ctx = ctx_;  // the reply travels under the rpc-attempt span
  // Send through the network directly: if the responding node has crashed in
  // the meantime the network blackholes it (sender is in the down set).
  network_->send(self_, to_, std::move(wrap));
}

RpcEndpoint::RpcEndpoint(sim::Engine& engine, Network& network, Address address,
                         std::string name)
    : engine_(engine),
      network_(network),
      address_(address),
      name_(std::move(name)),
      alive_(std::make_shared<bool>(true)) {
  network_.attach(address_, this);
}

RpcEndpoint::~RpcEndpoint() {
  *alive_ = false;
  network_.detach(address_);
}

void RpcEndpoint::send(Address to, MsgPtr msg) {
  if (!up_) return;
  network_.send(address_, to, std::move(msg));
}

void RpcEndpoint::multicast(GroupId group, MsgPtr msg) {
  if (!up_) return;
  network_.multicast(address_, group, msg);
}

void RpcEndpoint::call(Address to, MsgPtr request, sim::Time timeout, ReplyCallback cb) {
  assert(cb);
  if (!up_) return;
  auto wrap = make_message<RpcWrap>();
  wrap->rpc_id = next_rpc_id_++;
  wrap->is_reply = false;
  wrap->inner = std::move(request);
  wrap->epoch = wrap->inner->epoch;  // the fencing token rides the envelope

  // One rpc span per attempt (call_with_retries re-enters here), parented
  // under the request's context — a retried RPC shows up as sibling attempt
  // spans, the timed-out ones marked status=timeout.
  telemetry::Telemetry* tel = network_.telemetry();
  telemetry::count(tel, "rpc.calls");
  const telemetry::SpanContext span = telemetry::begin_span(
      tel, wrap->inner->ctx, "rpc:" + std::string(wrap->inner->type()), name_);
  wrap->ctx = span.valid() ? span : wrap->inner->ctx;

  const std::uint64_t id = wrap->rpc_id;
  PendingCall pending;
  pending.cb = std::move(cb);
  pending.span = span;
  pending.started = engine_.now();
  auto token = alive_;
  pending.timeout_event = engine_.schedule(timeout, [this, token, id] {
    if (!*token) return;
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto callback = std::move(it->second.cb);
    telemetry::Telemetry* t = network_.telemetry();
    telemetry::count(t, "rpc.timeouts");
    telemetry::end_span(t, it->second.span, "timeout");
    pending_.erase(it);
    callback(false, nullptr);
  });
  pending_.emplace(id, std::move(pending));
  network_.send(address_, to, std::move(wrap));
}

void RpcEndpoint::call_with_retries(Address to, MsgPtr request, sim::Time timeout,
                                    RetryPolicy policy, ReplyCallback cb) {
  assert(policy.max_attempts >= 1);
  const sim::Time deadline =
      policy.max_total > 0.0 ? engine_.now() + policy.max_total : -1.0;
  attempt_call(to, std::move(request), timeout, policy, 1, 0.0, deadline,
               std::move(cb));
}

void RpcEndpoint::attempt_call(Address to, MsgPtr request, sim::Time timeout,
                               const RetryPolicy& policy, int attempt,
                               sim::Time prev_backoff, sim::Time deadline,
                               ReplyCallback cb) {
  call(to, request, timeout,
       [this, to, request, timeout, policy, attempt, prev_backoff, deadline,
        cb = std::move(cb)](bool ok, const MsgPtr& reply) mutable {
    if (ok || attempt >= policy.max_attempts) {
      cb(ok, reply);
      return;
    }
    telemetry::count(network_.telemetry(), "rpc.retries");
    const sim::Time delay = policy.next_backoff(prev_backoff, engine_.rng());
    if (deadline >= 0.0 && engine_.now() + delay >= deadline) {
      // The overall budget is spent before the next attempt could start:
      // report the failure now rather than retrying past the deadline.
      telemetry::count(network_.telemetry(), "rpc.deadline_exceeded");
      cb(false, nullptr);
      return;
    }
    auto token = alive_;
    engine_.schedule(delay, [this, token, to, request = std::move(request), timeout,
                             policy, attempt, delay, deadline,
                             cb = std::move(cb)]() mutable {
      // Like go_down()'s pending-call semantics: a process that crashed
      // between attempts never fires the callback.
      if (!*token || !up_) return;
      attempt_call(to, std::move(request), timeout, policy, attempt + 1, delay,
                   deadline, std::move(cb));
    });
  });
}

void RpcEndpoint::go_down() {
  if (!up_) return;
  up_ = false;
  network_.set_node_up(address_, false);
  // A crashed process loses its in-flight calls silently (spans are closed
  // so the trace shows where the caller died mid-call).
  for (auto& [id, pending] : pending_) {
    engine_.cancel(pending.timeout_event);
    telemetry::end_span(network_.telemetry(), pending.span, "caller_down");
  }
  pending_.clear();
}

void RpcEndpoint::go_up() {
  if (up_) return;
  up_ = true;
  network_.set_node_up(address_, true);
}

void RpcEndpoint::on_message(const Envelope& env) {
  if (!up_) return;
  const auto* wrap = msg_cast<RpcWrap>(env.payload);
  if (wrap == nullptr) {
    if (on_oneway_) on_oneway_(env);
    return;
  }
  if (!wrap->is_reply) {
    if (!on_request_) return;
    // Parent handler spans under the rpc-attempt span, not the sender's
    // original context, so each delivery attempt hangs off its own attempt.
    Envelope inner_env{env.from, env.to, wrap->inner, wrap->ctx, wrap->epoch};
    on_request_(inner_env,
                Responder(&network_, address_, env.from, wrap->rpc_id, wrap->ctx));
    return;
  }
  const auto it = pending_.find(wrap->rpc_id);
  if (it == pending_.end()) return;  // late reply after timeout
  engine_.cancel(it->second.timeout_event);
  auto callback = std::move(it->second.cb);
  telemetry::Telemetry* tel = network_.telemetry();
  telemetry::observe(tel, "rpc.latency", engine_.now() - it->second.started);
  telemetry::end_span(tel, it->second.span, "ok");
  pending_.erase(it);
  callback(true, wrap->inner);
}

}  // namespace snooze::net
