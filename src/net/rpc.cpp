#include "net/rpc.hpp"

#include <algorithm>
#include <cassert>

namespace snooze::net {

sim::Time RetryPolicy::backoff(int attempt, util::Rng& rng) const {
  sim::Time delay = base_backoff;
  for (int i = 1; i < attempt; ++i) delay *= multiplier;
  delay = std::min(delay, max_backoff);
  if (jitter > 0.0) delay += rng.uniform(0.0, jitter * delay);
  return delay;
}

void Responder::respond(MsgPtr reply) const {
  assert(reply != nullptr);
  auto wrap = std::make_shared<RpcWrap>();
  wrap->rpc_id = rpc_id_;
  wrap->is_reply = true;
  wrap->inner = std::move(reply);
  // Send through the network directly: if the responding node has crashed in
  // the meantime the network blackholes it (sender is in the down set).
  network_->send(self_, to_, std::move(wrap));
}

RpcEndpoint::RpcEndpoint(sim::Engine& engine, Network& network, Address address,
                         std::string name)
    : engine_(engine),
      network_(network),
      address_(address),
      name_(std::move(name)),
      alive_(std::make_shared<bool>(true)) {
  network_.attach(address_, this);
}

RpcEndpoint::~RpcEndpoint() {
  *alive_ = false;
  network_.detach(address_);
}

void RpcEndpoint::send(Address to, MsgPtr msg) {
  if (!up_) return;
  network_.send(address_, to, std::move(msg));
}

void RpcEndpoint::multicast(GroupId group, MsgPtr msg) {
  if (!up_) return;
  network_.multicast(address_, group, msg);
}

void RpcEndpoint::call(Address to, MsgPtr request, sim::Time timeout, ReplyCallback cb) {
  assert(cb);
  if (!up_) return;
  auto wrap = std::make_shared<RpcWrap>();
  wrap->rpc_id = next_rpc_id_++;
  wrap->is_reply = false;
  wrap->inner = std::move(request);

  const std::uint64_t id = wrap->rpc_id;
  PendingCall pending;
  pending.cb = std::move(cb);
  auto token = alive_;
  pending.timeout_event = engine_.schedule(timeout, [this, token, id] {
    if (!*token) return;
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto callback = std::move(it->second.cb);
    pending_.erase(it);
    callback(false, nullptr);
  });
  pending_.emplace(id, std::move(pending));
  network_.send(address_, to, std::move(wrap));
}

void RpcEndpoint::call_with_retries(Address to, MsgPtr request, sim::Time timeout,
                                    RetryPolicy policy, ReplyCallback cb) {
  assert(policy.max_attempts >= 1);
  attempt_call(to, std::move(request), timeout, policy, 1, std::move(cb));
}

void RpcEndpoint::attempt_call(Address to, MsgPtr request, sim::Time timeout,
                               const RetryPolicy& policy, int attempt,
                               ReplyCallback cb) {
  call(to, request, timeout,
       [this, to, request, timeout, policy, attempt,
        cb = std::move(cb)](bool ok, const MsgPtr& reply) mutable {
    if (ok || attempt >= policy.max_attempts) {
      cb(ok, reply);
      return;
    }
    const sim::Time delay = policy.backoff(attempt, engine_.rng());
    auto token = alive_;
    engine_.schedule(delay, [this, token, to, request = std::move(request), timeout,
                             policy, attempt, cb = std::move(cb)]() mutable {
      // Like go_down()'s pending-call semantics: a process that crashed
      // between attempts never fires the callback.
      if (!*token || !up_) return;
      attempt_call(to, std::move(request), timeout, policy, attempt + 1,
                   std::move(cb));
    });
  });
}

void RpcEndpoint::go_down() {
  if (!up_) return;
  up_ = false;
  network_.set_node_up(address_, false);
  // A crashed process loses its in-flight calls silently.
  for (auto& [id, pending] : pending_) engine_.cancel(pending.timeout_event);
  pending_.clear();
}

void RpcEndpoint::go_up() {
  if (up_) return;
  up_ = true;
  network_.set_node_up(address_, true);
}

void RpcEndpoint::on_message(const Envelope& env) {
  if (!up_) return;
  const auto* wrap = msg_cast<RpcWrap>(env.payload);
  if (wrap == nullptr) {
    if (on_oneway_) on_oneway_(env);
    return;
  }
  if (!wrap->is_reply) {
    if (!on_request_) return;
    Envelope inner_env{env.from, env.to, wrap->inner};
    on_request_(inner_env, Responder(&network_, address_, env.from, wrap->rpc_id));
    return;
  }
  const auto it = pending_.find(wrap->rpc_id);
  if (it == pending_.end()) return;  // late reply after timeout
  engine_.cancel(it->second.timeout_event);
  auto callback = std::move(it->second.cb);
  pending_.erase(it);
  callback(true, wrap->inner);
}

}  // namespace snooze::net
