#include "net/rpc.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "net/pool.hpp"

namespace snooze::net {

sim::Time RetryPolicy::backoff(int attempt, util::Rng& rng) const {
  sim::Time delay = base_backoff;
  for (int i = 1; i < attempt; ++i) delay *= multiplier;
  delay = std::min(delay, max_backoff);
  if (jitter > 0.0) delay += rng.uniform(0.0, jitter * delay);
  return delay;
}

sim::Time RetryPolicy::next_backoff(sim::Time prev, util::Rng& rng) const {
  // AWS-style decorrelated jitter: sleep = min(cap, uniform(base, prev * 3)).
  // The upper bound grows from the *previous actual sleep*, so consecutive
  // delays decorrelate instead of marching up a shared exponential ladder.
  const sim::Time upper = std::max(base_backoff, prev * 3.0);
  sim::Time delay = upper <= base_backoff ? base_backoff
                                          : rng.uniform(base_backoff, upper);
  return std::min(delay, max_backoff);
}

void Responder::respond(MsgPtr reply) const {
  assert(reply != nullptr);
  auto wrap = make_message<RpcWrap>();
  wrap->rpc_id = rpc_id_;
  wrap->is_reply = true;
  wrap->inner = std::move(reply);
  wrap->ctx = ctx_;  // the reply travels under the rpc-attempt span
  // Send through the network directly: if the responding node has crashed in
  // the meantime the network blackholes it (sender is in the down set).
  network_->send(self_, to_, std::move(wrap));
}

RpcEndpoint::RpcEndpoint(sim::Engine& engine, Network& network, Address address,
                         std::string name)
    : engine_(engine),
      network_(network),
      address_(address),
      name_(std::move(name)),
      alive_(std::make_shared<bool>(true)) {
  network_.attach(address_, this);
}

RpcEndpoint::~RpcEndpoint() {
  *alive_ = false;
  network_.detach(address_);
}

void RpcEndpoint::send(Address to, MsgPtr msg) {
  if (!up_) return;
  network_.send(address_, to, std::move(msg));
}

void RpcEndpoint::multicast(GroupId group, MsgPtr msg) {
  if (!up_) return;
  network_.multicast(address_, group, msg);
}

void RpcEndpoint::call(Address to, MsgPtr request, sim::Time timeout, ReplyCallback cb) {
  assert(cb);
  if (!up_) return;
  auto wrap = make_message<RpcWrap>();
  wrap->rpc_id = next_rpc_id_++;
  wrap->is_reply = false;
  wrap->inner = std::move(request);
  wrap->epoch = wrap->inner->epoch;  // the fencing token rides the envelope

  // One rpc span per attempt (multi-attempt calls re-enter here), parented
  // under the request's context — a retried RPC shows up as sibling attempt
  // spans, the timed-out ones marked status=timeout.
  telemetry::Telemetry* tel = network_.telemetry();
  telemetry::count(tel, "rpc.calls");
  const telemetry::SpanContext span = telemetry::begin_span(
      tel, wrap->inner->ctx, "rpc:" + std::string(wrap->inner->type()), name_);
  wrap->ctx = span.valid() ? span : wrap->inner->ctx;

  const std::uint64_t id = wrap->rpc_id;
  PendingCall pending;
  pending.cb = std::move(cb);
  pending.span = span;
  pending.started = engine_.now();
  pending.to = to;
  auto token = alive_;
  pending.timeout_event = engine_.schedule(timeout, [this, token, id] {
    if (!*token) return;
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto callback = std::move(it->second.cb);
    telemetry::Telemetry* t = network_.telemetry();
    telemetry::count(t, "rpc.timeouts");
    telemetry::end_span(t, it->second.span, "timeout");
    note_timeout(it->second.to);
    pending_.erase(it);
    callback(false, nullptr);
  });
  pending_.emplace(id, std::move(pending));
  network_.send(address_, to, std::move(wrap));
}

// ---------------------------------------------------------------------------
// Call groups (retries + hedges)
// ---------------------------------------------------------------------------

std::uint64_t RpcEndpoint::send_attempt(Address to, const MsgPtr& request,
                                        sim::Time timeout, std::uint64_t group_id,
                                        std::function<void()> on_timeout) {
  auto wrap = make_message<RpcWrap>();
  wrap->rpc_id = next_rpc_id_++;
  wrap->is_reply = false;
  wrap->inner = request;
  wrap->epoch = request->epoch;

  telemetry::Telemetry* tel = network_.telemetry();
  telemetry::count(tel, "rpc.calls");
  const telemetry::SpanContext span = telemetry::begin_span(
      tel, wrap->inner->ctx, "rpc:" + std::string(wrap->inner->type()), name_);
  wrap->ctx = span.valid() ? span : wrap->inner->ctx;

  const std::uint64_t id = wrap->rpc_id;
  PendingCall pending;
  pending.span = span;
  pending.started = engine_.now();
  pending.to = to;
  pending.group = group_id;
  auto token = alive_;
  pending.timeout_event =
      engine_.schedule(timeout, [this, token, id, on_timeout = std::move(on_timeout)] {
    if (!*token) return;
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    // Soft timeout: the attempt no longer paces the call, but its pending
    // entry stays alive — a slow (not lost) reply can still win the group
    // until the group itself resolves.
    it->second.timed_out = true;
    it->second.timeout_event = 0;
    telemetry::Telemetry* t = network_.telemetry();
    telemetry::count(t, "rpc.timeouts");
    telemetry::end_span(t, it->second.span, "timeout");
    it->second.span = {};
    note_timeout(it->second.to);
    on_timeout();
  });
  pending_.emplace(id, std::move(pending));
  groups_[group_id].attempts.push_back(id);
  network_.send(address_, to, std::move(wrap));
  return id;
}

void RpcEndpoint::complete_group(std::uint64_t group_id, bool ok, const MsgPtr& reply,
                                 std::uint64_t winner) {
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) return;
  CallGroup group = std::move(it->second);
  groups_.erase(it);
  engine_.cancel(group.pending_event);
  telemetry::Telemetry* tel = network_.telemetry();
  for (const std::uint64_t id : group.attempts) {
    const auto p = pending_.find(id);
    if (p == pending_.end()) continue;
    engine_.cancel(p->second.timeout_event);
    telemetry::end_span(tel, p->second.span, ok ? "superseded" : "failed");
    pending_.erase(p);
  }
  if (ok && group.hedged && winner != group.primary) {
    telemetry::count(tel, "rpc.hedges_won");
  }
  group.cb(ok, reply);
}

void RpcEndpoint::finish_if_exhausted(std::uint64_t group_id) {
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) return;
  if (it->second.pending_event != 0) return;  // a retry/hedge is still scheduled
  for (const std::uint64_t id : it->second.attempts) {
    const auto p = pending_.find(id);
    if (p != pending_.end() && !p->second.timed_out) return;  // still in flight
  }
  complete_group(group_id, false, nullptr, 0);
}

void RpcEndpoint::fail_async(ReplyCallback cb) {
  auto token = alive_;
  engine_.schedule(0.0, [this, token, cb = std::move(cb)] {
    if (!*token || !up_) return;
    cb(false, nullptr);
  });
}

void RpcEndpoint::call_with_retries(Address to, MsgPtr request, sim::Time timeout,
                                    RetryPolicy policy, ReplyCallback cb) {
  assert(policy.max_attempts >= 1);
  if (!up_) return;
  if (policy.use_breaker && !breaker_allows(to)) {
    telemetry::count(network_.telemetry(), "rpc.breaker_fast_fail");
    fail_async(std::move(cb));
    return;
  }
  const sim::Time deadline =
      policy.max_total > 0.0 ? engine_.now() + policy.max_total : -1.0;
  const std::uint64_t group_id = next_group_id_++;
  CallGroup group;
  group.cb = std::move(cb);
  group.to = to;
  groups_.emplace(group_id, std::move(group));
  attempt_call(to, std::move(request), timeout, policy, 1, 0.0, deadline, group_id);
}

void RpcEndpoint::attempt_call(Address to, MsgPtr request, sim::Time timeout,
                               const RetryPolicy& policy, int attempt,
                               sim::Time prev_backoff, sim::Time deadline,
                               std::uint64_t group_id) {
  send_attempt(to, request, timeout, group_id,
               [this, to, request, timeout, policy, attempt, prev_backoff, deadline,
                group_id] {
    const auto it = groups_.find(group_id);
    if (it == groups_.end()) return;
    if (attempt >= policy.max_attempts) {
      complete_group(group_id, false, nullptr, 0);
      return;
    }
    telemetry::count(network_.telemetry(), "rpc.retries");
    const sim::Time delay = policy.next_backoff(prev_backoff, engine_.rng());
    if (deadline >= 0.0 && engine_.now() + delay >= deadline) {
      // The overall budget is spent before the next attempt could start:
      // report the failure now rather than retrying past the deadline.
      telemetry::count(network_.telemetry(), "rpc.deadline_exceeded");
      complete_group(group_id, false, nullptr, 0);
      return;
    }
    auto token = alive_;
    it->second.pending_event = engine_.schedule(
        delay, [this, token, to, request, timeout, policy, attempt, delay, deadline,
                group_id]() mutable {
      // Like go_down()'s pending-call semantics: a process that crashed
      // between attempts never fires the callback.
      if (!*token || !up_) return;
      const auto git = groups_.find(group_id);
      if (git == groups_.end()) return;  // a late reply already won
      git->second.pending_event = 0;
      if (policy.use_breaker && !breaker_allows(to)) {
        telemetry::count(network_.telemetry(), "rpc.breaker_fast_fail");
        complete_group(group_id, false, nullptr, 0);
        return;
      }
      attempt_call(to, std::move(request), timeout, policy, attempt + 1, delay,
                   deadline, group_id);
    });
  });
}

void RpcEndpoint::call_with_hedging(Address to, MsgPtr request, sim::Time timeout,
                                    HedgePolicy policy, ReplyCallback cb) {
  if (!up_) return;
  const std::uint64_t group_id = next_group_id_++;
  CallGroup group;
  group.cb = std::move(cb);
  group.to = to;
  group.hedged = true;
  groups_.emplace(group_id, std::move(group));
  const std::uint64_t primary =
      send_attempt(to, request, timeout, group_id,
                   [this, group_id] { finish_if_exhausted(group_id); });
  groups_[group_id].primary = primary;
  const sim::Time delay = hedge_delay(to, policy);
  if (delay >= timeout) return;  // no room left for a useful backup attempt
  auto token = alive_;
  groups_[group_id].pending_event = engine_.schedule(
      delay, [this, token, to, request = std::move(request), timeout, delay,
              group_id] {
    if (!*token || !up_) return;
    const auto it = groups_.find(group_id);
    if (it == groups_.end()) return;  // the primary already answered
    it->second.pending_event = 0;
    telemetry::count(network_.telemetry(), "rpc.hedges");
    send_attempt(to, request, timeout - delay, group_id,
                 [this, group_id] { finish_if_exhausted(group_id); });
  });
}

sim::Time RpcEndpoint::hedge_delay(Address to, const HedgePolicy& policy) const {
  if (policy.hedge_delay > 0.0) return policy.hedge_delay;
  sim::Time p99 = policy.min_delay;
  const auto it = dest_stats_.find(to);
  if (it != dest_stats_.end() && it->second.count > 0) {
    const std::size_t n = std::min(it->second.count, DestStats::kRing);
    std::array<float, DestStats::kRing> sorted{};
    std::copy_n(it->second.latency.begin(), n, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
    p99 = sorted[static_cast<std::size_t>(0.99 * static_cast<double>(n - 1))];
  }
  return std::clamp(p99, policy.min_delay, policy.max_delay);
}

// ---------------------------------------------------------------------------
// Per-destination latency history + circuit breaker
// ---------------------------------------------------------------------------

void RpcEndpoint::note_reply(Address to, sim::Time latency) {
  DestStats& d = dest_stats_[to];
  d.latency[d.count % DestStats::kRing] = static_cast<float>(latency);
  ++d.count;
  d.consecutive_timeouts = 0;
  if (d.breaker != DestStats::Breaker::kClosed) {
    // Any reply proves the destination back: close the breaker and bank the
    // time it spent open.
    breaker_open_s_ += engine_.now() - d.opened_at;
    d.breaker = DestStats::Breaker::kClosed;
    telemetry::count(network_.telemetry(), "rpc.breaker_closed");
    telemetry::gauge_set(network_.telemetry(), "rpc.breaker_open_s", breaker_open_s_);
  }
}

void RpcEndpoint::note_timeout(Address to) {
  DestStats& d = dest_stats_[to];
  ++d.consecutive_timeouts;
  if (d.breaker == DestStats::Breaker::kHalfOpen) {
    // The half-open probe failed: reopen for another full window.
    d.breaker = DestStats::Breaker::kOpen;
    d.open_until = engine_.now() + breaker_config_.open_duration;
    return;
  }
  if (d.breaker == DestStats::Breaker::kClosed &&
      d.consecutive_timeouts >= breaker_config_.threshold) {
    d.breaker = DestStats::Breaker::kOpen;
    d.opened_at = engine_.now();
    d.open_until = engine_.now() + breaker_config_.open_duration;
    telemetry::count(network_.telemetry(), "rpc.breaker_opened");
  }
}

bool RpcEndpoint::breaker_allows(Address to) {
  DestStats& d = dest_stats_[to];
  switch (d.breaker) {
    case DestStats::Breaker::kClosed:
      return true;
    case DestStats::Breaker::kOpen:
      if (engine_.now() < d.open_until) return false;
      d.breaker = DestStats::Breaker::kHalfOpen;  // probe traffic may pass
      return true;
    case DestStats::Breaker::kHalfOpen:
      return true;
  }
  return true;
}

bool RpcEndpoint::breaker_open(Address to) const {
  const auto it = dest_stats_.find(to);
  return it != dest_stats_.end() &&
         it->second.breaker == DestStats::Breaker::kOpen &&
         engine_.now() < it->second.open_until;
}

double RpcEndpoint::breaker_open_seconds() const {
  double total = breaker_open_s_;
  for (const auto& [addr, d] : dest_stats_) {
    if (d.breaker != DestStats::Breaker::kClosed) {
      total += engine_.now() - d.opened_at;
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Crash / recovery
// ---------------------------------------------------------------------------

void RpcEndpoint::go_down() {
  if (!up_) return;
  up_ = false;
  network_.set_node_up(address_, false);
  // A crashed process loses its in-flight calls silently (spans are closed
  // so the trace shows where the caller died mid-call).
  for (auto& [id, pending] : pending_) {
    engine_.cancel(pending.timeout_event);
    telemetry::end_span(network_.telemetry(), pending.span, "caller_down");
  }
  pending_.clear();
  for (auto& [id, group] : groups_) engine_.cancel(group.pending_event);
  groups_.clear();
  // Bank open time for breakers that die open; the restarted process starts
  // with fresh latency rings and closed breakers.
  for (auto& [addr, d] : dest_stats_) {
    if (d.breaker != DestStats::Breaker::kClosed) {
      breaker_open_s_ += engine_.now() - d.opened_at;
    }
  }
  dest_stats_.clear();
}

void RpcEndpoint::go_up() {
  if (up_) return;
  up_ = true;
  network_.set_node_up(address_, true);
}

void RpcEndpoint::on_message(const Envelope& env) {
  if (!up_) return;
  const auto* wrap = msg_cast<RpcWrap>(env.payload);
  if (wrap == nullptr) {
    if (on_oneway_) on_oneway_(env);
    return;
  }
  if (!wrap->is_reply) {
    if (!on_request_) return;
    // Parent handler spans under the rpc-attempt span, not the sender's
    // original context, so each delivery attempt hangs off its own attempt.
    Envelope inner_env{env.from, env.to, wrap->inner, wrap->ctx, wrap->epoch};
    on_request_(inner_env,
                Responder(&network_, address_, env.from, wrap->rpc_id, wrap->ctx));
    return;
  }
  const auto it = pending_.find(wrap->rpc_id);
  if (it == pending_.end()) return;  // reply after the call fully resolved
  engine_.cancel(it->second.timeout_event);
  telemetry::Telemetry* tel = network_.telemetry();
  const sim::Time latency = engine_.now() - it->second.started;
  telemetry::observe(tel, "rpc.latency", latency);
  note_reply(it->second.to, latency);
  if (it->second.group == 0) {
    auto callback = std::move(it->second.cb);
    telemetry::end_span(tel, it->second.span, "ok");
    pending_.erase(it);
    callback(true, wrap->inner);
    return;
  }
  // Grouped attempt: the first reply — even one arriving after its own soft
  // timeout — resolves the whole group and cancels any scheduled retry.
  const std::uint64_t group_id = it->second.group;
  const std::uint64_t id = wrap->rpc_id;
  if (it->second.timed_out) telemetry::count(tel, "rpc.late_replies_won");
  telemetry::end_span(tel, it->second.span, "ok");
  pending_.erase(it);
  complete_group(group_id, true, wrap->inner, id);
}

}  // namespace snooze::net
