// Cluster topology builder: produces the host fleet a simulated Snooze
// deployment (or a standalone packing instance) runs on.
#pragma once

#include <cstdint>
#include <vector>

#include "hypervisor/host.hpp"

namespace snooze::workload {

struct ClusterSpec {
  std::size_t hosts = 144;  ///< Grid'5000 scale used in the paper
  hypervisor::ResourceVector capacity{1.0, 1.0, 1.0};
  energy::PowerModel power;

  /// Heterogeneity factor: host h's capacity is scaled by a deterministic
  /// per-host factor in [1-h_spread, 1+h_spread]. 0 = homogeneous.
  double capacity_spread = 0.0;
  std::uint64_t seed = 42;

  /// Socket/LLC topology classes cycled round-robin across the fleet (host h
  /// gets class h % size): mixed socket counts and LLC sizes model hardware
  /// generations bought over time. Empty (default) builds flat hosts and
  /// leaves the interference model inert.
  std::vector<interference::TopologySpec> topology_classes;
};

/// Materialize the host specs described by `spec`.
std::vector<hypervisor::HostSpec> build_cluster(const ClusterSpec& spec);

}  // namespace snooze::workload
