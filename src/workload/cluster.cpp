#include "workload/cluster.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace snooze::workload {

std::vector<hypervisor::HostSpec> build_cluster(const ClusterSpec& spec) {
  std::vector<hypervisor::HostSpec> out;
  out.reserve(spec.hosts);
  util::Rng rng(spec.seed);
  for (std::size_t h = 0; h < spec.hosts; ++h) {
    hypervisor::HostSpec host;
    char name[32];
    std::snprintf(name, sizeof(name), "node-%03zu", h);
    host.name = name;
    double factor = 1.0;
    if (spec.capacity_spread > 0.0) {
      factor = 1.0 + rng.uniform(-spec.capacity_spread, spec.capacity_spread);
    }
    host.capacity = spec.capacity.scaled(factor);
    host.power = spec.power;
    if (!spec.topology_classes.empty()) {
      host.topology = spec.topology_classes[h % spec.topology_classes.size()];
    }
    out.push_back(std::move(host));
  }
  return out;
}

}  // namespace snooze::workload
