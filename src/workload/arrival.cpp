#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/rng.hpp"

namespace snooze::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

RateFn constant_rate(double rate) {
  const double r = std::max(0.0, rate);
  return [r](sim::Time) { return r; };
}

RateFn diurnal_rate(double base, double amplitude, double period, double phase) {
  return [=](sim::Time t) {
    const double value = base + amplitude * std::sin(kTwoPi * (t + phase) / period);
    return std::max(0.0, value);
  };
}

RateFn with_flash_crowds(RateFn base, std::vector<FlashCrowd> crowds) {
  return [base = std::move(base), crowds = std::move(crowds)](sim::Time t) {
    double rate = base(t);
    for (const FlashCrowd& crowd : crowds) {
      if (t >= crowd.at && t < crowd.at + crowd.duration) rate += crowd.rate;
    }
    return std::max(0.0, rate);
  };
}

std::vector<sim::Time> poisson_arrivals(const RateFn& rate, double peak_rate,
                                        sim::Time horizon, std::uint64_t seed) {
  std::vector<sim::Time> arrivals;
  if (peak_rate <= 0.0 || horizon <= 0.0) return arrivals;
  util::Rng rng(seed);
  sim::Time t = 0.0;
  for (;;) {
    // Candidate from the homogeneous envelope process...
    t += rng.exponential(peak_rate);
    if (t >= horizon) break;
    // ...kept with probability rate(t)/peak_rate (Lewis-Shedler thinning).
    // Draw unconditionally so the RNG stream, and hence every retained
    // arrival, is independent of how rate(t) partitions the candidates.
    const double u = rng.uniform();
    if (u * peak_rate < rate(t)) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace snooze::workload
