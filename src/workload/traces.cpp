#include "workload/traces.hpp"

#include <algorithm>
#include <cmath>

namespace snooze::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// SplitMix64: stateless hash of (seed, bucket) -> uniform double in [0,1).
double hash_uniform(std::uint64_t seed, std::int64_t bucket) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(bucket) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

UtilizationFn constant(double value) {
  const double v = clamp01(value);
  return [v](double) { return v; };
}

UtilizationFn sinusoidal(double mean, double amplitude, double period, double phase) {
  return [=](double t) {
    return clamp01(mean + amplitude * std::sin(2.0 * kPi * (t + phase) / period));
  };
}

UtilizationFn random_steps(double lo, double hi, double interval, std::uint64_t seed) {
  return [=](double t) {
    const auto bucket = static_cast<std::int64_t>(std::floor(t / interval));
    return clamp01(lo + (hi - lo) * hash_uniform(seed, bucket));
  };
}

UtilizationFn on_off(double low, double high, double period, double duty,
                     std::uint64_t seed) {
  const double phase = hash_uniform(seed, 0) * period;
  return [=](double t) {
    const double pos = std::fmod(t + phase, period) / period;
    return clamp01(pos < duty ? high : low);
  };
}

UtilizationFn jittered(UtilizationFn base, double amount, double interval,
                       std::uint64_t seed) {
  return [=, base = std::move(base)](double t) {
    const auto bucket = static_cast<std::int64_t>(std::floor(t / interval));
    const double j = (hash_uniform(seed, bucket) * 2.0 - 1.0) * amount;
    return clamp01(base(t) * (1.0 + j));
  };
}

}  // namespace snooze::workload
