#include "workload/vm_generator.hpp"

#include <algorithm>
#include <cassert>

namespace snooze::workload {

std::vector<VmClass> default_vm_classes() {
  return {
      {"small", ResourceVector{0.0625, 0.0625, 0.0625}, 1024.0, 25.0},
      {"medium", ResourceVector{0.125, 0.125, 0.125}, 2048.0, 50.0},
      {"large", ResourceVector{0.25, 0.25, 0.25}, 4096.0, 75.0},
      {"xlarge", ResourceVector{0.5, 0.5, 0.5}, 8192.0, 100.0},
  };
}

std::vector<VmClass> interference_vm_classes() {
  using interference::CacheIntensity;
  using interference::MemProfile;
  auto classes = default_vm_classes();
  // Streaming batch worker: big bandwidth appetite, small cache footprint.
  classes[0].mem_profile = MemProfile{CacheIntensity::kLow, 2.0, 4.0};
  // Web/API serving: moderate on both shared resources.
  classes[1].mem_profile = MemProfile{CacheIntensity::kMedium, 6.0, 6.0};
  // In-memory cache: LLC-resident working set, noticeable bandwidth.
  classes[2].mem_profile = MemProfile{CacheIntensity::kHigh, 10.0, 8.0};
  // Analytics/scan: thrashes the LLC and saturates bandwidth.
  classes[3].mem_profile = MemProfile{CacheIntensity::kHigh, 14.0, 14.0};
  return classes;
}

std::vector<VmSpec> VmGenerator::batch(std::size_t n) {
  std::vector<VmSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

ClassVmGenerator::ClassVmGenerator(std::vector<VmClass> classes, std::uint64_t seed,
                                   std::vector<double> weights)
    : classes_(std::move(classes)), weights_(std::move(weights)), rng_(seed) {
  assert(!classes_.empty());
  if (weights_.empty()) weights_.assign(classes_.size(), 1.0);
  assert(weights_.size() == classes_.size());
}

VmSpec ClassVmGenerator::next() {
  const std::size_t idx = rng_.weighted_index(weights_);
  const VmClass& cls = classes_[idx < classes_.size() ? idx : 0];
  VmSpec spec;
  spec.id = next_id_++;
  spec.requested = cls.demand;
  spec.memory_mb = cls.memory_mb;
  spec.dirty_rate_mbps = cls.dirty_rate_mbps;
  spec.mem_profile = cls.mem_profile;
  return spec;
}

UniformVmGenerator::UniformVmGenerator(double lo, double hi, std::uint64_t seed)
    : lo_(lo), hi_(hi), rng_(seed) {
  assert(lo >= 0.0 && hi <= 1.0 && lo <= hi);
}

VmSpec UniformVmGenerator::next() {
  VmSpec spec;
  spec.id = next_id_++;
  spec.requested = ResourceVector{rng_.uniform(lo_, hi_), rng_.uniform(lo_, hi_),
                                  rng_.uniform(lo_, hi_)};
  spec.memory_mb = 1024.0 + spec.requested.memory() * 14336.0;
  spec.dirty_rate_mbps = 25.0 + spec.requested.cpu() * 150.0;
  return spec;
}

CorrelatedVmGenerator::CorrelatedVmGenerator(double lo, double hi, double spread,
                                             std::uint64_t seed)
    : lo_(lo), hi_(hi), spread_(spread), rng_(seed) {
  assert(lo >= 0.0 && hi <= 1.0 && lo <= hi && spread >= 0.0 && spread < 1.0);
}

VmSpec CorrelatedVmGenerator::next() {
  const double size = rng_.uniform(lo_, hi_);
  auto dim = [&] { return std::clamp(size * (1.0 + rng_.uniform(-spread_, spread_)), 0.0, 1.0); };
  VmSpec spec;
  spec.id = next_id_++;
  spec.requested = ResourceVector{dim(), dim(), dim()};
  spec.memory_mb = 1024.0 + spec.requested.memory() * 14336.0;
  spec.dirty_rate_mbps = 25.0 + spec.requested.cpu() * 150.0;
  return spec;
}

}  // namespace snooze::workload
