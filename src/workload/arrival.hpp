// Time-varying VM arrival processes for long-horizon runs.
//
// A RateFn is a pure function of virtual time returning an instantaneous
// arrival rate in VMs/second; shapes compose (diurnal base + flash crowds).
// poisson_arrivals() materializes a non-homogeneous Poisson process from a
// RateFn by Lewis-Shedler thinning against an explicit peak rate — fully
// deterministic for a given seed, so soak runs replay byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace snooze::workload {

/// Instantaneous arrival rate (VMs/second) as a pure function of time.
using RateFn = std::function<double(sim::Time)>;

/// Always `rate` (floored at 0).
RateFn constant_rate(double rate);

/// Diurnal demand: base + amplitude * sin(2*pi*(t+phase)/period), floored at
/// 0. `period` in seconds (86400 for a day); with phase = 0 the peak is at
/// period/4 (mid-morning if t=0 is midnight) and the trough at 3*period/4.
RateFn diurnal_rate(double base, double amplitude, double period = 86400.0,
                    double phase = 0.0);

/// A sudden demand spike layered on a base shape.
struct FlashCrowd {
  sim::Time at = 0.0;        ///< onset
  double rate = 0.0;         ///< extra VMs/second while active
  sim::Time duration = 0.0;  ///< how long the spike lasts
};

/// base(t) plus the sum of all active flash crowds at t.
RateFn with_flash_crowds(RateFn base, std::vector<FlashCrowd> crowds);

/// Sample a non-homogeneous Poisson process with intensity rate(t) over
/// [0, horizon) by thinning a homogeneous process at `peak_rate`.
/// `peak_rate` must upper-bound rate(t) on the horizon (times where rate
/// exceeds it are silently under-sampled). Returned times are sorted.
std::vector<sim::Time> poisson_arrivals(const RateFn& rate, double peak_rate,
                                        sim::Time horizon, std::uint64_t seed);

}  // namespace snooze::workload
