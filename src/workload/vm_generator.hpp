// VM request generators.
//
// Reproduces the GRID'11 evaluation setup the paper summarizes: VM resource
// demands are drawn from instance classes (EC2-like) or uniformly per
// dimension, as fractions of a homogeneous host capacity. Each generator is
// seeded for reproducibility.
#pragma once

#include <string>
#include <vector>

#include "hypervisor/vm.hpp"
#include "interference/model.hpp"
#include "util/rng.hpp"

namespace snooze::workload {

using hypervisor::ResourceVector;
using hypervisor::VmSpec;

/// An EC2-style instance class: fixed demand vector + RAM footprint.
struct VmClass {
  std::string name;
  ResourceVector demand;  ///< fraction of host capacity per dimension
  double memory_mb = 2048.0;
  double dirty_rate_mbps = 50.0;
  /// Memory-subsystem profile emitted with every VM of this class (absent by
  /// default, leaving legacy workloads untouched by the interference model).
  interference::MemProfile mem_profile;
};

/// The default class mix (relative to a host normalized to 1.0 per
/// dimension): small / medium / large / xlarge in the usual 1:2:4:8 ratio.
std::vector<VmClass> default_vm_classes();

/// A profiled class mix for interference experiments: the default sizes
/// annotated with memory-subsystem profiles from cache-friendly batch
/// workers up to LLC-thrashing analytics VMs.
std::vector<VmClass> interference_vm_classes();

class VmGenerator {
 public:
  virtual ~VmGenerator() = default;
  /// Produce the next VM request (ids are assigned sequentially from 1).
  virtual VmSpec next() = 0;

  std::vector<VmSpec> batch(std::size_t n);
};

/// Draw a class uniformly (or per supplied weights) from a class list.
class ClassVmGenerator final : public VmGenerator {
 public:
  ClassVmGenerator(std::vector<VmClass> classes, std::uint64_t seed,
                   std::vector<double> weights = {});
  VmSpec next() override;

 private:
  std::vector<VmClass> classes_;
  std::vector<double> weights_;
  util::Rng rng_;
  hypervisor::VmId next_id_ = 1;
};

/// Each dimension drawn independently from U(lo, hi) — the unstructured
/// workload where single-dimension FFD presorting loses the most.
class UniformVmGenerator final : public VmGenerator {
 public:
  UniformVmGenerator(double lo, double hi, std::uint64_t seed);
  VmSpec next() override;

 private:
  double lo_, hi_;
  util::Rng rng_;
  hypervisor::VmId next_id_ = 1;
};

/// Correlated demands: one size factor u ~ U(lo,hi) scaled per dimension by
/// (1 ± spread). Models real VMs whose CPU/memory/network scale together.
class CorrelatedVmGenerator final : public VmGenerator {
 public:
  CorrelatedVmGenerator(double lo, double hi, double spread, std::uint64_t seed);
  VmSpec next() override;

 private:
  double lo_, hi_, spread_;
  util::Rng rng_;
  hypervisor::VmId next_id_ = 1;
};

}  // namespace snooze::workload
