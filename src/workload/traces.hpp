// Time-varying utilization traces.
//
// Every factory returns a pure function of virtual time (random traces
// derive their value from a hash of the time bucket, so they are
// deterministic, random-access and O(1) — no hidden state to corrupt the
// simulator's reproducibility).
#pragma once

#include <cstdint>

#include "hypervisor/vm.hpp"

namespace snooze::workload {

using hypervisor::UtilizationFn;

/// Always `value` (clamped to [0,1]).
UtilizationFn constant(double value);

/// Diurnal pattern: mean + amplitude * sin(2*pi*(t+phase)/period),
/// clamped to [0,1]. `period` in seconds (86400 for a day).
UtilizationFn sinusoidal(double mean, double amplitude, double period, double phase = 0.0);

/// Piecewise-constant noise: a fresh uniform draw in [lo,hi] every
/// `interval` seconds, determined by (seed, bucket index).
UtilizationFn random_steps(double lo, double hi, double interval, std::uint64_t seed);

/// On/off bursts: `high` for duty*period then `low` for the rest; bucket
/// phase is randomized per seed so a fleet of VMs doesn't synchronize.
UtilizationFn on_off(double low, double high, double period, double duty,
                     std::uint64_t seed);

/// base(t) * (1 + jitter drawn from [-amount, +amount]), clamped.
UtilizationFn jittered(UtilizationFn base, double amount, double interval,
                       std::uint64_t seed);

}  // namespace snooze::workload
