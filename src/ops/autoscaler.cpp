#include "ops/autoscaler.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "energy/energy_meter.hpp"

namespace snooze::ops {

namespace {
std::string fmt_util(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}
}  // namespace

Autoscaler::Autoscaler(core::SnoozeSystem& system, AutoscalerConfig config)
    : sim::Actor(system.engine(), "autoscale"), system_(system), config_(config),
      last_utilization_(std::numeric_limits<double>::quiet_NaN()) {}

void Autoscaler::start() {
  started_ = true;
  if (timer_armed_) return;  // resuming: the existing timer picks it up
  timer_armed_ = true;
  every(config_.check_period, [this] {
    if (!started_) {
      timer_armed_ = false;
      return false;
    }
    tick();
    return true;
  });
}

void Autoscaler::tick() {
  core::GroupManager* leader = system_.leader();
  if (leader == nullptr || leader->reconciling()) {
    // No authoritative demand view: hold position (and any streaks — a
    // failover should not erase evidence gathered right before it).
    return;
  }
  double used = 0.0, capacity = 0.0;
  for (const core::GmInfo& info : leader->gm_infos()) {
    used += info.used.l1_norm();
    capacity += info.capacity.l1_norm();
  }
  if (capacity <= 0.0) return;
  const double utilization = used / capacity;
  last_utilization_ = utilization;

  up_streak_ = utilization > config_.scale_up_threshold ? up_streak_ + 1 : 0;
  down_streak_ = utilization < config_.scale_down_threshold ? down_streak_ + 1 : 0;
  if (now() - last_action_ < config_.cooldown) return;

  if (up_streak_ >= config_.up_stable_checks) {
    const std::size_t woken = command_wake(config_.max_step);
    if (woken > 0) {
      ++scale_ups_;
      last_action_ = now();
      up_streak_ = 0;
      system_.trace().record("autoscale", "ops.scale_up",
                             "woken=" + std::to_string(woken) +
                                 " util=" + fmt_util(utilization));
      telemetry::count(&system_.telemetry(), "ops.scale_ups");
    }
    return;
  }

  if (down_streak_ >= config_.down_stable_checks) {
    // Floors: keep min_on_lcs powered on and min_headroom_lcs of them idle.
    std::size_t on = 0, idle = 0;
    for (const auto& lc : system_.local_controllers()) {
      if (!lc->alive()) continue;
      if (energy::power_class(lc->power_state()) != energy::PowerClass::kOn) continue;
      ++on;
      if (lc->vm_count() == 0) ++idle;
    }
    std::size_t budget = config_.max_step;
    budget = std::min(budget, on > config_.min_on_lcs ? on - config_.min_on_lcs : 0);
    budget = std::min(budget,
                      idle > config_.min_headroom_lcs ? idle - config_.min_headroom_lcs : 0);
    if (budget == 0) return;
    const std::size_t suspended = command_suspend(budget);
    if (suspended > 0) {
      ++scale_downs_;
      last_action_ = now();
      down_streak_ = 0;
      system_.trace().record("autoscale", "ops.scale_down",
                             "suspended=" + std::to_string(suspended) +
                                 " util=" + fmt_util(utilization));
      telemetry::count(&system_.telemetry(), "ops.scale_downs");
    }
  }
}

std::size_t Autoscaler::command_wake(std::size_t budget) {
  std::size_t commanded = 0;
  for (const auto& gm : system_.group_managers()) {
    if (commanded >= budget) break;
    if (!gm->alive() || gm->is_leader() || gm->draining()) continue;
    commanded += gm->scale_wake(budget - commanded);
  }
  return commanded;
}

std::size_t Autoscaler::command_suspend(std::size_t budget) {
  std::size_t commanded = 0;
  for (const auto& gm : system_.group_managers()) {
    if (commanded >= budget) break;
    if (!gm->alive() || gm->is_leader() || gm->draining()) continue;
    commanded += gm->scale_suspend(budget - commanded);
  }
  return commanded;
}

}  // namespace snooze::ops
