#include "ops/upgrade.hpp"

#include <algorithm>
#include <string>

#include "energy/energy_meter.hpp"

namespace snooze::ops {

RollingUpgrade::RollingUpgrade(core::SnoozeSystem& system, obs::HealthMonitor* monitor,
                               UpgradeConfig config)
    : sim::Actor(system.engine(), "upgrade"), system_(system), monitor_(monitor),
      config_(config) {}

void RollingUpgrade::start() {
  if (state_ != UpgradeState::kIdle) return;

  // Plan the waves from current node versions: LC waves first (the wide,
  // cheap part of the fleet), then GMs one at a time, the acting GL last so
  // the upgrade itself causes at most one leader election.
  if (config_.include_lcs) {
    Wave wave;
    auto& lcs = system_.local_controllers();
    for (std::size_t i = 0; i < lcs.size(); ++i) {
      if (lcs[i]->software_version() >= config_.target_version) continue;
      wave.nodes.push_back(i);
      if (wave.nodes.size() == config_.wave_size) {
        waves_.push_back(wave);
        wave.nodes.clear();
      }
    }
    if (!wave.nodes.empty()) waves_.push_back(wave);
  }
  if (config_.include_gms) {
    const core::GroupManager* leader = system_.leader();
    auto& gms = system_.group_managers();
    std::size_t leader_index = gms.size();
    for (std::size_t i = 0; i < gms.size(); ++i) {
      if (gms[i]->software_version() >= config_.target_version) continue;
      if (gms[i].get() == leader) {
        leader_index = i;
        continue;
      }
      waves_.push_back(Wave{true, {i}});
    }
    if (leader_index < gms.size()) waves_.push_back(Wave{true, {leader_index}});
  }

  if (waves_.empty()) {
    state_ = UpgradeState::kDone;
    trace_event("ops.upgrade_done", "waves=0");
    return;
  }
  state_ = UpgradeState::kRunning;
  trace_event("ops.upgrade_start", "waves=" + std::to_string(waves_.size()) +
                                       " target=" + std::to_string(config_.target_version));
  every(config_.check_period, [this] {
    tick();
    return !finished();
  });
}

bool RollingUpgrade::slo_firing() const {
  return monitor_ != nullptr && monitor_->slo().firing_count() > 0;
}

bool RollingUpgrade::gate_ok() const {
  const core::GroupManager* leader = system_.leader();
  return leader != nullptr && !leader->reconciling() && !slo_firing();
}

void RollingUpgrade::tick() {
  if (state_ == UpgradeState::kPaused) {
    maybe_resume();
    return;
  }
  if (state_ != UpgradeState::kRunning) return;
  switch (phase_) {
    case Phase::kGate:
      if (gate_ok()) {
        begin_wave();
      } else {
        enter_pause();
      }
      break;
    case Phase::kDraining:
      if (!gate_ok()) {
        enter_pause();
        return;
      }
      step_draining();
      break;
    case Phase::kRejoining:
      if (!gate_ok()) {
        enter_pause();
        return;
      }
      step_rejoining();
      break;
    case Phase::kSettling:
      step_settling();
      break;
  }
}

void RollingUpgrade::enter_pause() {
  state_ = UpgradeState::kPaused;
  ++pauses_;
  pause_started_ = now();
  pause_was_slo_ = slo_firing();
  trace_event("ops.upgrade_paused",
              std::string("reason=") + (pause_was_slo_ ? "slo" : "hierarchy") +
                  " wave=" + std::to_string(wave_index_ + 1));
}

void RollingUpgrade::maybe_resume() {
  if (slo_firing()) {
    if (!pause_was_slo_) {
      // The pause started for hierarchy health and an SLO burn developed
      // while waiting: the rollback clock measures the *burn*, not the wait.
      pause_was_slo_ = true;
      pause_started_ = now();
    }
    if (now() - pause_started_ >= config_.rollback_after) roll_back();
    return;
  }
  if (!gate_ok()) return;  // headless hierarchy: wait out the failover
  state_ = UpgradeState::kRunning;
  pause_started_ = -1.0;
  pause_was_slo_ = false;
  trace_event("ops.upgrade_resumed", "wave=" + std::to_string(wave_index_ + 1));
}

void RollingUpgrade::begin_wave() {
  const Wave& wave = waves_[wave_index_];
  wave_from_versions_.assign(wave.nodes.size(), 0);
  wave_node_done_.assign(wave.nodes.size(), false);
  drain_started_ = now();
  last_evacuate_ = now();
  trace_event("ops.wave_start", "wave=" + std::to_string(wave_index_ + 1) + "/" +
                                    std::to_string(waves_.size()) +
                                    (wave.gm_wave ? " kind=gm" : " kind=lc") +
                                    " nodes=" + std::to_string(wave.nodes.size()));
  if (wave.gm_wave) {
    auto& gm = *system_.group_managers()[wave.nodes[0]];
    wave_from_versions_[0] = gm.software_version();
    if (gm.alive()) gm.begin_drain();
  } else {
    auto& lcs = system_.local_controllers();
    for (std::size_t j = 0; j < wave.nodes.size(); ++j) {
      auto& lc = *lcs[wave.nodes[j]];
      wave_from_versions_[j] = lc.software_version();
      if (lc.alive()) lc.begin_drain();
    }
    // Deliberately NOT evacuating yet: the GM learns the wave's draining
    // flags from the next monitoring report (~2 s), and a plan made before
    // that can pick another draining wave node as a migration target — a
    // doomed transfer that occupies the source's migration link for its full
    // pre-copy. step_draining() issues the first evacuation one
    // evacuate_retry after the flags have propagated.
  }
  phase_ = Phase::kDraining;
}

void RollingUpgrade::evacuate_wave() {
  const Wave& wave = waves_[wave_index_];
  auto& lcs = system_.local_controllers();
  for (std::size_t j = 0; j < wave.nodes.size(); ++j) {
    if (wave_node_done_[j]) continue;
    auto& lc = *lcs[wave.nodes[j]];
    if (!lc.alive() || lc.vm_count() == 0) continue;
    const net::Address owner = lc.gm();
    if (owner == net::kNullAddress) continue;
    for (auto& gm : system_.group_managers()) {
      if (gm->address() != owner) continue;
      if (gm->alive()) gm->evacuate_lc(lc.address());
      break;
    }
  }
  last_evacuate_ = now();
}

void RollingUpgrade::restart_lc(std::size_t index, std::uint32_t to_version) {
  auto& lc = *system_.local_controllers()[index];
  if (lc.alive()) lc.fail();
  lc.restart();
  lc.set_software_version(to_version);
}

void RollingUpgrade::step_draining() {
  const Wave& wave = waves_[wave_index_];
  if (wave.gm_wave) {
    if (now() - drain_started_ < config_.gm_restart_grace) return;
    auto& gm = *system_.group_managers()[wave.nodes[0]];
    if (gm.alive()) gm.fail();
    gm.restart();
    gm.set_software_version(config_.target_version);
    wave_node_done_[0] = true;
    ++nodes_upgraded_;
    trace_event("ops.node_upgraded",
                "node=" + gm.name() + " v=" + std::to_string(config_.target_version));
    rejoin_started_ = now();
    phase_ = Phase::kRejoining;
    return;
  }

  auto& lcs = system_.local_controllers();
  bool all_drained = true;
  for (std::size_t node : wave.nodes) {
    if (!lcs[node]->drained()) all_drained = false;
  }
  const bool forced = !all_drained && now() - drain_started_ >= config_.drain_timeout;
  if (!all_drained && !forced) {
    // Re-plan the evacuation once the monitoring lag has caught up — a VM
    // whose first migration target refused (or died) gets a fresh slot.
    if (now() - last_evacuate_ >= config_.evacuate_retry) evacuate_wave();
    return;
  }
  for (std::size_t j = 0; j < wave.nodes.size(); ++j) {
    auto& lc = *lcs[wave.nodes[j]];
    if (forced && !lc.drained()) {
      ++forced_drains_;
      trace_event("ops.drain_forced",
                  "node=" + lc.name() + " vms=" + std::to_string(lc.vm_count()));
    }
    restart_lc(wave.nodes[j], config_.target_version);
    wave_node_done_[j] = true;
    ++nodes_upgraded_;
    trace_event("ops.node_upgraded",
                "node=" + lc.name() + " v=" + std::to_string(config_.target_version));
  }
  rejoin_started_ = now();
  phase_ = Phase::kRejoining;
}

void RollingUpgrade::step_rejoining() {
  const Wave& wave = waves_[wave_index_];
  bool rejoined = true;
  if (wave.gm_wave) {
    const core::GroupManager* leader = system_.leader();
    rejoined = system_.group_managers()[wave.nodes[0]]->alive() && leader != nullptr &&
               !leader->reconciling();
  } else {
    for (std::size_t node : wave.nodes) {
      if (!system_.local_controllers()[node]->assigned()) rejoined = false;
    }
  }
  if (!rejoined && now() - rejoin_started_ < config_.rejoin_timeout) return;
  if (!rejoined) {
    trace_event("ops.rejoin_timeout", "wave=" + std::to_string(wave_index_ + 1));
  }
  settle_until_ = now() + config_.settle_time;
  phase_ = Phase::kSettling;
}

void RollingUpgrade::step_settling() {
  if (now() < settle_until_) return;
  ++waves_completed_;
  trace_event("ops.wave_done", "wave=" + std::to_string(wave_index_ + 1) + "/" +
                                   std::to_string(waves_.size()));
  ++wave_index_;
  if (wave_index_ >= waves_.size()) {
    state_ = UpgradeState::kDone;
    trace_event("ops.upgrade_done", "nodes=" + std::to_string(nodes_upgraded_));
    return;
  }
  phase_ = Phase::kGate;
}

void RollingUpgrade::roll_back() {
  ++rollbacks_;
  if (phase_ == Phase::kGate) {
    // Paused at the wave gate: begin_wave() has not run yet, so no node of
    // this wave was drained or restarted — nothing to undo (wave_node_done_
    // still describes the previous wave, or is empty on the first).
    trace_event("ops.upgrade_rolled_back",
                "wave=" + std::to_string(wave_index_ + 1) + " nodes=0");
    state_ = UpgradeState::kRolledBack;
    return;
  }
  const Wave& wave = waves_[wave_index_];
  trace_event("ops.upgrade_rolled_back",
              "wave=" + std::to_string(wave_index_ + 1) +
                  " nodes=" + std::to_string(wave.nodes.size()));
  if (wave.gm_wave) {
    auto& gm = *system_.group_managers()[wave.nodes[0]];
    if (wave_node_done_[0]) {
      if (gm.alive()) gm.fail();
      gm.restart();
      gm.set_software_version(wave_from_versions_[0]);
    } else if (gm.alive()) {
      gm.cancel_drain();
    }
  } else {
    auto& lcs = system_.local_controllers();
    for (std::size_t j = 0; j < wave.nodes.size(); ++j) {
      auto& lc = *lcs[wave.nodes[j]];
      if (!wave_node_done_[j]) {
        if (lc.alive()) lc.cancel_drain();
        continue;
      }
      if (lc.power_state() == energy::PowerState::kBooting) {
        // Mid-boot: swap the binary back before the node comes up rather
        // than interrupting the boot (restart() is not re-entrant).
        lc.set_software_version(wave_from_versions_[j]);
      } else {
        restart_lc(wave.nodes[j], wave_from_versions_[j]);
      }
    }
  }
  state_ = UpgradeState::kRolledBack;
}

void RollingUpgrade::trace_event(std::string_view kind, std::string_view detail) {
  system_.trace().record("upgrade", kind, detail);
}

}  // namespace snooze::ops
