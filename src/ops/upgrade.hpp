// Rolling-upgrade orchestrator: drain-and-restart the fleet in waves under
// live traffic, gated on SLO health.
//
// Nodes carry a software version; the orchestrator walks every LC and GM
// whose version is below the target through drain → restart → rejoin:
//
//   LC wave (wave_size nodes): begin_drain() stops new placements and
//   inbound adoptions (the draining flag propagates to the GM with the next
//   monitoring report and excludes the node from every placement policy);
//   the owning GM evacuates remaining VMs by live migration. When the node
//   is empty — or drain_timeout forces the issue — it is restarted with the
//   new version and rejoins the hierarchy like any fresh boot, re-minting
//   its lease epoch so a stale GM can never command the new incarnation.
//
//   GM wave (always one node): begin_drain() resigns its LCs back into the
//   hierarchy and, if the node is the acting GL, steps down first — the
//   restart then rides the exact failover/re-election path of normal crash
//   recovery, epoch fences and all. The GL-at-start is ordered last so at
//   most one election is caused by the upgrade itself.
//
// Between waves the orchestrator settles, then gates: no wave starts while
// the hierarchy is headless (no GL, or GL still reconciling) or any SLO
// alert is firing. A gate failure pauses the upgrade; hierarchy pauses wait
// indefinitely (failover is someone else's job), but an SLO burn that stays
// firing for rollback_after rolls the current wave back to the old version
// and aborts — the blast radius of a bad build is one wave.
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "obs/health_monitor.hpp"
#include "sim/actor.hpp"

namespace snooze::ops {

struct UpgradeConfig {
  std::uint32_t target_version = 2;
  std::size_t wave_size = 2;         ///< LCs per wave (GM waves are single-node)
  sim::Time check_period = 1.0;      ///< state-machine poll cadence
  sim::Time evacuate_retry = 5.0;    ///< re-plan evacuation (monitor lag is 2 s)
  /// Force-restart an LC that will not empty. Live migrations serialize on
  /// the node's migration link at ~35 s per default-sized VM, so the default
  /// budget covers a handful of queued evacuations before giving up.
  sim::Time drain_timeout = 180.0;
  sim::Time rejoin_timeout = 150.0;  ///< boot (~90 s) + discovery + join
  sim::Time settle_time = 15.0;      ///< soak after a wave before gating the next
  sim::Time gm_restart_grace = 2.0;  ///< let resign / step-down propagate
  sim::Time rollback_after = 60.0;   ///< SLO-paused this long → roll back
  bool include_lcs = true;
  bool include_gms = true;
};

enum class UpgradeState { kIdle, kRunning, kPaused, kDone, kRolledBack };

class RollingUpgrade final : public sim::Actor {
 public:
  /// `monitor` supplies the SLO gate; pass nullptr to gate on hierarchy
  /// health only (no GL / reconciling still pauses).
  RollingUpgrade(core::SnoozeSystem& system, obs::HealthMonitor* monitor,
                 UpgradeConfig config = {});

  /// Plan the waves from current node versions and begin executing.
  void start();

  [[nodiscard]] UpgradeState state() const { return state_; }
  [[nodiscard]] bool finished() const {
    return state_ == UpgradeState::kDone || state_ == UpgradeState::kRolledBack;
  }
  [[nodiscard]] std::size_t wave_count() const { return waves_.size(); }
  [[nodiscard]] std::uint64_t waves_completed() const { return waves_completed_; }
  [[nodiscard]] std::uint64_t nodes_upgraded() const { return nodes_upgraded_; }
  [[nodiscard]] std::uint64_t pauses() const { return pauses_; }
  [[nodiscard]] std::uint64_t rollbacks() const { return rollbacks_; }
  [[nodiscard]] std::uint64_t forced_drains() const { return forced_drains_; }
  [[nodiscard]] const UpgradeConfig& config() const { return config_; }

 private:
  struct Wave {
    bool gm_wave = false;
    std::vector<std::size_t> nodes;  ///< indices into lcs / gms of the system
  };
  enum class Phase { kGate, kDraining, kRejoining, kSettling };

  void tick();
  [[nodiscard]] bool gate_ok() const;
  [[nodiscard]] bool slo_firing() const;
  void enter_pause();
  void maybe_resume();
  void begin_wave();
  void evacuate_wave();
  void step_draining();
  void step_rejoining();
  void step_settling();
  void restart_lc(std::size_t index, std::uint32_t to_version);
  void roll_back();
  void trace_event(std::string_view kind, std::string_view detail = {});

  core::SnoozeSystem& system_;
  obs::HealthMonitor* monitor_;
  UpgradeConfig config_;

  UpgradeState state_ = UpgradeState::kIdle;
  std::vector<Wave> waves_;
  std::size_t wave_index_ = 0;
  Phase phase_ = Phase::kGate;
  /// Versions the current wave's nodes ran before the bump (rollback target),
  /// parallel to waves_[wave_index_].nodes; empty until nodes restart.
  std::vector<std::uint32_t> wave_from_versions_;
  std::vector<bool> wave_node_done_;  ///< restarted with the new version

  sim::Time drain_started_ = 0.0;
  sim::Time last_evacuate_ = -1e18;
  sim::Time rejoin_started_ = 0.0;
  sim::Time settle_until_ = 0.0;
  sim::Time pause_started_ = -1.0;   ///< < 0: not paused
  bool pause_was_slo_ = false;       ///< pause caused by a firing SLO

  std::uint64_t waves_completed_ = 0;
  std::uint64_t nodes_upgraded_ = 0;
  std::uint64_t pauses_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t forced_drains_ = 0;
};

}  // namespace snooze::ops
