// GL-driven cluster autoscaler.
//
// Watches the Group Leader's aggregated view (GM summaries) and powers whole
// LC nodes on/off against the demand estimate: scale UP when fleet
// utilization breaches scale_up_threshold, scale DOWN when it sags below
// scale_down_threshold. Both directions are hysteretic — a decision needs
// `*_stable_checks` consecutive breaching ticks plus a post-action cooldown —
// so a flash crowd wakes capacity in one step while monitoring noise flips
// nothing. A minimum-headroom floor (min_headroom_lcs idle nodes, never
// fewer than min_on_lcs powered on) keeps absorption capacity for the next
// spike; the scale-down path only ever suspends *idle* nodes, so no VM is
// migrated or lost by the autoscaler.
//
// The decision reads the GL's soft state (gm_infos); execution is delegated
// to each live, non-leader GM (scale_wake / scale_suspend), which owns the
// power-state machinery and the lease fencing for its LCs. With no elected
// GL — or a GL still reconciling — the autoscaler holds position.
#pragma once

#include <cstdint>

#include "core/system.hpp"
#include "sim/actor.hpp"

namespace snooze::ops {

struct AutoscalerConfig {
  sim::Time check_period = 5.0;
  double scale_up_threshold = 0.75;   ///< fleet utilization that adds capacity
  double scale_down_threshold = 0.30; ///< fleet utilization that sheds capacity
  int up_stable_checks = 2;    ///< consecutive breaching ticks before waking
  int down_stable_checks = 6;  ///< consecutive sagging ticks before suspending
  sim::Time cooldown = 30.0;   ///< quiet time after any action
  std::size_t min_on_lcs = 2;       ///< never suspend below this many ON nodes
  std::size_t min_headroom_lcs = 1; ///< idle ON nodes to keep as headroom
  std::size_t max_step = 2;         ///< nodes woken/suspended per action
};

class Autoscaler final : public sim::Actor {
 public:
  Autoscaler(core::SnoozeSystem& system, AutoscalerConfig config = {});

  void start();
  /// Stop deciding (the periodic timer winds down at its next tick).
  void stop() { started_ = false; }
  [[nodiscard]] bool running() const { return started_; }

  [[nodiscard]] std::uint64_t scale_ups() const { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_downs() const { return scale_downs_; }
  /// Fleet utilization at the last tick (NaN before the first decision input).
  [[nodiscard]] double last_utilization() const { return last_utilization_; }
  [[nodiscard]] const AutoscalerConfig& config() const { return config_; }

 private:
  void tick();
  /// Fan a wake/suspend budget over the live non-leader GMs; returns how
  /// many node commands were issued.
  std::size_t command_wake(std::size_t budget);
  std::size_t command_suspend(std::size_t budget);

  core::SnoozeSystem& system_;
  AutoscalerConfig config_;
  int up_streak_ = 0;
  int down_streak_ = 0;
  sim::Time last_action_ = -1e18;
  double last_utilization_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  bool started_ = false;
  bool timer_armed_ = false;
};

}  // namespace snooze::ops
