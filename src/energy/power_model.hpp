// Server power model.
//
// The standard linear model used in the consolidation literature (and in the
// GRID'11 evaluation this paper summarizes): a powered-on server draws
// P_idle at zero utilization, rising linearly to P_max at full CPU
// utilization. Suspend-to-RAM draws a small constant, power-off nearly zero.
// Transition latencies model suspend/resume/boot delays, which Snooze's
// energy manager must amortize against the achieved idle time.
#pragma once

namespace snooze::energy {

/// Power state of a physical server.
enum class PowerState { kOn, kSuspended, kOff, kSuspending, kResuming, kBooting };

const char* to_string(PowerState state);

struct PowerModel {
  double p_idle_w = 171.0;     ///< on, 0% CPU (typical 2009-era 1U server)
  double p_max_w = 218.0;      ///< on, 100% CPU
  double p_suspend_w = 9.0;    ///< suspend-to-RAM
  double p_off_w = 4.5;        ///< soft-off (WoL NIC powered)
  double suspend_latency_s = 8.0;
  double resume_latency_s = 10.0;
  double boot_latency_s = 90.0;

  /// Instantaneous draw for a server in `state` at CPU utilization
  /// `cpu_utilization` in [0, 1]. Transitional states draw full idle power
  /// (conservative: the machine is busy saving/restoring context).
  [[nodiscard]] double power(PowerState state, double cpu_utilization) const;

  /// Draw of a powered-on server at the given utilization.
  [[nodiscard]] double power_on(double cpu_utilization) const;
};

/// Energy cost of running an algorithm on a management node: the GRID'11
/// evaluation explicitly includes "energy spent into the computation" when
/// comparing ACO (slow, good packing) against FFD (fast, worse packing).
struct ComputationEnergy {
  double runtime_s = 0.0;
  double node_power_w = 0.0;
  [[nodiscard]] double joules() const { return runtime_s * node_power_w; }
};

}  // namespace snooze::energy
