#include "energy/energy_meter.hpp"

namespace snooze::energy {

EnergyMeter::EnergyMeter(PowerModel model, double start_time)
    : model_(model), power_(start_time, model.p_idle_w) {}

void EnergyMeter::update(double t, PowerState state, double cpu_utilization) {
  state_ = state;
  power_.set(t, model_.power(state, cpu_utilization));
}

}  // namespace snooze::energy
