#include "energy/energy_meter.hpp"

namespace snooze::energy {

const char* to_string(PowerClass cls) {
  switch (cls) {
    case PowerClass::kOn: return "on";
    case PowerClass::kSuspended: return "suspended";
    case PowerClass::kOff: return "off";
  }
  return "?";
}

EnergyMeter::EnergyMeter(PowerModel model, double start_time)
    : model_(model), power_(start_time, model.p_idle_w) {}

void EnergyMeter::update(double t, PowerState state, double cpu_utilization) {
  // Close the segment spent in the previous state before switching.
  const double elapsed = t - power_.last_update();
  if (elapsed > 0.0) {
    class_joules_[static_cast<std::size_t>(power_class(state_))] +=
        power_.current() * elapsed;
  }
  state_ = state;
  power_.set(t, model_.power(state, cpu_utilization));
}

double EnergyMeter::joules_in(PowerClass cls, double t) const {
  double total = class_joules_[static_cast<std::size_t>(cls)];
  if (cls == power_class(state_) && t > power_.last_update()) {
    total += power_.current() * (t - power_.last_update());
  }
  return total;
}

std::array<double, kNumPowerClasses> EnergyMeter::joules_by_class(double t) const {
  std::array<double, kNumPowerClasses> out = class_joules_;
  if (t > power_.last_update()) {
    out[static_cast<std::size_t>(power_class(state_))] +=
        power_.current() * (t - power_.last_update());
  }
  return out;
}

}  // namespace snooze::energy
