#include "energy/power_model.hpp"

#include <algorithm>

namespace snooze::energy {

const char* to_string(PowerState state) {
  switch (state) {
    case PowerState::kOn: return "ON";
    case PowerState::kSuspended: return "SUSPENDED";
    case PowerState::kOff: return "OFF";
    case PowerState::kSuspending: return "SUSPENDING";
    case PowerState::kResuming: return "RESUMING";
    case PowerState::kBooting: return "BOOTING";
  }
  return "?";
}

double PowerModel::power_on(double cpu_utilization) const {
  const double u = std::clamp(cpu_utilization, 0.0, 1.0);
  return p_idle_w + (p_max_w - p_idle_w) * u;
}

double PowerModel::power(PowerState state, double cpu_utilization) const {
  switch (state) {
    case PowerState::kOn:
      return power_on(cpu_utilization);
    case PowerState::kSuspended:
      return p_suspend_w;
    case PowerState::kOff:
      return p_off_w;
    case PowerState::kSuspending:
    case PowerState::kResuming:
    case PowerState::kBooting:
      return p_idle_w;
  }
  return p_idle_w;
}

}  // namespace snooze::energy
