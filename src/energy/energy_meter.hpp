// Per-server energy meter: integrates instantaneous power over virtual time.
//
// Besides the total, the meter splits cumulative joules by power-state class
// (on / suspended / off) so "how much energy did suspended nodes still burn"
// has one source of truth: the energy-per-VM-hour SLI (src/obs) and
// bench_energy_savings both read this split instead of re-deriving it.
#pragma once

#include <array>
#include <cstddef>

#include "energy/power_model.hpp"
#include "util/stats.hpp"

namespace snooze::energy {

/// Coarse accounting class of a PowerState. Transitional states (suspending,
/// resuming, booting) draw full idle power and are counted as kOnClass —
/// the machine is busy saving/restoring context, not saving energy.
enum class PowerClass : std::size_t { kOn = 0, kSuspended = 1, kOff = 2 };
constexpr std::size_t kNumPowerClasses = 3;

[[nodiscard]] constexpr PowerClass power_class(PowerState state) {
  switch (state) {
    case PowerState::kSuspended: return PowerClass::kSuspended;
    case PowerState::kOff: return PowerClass::kOff;
    default: return PowerClass::kOn;
  }
}

const char* to_string(PowerClass cls);

class EnergyMeter {
 public:
  EnergyMeter(PowerModel model, double start_time = 0.0);

  /// Report a state/utilization change at virtual time `t` (monotone).
  void update(double t, PowerState state, double cpu_utilization);

  /// Total energy consumed up to time `t`, in joules.
  [[nodiscard]] double joules(double t) const { return power_.integral(t); }

  /// Energy consumed while in the given power-state class up to time `t`.
  /// The classes partition the metered interval: the three values sum to
  /// joules(t) (up to floating-point rounding).
  [[nodiscard]] double joules_in(PowerClass cls, double t) const;

  /// All three class totals at once, indexed by PowerClass.
  [[nodiscard]] std::array<double, kNumPowerClasses> joules_by_class(double t) const;

  /// Average power draw over the metered interval, in watts.
  [[nodiscard]] double average_watts(double t) const { return power_.average(t); }

  [[nodiscard]] const PowerModel& model() const { return model_; }
  [[nodiscard]] PowerState state() const { return state_; }

 private:
  PowerModel model_;
  PowerState state_ = PowerState::kOn;
  util::TimeWeighted power_;
  /// Joules accumulated per class for fully elapsed segments; the segment
  /// since the last update() belongs to the current state and is folded in
  /// on read (joules_in) so the split stays exact at any query time.
  std::array<double, kNumPowerClasses> class_joules_{};
};

}  // namespace snooze::energy
