// Per-server energy meter: integrates instantaneous power over virtual time.
#pragma once

#include "energy/power_model.hpp"
#include "util/stats.hpp"

namespace snooze::energy {

class EnergyMeter {
 public:
  EnergyMeter(PowerModel model, double start_time = 0.0);

  /// Report a state/utilization change at virtual time `t` (monotone).
  void update(double t, PowerState state, double cpu_utilization);

  /// Total energy consumed up to time `t`, in joules.
  [[nodiscard]] double joules(double t) const { return power_.integral(t); }

  /// Average power draw over the metered interval, in watts.
  [[nodiscard]] double average_watts(double t) const { return power_.average(t); }

  [[nodiscard]] const PowerModel& model() const { return model_; }
  [[nodiscard]] PowerState state() const { return state_; }

 private:
  PowerModel model_;
  PowerState state_ = PowerState::kOn;
  util::TimeWeighted power_;
};

}  // namespace snooze::energy
