#include "consolidation/aco.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace snooze::consolidation {

namespace {

/// One ant's walk: fill hosts in index order, choosing the next VM among the
/// feasible ones by the probabilistic decision rule.
Placement construct_solution(const Instance& instance,
                             const std::vector<std::vector<double>>& tau,
                             const AcoParams& params, util::Rng& rng) {
  const std::size_t n = instance.vm_count();
  Placement placement(n);
  std::vector<bool> assigned(n, false);
  std::size_t remaining = n;

  std::vector<double> weights;
  std::vector<std::size_t> feasible;

  for (std::size_t host = 0; host < instance.host_count() && remaining > 0; ++host) {
    ResourceVector residual = instance.host_capacities[host];
    for (;;) {
      feasible.clear();
      weights.clear();
      for (std::size_t vm = 0; vm < n; ++vm) {
        if (assigned[vm]) continue;
        if (!instance.vm_demands[vm].fits_within(residual)) continue;
        feasible.push_back(vm);
        const double eta = aco_heuristic(residual, instance.vm_demands[vm]);
        const double t = tau[vm][host];
        double w = std::pow(t, params.alpha) * std::pow(eta, params.beta);
        if (!std::isfinite(w) || w <= 0.0) w = 1e-12;
        weights.push_back(w);
      }
      if (feasible.empty()) break;
      const std::size_t pick = rng.weighted_index(weights);
      const std::size_t vm = feasible[pick < feasible.size() ? pick : 0];
      placement.assign(vm, static_cast<HostIndex>(host));
      residual -= instance.vm_demands[vm];
      assigned[vm] = true;
      --remaining;
    }
  }
  return placement;
}

/// Secondary quality used to break host-count ties: total squared residual
/// of used hosts (lower = tighter packing).
double packing_slack(const Instance& instance, const Placement& placement) {
  const auto loads = placement.loads(instance);
  double slack = 0.0;
  for (std::size_t h = 0; h < loads.size(); ++h) {
    if (loads[h] == ResourceVector{}) continue;
    const ResourceVector residual = instance.host_capacities[h] - loads[h];
    slack += residual.dot(residual);
  }
  return slack;
}

}  // namespace

double aco_heuristic(const ResourceVector& residual, const ResourceVector& d) {
  // Residual after hypothetically placing d; smaller leftover = better fit.
  const ResourceVector after = residual - d;
  return 1.0 / (1.0 + after.l1_norm());
}

AcoConsolidation::AcoConsolidation(AcoParams params) : params_(params) {}

AcoResult AcoConsolidation::solve(const Instance& instance) const {
  const auto wall_start = std::chrono::steady_clock::now();

  AcoResult result;
  const std::size_t n = instance.vm_count();
  result.placement = Placement(n);
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // Pheromone matrix over (VM, host) pairs.
  std::vector<std::vector<double>> tau(
      n, std::vector<double>(instance.host_count(), params_.tau0));

  util::Rng master(params_.seed);
  std::size_t best_hosts = instance.host_count() + 1;
  double best_score = std::numeric_limits<double>::infinity();
  double best_slack = std::numeric_limits<double>::infinity();
  bool have_best = false;

  std::unique_ptr<util::ThreadPool> pool;
  if (params_.threads > 1) pool = std::make_unique<util::ThreadPool>(params_.threads);

  for (std::size_t cycle = 0; cycle < params_.cycles; ++cycle) {
    // Pre-fork one RNG per ant so results do not depend on thread count.
    std::vector<util::Rng> rngs;
    rngs.reserve(params_.ants);
    for (std::size_t a = 0; a < params_.ants; ++a) rngs.push_back(master.fork());

    std::vector<Placement> solutions(params_.ants);
    auto run_ant = [&](std::size_t a) {
      solutions[a] = construct_solution(instance, tau, params_, rngs[a]);
    };
    if (pool) {
      pool->parallel_for(params_.ants, run_ant);
    } else {
      for (std::size_t a = 0; a < params_.ants; ++a) run_ant(a);
    }

    // Compare local solutions; keep the lowest score (hosts used, plus the
    // weighted interference penalty when the instance carries profiles).
    for (auto& solution : solutions) {
      if (!solution.complete()) continue;  // instance not packable by this walk
      const std::size_t hosts = solution.hosts_used();
      const double solution_score = score(instance, solution);
      const double slack = packing_slack(instance, solution);
      if (!have_best || solution_score < best_score ||
          (solution_score == best_score && slack < best_slack)) {
        best_hosts = hosts;
        best_score = solution_score;
        best_slack = slack;
        result.placement = std::move(solution);
        have_best = true;
      }
    }

    // Pheromone update: evaporation everywhere, reinforcement on the pairs
    // of the best-so-far solution (elitist global update).
    const double keep = 1.0 - params_.rho;
    for (auto& row : tau) {
      for (double& t : row) t *= keep;
    }
    if (have_best) {
      const double deposit =
          params_.rho * params_.q / static_cast<double>(std::max<std::size_t>(1, best_hosts));
      for (std::size_t vm = 0; vm < n; ++vm) {
        const HostIndex h = result.placement.host_of(vm);
        if (h != kUnassigned) tau[vm][static_cast<std::size_t>(h)] += deposit;
      }
    }
    result.best_per_cycle.push_back(have_best ? best_hosts : 0);
  }

  result.hosts_used = have_best ? best_hosts : 0;
  result.feasible = have_best && result.placement.feasible(instance);
  result.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

}  // namespace snooze::consolidation
