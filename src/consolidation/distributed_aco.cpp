#include "consolidation/distributed_aco.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "util/thread_pool.hpp"

namespace snooze::consolidation {

namespace {

struct Shard {
  std::vector<std::size_t> host_ids;  // global host indices
  std::vector<std::size_t> vm_ids;    // global VM indices
  AcoResult result;
};

}  // namespace

DistributedAcoConsolidation::DistributedAcoConsolidation(DistributedAcoParams params)
    : params_(params) {}

DistributedAcoResult DistributedAcoConsolidation::solve(const Instance& instance) const {
  const auto wall_start = std::chrono::steady_clock::now();
  DistributedAcoResult out;
  const std::size_t n = instance.vm_count();
  out.placement = Placement(n);
  if (n == 0) {
    out.feasible = true;
    return out;
  }
  const std::size_t k = std::max<std::size_t>(1, std::min(params_.shards,
                                                          instance.host_count()));

  // --- partition hosts round-robin and deal VMs largest-first -----------------
  std::vector<Shard> shards(k);
  for (std::size_t h = 0; h < instance.host_count(); ++h) {
    shards[h % k].host_ids.push_back(h);
  }
  std::vector<std::size_t> vm_order(n);
  std::iota(vm_order.begin(), vm_order.end(), 0);
  std::stable_sort(vm_order.begin(), vm_order.end(), [&](std::size_t a, std::size_t b) {
    return instance.vm_demands[a].l2_norm() > instance.vm_demands[b].l2_norm();
  });
  std::vector<double> shard_demand(k, 0.0);
  for (std::size_t vm : vm_order) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(shard_demand.begin(), shard_demand.end()) -
        shard_demand.begin());
    shards[target].vm_ids.push_back(vm);
    shard_demand[target] += instance.vm_demands[vm].l1_norm();
  }

  // --- solve every shard with an independent colony ----------------------------
  auto solve_shard = [&](std::size_t s) {
    Shard& shard = shards[s];
    Instance sub;
    for (std::size_t vm : shard.vm_ids) sub.vm_demands.push_back(instance.vm_demands[vm]);
    for (std::size_t h : shard.host_ids) {
      sub.host_capacities.push_back(instance.host_capacities[h]);
    }
    AcoParams colony = params_.colony;
    colony.seed = params_.colony.seed + 0x9E37u * (s + 1);
    colony.threads = 1;  // parallelism lives at the shard level here
    shard.result = AcoConsolidation(colony).solve(sub);
  };
  if (params_.threads > 1 && k > 1) {
    util::ThreadPool pool(params_.threads);
    pool.parallel_for(k, solve_shard);
  } else {
    for (std::size_t s = 0; s < k; ++s) solve_shard(s);
  }

  double max_shard_time = 0.0;
  bool all_feasible = true;
  for (const Shard& shard : shards) {
    max_shard_time = std::max(max_shard_time, shard.result.runtime_s);
    if (!shard.vm_ids.empty() && !shard.result.feasible) all_feasible = false;
  }
  if (!all_feasible) {
    out.runtime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  wall_start)
                        .count();
    out.critical_path_s = max_shard_time;
    return out;  // some shard could not pack its VMs into its hosts
  }
  for (const Shard& shard : shards) {
    for (std::size_t i = 0; i < shard.vm_ids.size(); ++i) {
      const HostIndex local = shard.result.placement.host_of(i);
      out.placement.assign(shard.vm_ids[i],
                           static_cast<HostIndex>(shard.host_ids[static_cast<std::size_t>(local)]));
    }
  }

  // --- cooperative tail pass ------------------------------------------------------
  double tail_time = 0.0;
  if (params_.repack_tail && k > 1) {
    auto loads = out.placement.loads(instance);
    // Collect each shard's least-filled used hosts and free their VMs.
    std::vector<bool> vm_in_tail(n, false);
    for (const Shard& shard : shards) {
      std::vector<std::size_t> used;
      for (std::size_t h : shard.host_ids) {
        if (!(loads[h] == ResourceVector{})) used.push_back(h);
      }
      std::stable_sort(used.begin(), used.end(), [&](std::size_t a, std::size_t b) {
        return loads[a].l1_norm() < loads[b].l1_norm();
      });
      const auto donate = static_cast<std::size_t>(
          std::ceil(params_.tail_fraction * static_cast<double>(used.size())));
      for (std::size_t i = 0; i < donate && i < used.size(); ++i) {
        for (std::size_t vm = 0; vm < n; ++vm) {
          if (out.placement.host_of(vm) == static_cast<HostIndex>(used[i])) {
            vm_in_tail[vm] = true;
          }
        }
      }
    }
    std::vector<std::size_t> tail_vms;
    for (std::size_t vm = 0; vm < n; ++vm) {
      if (vm_in_tail[vm]) tail_vms.push_back(vm);
    }
    out.tail_vms = tail_vms.size();

    if (!tail_vms.empty()) {
      // Residual capacities after removing the tail VMs; hosts ordered by
      // descending residual load so the joint colony fills partly-used hosts
      // before opening freed ones.
      auto residual_loads = loads;
      for (std::size_t vm : tail_vms) {
        residual_loads[static_cast<std::size_t>(out.placement.host_of(vm))] -=
            instance.vm_demands[vm];
      }
      std::vector<std::size_t> host_order(instance.host_count());
      std::iota(host_order.begin(), host_order.end(), 0);
      std::stable_sort(host_order.begin(), host_order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return residual_loads[a].l1_norm() > residual_loads[b].l1_norm();
                       });
      Instance tail;
      for (std::size_t vm : tail_vms) tail.vm_demands.push_back(instance.vm_demands[vm]);
      for (std::size_t h : host_order) {
        tail.host_capacities.push_back(instance.host_capacities[h] - residual_loads[h]);
      }
      AcoParams colony = params_.colony;
      colony.seed = params_.colony.seed ^ 0x7A11u;
      const auto tail_result = AcoConsolidation(colony).solve(tail);
      tail_time = tail_result.runtime_s;
      if (tail_result.feasible) {
        for (std::size_t i = 0; i < tail_vms.size(); ++i) {
          const auto local = static_cast<std::size_t>(tail_result.placement.host_of(i));
          out.placement.assign(tail_vms[i], static_cast<HostIndex>(host_order[local]));
        }
      }
      // If the tail pass failed (cannot happen when the pre-tail placement
      // was feasible, but stay safe) the original assignment is kept.
    }
  }

  out.hosts_used = out.placement.hosts_used();
  out.feasible = out.placement.feasible(instance);
  out.critical_path_s = max_shard_time + tail_time;
  out.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return out;
}

}  // namespace snooze::consolidation
