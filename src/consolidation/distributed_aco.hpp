// Distributed ACO consolidation — the paper's stated future work (§V: "a
// distributed version of the algorithm will be developed").
//
// Mirrors how consolidation distributes across Snooze Group Managers: the
// fleet is split into shards (one per GM), each shard packs its own VMs onto
// its own hosts with an independent ant colony — shards run in parallel and
// never exchange pheromone, exactly like GMs that only see their own LCs.
// An optional tail-repacking pass then emulates light inter-GM cooperation:
// each shard donates its least-filled hosts' VMs to one joint ACO round, so
// the fragmentation that sharding introduces at shard boundaries is partly
// recovered.
//
// The trade-off this reproduces: sharding cuts the (super-linear) solve time
// by ~k and removes the centralized bottleneck, at a small cost in packing
// quality; tail repacking buys most of that quality back for one extra
// small solve. bench_distributed_aco quantifies both.
#pragma once

#include <cstdint>

#include "consolidation/aco.hpp"

namespace snooze::consolidation {

struct DistributedAcoParams {
  std::size_t shards = 4;       ///< number of independent colonies (GMs)
  AcoParams colony;             ///< parameters of each per-shard colony
  bool repack_tail = true;      ///< run the cooperative tail pass
  double tail_fraction = 0.34;  ///< share of each shard's least-filled hosts
                                ///< whose VMs join the tail pass
  std::size_t threads = 1;      ///< shards solved concurrently
};

struct DistributedAcoResult {
  Placement placement;
  std::size_t hosts_used = 0;
  bool feasible = false;
  double runtime_s = 0.0;           ///< wall time of the whole run
  double critical_path_s = 0.0;     ///< max shard time + tail time (what a
                                    ///< real GM deployment would observe)
  std::size_t tail_vms = 0;         ///< VMs re-packed by the tail pass
};

class DistributedAcoConsolidation {
 public:
  explicit DistributedAcoConsolidation(DistributedAcoParams params = {});

  [[nodiscard]] const DistributedAcoParams& params() const { return params_; }

  /// Pack `instance`; hosts are partitioned round-robin over the shards and
  /// VMs are assigned to shards by load-balanced dealing (largest first).
  [[nodiscard]] DistributedAcoResult solve(const Instance& instance) const;

 private:
  DistributedAcoParams params_;
};

}  // namespace snooze::consolidation
