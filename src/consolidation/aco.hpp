// Ant Colony Optimization for VM consolidation (paper §III.A).
//
// Multiple artificial ants construct VM→host assignments probabilistically
// and simultaneously within multiple cycles. Ants communicate indirectly by
// depositing pheromone on (VM, host) pairs in a pheromone matrix. Within a
// cycle each ant fills hosts one at a time: among the still-unassigned VMs
// that fit into the current host it picks the next VM with probability
//
//     p(v, l) = tau[v][l]^alpha * eta(v, l)^beta / sum over feasible v'
//
// where tau is the pheromone concentration and eta a heuristic that favors
// VMs leaving the least residual capacity (better overall host utilization).
// At the end of each cycle the best-so-far solution (fewest hosts) is
// reinforced in the matrix and all pheromone evaporates by factor rho — the
// stochastic exploration / exploitation balance of classic ACO.
//
// The ants of one cycle are independent, so they run in parallel on a thread
// pool ("the algorithm is well suited for parallelization", §III.A); each
// ant owns a deterministically forked RNG stream, making the result
// reproducible for a given seed regardless of thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "consolidation/instance.hpp"

namespace snooze::consolidation {

struct AcoParams {
  std::size_t ants = 8;      ///< solutions constructed per cycle
  std::size_t cycles = 10;   ///< pheromone update rounds
  double alpha = 1.0;        ///< pheromone exponent
  double beta = 2.0;         ///< heuristic exponent
  double rho = 0.3;          ///< evaporation rate in (0,1]
  double tau0 = 1.0;         ///< initial pheromone level
  double q = 1.0;            ///< deposit scale: delta = q / hosts(best)
  std::uint64_t seed = 1;
  std::size_t threads = 1;   ///< worker threads for parallel ants (1 = serial)
};

struct AcoResult {
  Placement placement;
  std::size_t hosts_used = 0;
  bool feasible = false;
  double runtime_s = 0.0;  ///< wall-clock construction time (feeds the
                           ///< energy-of-computation accounting)
  std::vector<std::size_t> best_per_cycle;  ///< global-best after each cycle
};

class AcoConsolidation {
 public:
  explicit AcoConsolidation(AcoParams params = {});

  [[nodiscard]] const AcoParams& params() const { return params_; }

  /// Pack all VMs of `instance`. The result placement is feasible whenever
  /// the instance is packable at all into the given hosts (greedy fallback
  /// inside each ant guarantees completeness if first-fit succeeds).
  [[nodiscard]] AcoResult solve(const Instance& instance) const;

 private:
  AcoParams params_;
};

/// Heuristic desirability of adding demand `d` to a host with residual
/// capacity `residual` (before adding d). Higher = better fit.
double aco_heuristic(const ResourceVector& residual, const ResourceVector& d);

}  // namespace snooze::consolidation
