// Migration plan: the diff between the current placement and a target
// placement produced by a reconfiguration policy. Snooze's Group Managers
// execute such plans via live migration (paper §II.C, reconfiguration).
#pragma once

#include <cstddef>
#include <vector>

#include "consolidation/instance.hpp"
#include "hypervisor/migration.hpp"

namespace snooze::consolidation {

struct Migration {
  std::size_t vm = 0;  ///< index into the instance's VM list
  HostIndex from = kUnassigned;
  HostIndex to = kUnassigned;
};

struct MigrationPlan {
  std::vector<Migration> migrations;
  [[nodiscard]] std::size_t size() const { return migrations.size(); }
  [[nodiscard]] bool empty() const { return migrations.empty(); }
};

/// Compute the VM moves turning `current` into `target` (VMs assigned in
/// both placements whose host differs).
MigrationPlan diff_placements(const Placement& current, const Placement& target);

/// Total live-migration cost of a plan given per-VM RAM footprints and dirty
/// rates (index-aligned with the instance VM list) — used to decide whether
/// a reconfiguration is worth its disruption.
struct PlanCost {
  double total_migration_s = 0.0;  ///< sum of individual migration durations
  double total_downtime_s = 0.0;
  double transferred_mb = 0.0;
};
PlanCost plan_cost(const MigrationPlan& plan, const std::vector<double>& memory_mb,
                   const std::vector<double>& dirty_rate_mbps,
                   const hypervisor::MigrationModel& model);

}  // namespace snooze::consolidation
