// Exact vector-bin-packing solver (CPLEX substitute).
//
// The GRID'11 evaluation computes the optimal host count with CPLEX to
// report ACO's deviation from optimal (≈1.1 %). We substitute a
// branch-and-bound search over VM→host assignments with:
//   * VMs ordered by decreasing L2 norm (big items first → early pruning),
//   * symmetry breaking for homogeneous hosts (a VM may open at most one
//     new, empty host: the lowest-indexed one),
//   * lower bound = used hosts + per-dimension volume bound on the rest,
//   * incumbent initialized from best-fit-decreasing.
// Exact for the instance sizes where the paper ran CPLEX (tens of VMs);
// node and time limits keep larger calls safe (optimal flag then reports
// whether the search completed).
#pragma once

#include <cstddef>
#include <cstdint>

#include "consolidation/instance.hpp"

namespace snooze::consolidation {

struct ExactParams {
  std::uint64_t node_limit = 50'000'000;
  double time_limit_s = 60.0;
};

struct ExactResult {
  Placement placement;
  std::size_t hosts_used = 0;
  bool feasible = false;
  bool optimal = false;  ///< search completed within limits
  std::uint64_t nodes_explored = 0;
  double runtime_s = 0.0;
};

/// Minimize the number of hosts used to pack all VMs of `instance`.
ExactResult solve_exact(const Instance& instance, ExactParams params = {});

}  // namespace snooze::consolidation
