// Consolidation problem instance and placement representation.
//
// The consolidation problem is multi-dimensional vector bin-packing: assign
// every VM (demand vector) to a host (capacity vector) minimizing the number
// of hosts used. Hosts may be heterogeneous; homogeneous instances (the
// GRID'11 evaluation setting) set every capacity equal.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "hypervisor/resources.hpp"
#include "interference/model.hpp"

namespace snooze::consolidation {

using hypervisor::ResourceVector;

/// Index of a host in an Instance; kUnassigned marks an unplaced VM.
using HostIndex = std::int32_t;
constexpr HostIndex kUnassigned = -1;

struct Instance {
  std::vector<ResourceVector> vm_demands;
  std::vector<ResourceVector> host_capacities;

  /// Optional interference extension: per-VM memory profiles (index-aligned
  /// with vm_demands) and per-host socket topologies (index-aligned with
  /// host_capacities). Empty vectors — the default — keep the problem pure
  /// capacity bin-packing; interference_weight scales the penalty term in
  /// scoring (see interference_cost / score).
  std::vector<interference::MemProfile> vm_profiles;
  std::vector<interference::TopologySpec> host_topologies;
  double interference_weight = 0.0;

  [[nodiscard]] bool interference_aware() const {
    return interference_weight > 0.0 && !vm_profiles.empty() &&
           !host_topologies.empty();
  }

  [[nodiscard]] std::size_t vm_count() const { return vm_demands.size(); }
  [[nodiscard]] std::size_t host_count() const { return host_capacities.size(); }

  /// Homogeneous convenience constructor: `hosts` identical hosts.
  static Instance homogeneous(std::vector<ResourceVector> demands, std::size_t hosts,
                              ResourceVector capacity = {1.0, 1.0, 1.0});

  /// Lower bound on the number of hosts needed (max over dimensions of the
  /// total demand / single-host capacity — valid for homogeneous hosts; for
  /// heterogeneous hosts uses the largest host as denominator, still valid).
  [[nodiscard]] std::size_t lower_bound_hosts() const;
};

/// A (partial) assignment of VMs to hosts.
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::size_t vm_count) : assignment_(vm_count, kUnassigned) {}

  [[nodiscard]] std::size_t vm_count() const { return assignment_.size(); }
  [[nodiscard]] HostIndex host_of(std::size_t vm) const { return assignment_[vm]; }
  void assign(std::size_t vm, HostIndex host) { assignment_[vm] = host; }

  [[nodiscard]] bool complete() const;

  /// Number of distinct hosts with at least one VM.
  [[nodiscard]] std::size_t hosts_used() const;

  /// Per-host aggregated load for `instance` (index-aligned with hosts).
  [[nodiscard]] std::vector<ResourceVector> loads(const Instance& instance) const;

  /// True if every VM is assigned and no host capacity is exceeded.
  [[nodiscard]] bool feasible(const Instance& instance) const;

  [[nodiscard]] const std::vector<HostIndex>& raw() const { return assignment_; }

  friend bool operator==(const Placement&, const Placement&) = default;

 private:
  std::vector<HostIndex> assignment_;
};

/// Total interference penalty of a placement: VMs on each host are assigned
/// to sockets greedily (least-pressured first, in VM index order — the same
/// deterministic rule the hypervisor applies), then each VM contributes
/// (1 - multiplier) given its socket neighbors. 0 when the instance carries
/// no profiles or topologies.
double interference_cost(const Instance& instance, const Placement& placement);

/// Consolidation score: hosts_used + interference_weight * interference_cost.
/// Reduces to plain hosts_used for capacity-only instances.
double score(const Instance& instance, const Placement& placement);

}  // namespace snooze::consolidation
