#include "consolidation/exact.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <vector>

#include "consolidation/greedy.hpp"

namespace snooze::consolidation {

namespace {

class Solver {
 public:
  Solver(const Instance& instance, ExactParams params)
      : instance_(instance), params_(params), start_(std::chrono::steady_clock::now()) {
    order_.resize(instance.vm_count());
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return instance.vm_demands[a].l2_norm() > instance.vm_demands[b].l2_norm();
    });
    loads_.assign(instance.host_count(), ResourceVector{});
    host_vms_.assign(instance.host_count(), 0);
    current_.assign(instance.vm_count(), kUnassigned);
    homogeneous_ = std::all_of(
        instance.host_capacities.begin(), instance.host_capacities.end(),
        [&](const ResourceVector& c) { return c == instance.host_capacities.front(); });
  }

  ExactResult run() {
    ExactResult result;
    // Warm-start incumbent from BFD so pruning bites immediately.
    const Placement warm = best_fit_decreasing(instance_, SortKey::kL2);
    if (warm.feasible(instance_)) {
      best_ = warm;
      best_hosts_ = warm.hosts_used();
      have_best_ = true;
    } else {
      best_hosts_ = instance_.host_count() + 1;
    }

    aborted_ = false;
    dfs(0, 0);

    result.nodes_explored = nodes_;
    result.runtime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    if (have_best_) {
      result.placement = best_;
      result.hosts_used = best_hosts_;
      result.feasible = true;
    }
    result.optimal = !aborted_ && have_best_;
    // An instance that cannot be packed at all: the exhaustive search proves
    // it, but we only report optimality of a feasible packing.
    if (!have_best_) result.optimal = false;
    return result;
  }

 private:
  [[nodiscard]] bool out_of_budget() {
    if (nodes_ > params_.node_limit) return true;
    if ((nodes_ & 0xFFF) == 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
      if (elapsed > params_.time_limit_s) return true;
    }
    return false;
  }

  /// Per-dimension volume lower bound for the VMs from `depth` onward, given
  /// `used_hosts` already-opened hosts (only valid for homogeneous hosts;
  /// for heterogeneous fleets it degrades to the trivial bound).
  [[nodiscard]] std::size_t bound(std::size_t depth, std::size_t used_hosts) const {
    if (!homogeneous_) return used_hosts;
    ResourceVector remaining_total;
    for (std::size_t i = depth; i < order_.size(); ++i) {
      remaining_total += instance_.vm_demands[order_[i]];
    }
    // Free capacity on the already-open hosts can absorb part of it.
    ResourceVector open_free;
    for (std::size_t h = 0; h < instance_.host_count(); ++h) {
      if (host_vms_[h] > 0) open_free += instance_.host_capacities[h] - loads_[h];
    }
    const ResourceVector cap = instance_.host_capacities.front();
    std::size_t extra = 0;
    for (std::size_t d = 0; d < ResourceVector::kDims; ++d) {
      const double overflow = remaining_total[d] - open_free[d];
      if (overflow > 1e-9 && cap[d] > 1e-9) {
        extra = std::max(extra,
                         static_cast<std::size_t>(std::ceil(overflow / cap[d] - 1e-9)));
      }
    }
    return used_hosts + extra;
  }

  void dfs(std::size_t depth, std::size_t used_hosts) {
    if (aborted_) return;
    ++nodes_;
    if (out_of_budget()) {
      aborted_ = true;
      return;
    }
    if (used_hosts >= best_hosts_) return;  // cannot improve
    if (depth == order_.size()) {
      best_hosts_ = used_hosts;
      best_ = Placement(instance_.vm_count());
      for (std::size_t vm = 0; vm < current_.size(); ++vm) {
        best_.assign(vm, current_[vm]);
      }
      have_best_ = true;
      return;
    }
    if (bound(depth, used_hosts) >= best_hosts_) return;

    const std::size_t vm = order_[depth];
    const ResourceVector& demand = instance_.vm_demands[vm];

    bool tried_empty = false;
    for (std::size_t h = 0; h < instance_.host_count(); ++h) {
      const bool empty = host_vms_[h] == 0;
      if (empty) {
        // Symmetry breaking: all empty homogeneous hosts are equivalent;
        // try only the first one.
        if (homogeneous_ && tried_empty) continue;
        tried_empty = true;
        // Opening another host cannot lead to an improvement.
        if (used_hosts + 1 >= best_hosts_) continue;
      }
      if (!(loads_[h] + demand).fits_within(instance_.host_capacities[h])) continue;

      loads_[h] += demand;
      ++host_vms_[h];
      current_[vm] = static_cast<HostIndex>(h);
      dfs(depth + 1, used_hosts + (empty ? 1 : 0));
      current_[vm] = kUnassigned;
      --host_vms_[h];
      loads_[h] -= demand;
      if (aborted_) return;
    }
  }

  const Instance& instance_;
  ExactParams params_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::size_t> order_;
  std::vector<ResourceVector> loads_;
  std::vector<std::size_t> host_vms_;
  std::vector<HostIndex> current_;
  Placement best_;
  std::size_t best_hosts_ = 0;
  bool have_best_ = false;
  bool homogeneous_ = true;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

ExactResult solve_exact(const Instance& instance, ExactParams params) {
  if (instance.vm_count() == 0) {
    ExactResult empty;
    empty.placement = Placement(0);
    empty.feasible = true;
    empty.optimal = true;
    return empty;
  }
  Solver solver(instance, params);
  return solver.run();
}

}  // namespace snooze::consolidation
