// Placement quality metrics matching the GRID'11 evaluation: hosts used,
// average utilization of the used hosts, and the energy of operating the
// packing for a given duration — including the energy spent computing it.
#pragma once

#include <cstddef>

#include "consolidation/instance.hpp"
#include "energy/power_model.hpp"

namespace snooze::consolidation {

struct PlacementMetrics {
  std::size_t hosts_used = 0;
  std::size_t hosts_idle = 0;       ///< hosts with no VM (candidates for suspend)
  double avg_cpu_utilization = 0.0;    ///< mean over *used* hosts
  double avg_bottleneck_utilization = 0.0;  ///< mean max-dimension utilization
  double energy_joules = 0.0;       ///< hosts (used: P(u); idle: suspend) over the window
  double computation_joules = 0.0;  ///< algorithm runtime * management-node power
  [[nodiscard]] double total_joules() const { return energy_joules + computation_joules; }
};

struct EnergyWindow {
  double duration_s = 3600.0;        ///< how long the packing stays in effect
  energy::PowerModel host_power;     ///< per-host power model
  bool suspend_idle = true;          ///< idle hosts suspended (else stay on idle)
  double mgmt_node_power_w = 171.0;  ///< node running the placement algorithm
};

/// Compute metrics for `placement` on `instance`. `algorithm_runtime_s`
/// feeds the computation-energy term (pass 0 to exclude it).
PlacementMetrics evaluate_placement(const Instance& instance, const Placement& placement,
                                    const EnergyWindow& window,
                                    double algorithm_runtime_s = 0.0);

}  // namespace snooze::consolidation
