#include "consolidation/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace snooze::consolidation {

const char* to_string(SortKey key) {
  switch (key) {
    case SortKey::kNone: return "none";
    case SortKey::kCpu: return "cpu";
    case SortKey::kMemory: return "mem";
    case SortKey::kNetwork: return "net";
    case SortKey::kL1: return "l1";
    case SortKey::kL2: return "l2";
    case SortKey::kMaxDim: return "maxdim";
  }
  return "?";
}

double sort_value(const ResourceVector& demand, SortKey key) {
  switch (key) {
    case SortKey::kNone: return 0.0;
    case SortKey::kCpu: return demand.cpu();
    case SortKey::kMemory: return demand.memory();
    case SortKey::kNetwork: return demand.network();
    case SortKey::kL1: return demand.l1_norm();
    case SortKey::kL2: return demand.l2_norm();
    case SortKey::kMaxDim: return demand.max_component();
  }
  return 0.0;
}

namespace {

std::vector<std::size_t> sorted_order(const Instance& instance, SortKey key) {
  std::vector<std::size_t> order(instance.vm_count());
  std::iota(order.begin(), order.end(), 0);
  if (key != SortKey::kNone) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return sort_value(instance.vm_demands[a], key) >
             sort_value(instance.vm_demands[b], key);
    });
  }
  return order;
}

}  // namespace

Placement first_fit(const Instance& instance, SortKey key) {
  Placement placement(instance.vm_count());
  std::vector<ResourceVector> loads(instance.host_count());
  for (std::size_t vm : sorted_order(instance, key)) {
    const ResourceVector& demand = instance.vm_demands[vm];
    for (std::size_t h = 0; h < instance.host_count(); ++h) {
      if ((loads[h] + demand).fits_within(instance.host_capacities[h])) {
        loads[h] += demand;
        placement.assign(vm, static_cast<HostIndex>(h));
        break;
      }
    }
  }
  return placement;
}

Placement best_fit_decreasing(const Instance& instance, SortKey key) {
  Placement placement(instance.vm_count());
  std::vector<ResourceVector> loads(instance.host_count());
  std::vector<bool> open(instance.host_count(), false);
  for (std::size_t vm : sorted_order(instance, key)) {
    const ResourceVector& demand = instance.vm_demands[vm];
    std::size_t best_host = instance.host_count();
    double best_residual = std::numeric_limits<double>::infinity();
    // Prefer the tightest already-open host; open a new one only if needed.
    for (std::size_t h = 0; h < instance.host_count(); ++h) {
      if (!(loads[h] + demand).fits_within(instance.host_capacities[h])) continue;
      if (!open[h]) {
        if (best_host == instance.host_count()) best_host = h;
        continue;
      }
      const double residual =
          (instance.host_capacities[h] - (loads[h] + demand)).l1_norm();
      if (residual < best_residual) {
        best_residual = residual;
        best_host = h;
      }
    }
    if (best_host < instance.host_count()) {
      loads[best_host] += demand;
      open[best_host] = true;
      placement.assign(vm, static_cast<HostIndex>(best_host));
    }
  }
  return placement;
}

Placement dot_product_fit(const Instance& instance) {
  Placement placement(instance.vm_count());
  std::vector<bool> assigned(instance.vm_count(), false);
  std::size_t remaining = instance.vm_count();
  for (std::size_t h = 0; h < instance.host_count() && remaining > 0; ++h) {
    ResourceVector residual = instance.host_capacities[h];
    for (;;) {
      std::size_t best_vm = instance.vm_count();
      double best_score = -1.0;
      for (std::size_t vm = 0; vm < instance.vm_count(); ++vm) {
        if (assigned[vm]) continue;
        const ResourceVector& demand = instance.vm_demands[vm];
        if (!demand.fits_within(residual)) continue;
        const double score = residual.dot(demand);
        if (score > best_score) {
          best_score = score;
          best_vm = vm;
        }
      }
      if (best_vm == instance.vm_count()) break;  // nothing else fits here
      placement.assign(best_vm, static_cast<HostIndex>(h));
      residual -= instance.vm_demands[best_vm];
      assigned[best_vm] = true;
      --remaining;
    }
  }
  return placement;
}

}  // namespace snooze::consolidation
