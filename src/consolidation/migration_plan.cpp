#include "consolidation/migration_plan.hpp"

#include <cassert>

namespace snooze::consolidation {

MigrationPlan diff_placements(const Placement& current, const Placement& target) {
  assert(current.vm_count() == target.vm_count());
  MigrationPlan plan;
  for (std::size_t vm = 0; vm < current.vm_count(); ++vm) {
    const HostIndex from = current.host_of(vm);
    const HostIndex to = target.host_of(vm);
    if (from == kUnassigned || to == kUnassigned) continue;
    if (from != to) plan.migrations.push_back(Migration{vm, from, to});
  }
  return plan;
}

PlanCost plan_cost(const MigrationPlan& plan, const std::vector<double>& memory_mb,
                   const std::vector<double>& dirty_rate_mbps,
                   const hypervisor::MigrationModel& model) {
  PlanCost cost;
  for (const Migration& m : plan.migrations) {
    assert(m.vm < memory_mb.size() && m.vm < dirty_rate_mbps.size());
    const auto c = model.cost(memory_mb[m.vm], dirty_rate_mbps[m.vm]);
    cost.total_migration_s += c.total_s;
    cost.total_downtime_s += c.downtime_s;
    cost.transferred_mb += c.transferred_mb;
  }
  return cost;
}

}  // namespace snooze::consolidation
