// Greedy bin-packing baselines.
//
// The paper's critique (§I): "many of the existing consolidation approaches
// adopt simple greedy algorithms such as variants of the First-Fit
// Decreasing (FFD) heuristic, which tend to waste a lot of resources by
// presorting the VMs according to a single dimension (e.g. CPU)". We
// implement the full family so the benchmarks can show exactly that effect:
// FFD with single-dimension keys (CPU / memory / network) and with the
// aggregate keys (L1, L2, max-dimension), plus First-Fit (no sort) and
// Best-Fit-Decreasing.
#pragma once

#include <string>

#include "consolidation/instance.hpp"

namespace snooze::consolidation {

/// Sort key used to order VMs before greedy packing.
enum class SortKey { kNone, kCpu, kMemory, kNetwork, kL1, kL2, kMaxDim };

const char* to_string(SortKey key);

/// Scalar used to order the VMs for the given key.
double sort_value(const ResourceVector& demand, SortKey key);

/// First-Fit (Decreasing when key != kNone): place each VM on the
/// lowest-indexed host where it fits. Unplaceable VMs stay kUnassigned.
Placement first_fit(const Instance& instance, SortKey key = SortKey::kNone);

/// Canonical FFD baseline of the paper: presort by CPU demand.
inline Placement first_fit_decreasing(const Instance& instance,
                                      SortKey key = SortKey::kCpu) {
  return first_fit(instance, key);
}

/// Best-Fit-Decreasing: place each VM on the feasible host with the least
/// remaining capacity (L1 of the residual after placement).
Placement best_fit_decreasing(const Instance& instance, SortKey key = SortKey::kL1);

/// Dot-product heuristic (Panigrahy et al. style, bin-centric): fill hosts
/// one at a time, always adding the unassigned VM whose demand vector has
/// the largest dot product with the host's residual capacity — the
/// deterministic cousin of the ACO construction rule (and a stronger
/// multi-dimensional baseline than any single-key FFD).
Placement dot_product_fit(const Instance& instance);

}  // namespace snooze::consolidation
