#include "consolidation/instance.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace snooze::consolidation {

Instance Instance::homogeneous(std::vector<ResourceVector> demands, std::size_t hosts,
                               ResourceVector capacity) {
  Instance inst;
  inst.vm_demands = std::move(demands);
  inst.host_capacities.assign(hosts, capacity);
  return inst;
}

std::size_t Instance::lower_bound_hosts() const {
  if (vm_demands.empty()) return 0;
  ResourceVector total;
  for (const auto& d : vm_demands) total += d;
  ResourceVector biggest;
  for (const auto& c : host_capacities) {
    for (std::size_t d = 0; d < ResourceVector::kDims; ++d) {
      biggest[d] = std::max(biggest[d], c[d]);
    }
  }
  std::size_t bound = 1;
  for (std::size_t d = 0; d < ResourceVector::kDims; ++d) {
    if (biggest[d] <= 0.0) continue;
    bound = std::max(bound,
                     static_cast<std::size_t>(std::ceil(total[d] / biggest[d] - 1e-9)));
  }
  return bound;
}

bool Placement::complete() const {
  return std::none_of(assignment_.begin(), assignment_.end(),
                      [](HostIndex h) { return h == kUnassigned; });
}

std::size_t Placement::hosts_used() const {
  std::set<HostIndex> used;
  for (HostIndex h : assignment_) {
    if (h != kUnassigned) used.insert(h);
  }
  return used.size();
}

std::vector<ResourceVector> Placement::loads(const Instance& instance) const {
  std::vector<ResourceVector> out(instance.host_count());
  for (std::size_t vm = 0; vm < assignment_.size(); ++vm) {
    const HostIndex h = assignment_[vm];
    if (h != kUnassigned) out[static_cast<std::size_t>(h)] += instance.vm_demands[vm];
  }
  return out;
}

bool Placement::feasible(const Instance& instance) const {
  if (assignment_.size() != instance.vm_count()) return false;
  if (!complete()) return false;
  for (HostIndex h : assignment_) {
    if (h < 0 || static_cast<std::size_t>(h) >= instance.host_count()) return false;
  }
  const auto host_loads = loads(instance);
  for (std::size_t h = 0; h < host_loads.size(); ++h) {
    if (!host_loads[h].fits_within(instance.host_capacities[h])) return false;
  }
  return true;
}

double interference_cost(const Instance& instance, const Placement& placement) {
  if (!instance.interference_aware()) return 0.0;
  double cost = 0.0;
  for (std::size_t h = 0; h < instance.host_count(); ++h) {
    const interference::TopologySpec& topo =
        h < instance.host_topologies.size() ? instance.host_topologies[h]
                                            : interference::TopologySpec{};
    if (topo.flat()) continue;
    // Profiled VMs on this host, in index order (the hypervisor's arrival
    // order stand-in), greedily pinned to the least-pressured socket.
    const std::size_t sockets = topo.sockets.size();
    std::vector<std::vector<interference::MemProfile>> per_socket(sockets);
    std::vector<interference::SocketPressure> pressure(sockets);
    for (std::size_t vm = 0; vm < placement.vm_count(); ++vm) {
      if (placement.host_of(vm) != static_cast<HostIndex>(h)) continue;
      if (vm >= instance.vm_profiles.size() || !instance.vm_profiles[vm].present()) {
        continue;
      }
      std::size_t best = 0;
      double best_demand = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < sockets; ++s) {
        const auto& sock = topo.sockets[s];
        const double demand =
            pressure[s].llc_demand_mb / std::max(sock.llc_mb, 1e-9) +
            pressure[s].bw_demand_gbps / std::max(sock.mem_bw_gbps, 1e-9);
        if (demand < best_demand) {
          best_demand = demand;
          best = s;
        }
      }
      per_socket[best].push_back(instance.vm_profiles[vm]);
      pressure[best] += instance.vm_profiles[vm];
    }
    for (std::size_t s = 0; s < sockets; ++s) {
      for (std::size_t i = 0; i < per_socket[s].size(); ++i) {
        interference::SocketPressure neighbors;
        for (std::size_t j = 0; j < per_socket[s].size(); ++j) {
          if (j != i) neighbors += per_socket[s][j];
        }
        cost += 1.0 - interference::degradation_multiplier(per_socket[s][i], neighbors,
                                                           topo.sockets[s]);
      }
    }
  }
  return cost;
}

double score(const Instance& instance, const Placement& placement) {
  return static_cast<double>(placement.hosts_used()) +
         instance.interference_weight * interference_cost(instance, placement);
}

}  // namespace snooze::consolidation
