#include "consolidation/instance.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace snooze::consolidation {

Instance Instance::homogeneous(std::vector<ResourceVector> demands, std::size_t hosts,
                               ResourceVector capacity) {
  Instance inst;
  inst.vm_demands = std::move(demands);
  inst.host_capacities.assign(hosts, capacity);
  return inst;
}

std::size_t Instance::lower_bound_hosts() const {
  if (vm_demands.empty()) return 0;
  ResourceVector total;
  for (const auto& d : vm_demands) total += d;
  ResourceVector biggest;
  for (const auto& c : host_capacities) {
    for (std::size_t d = 0; d < ResourceVector::kDims; ++d) {
      biggest[d] = std::max(biggest[d], c[d]);
    }
  }
  std::size_t bound = 1;
  for (std::size_t d = 0; d < ResourceVector::kDims; ++d) {
    if (biggest[d] <= 0.0) continue;
    bound = std::max(bound,
                     static_cast<std::size_t>(std::ceil(total[d] / biggest[d] - 1e-9)));
  }
  return bound;
}

bool Placement::complete() const {
  return std::none_of(assignment_.begin(), assignment_.end(),
                      [](HostIndex h) { return h == kUnassigned; });
}

std::size_t Placement::hosts_used() const {
  std::set<HostIndex> used;
  for (HostIndex h : assignment_) {
    if (h != kUnassigned) used.insert(h);
  }
  return used.size();
}

std::vector<ResourceVector> Placement::loads(const Instance& instance) const {
  std::vector<ResourceVector> out(instance.host_count());
  for (std::size_t vm = 0; vm < assignment_.size(); ++vm) {
    const HostIndex h = assignment_[vm];
    if (h != kUnassigned) out[static_cast<std::size_t>(h)] += instance.vm_demands[vm];
  }
  return out;
}

bool Placement::feasible(const Instance& instance) const {
  if (assignment_.size() != instance.vm_count()) return false;
  if (!complete()) return false;
  for (HostIndex h : assignment_) {
    if (h < 0 || static_cast<std::size_t>(h) >= instance.host_count()) return false;
  }
  const auto host_loads = loads(instance);
  for (std::size_t h = 0; h < host_loads.size(); ++h) {
    if (!host_loads[h].fits_within(instance.host_capacities[h])) return false;
  }
  return true;
}

}  // namespace snooze::consolidation
