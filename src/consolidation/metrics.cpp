#include "consolidation/metrics.hpp"

#include <algorithm>

namespace snooze::consolidation {

PlacementMetrics evaluate_placement(const Instance& instance, const Placement& placement,
                                    const EnergyWindow& window,
                                    double algorithm_runtime_s) {
  PlacementMetrics out;
  const auto loads = placement.loads(instance);

  double cpu_sum = 0.0;
  double bottleneck_sum = 0.0;
  for (std::size_t h = 0; h < loads.size(); ++h) {
    const ResourceVector& load = loads[h];
    const ResourceVector& cap = instance.host_capacities[h];
    const bool used = !(load == ResourceVector{});
    if (!used) {
      ++out.hosts_idle;
      out.energy_joules += window.duration_s * (window.suspend_idle
                                                    ? window.host_power.p_suspend_w
                                                    : window.host_power.p_idle_w);
      continue;
    }
    ++out.hosts_used;
    const double cpu_u = cap.cpu() > 0.0 ? std::min(1.0, load.cpu() / cap.cpu()) : 0.0;
    cpu_sum += cpu_u;
    bottleneck_sum += std::min(1.0, load.max_utilization(cap));
    out.energy_joules += window.duration_s * window.host_power.power_on(cpu_u);
  }
  if (out.hosts_used > 0) {
    out.avg_cpu_utilization = cpu_sum / static_cast<double>(out.hosts_used);
    out.avg_bottleneck_utilization =
        bottleneck_sum / static_cast<double>(out.hosts_used);
  }
  out.computation_joules = algorithm_runtime_s * window.mgmt_node_power_w;
  return out;
}

}  // namespace snooze::consolidation
