// Lightweight leveled logger used across the Snooze stack.
//
// The simulator is single-threaded, so the logger keeps no locks on the hot
// path; the sink pointer itself is only swapped during setup. Components log
// through LOG_* macros that compile to a cheap level check.
#pragma once

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace snooze::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global logging configuration. Defaults to kWarn so tests/benches stay quiet
/// unless a component is being debugged.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

const char* to_string(LogLevel level);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace snooze::util

#define SNOOZE_LOG(level)                                      \
  if (!::snooze::util::Logger::instance().enabled(level)) {    \
  } else                                                       \
    ::snooze::util::detail::LogLine(level)

#define LOG_TRACE SNOOZE_LOG(::snooze::util::LogLevel::kTrace)
#define LOG_DEBUG SNOOZE_LOG(::snooze::util::LogLevel::kDebug)
#define LOG_INFO SNOOZE_LOG(::snooze::util::LogLevel::kInfo)
#define LOG_WARN SNOOZE_LOG(::snooze::util::LogLevel::kWarn)
#define LOG_ERROR SNOOZE_LOG(::snooze::util::LogLevel::kError)
