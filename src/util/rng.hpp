// Deterministic random-number helpers.
//
// Every stochastic component in the repository (simulator, workload
// generators, ACO) draws from an explicitly seeded Rng so that tests and
// benchmarks are reproducible run-to-run.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace snooze::util {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEEull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  template <typename Int = int>
  Int uniform_int(Int lo, Int hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<Int>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Index drawn proportionally to the (non-negative) weights. Returns
  /// weights.size() if all weights are zero.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.size();
    double r = uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  const T& pick(std::span<const T> items) {
    assert(!items.empty());
    return items[uniform_int<std::size_t>(0, items.size() - 1)];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derive an independent child stream (for per-actor / per-ant RNGs).
  Rng fork() { return Rng(engine_()); }

  std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace snooze::util
