// ASCII table rendering for the benchmark harness: every bench binary prints
// the rows/series its paper table reports through this formatter.
#pragma once

#include <string>
#include <vector>

namespace snooze::util {

/// Column-aligned ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  [[nodiscard]] std::string to_string() const;
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snooze::util
