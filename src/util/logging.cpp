#include "util/logging.hpp"

#include <cstdio>

namespace snooze::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, std::string_view msg) {
  if (!enabled(level)) return;
  if (sink_) {
    sink_(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", to_string(level), static_cast<int>(msg.size()),
               msg.data());
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace snooze::util
