#include "util/args.hpp"

#include <cstdlib>

namespace snooze::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

bool Args::has(const std::string& name) const { return options_.count(name) > 0; }

std::string Args::get(const std::string& name, const std::string& def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& name, double def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& name, bool def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace snooze::util
