// Statistics accumulators used by the simulator and the benchmark harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace snooze::util {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Fold another accumulator into this one, as if every sample of `other`
  /// had been added here (Chan et al. parallel variance combination).
  void merge(const RunningStats& other);

  void clear();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample-storing accumulator with percentile queries (linear interpolation).
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// q in [0, 1]; e.g. percentile(0.5) is the median.
  [[nodiscard]] double percentile(double q);
  [[nodiscard]] double median() { return percentile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() { return percentile(0.0); }
  [[nodiscard]] double max() { return percentile(1.0); }

  /// Fold another accumulator's samples into this one.
  void merge(const Percentiles& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }

  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Time-weighted integrator: tracks a piecewise-constant signal and computes
/// its integral / time-average. Used by energy meters and utilization stats.
class TimeWeighted {
 public:
  explicit TimeWeighted(double start_time = 0.0, double initial_value = 0.0)
      : last_time_(start_time), value_(initial_value), start_time_(start_time) {}

  /// Record that the signal changes to `value` at time `t` (t must be
  /// monotonically non-decreasing).
  void set(double t, double value);

  /// Integral of the signal from start to `t`.
  [[nodiscard]] double integral(double t) const;

  /// Time-average of the signal over [start, t].
  [[nodiscard]] double average(double t) const;

  [[nodiscard]] double current() const { return value_; }
  [[nodiscard]] double last_update() const { return last_time_; }

 private:
  double last_time_;
  double value_;
  double start_time_;
  double integral_ = 0.0;
};

}  // namespace snooze::util
