#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace snooze::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() { *this = RunningStats{}; }

void Percentiles::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::percentile(double q) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void TimeWeighted::set(double t, double value) {
  assert(t >= last_time_);
  integral_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
}

double TimeWeighted::integral(double t) const {
  assert(t >= last_time_);
  return integral_ + value_ * (t - last_time_);
}

double TimeWeighted::average(double t) const {
  const double span = t - start_time_;
  if (span <= 0.0) return value_;
  return integral(t) / span;
}

}  // namespace snooze::util
