#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace snooze::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  auto print_sep = [&] {
    out << "+";
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  return out.str();
}

void Table::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace snooze::util
