// Fixed-size worker pool for CPU-bound search.
//
// The discrete-event simulator is deliberately single-threaded for
// reproducibility; the only parallel component in the stack is the ACO
// consolidation algorithm, whose ants are embarrassingly parallel within a
// cycle (the paper notes the algorithm "is well suited for parallelization").
// Each ant owns an independent RNG stream, so results are deterministic for a
// given (seed, ant-count) regardless of the number of worker threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace snooze::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace snooze::util
