// CSV output for benchmark data series (so plots can be regenerated
// externally from the bench output files).
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace snooze::util {

/// Minimal CSV writer. Fields containing commas, quotes, CR or LF are quoted.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);

  /// Escape a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

/// Format one row (escaped fields joined by commas, no trailing newline).
[[nodiscard]] std::string csv_row(const std::vector<std::string>& fields);

/// RFC 4180 parser for the writer's output: handles quoted fields with
/// embedded commas, escaped quotes ("") and embedded CR/LF, and accepts
/// both \n and \r\n row terminators. A trailing newline does not produce an
/// empty final row. Throws std::runtime_error on an unterminated quote.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace snooze::util
