// CSV output for benchmark data series (so plots can be regenerated
// externally from the bench output files).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace snooze::util {

/// Minimal CSV writer. Fields containing commas/quotes/newlines are quoted.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);

  /// Escape a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

}  // namespace snooze::util
