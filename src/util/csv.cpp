#include "util/csv.hpp"

#include <stdexcept>

namespace snooze::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  // A bare CR would be swallowed (or merged into a row break) by \r\n-aware
  // readers, so it forces quoting just like LF does.
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  out_ << csv_row(fields) << '\n';
}

std::string csv_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ',';
    out += CsvWriter::escape(fields[i]);
  }
  return out;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // distinguishes "" (one empty field) from nothing

  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
      field_started = false;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      if (!row.empty() || !field.empty() || field_started) {
        row.push_back(std::move(field));
        field.clear();
        field_started = false;
        rows.push_back(std::move(row));
        row.clear();
      }
      continue;
    }
    field += c;
    field_started = true;
    ++i;
  }
  if (in_quotes) throw std::runtime_error("parse_csv: unterminated quoted field");
  if (!row.empty() || !field.empty() || field_started) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace snooze::util
