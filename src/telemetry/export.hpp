// Exporters for the telemetry subsystem:
//
//   - chrome_trace_json(): Chrome trace_event JSON (complete "X" events, one
//     virtual pid, one tid per actor) loadable in chrome://tracing and
//     https://ui.perfetto.dev. Virtual seconds map to trace microseconds.
//   - spans_csv(): one row per span — the raw event time series.
//   - metrics_csv(): one row per metric with kind-appropriate columns.
//   - metrics_table(): human-readable snapshot for `metrics show`.
//
// All output is deterministic: metrics iterate in sorted name order, spans in
// begin() order, and actor tids are assigned in first-seen order.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace snooze::telemetry {

/// `now` closes still-open spans visually (dur up to now, status "open").
[[nodiscard]] std::string chrome_trace_json(const SpanCollector& spans, sim::Time now);

[[nodiscard]] std::string spans_csv(const SpanCollector& spans);

[[nodiscard]] std::string metrics_csv(const MetricsRegistry& registry);

[[nodiscard]] std::string metrics_table(const MetricsRegistry& registry);

}  // namespace snooze::telemetry
