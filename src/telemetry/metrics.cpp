#include "telemetry/metrics.hpp"

#include <algorithm>

namespace snooze::telemetry {

int Histogram::bucket_index(double value) {
  if (!(value >= kMinValue)) return 0;  // underflow; also catches NaN
  const int i =
      1 + static_cast<int>(std::floor(std::log10(value / kMinValue) *
                                      static_cast<double>(kBucketsPerDecade)));
  return std::min(i, kNumBuckets - 1);
}

double Histogram::bucket_lower(int i) {
  if (i <= 0) return 0.0;
  return kMinValue *
         std::pow(10.0, static_cast<double>(i - 1) / static_cast<double>(kBucketsPerDecade));
}

double Histogram::bucket_upper(int i) {
  return kMinValue *
         std::pow(10.0, static_cast<double>(i) / static_cast<double>(kBucketsPerDecade));
}

void Histogram::observe(double value) {
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::observe(double value, std::uint64_t span_id, double time) {
  observe(value);
  if (exemplars_ == nullptr || span_id == 0) return;
  Exemplar& slot = (*exemplars_)[static_cast<std::size_t>(bucket_index(value))];
  if (slot.span_id == 0 || value > slot.value) {
    slot = Exemplar{value, span_id, time};
  }
}

void Histogram::enable_exemplars() {
  if (exemplars_ == nullptr) {
    exemplars_ = std::make_unique<std::array<Exemplar, kNumBuckets>>();
  }
}

const Histogram::Exemplar* Histogram::exemplar(int i) const {
  if (exemplars_ == nullptr) return nullptr;
  const Exemplar& slot = (*exemplars_)[static_cast<std::size_t>(i)];
  return slot.span_id != 0 ? &slot : nullptr;
}

const Histogram::Exemplar* Histogram::worst_exemplar() const {
  if (exemplars_ == nullptr) return nullptr;
  for (int i = kNumBuckets - 1; i >= 0; --i) {
    const Exemplar& slot = (*exemplars_)[static_cast<std::size_t>(i)];
    if (slot.span_id != 0) return &slot;
  }
  return nullptr;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]; walk the cumulative distribution and
  // interpolate inside the bucket containing the rank. Buckets are
  // logarithmic, so interpolate geometrically (uniform in log space): the
  // linear midpoint of a log-bucket overestimates by up to half the bucket
  // ratio, which is exactly the p50/p99 bias the SLO evaluator cares about.
  const double target = std::max(1.0, q * static_cast<double>(count_));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      const double lower = bucket_lower(i);
      const double upper = bucket_upper(i);
      // The underflow bucket starts at 0 where log-space interpolation is
      // undefined; fall back to linear there.
      const double value = lower > 0.0
                               ? lower * std::pow(upper / lower, fraction)
                               : lower + fraction * (upper - lower);
      return std::clamp(value, min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>(engine_))
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void MetricsRegistry::flush_gauges() {
  for (auto& [name, gauge] : gauges_) gauge->flush();
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

}  // namespace snooze::telemetry
