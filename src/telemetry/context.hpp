// Causal trace identity carried on wire messages.
//
// A SpanContext names one node of one request's span tree. It is minted at
// VM submission (the root span), stamped onto outgoing net::Message payloads
// by the sender, copied onto RPC envelopes by RpcEndpoint, and used by the
// receiving component to parent its own span — so one submission's full path
// (client -> EP -> GL dispatch -> GM placement -> LC start, including retries
// and timeouts) is reconstructable from the SpanCollector.
//
// This header is deliberately dependency-free so net/message.hpp can embed a
// context in every Message without pulling in the rest of the telemetry
// subsystem.
#pragma once

#include <cstdint>

namespace snooze::telemetry {

/// trace_id == 0 means "not part of any trace": instrumentation sites treat
/// such a context as absent and record nothing, which keeps untraced traffic
/// (heartbeats, summaries, monitoring) at zero telemetry cost.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

}  // namespace snooze::telemetry
