#include "telemetry/export.hpp"

#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace snooze::telemetry {

namespace {

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt(double value, int precision = 6) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace

std::string chrome_trace_json(const SpanCollector& spans, sim::Time now) {
  // tid per actor, in first-seen order (deterministic given the span list).
  std::unordered_map<std::string, int> tids;
  std::vector<std::string> actors;
  for (const SpanRecord& s : spans.spans()) {
    if (tids.emplace(s.actor, static_cast<int>(actors.size()) + 1).second) {
      actors.push_back(s.actor);
    }
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < actors.size(); ++i) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << (i + 1)
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(actors[i]) << "\"}}";
  }
  for (const SpanRecord& s : spans.spans()) {
    if (!first) out << ",";
    first = false;
    const double dur_us = s.duration(now) * 1e6;
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[s.actor] << ",\"name\":\""
        << json_escape(s.name) << "\",\"cat\":\"span\",\"ts\":" << fmt(s.start * 1e6, 3)
        << ",\"dur\":" << fmt(dur_us < 0.0 ? 0.0 : dur_us, 3)
        << ",\"args\":{\"trace\":" << s.trace_id << ",\"span\":" << s.span_id
        << ",\"parent\":" << s.parent_id << ",\"status\":\""
        << json_escape(s.open() ? "open" : s.status) << "\"";
    if (!s.detail.empty()) out << ",\"detail\":\"" << json_escape(s.detail) << "\"";
    out << "}}";
  }
  out << "]}";
  return out.str();
}

std::string spans_csv(const SpanCollector& spans) {
  std::string out = util::csv_row(
      {"trace_id", "span_id", "parent_id", "name", "actor", "start", "end",
       "status", "detail"});
  out += '\n';
  for (const SpanRecord& s : spans.spans()) {
    out += util::csv_row({std::to_string(s.trace_id), std::to_string(s.span_id),
                          std::to_string(s.parent_id), s.name, s.actor,
                          fmt(s.start), s.open() ? std::string() : fmt(s.end),
                          s.open() ? "open" : s.status, s.detail});
    out += '\n';
  }
  return out;
}

std::string metrics_csv(const MetricsRegistry& registry) {
  std::string out = util::csv_row({"kind", "name", "value", "count", "sum", "min",
                                   "max", "mean", "p50", "p90", "p99"});
  out += '\n';
  for (const auto& [name, counter] : registry.counters()) {
    out += util::csv_row({"counter", name, std::to_string(counter->value()), "", "",
                          "", "", "", "", "", ""});
    out += '\n';
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    // value = current level, sum = time integral, mean = time-weighted average.
    out += util::csv_row({"gauge", name, fmt(gauge->current()), "",
                          fmt(gauge->integral()), "", "", fmt(gauge->average()), "",
                          "", ""});
    out += '\n';
  }
  for (const auto& [name, hist] : registry.histograms()) {
    out += util::csv_row({"histogram", name, "", std::to_string(hist->count()),
                          fmt(hist->sum()), fmt(hist->min()), fmt(hist->max()),
                          fmt(hist->mean()), fmt(hist->percentile(0.5)),
                          fmt(hist->percentile(0.9)), fmt(hist->percentile(0.99))});
    out += '\n';
  }
  return out;
}

std::string metrics_table(const MetricsRegistry& registry) {
  std::ostringstream out;
  if (!registry.counters().empty()) {
    util::Table table({"counter", "value"});
    for (const auto& [name, counter] : registry.counters()) {
      table.add_row({name, std::to_string(counter->value())});
    }
    out << table.to_string();
  }
  if (!registry.gauges().empty()) {
    util::Table table({"gauge", "current", "time-avg", "integral"});
    for (const auto& [name, gauge] : registry.gauges()) {
      table.add_row({name, util::Table::num(gauge->current()),
                     util::Table::num(gauge->average()),
                     util::Table::num(gauge->integral())});
    }
    if (out.tellp() > 0) out << "\n";
    out << table.to_string();
  }
  if (!registry.histograms().empty()) {
    util::Table table(
        {"histogram", "count", "mean", "min", "p50", "p90", "p99", "max"});
    for (const auto& [name, hist] : registry.histograms()) {
      table.add_row({name, std::to_string(hist->count()),
                     util::Table::num(hist->mean(), 4),
                     util::Table::num(hist->min(), 4),
                     util::Table::num(hist->percentile(0.5), 4),
                     util::Table::num(hist->percentile(0.9), 4),
                     util::Table::num(hist->percentile(0.99), 4),
                     util::Table::num(hist->max(), 4)});
    }
    if (out.tellp() > 0) out << "\n";
    out << table.to_string();
    // Exemplar lines only for histograms that opted in and retained one, so
    // runs without exemplars render byte-identically to before.
    for (const auto& [name, hist] : registry.histograms()) {
      const auto* worst = hist->worst_exemplar();
      if (worst == nullptr) continue;
      out << name << " worst exemplar: value "
          << util::Table::num(worst->value, 4) << " span " << worst->span_id
          << " t " << util::Table::num(worst->time, 2) << "\n";
    }
  }
  if (out.tellp() == 0) return "no metrics recorded\n";
  return out.str();
}

}  // namespace snooze::telemetry
