// Telemetry bundle: one MetricsRegistry plus one SpanCollector, owned by the
// system under observation (SnoozeSystem) and reachable from every component
// through Network::telemetry(). Components must tolerate a null Telemetry*
// (unit tests build networks without one); the free helpers below fold that
// null check and the invalid-context check into the call site.
#pragma once

#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace snooze::telemetry {

class Telemetry {
 public:
  explicit Telemetry(sim::Engine& engine) : metrics_(engine), spans_(engine) {}

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] SpanCollector& spans() { return spans_; }
  [[nodiscard]] const SpanCollector& spans() const { return spans_; }

  /// Mirror the engine's queue counters into the registry. Pull-based by
  /// design: exporters and the CLI call this right before reading metrics,
  /// so observation never schedules events (a periodic sampler would perturb
  /// the event stream and break the golden-trace determinism contract).
  void sample_engine(const sim::Engine& engine) {
    const sim::Engine::Stats& st = engine.stats();
    const auto mirror = [this](std::string_view name, std::uint64_t value) {
      Counter& c = metrics_.counter(name);
      if (value > c.value()) c.inc(value - c.value());
    };
    mirror("engine.events_scheduled", st.scheduled);
    mirror("engine.events_fired", st.fired);
    mirror("engine.events_cancelled", st.cancelled);
    mirror("engine.events_overflowed", st.overflowed);
    mirror("engine.events_promoted", st.promoted);
    metrics_.gauge("engine.queue_depth")
        .set(static_cast<double>(engine.pending_events()));
    metrics_.gauge("engine.peak_queue_depth")
        .set(static_cast<double>(st.peak_pending));
    metrics_.gauge("engine.events_per_sec_wall").set(engine.events_per_second());
    // Exporters and the CLI read right after this call: commit every gauge's
    // tail segment so the weighted means include the value held since the
    // last set() up to virtual now().
    metrics_.flush_gauges();
  }

 private:
  MetricsRegistry metrics_;
  SpanCollector spans_;
};

// --- null-safe instrumentation helpers -------------------------------------

inline void count(Telemetry* t, std::string_view name, std::uint64_t delta = 1) {
  if (t != nullptr) t->metrics().counter(name).inc(delta);
}

inline void observe(Telemetry* t, std::string_view name, double value) {
  if (t != nullptr) t->metrics().histogram(name).observe(value);
}

/// observe() carrying exemplar context: when the histogram has exemplars
/// enabled, the sample's bucket retains its worst (value, span, time).
inline void observe(Telemetry* t, std::string_view name, double value,
                    const SpanContext& ctx, double now) {
  if (t != nullptr) {
    t->metrics().histogram(name).observe(value, ctx.span_id, now);
  }
}

inline void gauge_add(Telemetry* t, std::string_view name, double delta) {
  if (t != nullptr) t->metrics().gauge(name).add(delta);
}

inline void gauge_set(Telemetry* t, std::string_view name, double value) {
  if (t != nullptr) t->metrics().gauge(name).set(value);
}

/// Open a child span of `parent`; no-op (invalid context) without telemetry
/// or when the parent context carries no trace.
inline SpanContext begin_span(Telemetry* t, const SpanContext& parent,
                              std::string_view name, std::string_view actor,
                              std::string_view detail = {}) {
  if (t == nullptr || !parent.valid()) return {};
  return t->spans().begin(parent.trace_id, parent.span_id, name, actor, detail);
}

inline void end_span(Telemetry* t, const SpanContext& ctx,
                     std::string_view status = "ok") {
  if (t != nullptr && ctx.valid()) t->spans().end(ctx, status);
}

}  // namespace snooze::telemetry
