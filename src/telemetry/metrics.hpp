// Always-on metrics registry for the simulated Snooze deployment.
//
// Three metric kinds, all integrated against the DES virtual clock and cheap
// enough to leave enabled for every run:
//
//   - Counter:   monotonically increasing event count (messages, placements).
//   - Gauge:     piecewise-constant signal with *time-weighted* integral and
//                average (running VMs, suspended nodes) — "47 VMs for 10s"
//                weighs ten times "47 VMs for 1s", which a sample mean of the
//                set() calls would get wrong.
//   - Histogram: fixed log-bucket distribution with percentile queries (RPC
//                latency, submission latency). Buckets are fixed at compile
//                time so observe() is an index computation plus an increment.
//
// Metrics are created on first use and live for the registry's lifetime, so
// hot paths may cache the returned reference/pointer and skip the name
// lookup entirely. Determinism: nothing here reads the RNG or schedules
// events; identical runs produce identical metric values.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace snooze::telemetry {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Time-weighted gauge: set()/add() stamp the change with the engine's
/// virtual now(); integral() and average() weigh each value by how long it
/// was held.
class Gauge {
 public:
  explicit Gauge(sim::Engine& engine)
      : engine_(engine), acc_(engine.now(), 0.0) {}

  void set(double value) { acc_.set(engine_.now(), value); }
  void add(double delta) { acc_.set(engine_.now(), acc_.current() + delta); }
  /// Fold the segment since the last set() into the stored integral at the
  /// current virtual time without changing the value. Called at end-of-run
  /// (and before exports) so the final held segment is committed even if the
  /// gauge is read through a path that passes a stale timestamp.
  void flush() { acc_.set(engine_.now(), acc_.current()); }

  [[nodiscard]] double current() const { return acc_.current(); }
  /// Integral of the signal from gauge creation to virtual now().
  [[nodiscard]] double integral() const { return acc_.integral(engine_.now()); }
  /// Time-average of the signal from gauge creation to virtual now().
  [[nodiscard]] double average() const { return acc_.average(engine_.now()); }

 private:
  sim::Engine& engine_;
  util::TimeWeighted acc_;
};

/// Fixed log-bucket histogram: kBucketsPerDecade buckets per decade across
/// [kMinValue, kMaxValue), plus underflow (index 0, values < kMinValue,
/// including zero) and overflow (last index) buckets. With kMinValue = 1e-6 s
/// the usable range spans microsecond RPC latencies to ~11-day intervals.
class Histogram {
 public:
  static constexpr double kMinValue = 1e-6;
  static constexpr int kBucketsPerDecade = 10;
  static constexpr int kDecades = 12;
  static constexpr int kNumBuckets = kDecades * kBucketsPerDecade + 2;

  /// Worst sample retained for one log-bucket, with the span id + sim time
  /// the instrumentation site attached — links a tail bucket back to the
  /// causal span tree that produced it.
  struct Exemplar {
    double value = 0.0;
    std::uint64_t span_id = 0;  ///< 0 = slot empty
    double time = 0.0;
  };

  void observe(double value);
  /// observe() plus exemplar context. Identical to observe(value) unless
  /// enable_exemplars() was called; a zero span id is never retained.
  void observe(double value, std::uint64_t span_id, double time);

  /// Allocate exemplar storage. Off by default: until enabled, the
  /// span-carrying observe() overload behaves exactly like observe(value)
  /// and exports are byte-identical.
  void enable_exemplars();
  [[nodiscard]] bool exemplars_enabled() const { return exemplars_ != nullptr; }
  /// Exemplar of bucket i; nullptr when disabled or the bucket has none.
  [[nodiscard]] const Exemplar* exemplar(int i) const;
  /// The exemplar of the highest occupied bucket (the worst retained
  /// sample); nullptr when disabled or none retained.
  [[nodiscard]] const Exemplar* worst_exemplar() const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// q in [0, 1]. Linear interpolation inside the containing bucket, clamped
  /// to the observed [min, max]; 0.0 when empty.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  /// Lower/upper value bound of bucket i (lower of the underflow bucket is 0).
  [[nodiscard]] static double bucket_lower(int i);
  [[nodiscard]] static double bucket_upper(int i);

 private:
  [[nodiscard]] static int bucket_index(double value);

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::unique_ptr<std::array<Exemplar, kNumBuckets>> exemplars_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric store. Lookups create on first use; references stay valid for
/// the registry's lifetime (metrics are held by unique_ptr). Iteration order
/// is the sorted name order (std::map), so exports are deterministic.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(sim::Engine& engine) : engine_(engine) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Flush every gauge's pending time segment at the current virtual time.
  /// Call at end-of-run / before exporting so the last held value is weighed.
  void flush_gauges();

  /// Lookup without creating; nullptr when the metric does not exist.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  using CounterMap = std::map<std::string, std::unique_ptr<Counter>, std::less<>>;
  using GaugeMap = std::map<std::string, std::unique_ptr<Gauge>, std::less<>>;
  using HistogramMap = std::map<std::string, std::unique_ptr<Histogram>, std::less<>>;

  [[nodiscard]] const CounterMap& counters() const { return counters_; }
  [[nodiscard]] const GaugeMap& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const { return histograms_; }

 private:
  sim::Engine& engine_;
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace snooze::telemetry
