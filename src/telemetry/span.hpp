// Span collection for causal request tracing.
//
// A span is one timed operation on one actor ("client.submit", "rpc:core.
// placement_request", "lc.start_vm"); spans of one trace form a tree through
// parent_id. The collector is append-only and passive: begin()/end() read
// the virtual clock and never touch the RNG or the event queue, so enabling
// tracing cannot perturb a deterministic run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "telemetry/context.hpp"

namespace snooze::telemetry {

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  std::string name;
  std::string actor;
  std::string detail;           ///< free-form annotation ("vm=7")
  std::string status;           ///< empty while open; "ok", "timeout", ...
  sim::Time start = 0.0;
  sim::Time end = -1.0;         ///< < 0 while the span is open

  [[nodiscard]] bool open() const { return end < 0.0; }
  [[nodiscard]] sim::Time duration(sim::Time now) const {
    return (open() ? now : end) - start;
  }
};

class SpanCollector {
 public:
  explicit SpanCollector(sim::Engine& engine) : engine_(engine) {}

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Mint a fresh trace id (one per root operation, e.g. one VM submission).
  std::uint64_t new_trace() { return next_trace_id_++; }

  /// Open a span. parent_span == 0 makes it the root of its trace. Returns
  /// an invalid context (and records nothing) when trace_id == 0.
  SpanContext begin(std::uint64_t trace_id, std::uint64_t parent_span,
                    std::string_view name, std::string_view actor,
                    std::string_view detail = {});

  /// Close a span; idempotent (the first end() wins), no-op on an invalid
  /// or unknown context.
  void end(const SpanContext& ctx, std::string_view status = "ok");

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::size_t size() const { return spans_.size(); }

  /// Lookup by span id; nullptr when unknown.
  [[nodiscard]] const SpanRecord* find(std::uint64_t span_id) const;
  /// All spans of one trace, in begin() order.
  [[nodiscard]] std::vector<const SpanRecord*> trace_spans(std::uint64_t trace_id) const;
  /// Direct children of one span, in begin() order.
  [[nodiscard]] std::vector<const SpanRecord*> children_of(std::uint64_t span_id) const;

 private:
  sim::Engine& engine_;
  std::uint64_t next_trace_id_ = 1;
  std::vector<SpanRecord> spans_;  // span_id == index + 1 (O(1) end())
};

}  // namespace snooze::telemetry
