// Span collection for causal request tracing.
//
// A span is one timed operation on one actor ("client.submit", "rpc:core.
// placement_request", "lc.start_vm"); spans of one trace form a tree through
// parent_id. The collector is append-only and passive: begin()/end() read
// the virtual clock and never touch the RNG or the event queue, so enabling
// tracing cannot perturb a deterministic run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "telemetry/context.hpp"

namespace snooze::telemetry {

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  std::string name;
  std::string actor;
  std::string detail;           ///< free-form annotation ("vm=7")
  std::string status;           ///< empty while open; "ok", "timeout", ...
  sim::Time start = 0.0;
  sim::Time end = -1.0;         ///< < 0 while the span is open

  [[nodiscard]] bool open() const { return end < 0.0; }
  [[nodiscard]] sim::Time duration(sim::Time now) const {
    return (open() ? now : end) - start;
  }
};

class SpanCollector {
 public:
  explicit SpanCollector(sim::Engine& engine) : engine_(engine) {}

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Mint a fresh trace id (one per root operation, e.g. one VM submission).
  std::uint64_t new_trace() { return next_trace_id_++; }

  /// Open a span. parent_span == 0 makes it the root of its trace. Returns
  /// an invalid context (and records nothing) when trace_id == 0.
  SpanContext begin(std::uint64_t trace_id, std::uint64_t parent_span,
                    std::string_view name, std::string_view actor,
                    std::string_view detail = {});

  /// Close a span; idempotent (the first end() wins), no-op on an invalid
  /// or unknown context — including a context whose span the ring already
  /// trimmed (a trimmed span simply stays "open" in the export, which only
  /// sees retained records anyway).
  void end(const SpanContext& ctx, std::string_view status = "ok");

  /// Bound retained spans for long-horizon runs: once the buffer reaches
  /// 2*max_spans the oldest half is trimmed (amortized O(1) per begin(),
  /// like sim::Trace ring mode). Span ids keep growing monotonically; the
  /// `dropped()` offset maps ids to retained indices. 0 = unbounded
  /// (default — short runs keep full causal trees).
  void set_max_spans(std::size_t max_spans) { max_spans_ = max_spans; }
  [[nodiscard]] std::size_t max_spans() const { return max_spans_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::size_t size() const { return spans_.size(); }

  /// Lookup by span id; nullptr when unknown.
  [[nodiscard]] const SpanRecord* find(std::uint64_t span_id) const;
  /// All spans of one trace, in begin() order.
  [[nodiscard]] std::vector<const SpanRecord*> trace_spans(std::uint64_t trace_id) const;
  /// Direct children of one span, in begin() order.
  [[nodiscard]] std::vector<const SpanRecord*> children_of(std::uint64_t span_id) const;

 private:
  sim::Engine& engine_;
  std::uint64_t next_trace_id_ = 1;
  std::vector<SpanRecord> spans_;  // span_id == dropped_ + index + 1 (O(1) end())
  std::size_t max_spans_ = 0;      // 0 = unbounded
  std::uint64_t dropped_ = 0;      // spans trimmed off the front
};

}  // namespace snooze::telemetry
