#include "telemetry/span.hpp"

namespace snooze::telemetry {

SpanContext SpanCollector::begin(std::uint64_t trace_id, std::uint64_t parent_span,
                                 std::string_view name, std::string_view actor,
                                 std::string_view detail) {
  if (trace_id == 0) return {};
  SpanRecord record;
  record.trace_id = trace_id;
  record.span_id = dropped_ + spans_.size() + 1;
  record.parent_id = parent_span;
  record.name = name;
  record.actor = actor;
  record.detail = detail;
  record.start = engine_.now();
  spans_.push_back(std::move(record));
  const std::uint64_t id = spans_.back().span_id;
  if (max_spans_ != 0 && spans_.size() >= 2 * max_spans_) {
    const std::size_t trim = spans_.size() - max_spans_;
    spans_.erase(spans_.begin(),
                 spans_.begin() + static_cast<std::ptrdiff_t>(trim));
    dropped_ += trim;
  }
  return {trace_id, id};
}

void SpanCollector::end(const SpanContext& ctx, std::string_view status) {
  if (!ctx.valid() || ctx.span_id <= dropped_ ||
      ctx.span_id > dropped_ + spans_.size()) {
    return;
  }
  SpanRecord& record = spans_[static_cast<std::size_t>(ctx.span_id - dropped_ - 1)];
  if (!record.open()) return;  // the first end() wins
  record.end = engine_.now();
  record.status = status;
}

const SpanRecord* SpanCollector::find(std::uint64_t span_id) const {
  if (span_id <= dropped_ || span_id > dropped_ + spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(span_id - dropped_ - 1)];
}

std::vector<const SpanRecord*> SpanCollector::trace_spans(std::uint64_t trace_id) const {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& record : spans_) {
    if (record.trace_id == trace_id) out.push_back(&record);
  }
  return out;
}

std::vector<const SpanRecord*> SpanCollector::children_of(std::uint64_t span_id) const {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& record : spans_) {
    if (record.parent_id == span_id) out.push_back(&record);
  }
  return out;
}

}  // namespace snooze::telemetry
