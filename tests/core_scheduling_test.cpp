// Scheduling-path tests: the GL's candidate-list + linear-search dispatch
// across multiple GMs, placement under dynamic (trace-driven) load, and the
// interaction of overload relocation with time-varying utilization.
#include <gtest/gtest.h>

#include "core/snooze.hpp"

namespace {

using namespace snooze;
using namespace snooze::core;

TraceSpec constant_trace(double v) {
  TraceSpec t;
  t.kind = TraceSpec::Kind::kConstant;
  t.a = v;
  return t;
}

TEST(Dispatch, LinearSearchFallsThroughToSecondGm) {
  // Two worker GMs with 2 LCs each. Fill GM A's LCs completely, then submit
  // more VMs: the GL's linear search must fail over to GM B.
  SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = 3;
  spec.local_controllers = 4;
  spec.seed = 42;
  spec.config.dispatch_policy = DispatchPolicyKind::kRoundRobin;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  // 4 x 0.9 VMs fill all four LCs (one each), regardless of which GM fields
  // the dispatch first — every submission must succeed even when the
  // round-robin GL first asks a GM whose LCs are already full.
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 4; ++i) {
    vms.push_back(system.make_vm({0.9, 0.9, 0.9}, 0.0, constant_trace(0.8)));
  }
  system.client().submit_all(vms, 3.0);  // spaced: summaries refresh between
  system.engine().run_until(system.engine().now() + 120.0);
  EXPECT_EQ(system.client().succeeded(), 4u);
  EXPECT_EQ(system.running_vm_count(), 4u);
  // Every LC hosts exactly one VM.
  for (const auto& lc : system.local_controllers()) {
    EXPECT_EQ(lc->vm_count(), 1u) << lc->name();
  }
}

TEST(Dispatch, FailuresReportedWhenEveryGmIsFull) {
  SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = 3;
  spec.local_controllers = 2;
  spec.seed = 42;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 3; ++i) {
    vms.push_back(system.make_vm({0.9, 0.9, 0.9}, 0.0, constant_trace(0.8)));
  }
  system.client().submit_all(vms, 3.0);
  system.engine().run_until(system.engine().now() + 200.0);
  EXPECT_EQ(system.client().succeeded(), 2u);
  EXPECT_EQ(system.client().failed(), 1u);
}

TEST(Relocation, RampingLoadTriggersOverloadAndRecovers) {
  // VMs whose utilization jumps from low to very high after placement: the
  // initial first-fit stacking becomes an overload that relocation resolves.
  SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = 2;
  spec.local_controllers = 4;
  spec.seed = 42;
  spec.config.overload_threshold = 0.75;
  spec.config.underload_threshold = 0.05;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 3; ++i) {
    // On/off trace: near-idle half the time, saturated the other half, with
    // per-VM phase -> stacked VMs will overlap their busy phases eventually.
    TraceSpec t;
    t.kind = TraceSpec::Kind::kOnOff;
    t.a = 0.1;
    t.b = 1.0;
    t.c = 120.0;
    t.d = 0.6;
    t.seed = 100 + static_cast<std::uint64_t>(i);
    vms.push_back(system.make_vm({0.3, 0.3, 0.3}, 0.0, t));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 600.0);

  std::uint64_t overloads = 0;
  for (const auto& gm : system.group_managers()) {
    overloads += gm->counters().overload_events;
  }
  EXPECT_GE(overloads, 1u);
  EXPECT_EQ(system.running_vm_count(), 3u);  // relocation never loses a VM
}

TEST(Placement, ReservationNotUtilizationGovernsAdmission) {
  // A host whose VMs are idle (low utilization) is still full by
  // reservation: a VM requesting more than the residual must be refused
  // there and go elsewhere.
  SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = 2;
  spec.local_controllers = 2;
  spec.seed = 42;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  std::vector<VmDescriptor> first{system.make_vm({0.8, 0.8, 0.8}, 0.0,
                                                 constant_trace(0.05))};
  system.client().submit_all(first, 0.0);
  system.engine().run_until(system.engine().now() + 30.0);
  ASSERT_EQ(system.running_vm_count(), 1u);
  std::vector<VmDescriptor> second{system.make_vm({0.5, 0.5, 0.5}, 0.0,
                                                  constant_trace(0.05))};
  system.client().submit_all(second, 0.0);
  system.engine().run_until(system.engine().now() + 30.0);
  ASSERT_EQ(system.running_vm_count(), 2u);
  // They must be on different LCs despite the first one being nearly idle.
  std::size_t hosts_with_vms = 0;
  for (const auto& lc : system.local_controllers()) {
    if (lc->vm_count() > 0) ++hosts_with_vms;
  }
  EXPECT_EQ(hosts_with_vms, 2u);
}

TEST(Placement, BestFitConsolidatesBetterThanRoundRobinLive) {
  auto hosts_used = [](PlacementPolicyKind kind) {
    SystemSpec spec;
    spec.entry_points = 2;
    spec.group_managers = 2;
    spec.local_controllers = 8;
    spec.seed = 42;
    spec.config.placement_policy = kind;
    spec.config.underload_threshold = 0.0;  // no relocation interference
    SnoozeSystem system(spec);
    system.start();
    system.run_until_stable(60.0);
    std::vector<VmDescriptor> vms;
    for (int i = 0; i < 8; ++i) {
      vms.push_back(system.make_vm({0.25, 0.25, 0.25}, 0.0, constant_trace(0.5)));
    }
    system.client().submit_all(vms, 0.2);
    system.engine().run_until(system.engine().now() + 60.0);
    std::size_t used = 0;
    for (const auto& lc : system.local_controllers()) {
      if (lc->vm_count() > 0) ++used;
    }
    return used;
  };
  EXPECT_LT(hosts_used(PlacementPolicyKind::kBestFit),
            hosts_used(PlacementPolicyKind::kRoundRobin));
}

}  // namespace
