// Unit tests for the Snooze scheduling building blocks: demand estimators,
// GL dispatch policies, GM placement policies, LC->GM assignment policies,
// relocation planning, and trace-spec materialization.
#include <gtest/gtest.h>

#include "core/estimator.hpp"
#include "core/policies.hpp"
#include "core/relocation.hpp"
#include "core/types.hpp"

namespace {

using namespace snooze;
using namespace snooze::core;
using hypervisor::ResourceVector;

// --- ResourceEstimator ----------------------------------------------------------

TEST(Estimator, EmptyEstimateIsZero) {
  ResourceEstimator est(3);
  EXPECT_TRUE(est.empty());
  EXPECT_EQ(est.estimate(), ResourceVector{});
}

TEST(Estimator, WindowMaxTracksComponentWiseMax) {
  ResourceEstimator est(3, EstimatorKind::kWindowMax);
  est.add({0.1, 0.5, 0.2});
  est.add({0.4, 0.2, 0.1});
  const auto e = est.estimate();
  EXPECT_DOUBLE_EQ(e.cpu(), 0.4);
  EXPECT_DOUBLE_EQ(e.memory(), 0.5);
  EXPECT_DOUBLE_EQ(e.network(), 0.2);
}

TEST(Estimator, WindowEvictsOldSamples) {
  ResourceEstimator est(2, EstimatorKind::kWindowMax);
  est.add({0.9, 0.9, 0.9});
  est.add({0.1, 0.1, 0.1});
  est.add({0.2, 0.2, 0.2});  // the 0.9 sample leaves the window
  EXPECT_DOUBLE_EQ(est.estimate().cpu(), 0.2);
}

TEST(Estimator, EwmaConvergesTowardSignal) {
  ResourceEstimator est(1, EstimatorKind::kEwma, 0.5);
  est.add({1.0, 1.0, 1.0});
  for (int i = 0; i < 20; ++i) est.add({0.0, 0.0, 0.0});
  EXPECT_LT(est.estimate().cpu(), 0.01);
}

TEST(Estimator, EwmaFirstSampleIsExact) {
  ResourceEstimator est(1, EstimatorKind::kEwma, 0.3);
  est.add({0.6, 0.4, 0.2});
  EXPECT_DOUBLE_EQ(est.estimate().cpu(), 0.6);
}

// --- helpers ----------------------------------------------------------------------

GmInfo gm_info(net::Address addr, double used_frac, std::uint32_t lcs = 4) {
  GmInfo info;
  info.gm = addr;
  info.capacity = {4.0, 4.0, 4.0};
  info.used = info.capacity.scaled(used_frac);
  info.lc_count = lcs;
  return info;
}

LcInfo lc_info(net::Address addr, double reserved_frac, double used_frac,
               bool on = true) {
  LcInfo info;
  info.lc = addr;
  info.capacity = {1.0, 1.0, 1.0};
  info.reserved = info.capacity.scaled(reserved_frac);
  info.estimated_used = info.capacity.scaled(used_frac);
  info.powered_on = on;
  return info;
}

VmDescriptor vm(double size) {
  VmDescriptor d;
  d.id = 1;
  d.requested = {size, size, size};
  return d;
}

// --- Dispatch policies -------------------------------------------------------------

TEST(Dispatch, RoundRobinRotatesStart) {
  RoundRobinDispatch policy;
  const std::vector<GmInfo> gms{gm_info(1, 0.1), gm_info(2, 0.1), gm_info(3, 0.1)};
  const auto first = policy.candidates(vm(0.2), gms, 3);
  const auto second = policy.candidates(vm(0.2), gms, 3);
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(second.size(), 3u);
  EXPECT_NE(first[0], second[0]);
}

TEST(Dispatch, RespectsMaxCandidates) {
  RoundRobinDispatch policy;
  const std::vector<GmInfo> gms{gm_info(1, 0.1), gm_info(2, 0.1), gm_info(3, 0.1)};
  EXPECT_EQ(policy.candidates(vm(0.2), gms, 2).size(), 2u);
}

TEST(Dispatch, FullGmsRankLast) {
  RoundRobinDispatch policy;
  // GM 1 summary says it has no room for a 0.5 VM; GM 2 does.
  const std::vector<GmInfo> gms{gm_info(1, 0.95), gm_info(2, 0.1)};
  const auto candidates = policy.candidates(vm(0.5), gms, 2);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0], 2u);  // likely-feasible first
  EXPECT_EQ(candidates[1], 1u);  // still tried (summaries are approximate)
}

TEST(Dispatch, LeastLoadedOrdersByLoad) {
  LeastLoadedDispatch policy;
  const std::vector<GmInfo> gms{gm_info(1, 0.7), gm_info(2, 0.2), gm_info(3, 0.5)};
  const auto candidates = policy.candidates(vm(0.1), gms, 3);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0], 2u);
  EXPECT_EQ(candidates[1], 3u);
  EXPECT_EQ(candidates[2], 1u);
}

TEST(Dispatch, EmptyGmListYieldsNothing) {
  RoundRobinDispatch rr;
  LeastLoadedDispatch ll;
  EXPECT_TRUE(rr.candidates(vm(0.1), {}, 4).empty());
  EXPECT_TRUE(ll.candidates(vm(0.1), {}, 4).empty());
}

// --- Placement policies ---------------------------------------------------------------

TEST(Placement, FirstFitTakesFirstFeasible) {
  FirstFitPlacement policy;
  const std::vector<LcInfo> lcs{lc_info(1, 0.9, 0.9), lc_info(2, 0.3, 0.3),
                                lc_info(3, 0.0, 0.0)};
  EXPECT_EQ(policy.choose(vm(0.5), lcs), 2u);
}

TEST(Placement, SkipsPoweredOffLcs) {
  FirstFitPlacement policy;
  const std::vector<LcInfo> lcs{lc_info(1, 0.0, 0.0, /*on=*/false),
                                lc_info(2, 0.0, 0.0)};
  EXPECT_EQ(policy.choose(vm(0.5), lcs), 2u);
}

TEST(Placement, ReturnsNullWhenNothingFits) {
  FirstFitPlacement policy;
  const std::vector<LcInfo> lcs{lc_info(1, 0.8, 0.8), lc_info(2, 0.9, 0.9)};
  EXPECT_EQ(policy.choose(vm(0.5), lcs), net::kNullAddress);
}

TEST(Placement, RoundRobinSpreadsLoad) {
  RoundRobinPlacement policy;
  const std::vector<LcInfo> lcs{lc_info(1, 0.0, 0.0), lc_info(2, 0.0, 0.0),
                                lc_info(3, 0.0, 0.0)};
  const auto a = policy.choose(vm(0.1), lcs);
  const auto b = policy.choose(vm(0.1), lcs);
  EXPECT_NE(a, b);
}

TEST(Placement, BestFitPicksTightest) {
  BestFitPlacement policy;
  const std::vector<LcInfo> lcs{lc_info(1, 0.1, 0.1), lc_info(2, 0.45, 0.45),
                                lc_info(3, 0.3, 0.3)};
  // A 0.5 VM fits on 1 (residual 0.4/dim), on 2 (residual 0.05), on 3 (0.2).
  EXPECT_EQ(policy.choose(vm(0.5), lcs), 2u);
}

TEST(Placement, FactoryReturnsRequestedKind) {
  EXPECT_NE(dynamic_cast<FirstFitPlacement*>(
                make_placement_policy(PlacementPolicyKind::kFirstFit).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<RoundRobinPlacement*>(
                make_placement_policy(PlacementPolicyKind::kRoundRobin).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<BestFitPlacement*>(
                make_placement_policy(PlacementPolicyKind::kBestFit).get()),
            nullptr);
}

// --- Assignment policies -----------------------------------------------------------------

TEST(Assignment, RoundRobinCycles) {
  RoundRobinAssignment policy;
  const std::vector<GmInfo> gms{gm_info(1, 0.1), gm_info(2, 0.1)};
  const auto a = policy.assign(gms);
  const auto b = policy.assign(gms);
  const auto c = policy.assign(gms);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
}

TEST(Assignment, LeastLoadedPicksFewestLcs) {
  LeastLoadedAssignment policy;
  const std::vector<GmInfo> gms{gm_info(1, 0.1, 8), gm_info(2, 0.1, 2),
                                gm_info(3, 0.1, 5)};
  EXPECT_EQ(policy.assign(gms), 2u);
}

TEST(Assignment, EmptyYieldsNull) {
  RoundRobinAssignment rr;
  LeastLoadedAssignment ll;
  EXPECT_EQ(rr.assign({}), net::kNullAddress);
  EXPECT_EQ(ll.assign({}), net::kNullAddress);
}

// --- Relocation planning ---------------------------------------------------------------

std::vector<VmLoad> make_loads(std::initializer_list<double> sizes) {
  std::vector<VmLoad> out;
  VmId id = 1;
  for (double s : sizes) {
    VmLoad load;
    load.vm = id++;
    load.estimated = {s, s, s};
    load.requested = {s, s, s};
    out.push_back(load);
  }
  return out;
}

TEST(Relocation, OverloadMovesBiggestVmFirst) {
  LcInfo hot = lc_info(1, 0.95, 0.95);
  const auto vms = make_loads({0.5, 0.3, 0.15});
  const std::vector<LcInfo> others{lc_info(2, 0.1, 0.1)};
  const auto plan = plan_overload_relocation(hot, vms, others, 0.9);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan[0].vm, 1u);  // the 0.5 VM
  EXPECT_EQ(plan[0].to, 2u);
}

TEST(Relocation, OverloadStopsOnceBelowThreshold) {
  LcInfo hot = lc_info(1, 0.95, 0.95);
  const auto vms = make_loads({0.4, 0.3, 0.25});
  const std::vector<LcInfo> others{lc_info(2, 0.0, 0.0), lc_info(3, 0.0, 0.0)};
  const auto plan = plan_overload_relocation(hot, vms, others, 0.9);
  // Moving the single 0.4 VM brings 0.95 -> 0.55 < 0.9: one move suffices.
  EXPECT_EQ(plan.size(), 1u);
}

TEST(Relocation, OverloadAvoidsOverloadingTargets) {
  LcInfo hot = lc_info(1, 0.95, 0.95);
  const auto vms = make_loads({0.5});
  // Target already at 0.6: adding 0.5 would overload it.
  const std::vector<LcInfo> others{lc_info(2, 0.6, 0.6)};
  const auto plan = plan_overload_relocation(hot, vms, others, 0.9);
  EXPECT_TRUE(plan.empty());
}

TEST(Relocation, UnderloadEvacuatesEverything) {
  LcInfo cold = lc_info(1, 0.15, 0.15);
  const auto vms = make_loads({0.1, 0.05});
  const std::vector<LcInfo> others{lc_info(2, 0.5, 0.5), lc_info(3, 0.4, 0.4)};
  const auto plan =
      plan_underload_relocation(cold, vms, others, 0.2, 0.9);
  EXPECT_EQ(plan.size(), 2u);
}

TEST(Relocation, UnderloadPrefersModeratelyLoadedTargets) {
  LcInfo cold = lc_info(1, 0.1, 0.1);
  const auto vms = make_loads({0.1});
  // Peer 2 is itself underloaded; peer 3 is moderately loaded.
  const std::vector<LcInfo> others{lc_info(2, 0.05, 0.05), lc_info(3, 0.5, 0.5)};
  const auto plan = plan_underload_relocation(cold, vms, others, 0.2, 0.9);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].to, 3u);
}

TEST(Relocation, UnderloadAllOrNothing) {
  LcInfo cold = lc_info(1, 0.6, 0.15);
  const auto vms = make_loads({0.3, 0.3});
  // Only room for one of the two VMs elsewhere: plan must be empty.
  const std::vector<LcInfo> others{lc_info(2, 0.6, 0.5)};
  const auto plan = plan_underload_relocation(cold, vms, others, 0.2, 0.9);
  EXPECT_TRUE(plan.empty());
}

TEST(Relocation, UnderloadRejectsPingPongPlans) {
  LcInfo cold = lc_info(1, 0.1, 0.1);
  const auto vms = make_loads({0.05, 0.05});
  // Only an empty peer exists: after receiving 0.1 total it would still be
  // underloaded (<= 0.2) and would bounce the VMs right back. No plan.
  const std::vector<LcInfo> others{lc_info(2, 0.0, 0.0)};
  EXPECT_TRUE(plan_underload_relocation(cold, vms, others, 0.2, 0.9).empty());
}

TEST(Relocation, UnderloadAcceptsPlanThatCrossesThreshold) {
  LcInfo cold = lc_info(1, 0.15, 0.15);
  const auto vms = make_loads({0.15});
  // Target at 0.1: receiving 0.15 puts it at 0.25 > 0.2 -> stable home.
  const std::vector<LcInfo> others{lc_info(2, 0.1, 0.1)};
  EXPECT_EQ(plan_underload_relocation(cold, vms, others, 0.2, 0.9).size(), 1u);
}

TEST(Relocation, EmptyVmListNoMoves) {
  LcInfo cold = lc_info(1, 0.0, 0.0);
  EXPECT_TRUE(plan_underload_relocation(cold, {}, {lc_info(2, 0.5, 0.5)}, 0.2, 0.9)
                  .empty());
  EXPECT_TRUE(plan_overload_relocation(cold, {}, {lc_info(2, 0.5, 0.5)}, 0.9).empty());
}

// --- TraceSpec materialization ------------------------------------------------------------

TEST(TraceSpec, ConstantKind) {
  TraceSpec spec;
  spec.kind = TraceSpec::Kind::kConstant;
  spec.a = 0.3;
  const auto f = make_trace(spec);
  EXPECT_DOUBLE_EQ(f(100.0), 0.3);
}

TEST(TraceSpec, SinusoidalKind) {
  TraceSpec spec;
  spec.kind = TraceSpec::Kind::kSinusoidal;
  spec.a = 0.5;
  spec.b = 0.2;
  spec.c = 100.0;
  const auto f = make_trace(spec);
  EXPECT_NEAR(f(25.0), 0.7, 1e-9);
}

TEST(TraceSpec, RandomStepsDeterministic) {
  TraceSpec spec;
  spec.kind = TraceSpec::Kind::kRandomSteps;
  spec.a = 0.2;
  spec.b = 0.8;
  spec.c = 10.0;
  spec.seed = 5;
  const auto f = make_trace(spec);
  const auto g = make_trace(spec);
  EXPECT_DOUBLE_EQ(f(33.0), g(33.0));
}

TEST(TraceSpec, OnOffKind) {
  TraceSpec spec;
  spec.kind = TraceSpec::Kind::kOnOff;
  spec.a = 0.1;
  spec.b = 0.9;
  spec.c = 50.0;
  spec.d = 0.5;
  const auto f = make_trace(spec);
  bool low = false, high = false;
  for (double t = 0; t < 50.0; t += 1.0) {
    if (f(t) < 0.5) low = true;
    if (f(t) > 0.5) high = true;
  }
  EXPECT_TRUE(low && high);
}

}  // namespace
