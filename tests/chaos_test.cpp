// Chaos subsystem tests: seeded schedule generation (determinism, healing
// discipline, script round-trip), the script parser's error reporting, the
// invariant checker's ability to actually catch violations, and end-to-end
// seeded chaos runs — including the multi-seed soak required by the paper's
// fault-tolerance claims and the trace-hash reproducibility guarantee.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <stdexcept>

#include "chaos/invariants.hpp"
#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "core/snooze.hpp"

namespace {

using namespace snooze;
using namespace snooze::chaos;

// --- Schedule generator ------------------------------------------------------

TEST(ScheduleGenerator, SameSeedSameSchedule) {
  const ChaosSpec spec;
  const Topology topo;
  const auto a = generate_schedule(spec, topo, 7);
  const auto b = generate_schedule(spec, topo, 7);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  EXPECT_EQ(a.to_script(), b.to_script());
}

TEST(ScheduleGenerator, DifferentSeedsDiffer) {
  const ChaosSpec spec;
  const Topology topo;
  EXPECT_NE(generate_schedule(spec, topo, 1).to_script(),
            generate_schedule(spec, topo, 2).to_script());
}

TEST(ScheduleGenerator, ProducesFaultsAtDefaultRate) {
  const auto schedule = generate_schedule(ChaosSpec{}, Topology{}, 3);
  EXPECT_FALSE(schedule.actions.empty());
}

// Audit that every fault window a schedule opens is closed by the horizon.
// Crash/isolate/slow/steal windows pair through ids; link/flaky windows pair
// through their endpoint quadruple; global loss closes with a drop-0 action.
void audit_window_pairing(const FaultSchedule& schedule, std::uint64_t seed) {
  std::map<int, const FaultAction*> open;
  std::multimap<std::array<int, 4>, const FaultAction*> open_links;
  auto link_key = [](const FaultAction& a) {
    return std::array<int, 4>{static_cast<int>(a.role), a.index,
                              static_cast<int>(a.role2), a.index2};
  };
  double last_global_drop = 0.0;
  for (const auto& action : schedule.actions) {
    EXPECT_LE(action.at, schedule.duration) << "seed " << seed;
    switch (action.kind) {
      case ActionKind::kCrash:
      case ActionKind::kIsolate:
      case ActionKind::kSlow:
      case ActionKind::kSteal:
        ASSERT_NE(action.pair, 0) << "seed " << seed << ": unpaired window";
        open[action.pair] = &action;
        break;
      case ActionKind::kRecover:
      case ActionKind::kHeal:
      case ActionKind::kUnslow:
      case ActionKind::kUnsteal: {
        const auto it = open.find(action.pair);
        ASSERT_NE(it, open.end()) << "seed " << seed << ": close without open";
        // A window never closes before it opened.
        EXPECT_GE(action.at, it->second->at) << "seed " << seed;
        open.erase(it);
        break;
      }
      case ActionKind::kLink:
      case ActionKind::kFlaky:
        open_links.emplace(link_key(action), &action);
        break;
      case ActionKind::kUnlink:
      case ActionKind::kUnflaky: {
        const auto it = open_links.find(link_key(action));
        ASSERT_NE(it, open_links.end())
            << "seed " << seed << ": unlink without link";
        EXPECT_GE(action.at, it->second->at) << "seed " << seed;
        open_links.erase(it);
        break;
      }
      case ActionKind::kGlobalDrop:
        last_global_drop = action.drop;
        break;
      case ActionKind::kHealAll:
        break;
    }
  }
  EXPECT_TRUE(open.empty()) << "seed " << seed << ": window never healed";
  EXPECT_TRUE(open_links.empty()) << "seed " << seed << ": link never unfaulted";
  EXPECT_EQ(last_global_drop, 0.0) << "seed " << seed << ": loss left on";
}

TEST(ScheduleGenerator, EveryWindowHealsWithinTheHorizon) {
  const ChaosSpec spec;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    audit_window_pairing(generate_schedule(spec, Topology{}, seed), seed);
  }
}

TEST(ScheduleGenerator, GrayWindowsPairAndHealToo) {
  ChaosSpec spec;
  spec.weight_slow = 2.0;
  spec.weight_steal = 2.0;
  spec.weight_flaky = 2.0;
  bool saw_gray = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto schedule = generate_schedule(spec, Topology{}, seed);
    audit_window_pairing(schedule, seed);
    for (const auto& a : schedule.actions) {
      if (a.kind == ActionKind::kSlow) {
        EXPECT_GT(a.severity, 1.0) << "seed " << seed;
        EXPECT_LE(a.severity, spec.max_slow_factor) << "seed " << seed;
        saw_gray = true;
      } else if (a.kind == ActionKind::kSteal) {
        EXPECT_EQ(a.role, NodeRole::kLc) << "seed " << seed;
        EXPECT_GT(a.severity, 0.0) << "seed " << seed;
        EXPECT_LE(a.severity, spec.max_steal_frac) << "seed " << seed;
        saw_gray = true;
      } else if (a.kind == ActionKind::kFlaky) {
        EXPECT_GT(a.faults.flaky_latency, 0.0) << "seed " << seed;
        saw_gray = true;
      }
    }
  }
  EXPECT_TRUE(saw_gray) << "gray weights produced no gray faults in 10 seeds";
}

TEST(ScheduleGenerator, RespectsCrashFloors) {
  ChaosSpec spec;
  spec.fault_rate = 0.5;  // dense schedule to stress the targeting floors
  const Topology topo;
  const auto schedule = generate_schedule(spec, topo, 11);
  // Count concurrently open crash windows per role; the generator must keep
  // at least min_live nodes of each role untouched at any instant.
  std::map<int, const FaultAction*> open_by_pair;
  std::map<NodeRole, int> open_crashes;
  for (const auto& action : schedule.actions) {
    if (action.kind == ActionKind::kCrash || action.kind == ActionKind::kIsolate) {
      open_by_pair[action.pair] = &action;
      ++open_crashes[action.role];
      if (action.role == NodeRole::kGm || action.role == NodeRole::kGl) {
        EXPECT_LE(open_crashes[NodeRole::kGm] + open_crashes[NodeRole::kGl],
                  static_cast<int>(topo.group_managers - spec.min_live_gms));
      }
      if (action.role == NodeRole::kLc) {
        EXPECT_LE(open_crashes[NodeRole::kLc],
                  static_cast<int>(topo.local_controllers - spec.min_live_lcs));
      }
    } else if (action.kind == ActionKind::kRecover || action.kind == ActionKind::kHeal) {
      const auto it = open_by_pair.find(action.pair);
      if (it != open_by_pair.end()) {
        --open_crashes[it->second->role];
        open_by_pair.erase(it);
      }
    }
  }
}

// --- Script round-trip and parser --------------------------------------------

TEST(Script, RoundTripIsStable) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto schedule = generate_schedule(ChaosSpec{}, Topology{}, seed);
    const std::string script = schedule.to_script();
    const auto reparsed = parse_script(script);
    EXPECT_EQ(reparsed.to_script(), script) << "seed " << seed;
    EXPECT_DOUBLE_EQ(reparsed.duration, schedule.duration);
    EXPECT_EQ(reparsed.actions.size(), schedule.actions.size());
  }
}

TEST(Script, ParsesHandWrittenSchedule) {
  const auto schedule = parse_script(
      "# warm-up, then kill the leader and flake a link\n"
      "duration 60\n"
      "10 crash gl #1\n"
      "25 recover #1\n"
      "30 link gm 0 lc 2 drop=0.3 dup=0.1 lat=0.05\n"
      "45 unlink gm 0 lc 2\n"
      "50 drop 0.02\n"
      "55 drop 0\n"
      "59 heal all\n");
  EXPECT_DOUBLE_EQ(schedule.duration, 60.0);
  ASSERT_EQ(schedule.actions.size(), 7u);
  EXPECT_EQ(schedule.actions[0].kind, ActionKind::kCrash);
  EXPECT_EQ(schedule.actions[0].role, NodeRole::kGl);
  EXPECT_EQ(schedule.actions[0].pair, 1);
  EXPECT_EQ(schedule.actions[2].kind, ActionKind::kLink);
  EXPECT_DOUBLE_EQ(schedule.actions[2].faults.drop, 0.3);
  EXPECT_DOUBLE_EQ(schedule.actions[2].faults.duplicate, 0.1);
  EXPECT_DOUBLE_EQ(schedule.actions[2].faults.extra_latency, 0.05);
  EXPECT_EQ(schedule.actions[6].kind, ActionKind::kHealAll);
}

TEST(Script, RejectsGarbageWithLineNumber) {
  try {
    (void)parse_script("duration 60\n10 explode lc 0\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Script, RejectsBadNumbers) {
  EXPECT_THROW((void)parse_script("duration sixty\n"), std::runtime_error);
  EXPECT_THROW((void)parse_script("duration 60\nsoon crash lc 0\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_script("duration 60\n5 link gm 0 lc 1 drop=lots\n"),
               std::runtime_error);
}

TEST(Script, ParsesGrayFaults) {
  const auto schedule = parse_script(
      "duration 80\n"
      "5 slow lc 2 factor=3.5 #1\n"
      "30 unslow #1\n"
      "10 slow gm 1 factor=2\n"
      "35 unslow gm 1\n"
      "15 steal lc 4 frac=0.4 #2\n"
      "40 unsteal #2\n"
      "20 flaky gm 0 lc 3 lat=0.3 start=0.1 stop=0.5\n"
      "45 unflaky gm 0 lc 3\n");
  ASSERT_EQ(schedule.actions.size(), 8u);
  const auto& slow = schedule.actions[0];
  EXPECT_EQ(slow.kind, ActionKind::kSlow);
  EXPECT_EQ(slow.role, NodeRole::kLc);
  EXPECT_EQ(slow.index, 2);
  EXPECT_DOUBLE_EQ(slow.severity, 3.5);
  EXPECT_EQ(slow.pair, 1);
  const auto& steal = schedule.actions[2];
  EXPECT_EQ(steal.kind, ActionKind::kSteal);
  EXPECT_DOUBLE_EQ(steal.severity, 0.4);
  const auto& flaky = schedule.actions[3];
  EXPECT_EQ(flaky.kind, ActionKind::kFlaky);
  EXPECT_DOUBLE_EQ(flaky.faults.flaky_latency, 0.3);
  EXPECT_DOUBLE_EQ(flaky.faults.flaky_start, 0.1);
  EXPECT_DOUBLE_EQ(flaky.faults.flaky_stop, 0.5);
  // And the gray verbs round-trip through to_script() like everything else.
  EXPECT_EQ(parse_script(schedule.to_script()).to_script(), schedule.to_script());
}

TEST(Script, GrayFaultErrorsCarryLineNumbers) {
  const struct {
    const char* script;
    const char* expect;  ///< substring of the error message
  } cases[] = {
      {"duration 60\n5 slow lc 0\n", "slow needs factor=<value>"},
      {"duration 60\n5 slow lc 0 factor=0.5\n", "slow factor must be > 1"},
      {"duration 60\n5 slow ep 0 factor=2\n", "slow only applies to gm/lc"},
      {"duration 60\n5 steal gm 0 frac=0.3\n", "steal only applies to lc"},
      {"duration 60\n5 steal lc 0 frac=1.5\n", "steal fraction must be in (0,1)"},
      {"duration 60\n5 flaky gm 0 lc 1 start=0.1\n", "flaky needs lat=<seconds>"},
      {"duration 60\n5 flaky gm 0 lc 1 lat=0.3 wobble=2\n", "unknown flaky knob"},
      {"duration 60\n5 flaky gm 0 lc 1 lat=0.3 start=2\n",
       "flaky start must be in (0,1]"},
  };
  for (const auto& c : cases) {
    try {
      (void)parse_script(c.script);
      FAIL() << "expected parse error for: " << c.script;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 2"), std::string::npos) << what;
      EXPECT_NE(what.find(c.expect), std::string::npos) << what;
    }
  }
}

// --- Invariant checker actually catches violations ---------------------------

TEST(Invariants, CleanRunHoldsEverything) {
  core::SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = 3;
  spec.local_controllers = 9;
  spec.seed = 42;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  InvariantChecker checker(system);
  checker.start();
  system.engine().run_until(system.engine().now() + 120.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_TRUE(checker.final_check(60.0));
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(Invariants, LostAcceptedVmIsReported) {
  core::SystemSpec spec;
  spec.seed = 42;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  InvariantChecker checker(system);
  checker.start();
  checker.note_accepted(999999);  // never actually placed anywhere
  EXPECT_TRUE(checker.final_check(60.0));
  EXPECT_FALSE(checker.ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations().front().find("hosted"), std::string::npos);
}

TEST(Invariants, ExcusedVmIsNotReported) {
  core::SystemSpec spec;
  spec.seed = 42;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  InvariantChecker checker(system);
  checker.start();
  checker.note_accepted(999999);
  checker.excuse_vms({999999});
  EXPECT_TRUE(checker.final_check(60.0));
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(Invariants, DuplicateVmInstanceIsReported) {
  core::SystemSpec spec;
  spec.seed = 42;
  // Three GMs: one is promoted GL, leaving two working groups so the rogue
  // copies can land under *different* GMs (same-GM copies get resolved).
  spec.group_managers = 3;
  spec.local_controllers = 4;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  InvariantChecker::Options options;
  options.duplicate_grace = 2.0;
  InvariantChecker checker(system, options);
  checker.start();

  // Bypass the management hierarchy and start the same VM on two LCs under
  // *different* GMs — the split-brain placement the checker must flag.
  // (Same-GM duplicates no longer persist: the GM stops the orphan copy on
  // its next monitoring report — see DuplicateUnderOneGmIsResolved.)
  const auto& lcs = system.local_controllers();
  std::size_t second = 1;
  for (std::size_t i = 1; i < lcs.size(); ++i) {
    if (lcs[i]->gm() != lcs[0]->gm()) {
      second = i;
      break;
    }
  }
  ASSERT_NE(lcs[second]->gm(), lcs[0]->gm());
  const auto vm = system.make_vm({0.1, 0.1, 0.1});
  net::RpcEndpoint rogue(system.engine(), system.network(),
                         system.network().allocate_address(), "rogue");
  for (const std::size_t i : {std::size_t{0}, second}) {
    auto start = std::make_shared<core::StartVmRequest>();
    start->vm = vm;
    rogue.call(lcs[i]->address(), start, 5.0, [](bool, const net::MsgPtr&) {});
  }
  system.engine().run_until(system.engine().now() + 30.0);
  EXPECT_FALSE(checker.ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.violations().front().find("duplicate"), std::string::npos)
      << checker.violations().front();
}

TEST(Invariants, DuplicateUnderOneGmIsResolved) {
  core::SystemSpec spec;
  spec.seed = 42;
  spec.local_controllers = 4;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  InvariantChecker::Options options;
  options.duplicate_grace = 15.0;
  InvariantChecker checker(system, options);
  checker.start();

  // The same rogue double-start, but both copies land under one GM: its
  // monitoring reconciliation must notice the VM is already recorded on a
  // sibling LC and stop the orphan before the grace window expires.
  const auto& lcs = system.local_controllers();
  std::size_t second = 1;
  for (std::size_t i = 1; i < lcs.size(); ++i) {
    if (lcs[i]->gm() == lcs[0]->gm()) {
      second = i;
      break;
    }
  }
  ASSERT_EQ(lcs[second]->gm(), lcs[0]->gm());
  const auto vm = system.make_vm({0.1, 0.1, 0.1});
  net::RpcEndpoint rogue(system.engine(), system.network(),
                         system.network().allocate_address(), "rogue");
  for (const std::size_t i : {std::size_t{0}, second}) {
    auto start = std::make_shared<core::StartVmRequest>();
    start->vm = vm;
    rogue.call(lcs[i]->address(), start, 5.0, [](bool, const net::MsgPtr&) {});
  }
  system.engine().run_until(system.engine().now() + 60.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
  std::uint64_t resolved = 0;
  for (const auto& gm : system.group_managers()) {
    resolved += gm->counters().duplicates_resolved;
  }
  EXPECT_GE(resolved, 1u);
  // Exactly one live copy remains.
  std::size_t live = 0;
  for (const auto& lc : lcs) {
    if (lc->host().vms().count(vm.id) > 0) ++live;
  }
  EXPECT_EQ(live, 1u);
}

TEST(Invariants, DuplicateAcrossGmsIsResolved) {
  core::SystemSpec spec;
  spec.seed = 42;
  spec.group_managers = 3;
  spec.local_controllers = 4;
  // With the delta-summary stream the GL keeps a VM -> GM ownership
  // inventory, so the split-brain placement that is merely *reported* in
  // DuplicateVmInstanceIsReported gets actively resolved: the GL revokes the
  // challenger copy and exactly one instance survives.
  spec.config.delta_summaries = true;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  InvariantChecker::Options options;
  options.duplicate_grace = 20.0;
  InvariantChecker checker(system, options);
  checker.start();

  const auto& lcs = system.local_controllers();
  std::size_t second = 1;
  for (std::size_t i = 1; i < lcs.size(); ++i) {
    if (lcs[i]->gm() != lcs[0]->gm()) {
      second = i;
      break;
    }
  }
  ASSERT_NE(lcs[second]->gm(), lcs[0]->gm());
  const auto vm = system.make_vm({0.1, 0.1, 0.1});
  net::RpcEndpoint rogue(system.engine(), system.network(),
                         system.network().allocate_address(), "rogue");
  for (const std::size_t i : {std::size_t{0}, second}) {
    auto start = std::make_shared<core::StartVmRequest>();
    start->vm = vm;
    rogue.call(lcs[i]->address(), start, 5.0, [](bool, const net::MsgPtr&) {});
  }
  system.engine().run_until(system.engine().now() + 60.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
  std::uint64_t revoked = 0;
  std::uint64_t honored = 0;
  for (const auto& gm : system.group_managers()) {
    revoked += gm->counters().cross_gm_duplicates_revoked;
    honored += gm->counters().revokes_honored;
  }
  EXPECT_GE(revoked, 1u) << "the GL never issued a revocation";
  EXPECT_GE(honored, 1u) << "no GM honored the revocation";
  std::size_t live = 0;
  for (const auto& lc : lcs) {
    if (lc->host().vms().count(vm.id) > 0) ++live;
  }
  EXPECT_EQ(live, 1u) << "exactly one copy must survive resolution";
}

// --- End-to-end seeded chaos runs --------------------------------------------

TEST(ChaosRun, SingleSeedHoldsInvariantsAndReconverges) {
  ChaosRunConfig cfg;
  cfg.seed = 7;
  const auto result = run_chaos(cfg);
  EXPECT_TRUE(result.converged) << result.report;
  EXPECT_TRUE(result.invariants_ok) << result.report;
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_GT(result.vms_accepted, 0u);
  EXPECT_NE(result.trace_hash, 0u);
}

TEST(ChaosRun, SameSeedSameTraceHash) {
  ChaosRunConfig cfg;
  cfg.seed = 12;
  const auto first = run_chaos(cfg);
  const auto second = run_chaos(cfg);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
  EXPECT_EQ(first.messages_sent, second.messages_sent);
  EXPECT_EQ(first.report, second.report);
}

TEST(ChaosRun, DifferentSeedsDifferentTraceHash) {
  ChaosRunConfig a;
  a.seed = 1;
  ChaosRunConfig b;
  b.seed = 2;
  EXPECT_NE(run_chaos(a).trace_hash, run_chaos(b).trace_hash);
}

TEST(ChaosRun, ExplicitScriptRunsDeterministically) {
  ChaosRunConfig cfg;
  const auto schedule = parse_script(
      "duration 40\n"
      "5 crash gl #1\n"
      "20 recover #1\n"
      "10 isolate lc 3 #2\n"
      "25 heal #2\n");
  const auto first = run_chaos_schedule(cfg, schedule);
  const auto second = run_chaos_schedule(cfg, schedule);
  EXPECT_TRUE(first.ok()) << first.report;
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  // Only the two inject actions count; the recover/heal closes do not.
  EXPECT_EQ(first.faults_injected, 2u);
}

TEST(ChaosRun, DeltaSummariesSurviveSeededPartitions) {
  // Seed 45 generates the partition/heal shape that historically produced
  // cross-GM duplicate placements (a GM isolated mid-dispatch, the client
  // resubmitting to the surviving side, the partition healing with both
  // copies alive). With the delta-summary stream on, the run must not just
  // detect that state — it must converge with invariants clean, which
  // requires the GL inventory to resolve the duplicates and the ack'd delta
  // stream to survive the same loss/duplication the schedule injects.
  ChaosRunConfig cfg;
  cfg.seed = 45;
  cfg.config.delta_summaries = true;
  const auto result = run_chaos(cfg);
  EXPECT_TRUE(result.converged) << result.report;
  EXPECT_TRUE(result.invariants_ok) << result.report;
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_GT(result.vms_accepted, 0u);
  // And deterministically so: the ack'd RPC stream must not introduce any
  // seed-external ordering.
  const auto again = run_chaos(cfg);
  EXPECT_EQ(result.trace_hash, again.trace_hash);
  EXPECT_EQ(result.report, again.report);
}

// The >= 20-seed acceptance soak lives in chaos_soak_test.cpp (ctest label
// `soak`) so the tier-1 suite stays fast.

}  // namespace
