// Tests for the telemetry subsystem: metrics (counters, time-weighted
// gauges, log-bucket histograms), causal spans, exporters, and — the
// acceptance-critical part — the end-to-end span tree of one VM submission
// crossing client → EP → GL → GM → LC, including a retried RPC.
#include <gtest/gtest.h>

#include <cmath>
#include <string_view>
#include <vector>

#include "chaos/runner.hpp"
#include "core/system.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "util/csv.hpp"

namespace {

using namespace snooze;

// --- metrics -----------------------------------------------------------------------

TEST(Counter, AccumulatesDeltas) {
  telemetry::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TimeWeightedIntegralAndAverage) {
  sim::Engine engine;
  telemetry::MetricsRegistry registry(engine);
  auto& g = registry.gauge("vms");
  g.set(2.0);  // t = 0
  engine.schedule(10.0, [&] { g.set(4.0); });
  engine.schedule(15.0, [] {});  // advance the clock past the change
  engine.run();
  ASSERT_DOUBLE_EQ(engine.now(), 15.0);
  // 2 for 10s + 4 for 5s.
  EXPECT_DOUBLE_EQ(g.current(), 4.0);
  EXPECT_DOUBLE_EQ(g.integral(), 40.0);
  EXPECT_DOUBLE_EQ(g.average(), 40.0 / 15.0);
}

TEST(Gauge, FlushCommitsTailSegmentWithoutDoubleCounting) {
  sim::Engine engine;
  telemetry::MetricsRegistry registry(engine);
  auto& g = registry.gauge("vms");
  g.set(3.0);  // t = 0
  engine.schedule(10.0, [&] {
    // End-of-run flush: commits the 0..10 segment into the stored integral.
    registry.flush_gauges();
    registry.flush_gauges();  // idempotent at one timestamp
  });
  engine.schedule(15.0, [] {});
  engine.run();

  // A correct flush is invisible to integral()/average(): the 0..10 segment
  // is committed once, and accumulation continues across it (3 * 15 = 45).
  EXPECT_DOUBLE_EQ(g.current(), 3.0);
  EXPECT_DOUBLE_EQ(g.integral(), 45.0);
  EXPECT_DOUBLE_EQ(g.average(), 3.0);
}

TEST(Gauge, AddIsRelativeToCurrent) {
  sim::Engine engine;
  telemetry::MetricsRegistry registry(engine);
  auto& g = registry.gauge("g");
  g.add(3.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.current(), 2.0);
}

TEST(Histogram, EmptyReportsZeroes) {
  telemetry::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, IdenticalSamplesClampToExactValue) {
  telemetry::Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(1e-3);
  EXPECT_EQ(h.count(), 10u);
  // Interpolation inside the bucket is clamped to the observed [min, max].
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1e-3);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 1e-3);
}

TEST(Histogram, InBucketInterpolationIsGeometric) {
  // Two samples spanning one log bucket ([1.0, 10^0.1) s): the p50 rank
  // falls halfway through the bucket, so the interpolated value must be the
  // bucket's geometric midpoint — strictly below the arithmetic midpoint a
  // linear interpolation would report (the tail-percentile bias log buckets
  // otherwise introduce).
  telemetry::Histogram h;
  const double lower = 1.0;
  const double upper = 1e-6 * std::pow(10.0, 61.0 / 10.0);  // same bucket's top
  h.observe(1.0);
  h.observe(1.25);  // still inside [1.0, 1.2589...)

  const double p50 = h.percentile(0.5);
  EXPECT_NEAR(p50, std::sqrt(lower * upper), 1e-12);
  EXPECT_LT(p50, 0.5 * (lower + upper));
  // The top rank interpolates to the bucket upper bound, then clamps to the
  // observed max.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.25);
}

TEST(Histogram, PercentilesOnBimodalDistribution) {
  telemetry::Histogram h;
  for (int i = 0; i < 75; ++i) h.observe(1e-3);
  for (int i = 0; i < 25; ++i) h.observe(0.1);
  // p50 lands in the 1ms bucket, p99 in the 100ms bucket.
  EXPECT_GE(h.percentile(0.5), 1e-3);
  EXPECT_LT(h.percentile(0.5), 1.3e-3);
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 0.1);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.1);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 0.1);
}

TEST(Histogram, UnderflowAndOverflowBucketsClampToObservedRange) {
  telemetry::Histogram under;
  under.observe(0.0);
  under.observe(1e-9);
  EXPECT_EQ(under.bucket_count(0), 2u);  // both below kMinValue
  EXPECT_LE(under.percentile(0.5), 1e-9);
  EXPECT_DOUBLE_EQ(under.min(), 0.0);

  telemetry::Histogram over;
  over.observe(1e12);  // far past the last finite bucket
  EXPECT_DOUBLE_EQ(over.percentile(0.5), 1e12);
  EXPECT_DOUBLE_EQ(over.max(), 1e12);
}

TEST(MetricsRegistry, CreateOnFirstUseAndFind) {
  sim::Engine engine;
  telemetry::MetricsRegistry registry(engine);
  EXPECT_EQ(registry.find_counter("c"), nullptr);
  EXPECT_EQ(registry.find_gauge("g"), nullptr);
  EXPECT_EQ(registry.find_histogram("h"), nullptr);

  auto& c = registry.counter("c");
  c.inc();
  // Same name resolves to the same metric; references stay valid.
  EXPECT_EQ(&registry.counter("c"), &c);
  EXPECT_EQ(registry.find_counter("c"), &c);
  registry.gauge("g");
  registry.histogram("h");
  EXPECT_NE(registry.find_gauge("g"), nullptr);
  EXPECT_NE(registry.find_histogram("h"), nullptr);
  EXPECT_EQ(registry.counters().size(), 1u);
}

// --- spans -------------------------------------------------------------------------

TEST(SpanCollector, BuildsTreeWithParentLinks) {
  sim::Engine engine;
  telemetry::SpanCollector spans(engine);
  const auto trace = spans.new_trace();
  const auto root = spans.begin(trace, 0, "root", "client");
  const auto child1 = spans.begin(trace, root.span_id, "child1", "gm");
  const auto child2 = spans.begin(trace, root.span_id, "child2", "gm");
  const auto grand = spans.begin(trace, child1.span_id, "grand", "lc");
  spans.end(grand, "ok");
  spans.end(child1, "timeout");

  EXPECT_EQ(spans.size(), 4u);
  const auto kids = spans.children_of(root.span_id);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0]->name, "child1");
  EXPECT_EQ(kids[1]->name, "child2");
  EXPECT_EQ(spans.trace_spans(trace).size(), 4u);

  const auto* g = spans.find(grand.span_id);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->status, "ok");
  EXPECT_EQ(g->parent_id, child1.span_id);
  EXPECT_FALSE(g->open());
  EXPECT_EQ(spans.find(child1.span_id)->status, "timeout");
  EXPECT_TRUE(spans.find(child2.span_id)->open());
}

// Ring cap for long-horizon runs: the buffer trims to max_spans once it hits
// 2*max_spans; span ids stay stable across trimming (find() by id keeps
// working for retained spans) and end() on a trimmed span is a safe no-op.
TEST(SpanCollector, RingCapBoundsRetainedSpans) {
  sim::Engine engine;
  telemetry::SpanCollector spans(engine);
  spans.set_max_spans(4);
  const auto trace = spans.new_trace();
  std::vector<telemetry::SpanContext> ctxs;
  for (int i = 0; i < 12; ++i) {
    ctxs.push_back(spans.begin(trace, 0, "op", "actor"));
  }
  EXPECT_LE(spans.size(), 8u);
  EXPECT_EQ(spans.dropped() + spans.size(), 12u);
  EXPECT_GE(spans.dropped(), 4u);

  EXPECT_EQ(spans.find(ctxs.front().span_id), nullptr);  // trimmed
  const auto* newest = spans.find(ctxs.back().span_id);
  ASSERT_NE(newest, nullptr);
  EXPECT_EQ(newest->span_id, 12u);  // ids are global, not slot indices

  spans.end(ctxs.front(), "ok");  // trimmed: no-op, must not corrupt
  spans.end(ctxs.back(), "ok");
  EXPECT_EQ(spans.find(ctxs.back().span_id)->status, "ok");
  EXPECT_NE(spans.find(ctxs[ctxs.size() - 2].span_id), nullptr);
}

TEST(SpanCollector, EndIsIdempotentFirstStatusWins) {
  sim::Engine engine;
  telemetry::SpanCollector spans(engine);
  const auto ctx = spans.begin(spans.new_trace(), 0, "op", "a");
  spans.end(ctx, "ok");
  spans.end(ctx, "failed");
  EXPECT_EQ(spans.find(ctx.span_id)->status, "ok");
}

TEST(SpanCollector, UntracedContextRecordsNothing) {
  sim::Engine engine;
  telemetry::SpanCollector spans(engine);
  const auto ctx = spans.begin(0, 0, "op", "a");  // trace_id 0 = untraced
  EXPECT_FALSE(ctx.valid());
  EXPECT_EQ(spans.size(), 0u);
  spans.end(ctx, "ok");  // no-op, must not crash
  EXPECT_EQ(spans.find(1), nullptr);
}

TEST(SpanCollector, NullSafeHelpersTolerateMissingTelemetry) {
  telemetry::count(nullptr, "c");
  telemetry::observe(nullptr, "h", 1.0);
  telemetry::gauge_add(nullptr, "g", 1.0);
  const auto ctx = telemetry::begin_span(nullptr, telemetry::SpanContext{}, "s", "a");
  EXPECT_FALSE(ctx.valid());
  telemetry::end_span(nullptr, ctx);
}

// --- exporters ---------------------------------------------------------------------

TEST(Export, ChromeTraceJsonHasMetadataAndCompleteEvents) {
  sim::Engine engine;
  telemetry::SpanCollector spans(engine);
  const auto trace = spans.new_trace();
  const auto root = spans.begin(trace, 0, "client.submit", "client", "vm=1");
  const auto child = spans.begin(trace, root.span_id, "gl.dispatch", "gm-0");
  spans.end(child, "ok");  // root stays open

  const std::string json = telemetry::chrome_trace_json(spans, engine.now());
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);  // actor metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"client.submit\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"open\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"vm=1\""), std::string::npos);
}

TEST(Export, SpansCsvRoundTripsThroughParser) {
  sim::Engine engine;
  telemetry::SpanCollector spans(engine);
  const auto trace = spans.new_trace();
  // Detail with CSV metacharacters must survive the quoting.
  const auto ctx = spans.begin(trace, 0, "op", "actor", "k=\"a,b\"\nrest");
  spans.end(ctx, "ok");

  const auto rows = util::parse_csv(telemetry::spans_csv(spans));
  ASSERT_EQ(rows.size(), 2u);  // header + one span
  ASSERT_EQ(rows[0].size(), 9u);
  EXPECT_EQ(rows[0][3], "name");
  EXPECT_EQ(rows[1][3], "op");
  EXPECT_EQ(rows[1][8], "k=\"a,b\"\nrest");
}

TEST(Export, MetricsCsvListsEveryKind) {
  sim::Engine engine;
  telemetry::MetricsRegistry registry(engine);
  registry.counter("c").inc(3);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(0.5);

  const auto rows = util::parse_csv(telemetry::metrics_csv(registry));
  ASSERT_EQ(rows.size(), 4u);  // header + counter + gauge + histogram
  ASSERT_EQ(rows[0].size(), 11u);
  EXPECT_EQ(rows[1][0], "counter");
  EXPECT_EQ(rows[1][2], "3");
  EXPECT_EQ(rows[2][0], "gauge");
  EXPECT_EQ(rows[3][0], "histogram");
  EXPECT_EQ(rows[3][3], "1");  // count

  const std::string table = telemetry::metrics_table(registry);
  EXPECT_NE(table.find("c"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
}

// --- end-to-end span tree ----------------------------------------------------------

const telemetry::SpanRecord* child_named(const telemetry::SpanCollector& spans,
                                         std::uint64_t parent,
                                         std::string_view name) {
  for (const auto* s : spans.children_of(parent)) {
    if (s->name == name) return s;
  }
  return nullptr;
}

// One VM submission must leave a single connected span tree crossing every
// layer — client → EP (GL discovery) → GL (dispatch) → GM (placement) → LC
// (start) — with each rpc attempt as its own span. A directed link fault
// forces the GL's first placement RPC to time out, so the tree also shows a
// retried RPC as sibling attempt spans (timeout, then ok). On the client
// side the stalled placement outlives the submit deadline, so the early
// submit attempts time out and the GL answers a later, coalesced retry —
// without ever dispatching the VM twice.
TEST(TelemetrySystem, SubmissionSpanTreeLinksAllLayersAcrossRetry) {
  core::SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = 2;
  spec.local_controllers = 4;
  spec.seed = 7;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(300.0));

  auto* gl = system.leader();
  ASSERT_NE(gl, nullptr);
  core::GroupManager* managing = nullptr;
  for (auto& gm : system.group_managers()) {
    if (gm->alive() && !gm->is_leader() && gm->lc_count() > 0) managing = gm.get();
  }
  ASSERT_NE(managing, nullptr);

  // Drop everything the GL sends to the managing GM, so the first placement
  // RPC times out (20s); heal just after the timeout so the retry succeeds.
  system.network().set_link_faults(gl->address(), managing->address(),
                                   net::LinkFaults{.drop = 1.0});
  bool ok = false;
  system.client().submit(system.make_vm({0.125, 0.125, 0.125}),
                         [&](bool success, net::Address, sim::Time) { ok = success; });
  system.engine().schedule(20.1, [&] {
    system.network().clear_link_faults(gl->address(), managing->address());
  });
  system.engine().run_until(system.engine().now() + 120.0);
  ASSERT_TRUE(ok);

  const auto& spans = system.telemetry().spans();
  const telemetry::SpanRecord* root = nullptr;
  for (const auto& s : spans.spans()) {
    if (s.name == "client.submit") root = &s;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->status, "ok");

  // client → EP: GL discovery.
  const auto* rpc_query = child_named(spans, root->span_id, "rpc:ep.gl_query");
  ASSERT_NE(rpc_query, nullptr);
  const auto* ep_handle = child_named(spans, rpc_query->span_id, "ep.gl_query");
  ASSERT_NE(ep_handle, nullptr);
  EXPECT_EQ(ep_handle->actor.rfind("ep-", 0), 0u);

  // client → GL: submission. The placement takes longer than the client's
  // submit deadline, so the first attempt times out while the dispatch keeps
  // running; a later retry is parked on the in-flight dispatch and carries
  // the eventual success back. The dispatch span hangs off the attempt that
  // actually started it (the first one).
  std::vector<const telemetry::SpanRecord*> submit_attempts;
  for (const auto* s : spans.children_of(root->span_id)) {
    if (s->name == "rpc:gl.submit_vm") submit_attempts.push_back(s);
  }
  ASSERT_GE(submit_attempts.size(), 2u);
  const auto* rpc_submit = submit_attempts.front();
  EXPECT_EQ(rpc_submit->status, "timeout");
  EXPECT_EQ(submit_attempts.back()->status, "ok");
  const auto* dispatch = child_named(spans, rpc_submit->span_id, "gl.dispatch");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->actor, gl->name());
  EXPECT_EQ(dispatch->status, "ok");
  // Coalescing, not re-dispatching: every duplicate submit collapsed onto
  // one dispatch (and therefore one placed VM).
  EXPECT_EQ(system.telemetry().metrics().counter("gl.dispatches").value(), 1u);
  EXPECT_EQ(system.running_vm_count(), 1u);

  // GL → GM: the blocked link makes attempt #1 time out; attempt #2 lands.
  std::vector<const telemetry::SpanRecord*> attempts;
  for (const auto* s : spans.children_of(dispatch->span_id)) {
    if (s->name == "rpc:gm.place_vm") attempts.push_back(s);
  }
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0]->status, "timeout");
  EXPECT_EQ(attempts[1]->status, "ok");

  // The placement hangs off the attempt that was actually delivered.
  const auto* place = child_named(spans, attempts[1]->span_id, "gm.place");
  ASSERT_NE(place, nullptr);
  EXPECT_EQ(place->actor, managing->name());
  EXPECT_EQ(place->status, "ok");

  // GM → LC: the VM start.
  const auto* rpc_start = child_named(spans, place->span_id, "rpc:lc.start_vm");
  ASSERT_NE(rpc_start, nullptr);
  EXPECT_EQ(rpc_start->status, "ok");
  const auto* start = child_named(spans, rpc_start->span_id, "lc.start_vm");
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->actor.rfind("lc-", 0), 0u);
  EXPECT_EQ(start->status, "ok");

  // Every hop shares the root's trace id: the path is one connected tree.
  for (const auto* s : {rpc_query, ep_handle, rpc_submit, dispatch, attempts[0],
                        attempts[1], place, rpc_start, start}) {
    EXPECT_EQ(s->trace_id, root->trace_id);
  }

  // The registry mirrors the transport stats exactly.
  EXPECT_EQ(system.telemetry().metrics().counter("net.messages_sent").value(),
            system.network().stats().messages_sent);
  EXPECT_GE(system.telemetry().metrics().counter("rpc.timeouts").value(), 1u);
  EXPECT_DOUBLE_EQ(
      system.telemetry().metrics().gauge("cluster.running_vms").current(),
      static_cast<double>(system.running_vm_count()));
}

// --- determinism -------------------------------------------------------------------

// Telemetry is always on and must stay passive: two chaos runs with the same
// seed produce bit-identical trace fingerprints.
TEST(TelemetryDeterminism, SameSeedChaosRunsShareTraceHash) {
  chaos::ChaosRunConfig cfg;
  cfg.seed = 20260806;
  cfg.spec.duration = 60.0;
  const auto a = chaos::run_chaos(cfg);
  const auto b = chaos::run_chaos(cfg);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

}  // namespace
