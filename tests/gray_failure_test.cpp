// Gray-failure (fail-slow) detection and containment, end to end:
//
//   inject      an LC/GM keeps heartbeating but serves slowly (service-time
//               stretch, CPU steal) — liveness machinery sees nothing wrong
//   detect      GMs probe peers and score operation latency against a robust
//               peer-relative baseline (median/MAD) with hysteresis
//   contain     probation (excluded from placement) -> quarantine (evacuated
//               + suspended) -> hysteretic reinstatement, with an avalanche
//               cap on the quarantined fraction
//   at GL level a slow-but-alive GM is flagged and avoided — but never
//               declared dead: no spurious election may fire
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/runner.hpp"
#include "core/snooze.hpp"
#include "obs/health_monitor.hpp"

namespace {

using namespace snooze;

core::SystemSpec gray_spec(std::size_t gms, std::size_t lcs) {
  core::SystemSpec spec;
  spec.entry_points = 1;
  spec.group_managers = gms;
  spec.local_controllers = lcs;
  spec.seed = 42;
  return spec;
}

struct GrayCounters {
  std::uint64_t slow_flags = 0;
  std::uint64_t probations = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t quarantines_deferred = 0;
  std::uint64_t reinstatements = 0;
  std::uint64_t quarantine_flaps = 0;
};

GrayCounters sum_gray(core::SnoozeSystem& system) {
  GrayCounters out;
  for (const auto& gm : system.group_managers()) {
    out.slow_flags += gm->counters().slow_flags;
    out.probations += gm->counters().probations;
    out.quarantines += gm->counters().quarantines;
    out.quarantines_deferred += gm->counters().quarantines_deferred;
    out.reinstatements += gm->counters().reinstatements;
    out.quarantine_flaps += gm->counters().quarantine_flaps;
  }
  return out;
}

/// Run the engine in slices until `done()` or the budget elapses.
template <typename Pred>
bool run_until(core::SnoozeSystem& system, double budget, Pred done) {
  const double start = system.engine().now();
  while (system.engine().now() - start < budget) {
    if (done()) return true;
    system.engine().run_until(system.engine().now() + 5.0);
  }
  return done();
}

TEST(GrayFailure, SlowLcWalksTheContainmentLadder) {
  // 2 GMs: one is promoted GL (and resigns its LCs), so all 8 LCs sit under
  // one working GM — the quarantine cap (20% floored at 1) permits exactly
  // one quarantine there.
  core::SnoozeSystem system(gray_spec(2, 8));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  auto& lc = *system.local_controllers().front();
  ASSERT_TRUE(lc.assigned());
  lc.set_service_stretch(4.0);

  // Probation: peer-relative z-score crosses the flag threshold and sustains.
  ASSERT_TRUE(run_until(system, 60.0,
                        [&] { return sum_gray(system).probations >= 1; }))
      << "slow LC was never placed on probation";
  // Quarantine: sustained probation escalates; the empty LC is suspended.
  ASSERT_TRUE(run_until(system, 60.0,
                        [&] { return sum_gray(system).quarantines >= 1; }))
      << "sustained probation never escalated to quarantine";
  EXPECT_TRUE(run_until(system, 30.0, [&] { return lc.suspended(); }))
      << "quarantined LC was not suspended";

  // The node recovers; after the dwell it is woken, probed clean, reinstated.
  lc.set_service_stretch(1.0);
  ASSERT_TRUE(run_until(system, 300.0,
                        [&] { return sum_gray(system).reinstatements >= 1; }))
      << "recovered LC was never reinstated";
  EXPECT_TRUE(run_until(system, 60.0, [&] { return !lc.suspended(); }));

  const GrayCounters gray = sum_gray(system);
  EXPECT_GE(gray.slow_flags, 1u);
  EXPECT_EQ(gray.quarantine_flaps, 0u) << "reinstated LC flapped back";
}

TEST(GrayFailure, CpuStealIsDetectedAsSlowness) {
  core::SnoozeSystem system(gray_spec(2, 8));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  auto& lc = *system.local_controllers()[2];
  ASSERT_TRUE(lc.assigned());
  lc.set_cpu_steal(0.6);  // effective slowdown 1/(1-0.6) = 2.5x

  ASSERT_TRUE(run_until(system, 90.0,
                        [&] { return sum_gray(system).probations >= 1; }))
      << "CPU-stolen LC was never flagged";
  // The flagged node is exactly the stolen one.
  int health = -1;
  for (const auto& gm : system.group_managers()) {
    const int h = gm->lc_health_of(lc.address());
    if (h >= 0) health = h;
  }
  EXPECT_GE(health, 1) << "stolen LC not in probation/quarantine";
}

TEST(GrayFailure, QuarantineCapStopsAvalanches) {
  // Three of eight LCs under the single working GM turn slow; the cap
  // (max_quarantined_fraction 0.2 of 8, floored at 1) lets exactly one
  // through and defers the rest — containment must not amplify the outage.
  core::SnoozeSystem system(gray_spec(2, 8));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  for (const std::size_t i : {0u, 2u, 4u}) {
    system.local_controllers()[i]->set_service_stretch(4.0);
  }
  ASSERT_TRUE(run_until(system, 120.0, [&] {
    const GrayCounters g = sum_gray(system);
    return g.quarantines >= 1 && g.quarantines_deferred >= 1;
  })) << "expected one quarantine and at least one deferred escalation";
  const GrayCounters gray = sum_gray(system);
  EXPECT_EQ(gray.quarantines, 1u) << "cap allowed an avalanche";
  EXPECT_GE(gray.probations, 3u);
}

TEST(GrayFailure, SlowGmIsFlaggedByGlButNeverKilled) {
  // 5 GMs: the GL needs >= 3 reporting peers for a robust baseline, and the
  // slow one must stand against at least 3 healthy ones.
  core::SnoozeSystem system(gray_spec(5, 8));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  const net::Address gl = system.gl_address();
  ASSERT_NE(gl, net::kNullAddress);
  core::GroupManager* leader = nullptr;
  core::GroupManager* slow_gm = nullptr;
  for (const auto& gm : system.group_managers()) {
    if (gm->address() == gl) {
      leader = gm.get();
    } else if (slow_gm == nullptr) {
      slow_gm = gm.get();
    }
  }
  ASSERT_NE(leader, nullptr);
  ASSERT_NE(slow_gm, nullptr);
  slow_gm->set_service_stretch(4.0);

  ASSERT_TRUE(run_until(system, 90.0,
                        [&] { return leader->gm_probation_count() >= 1; }))
      << "GL never flagged the slow GM";

  // Slow != dead: same leader, no election, no stepdown, the slow GM still
  // manages its LCs.
  EXPECT_EQ(system.gl_address(), gl);
  EXPECT_TRUE(slow_gm->alive());
  std::uint64_t stepdowns = 0;
  for (const auto& gm : system.group_managers()) {
    stepdowns += gm->counters().stepdowns;
  }
  EXPECT_EQ(stepdowns, 0u) << "a slow-but-alive GM triggered an election";

  // Hysteresis: once the GM recovers, the flag clears.
  slow_gm->set_service_stretch(1.0);
  EXPECT_TRUE(run_until(system, 180.0,
                        [&] { return leader->gm_probation_count() == 0; }))
      << "flag never cleared after recovery";
  EXPECT_EQ(system.gl_address(), gl);
}

TEST(GrayFailure, DetectionOffMeansNoProbesNoFlags) {
  core::SystemSpec spec = gray_spec(2, 6);
  spec.config.gray.detection = false;
  core::SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  system.local_controllers()[1]->set_service_stretch(4.0);
  system.engine().run_until(system.engine().now() + 120.0);
  const GrayCounters gray = sum_gray(system);
  EXPECT_EQ(gray.slow_flags, 0u);
  EXPECT_EQ(gray.probations, 0u);
  EXPECT_EQ(system.telemetry().metrics().find_counter("gray.probes"), nullptr);
}

TEST(GrayFailure, InjectorDrivesTheGrayLadderFromAScript) {
  // End-to-end through the chaos stack: script -> injector -> detection ->
  // containment -> heal, with invariants checked throughout. The slow window
  // is long enough for a quarantine and the post-heal run long enough for
  // probation to clear.
  chaos::ChaosRunConfig cfg;
  cfg.topology.group_managers = 2;
  cfg.topology.local_controllers = 8;
  cfg.seed = 7;
  cfg.vms = 6;
  const auto schedule = chaos::parse_script(
      "duration 120\n"
      "5 slow lc 1 factor=4 #1\n"
      "100 unslow #1\n"
      "10 steal lc 5 frac=0.5 #2\n"
      "100 unsteal #2\n"
      "20 flaky gm 0 lc 3 lat=0.2\n"
      "80 unflaky gm 0 lc 3\n");
  const auto result = chaos::run_chaos_schedule(cfg, schedule);
  EXPECT_TRUE(result.converged) << result.report;
  EXPECT_TRUE(result.invariants_ok) << result.report;
  EXPECT_EQ(result.faults_injected, 3u);
  EXPECT_GE(result.slow_flags, 1u) << result.report;
  EXPECT_GE(result.probations, 1u) << result.report;
  EXPECT_EQ(result.quarantine_flaps, 0u) << result.report;
  // Deterministic like every other chaos run.
  const auto again = chaos::run_chaos_schedule(cfg, schedule);
  EXPECT_EQ(result.trace_hash, again.trace_hash);
  EXPECT_EQ(result.report, again.report);
}

TEST(GrayFailure, HealthMonitorExposesGraySlis) {
  core::SnoozeSystem system(gray_spec(2, 8));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  obs::HealthMonitor monitor(system);
  monitor.start();

  auto& lc = *system.local_controllers().front();
  lc.set_service_stretch(4.0);
  ASSERT_TRUE(run_until(system, 90.0,
                        [&] { return sum_gray(system).probations >= 1; }));
  monitor.sample_now();

  const auto& store = monitor.store();
  const auto& cols = store.columns();
  const auto find_col = [&](const char* name) {
    const auto it = std::find(cols.begin(), cols.end(), name);
    EXPECT_NE(it, cols.end()) << name;
    return static_cast<std::size_t>(it - cols.begin());
  };
  EXPECT_GE(store.latest(find_col("gray.slow_nodes")), 1.0);
  EXPECT_GE(store.latest(find_col("gray.quarantined")), 0.0);
  EXPECT_GE(store.latest(find_col("rpc.hedges_won")), 0.0);
  EXPECT_GE(store.latest(find_col("breaker.open_s")), 0.0);
  // The per-node table names the offender.
  const std::string top = monitor.top(0);
  EXPECT_TRUE(top.find("probation") != std::string::npos ||
              top.find("quarantine") != std::string::npos)
      << top;
}

}  // namespace
