// Unit tests for the discrete-event simulation kernel: event ordering,
// cancellation, run horizons, actor lifetime guarding, periodic timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/actor.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace {

using namespace snooze;

TEST(Engine, StartsAtTimeZero) {
  sim::Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Engine, EventsFireInTimeOrder) {
  sim::Engine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  sim::Engine engine;
  std::vector<int> order;
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(1.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NowAdvancesToEventTime) {
  sim::Engine engine;
  double seen = -1.0;
  engine.schedule(2.5, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  sim::Engine engine;
  int fired = 0;
  engine.schedule(1.0, [&] { ++fired; });
  engine.schedule(5.0, [&] { ++fired; });
  engine.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilAdvancesClockToHorizonWhenIdle) {
  sim::Engine engine;
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, CancelPreventsExecution) {
  sim::Engine engine;
  bool fired = false;
  const auto id = engine.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceFails) {
  sim::Engine engine;
  const auto id = engine.schedule(1.0, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
}

TEST(Engine, CancelUnknownIdFails) {
  sim::Engine engine;
  EXPECT_FALSE(engine.cancel(0));
  EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  sim::Engine engine;
  std::vector<double> times;
  engine.schedule(1.0, [&] {
    times.push_back(engine.now());
    engine.schedule(1.0, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Engine, StopAbortsRun) {
  sim::Engine engine;
  int fired = 0;
  engine.schedule(1.0, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule(2.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  engine.run();  // resumes where it stopped
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ZeroDelayFiresAtCurrentTime) {
  sim::Engine engine;
  engine.schedule(1.0, [&] {
    engine.schedule(0.0, [&] { EXPECT_DOUBLE_EQ(engine.now(), 1.0); });
  });
  EXPECT_EQ(engine.run(), 2u);
}

TEST(Engine, ProcessedEventsCounter) {
  sim::Engine engine;
  for (int i = 0; i < 5; ++i) engine.schedule(1.0, [] {});
  engine.run();
  EXPECT_EQ(engine.processed_events(), 5u);
}

// --- Actor ---------------------------------------------------------------------

class TestActor final : public sim::Actor {
 public:
  using sim::Actor::Actor;
  int fired = 0;

  void arm(double delay) {
    after(delay, [this] { ++fired; });
  }
  void arm_periodic(double period, int max_ticks) {
    every(period, [this, max_ticks] {
      ++fired;
      return fired < max_ticks;
    });
  }
  sim::EventId arm_cancellable(double delay) {
    return after(delay, [this] { ++fired; });
  }
  void cancel_event(sim::EventId id) { cancel(id); }
};

TEST(Actor, AfterFires) {
  sim::Engine engine;
  TestActor actor(engine, "a");
  actor.arm(1.0);
  engine.run();
  EXPECT_EQ(actor.fired, 1);
}

TEST(Actor, CrashDropsPendingCallbacks) {
  sim::Engine engine;
  TestActor actor(engine, "a");
  actor.arm(1.0);
  actor.crash();
  engine.run();
  EXPECT_EQ(actor.fired, 0);
}

TEST(Actor, DestructionDropsPendingCallbacks) {
  sim::Engine engine;
  {
    TestActor actor(engine, "a");
    actor.arm(1.0);
  }
  engine.run();  // must not crash dereferencing the dead actor
}

TEST(Actor, PeriodicTimerRepeatsUntilFalse) {
  sim::Engine engine;
  TestActor actor(engine, "a");
  actor.arm_periodic(1.0, 4);
  engine.run_until(100.0);
  EXPECT_EQ(actor.fired, 4);
}

TEST(Actor, PeriodicTimerStopsOnCrash) {
  sim::Engine engine;
  TestActor actor(engine, "a");
  actor.arm_periodic(1.0, 1000000);
  engine.schedule(3.5, [&] { actor.crash(); });
  engine.run_until(50.0);
  EXPECT_EQ(actor.fired, 3);  // ticks at 1, 2, 3
}

TEST(Actor, RecoverAllowsNewTimers) {
  sim::Engine engine;
  TestActor actor(engine, "a");
  actor.crash();
  actor.recover();
  actor.arm(1.0);
  engine.run();
  EXPECT_EQ(actor.fired, 1);
}

TEST(Actor, CancelledAfterDoesNotFire) {
  sim::Engine engine;
  TestActor actor(engine, "a");
  const auto id = actor.arm_cancellable(1.0);
  actor.cancel_event(id);
  engine.run();
  EXPECT_EQ(actor.fired, 0);
}

TEST(Actor, AfterWhileCrashedIsIgnored) {
  sim::Engine engine;
  TestActor actor(engine, "a");
  actor.crash();
  actor.arm(1.0);
  engine.run();
  EXPECT_EQ(actor.fired, 0);
}

// --- Trace ----------------------------------------------------------------------

TEST(Trace, RecordsTimeAndKind) {
  sim::Engine engine;
  sim::Trace trace(engine);
  engine.schedule(2.0, [&] { trace.record("actor", "event", "detail"); });
  engine.run();
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.records()[0].time, 2.0);
  EXPECT_EQ(trace.records()[0].kind, "event");
  EXPECT_EQ(trace.records()[0].detail, "detail");
}

TEST(Trace, CountAndFilterByKind) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.record("a", "x");
  trace.record("b", "y");
  trace.record("c", "x");
  EXPECT_EQ(trace.count("x"), 2u);
  EXPECT_EQ(trace.of_kind("y").size(), 1u);
  EXPECT_EQ(trace.count("z"), 0u);
}

TEST(Trace, FirstTimeHonoursFromBound) {
  sim::Engine engine;
  sim::Trace trace(engine);
  engine.schedule(1.0, [&] { trace.record("a", "k"); });
  engine.schedule(5.0, [&] { trace.record("a", "k"); });
  engine.run();
  EXPECT_DOUBLE_EQ(trace.first_time("k"), 1.0);
  EXPECT_DOUBLE_EQ(trace.first_time("k", 2.0), 5.0);
  EXPECT_LT(trace.first_time("missing"), 0.0);
}

TEST(Trace, RingBufferKeepsNewestRecords) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.set_max_records(10);
  for (int i = 0; i < 100; ++i) {
    trace.record("a", "k", std::to_string(i));
  }
  // Amortized trimming: never more than 2x the cap retained, never fewer
  // than the cap, and the newest records always survive.
  EXPECT_GE(trace.records().size(), 10u);
  EXPECT_LT(trace.records().size(), 20u);
  EXPECT_EQ(trace.records().size() + trace.dropped(), 100u);
  EXPECT_EQ(trace.records().back().detail, "99");
}

TEST(Trace, SetMaxRecordsTrimsExisting) {
  sim::Engine engine;
  sim::Trace trace(engine);
  for (int i = 0; i < 8; ++i) trace.record("a", "k", std::to_string(i));
  trace.set_max_records(3);
  ASSERT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.records().front().detail, "5");
  EXPECT_EQ(trace.dropped(), 5u);
  trace.clear();
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, UnboundedByDefault) {
  sim::Engine engine;
  sim::Trace trace(engine);
  for (int i = 0; i < 5000; ++i) trace.record("a", "k");
  EXPECT_EQ(trace.records().size(), 5000u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, DumpContainsRecords) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.record("actor1", "kind1", "detail1");
  const std::string dump = trace.dump();
  EXPECT_NE(dump.find("actor1"), std::string::npos);
  EXPECT_NE(dump.find("kind1"), std::string::npos);
}

}  // namespace
