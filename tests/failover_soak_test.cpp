// Failover acceptance sweep (ctest label `soak`): 50 seeds of the scripted
// GL-isolation and GM-isolation scenarios. Across every seed:
//
//   * zero stale-epoch commands applied (fence tripwires stay at 0),
//   * at most one active instance per VM (invariant checker),
//   * the hierarchy reconverges after the heal,
//   * identical seeds reproduce identical trace hashes.
//
// On failure the per-seed reports are written to
// failover_invariant_report.txt (uploaded as a CI artifact).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"

namespace {

using namespace snooze;
using namespace snooze::chaos;

constexpr const char* kGlIsolationScript =
    "duration 50\n"
    "5 isolate gl #1\n"
    "25 heal #1\n";

constexpr const char* kGmIsolationScript =
    "duration 50\n"
    "4 isolate gm 0 #1\n"
    "28 heal #1\n";

void write_report(const std::string& name,
                  const std::vector<std::string>& failures) {
  std::ofstream out("failover_invariant_report.txt", std::ios::app);
  out << "=== " << name << ": " << failures.size() << " failing seed(s) ===\n";
  for (const auto& f : failures) out << f << "\n";
}

void sweep(const char* name, const char* script) {
  const FaultSchedule schedule = parse_script(script);
  std::vector<std::string> failures;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ChaosRunConfig cfg;
    cfg.seed = seed;
    cfg.topology = {3, 6, 2};
    cfg.vms = 8;
    const ChaosRunResult result = run_chaos_schedule(cfg, schedule);

    std::ostringstream why;
    if (!result.ok()) why << "invariants/convergence failed:\n" << result.report;
    if (result.stale_accepts != 0) {
      why << "stale-epoch command applied (" << result.stale_accepts << ")\n";
    }
    // Same-seed determinism: a second run must land on the same fingerprint.
    const ChaosRunResult replay = run_chaos_schedule(cfg, schedule);
    if (replay.trace_hash != result.trace_hash) {
      why << "non-deterministic: hash " << std::hex << result.trace_hash
          << " vs " << replay.trace_hash << std::dec << "\n";
    }
    const std::string problems = why.str();
    if (!problems.empty()) {
      failures.push_back("seed " + std::to_string(seed) + ": " + problems);
      ADD_FAILURE() << name << " seed " << seed << ": " << problems;
    }
  }
  if (!failures.empty()) write_report(name, failures);
}

TEST(FailoverSoak, GlIsolationFiftySeeds) {
  sweep("gl_isolation", kGlIsolationScript);
}

TEST(FailoverSoak, GmIsolationFiftySeeds) {
  sweep("gm_isolation", kGmIsolationScript);
}

}  // namespace
