// Long-horizon operations tests: drain semantics (a draining LC refuses new
// placements but completes in-flight migrations), the rolling-upgrade
// orchestrator (full-fleet upgrade under live traffic with no SLO page and
// no stale-epoch accepts; an induced SLO burn mid-wave pauses and rolls
// back), the GL-driven autoscaler (flash-crowd wake, trough suspend, floors),
// and the GL submission-book retention bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "core/snooze.hpp"
#include "obs/health_monitor.hpp"
#include "ops/autoscaler.hpp"
#include "ops/upgrade.hpp"

namespace {

using namespace snooze;
using namespace snooze::core;

SystemSpec spec_of(std::size_t gms, std::size_t lcs) {
  SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = gms;
  spec.local_controllers = lcs;
  spec.seed = 42;
  return spec;
}

TraceSpec constant_trace(double v) {
  TraceSpec t;
  t.kind = TraceSpec::Kind::kConstant;
  t.a = v;
  return t;
}

std::size_t total_vms(SnoozeSystem& system) {
  std::size_t n = 0;
  for (const auto& lc : system.local_controllers()) n += lc->vm_count();
  return n;
}

GroupManager* owner_of(SnoozeSystem& system, const LocalController& lc) {
  for (const auto& gm : system.group_managers()) {
    if (gm->address() == lc.gm()) return gm.get();
  }
  return nullptr;
}

bool trace_has_kind(const std::vector<sim::TraceRecord>& records,
                    std::string_view kind) {
  return std::any_of(records.begin(), records.end(),
                     [&](const sim::TraceRecord& r) { return r.kind == kind; });
}

// --- Drain semantics ---------------------------------------------------------

// A draining LC is excluded from every placement policy: submissions arriving
// after the flag propagates all land elsewhere.
TEST(Drain, DrainingLcRefusesNewPlacements) {
  SnoozeSystem system(spec_of(2, 4));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  auto& victim = *system.local_controllers().front();
  victim.begin_drain();
  // Let the draining flag reach the owning GM with the next monitoring report.
  system.engine().run_until(system.engine().now() + 5.0);

  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 6; ++i) {
    vms.push_back(system.make_vm({0.15, 0.1, 0.1}, 0.0, constant_trace(0.5)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 30.0);

  EXPECT_TRUE(victim.draining());
  EXPECT_EQ(victim.vm_count(), 0u);
  EXPECT_EQ(total_vms(system), 6u) << "every VM placed, none on the draining node";
}

// Evacuation empties a loaded LC by live migration and every in-flight
// migration completes: the fleet-wide VM count is conserved.
TEST(Drain, EvacuationCompletesInFlightMigrations) {
  SnoozeSystem system(spec_of(2, 4));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 6; ++i) {
    vms.push_back(system.make_vm({0.15, 0.1, 0.1}, 0.0, constant_trace(0.5)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 20.0);
  ASSERT_EQ(total_vms(system), 6u);

  // Drain the busiest LC.
  LocalController* victim = nullptr;
  for (const auto& lc : system.local_controllers()) {
    if (victim == nullptr || lc->vm_count() > victim->vm_count()) victim = lc.get();
  }
  ASSERT_NE(victim, nullptr);
  ASSERT_GT(victim->vm_count(), 0u);
  victim->begin_drain();
  system.engine().run_until(system.engine().now() + 3.0);

  GroupManager* owner = owner_of(system, *victim);
  ASSERT_NE(owner, nullptr);
  ASSERT_TRUE(owner->alive());
  EXPECT_GT(owner->evacuate_lc(victim->address()), 0u);
  // The migration link carries one transfer at a time and each pre-copy takes
  // tens of seconds — give the whole queue room to drain.
  system.engine().run_until(system.engine().now() + 180.0);

  EXPECT_TRUE(victim->drained());
  EXPECT_EQ(victim->vm_count(), 0u);
  EXPECT_EQ(total_vms(system), 6u) << "in-flight migrations completed, nothing lost";
  EXPECT_FALSE(system.trace().of_kind("lc.migration_start").empty());
}

// cancel_drain() reopens the node: subsequent placements may use it again.
TEST(Drain, CancelDrainReopensNode) {
  SnoozeSystem system(spec_of(2, 2));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  auto& lc = *system.local_controllers().front();
  lc.begin_drain();
  EXPECT_TRUE(lc.draining());
  EXPECT_TRUE(lc.drained());  // empty + quiet link: trivially drained
  lc.cancel_drain();
  EXPECT_FALSE(lc.draining());
}

// --- Rolling upgrade ---------------------------------------------------------

// Full-fleet rolling upgrade (all LCs, then both GMs, acting GL last) under
// live traffic: finishes, bumps every node, no SLO page, no stale-epoch
// accept, and the workload survives.
TEST(RollingUpgrade, FullFleetUnderTrafficNoPageNoStaleAccept) {
  chaos::ChaosRunConfig cfg;
  cfg.topology = {2, 4, 1};
  cfg.seed = 7;
  cfg.vms = 6;
  cfg.ops.upgrade_at = 10.0;
  cfg.ops.upgrade_config.settle_time = 10.0;
  const auto result =
      chaos::run_chaos_schedule(cfg, chaos::parse_script("duration 800\n"));
  EXPECT_TRUE(result.ok()) << result.report;
  EXPECT_TRUE(result.upgrade_done) << result.report;
  EXPECT_FALSE(result.upgrade_rolled_back);
  EXPECT_EQ(result.upgrade_nodes, 6u);  // 4 LCs + 2 GMs
  // The acting-GL wave legitimately pauses while its own planned step-down
  // election runs; anything beyond that brief gap would be a real stall.
  EXPECT_LE(result.upgrade_pauses, 2u);
  EXPECT_EQ(result.slo_alerts_fired, 0u) << "an upgrade must not page";
  EXPECT_EQ(result.stale_accepts, 0u)
      << "restarted incarnations re-mint epochs; no stale command may apply";
}

// An SLO burn that develops mid-wave pauses the upgrade; when it stays firing
// past rollback_after, the wave rolls back and the upgrade aborts. The burn is
// induced by crashing the GL with a deliberately unmeetable MTTR budget.
TEST(RollingUpgrade, SloBurnMidWavePausesThenRollsBack) {
  chaos::ChaosRunConfig cfg;
  cfg.topology = {2, 4, 1};
  cfg.seed = 11;
  cfg.vms = 4;
  cfg.capture_trace = true;
  // Real failover takes ~9 s (session timeout + heartbeat + reconcile), so a
  // 5 s budget makes any mid-upgrade failover a sustained burn (the MTTR SLI
  // is a cumulative mean: one blown episode keeps it firing).
  cfg.config.slo.failover_mttr_max_s = 5.0;
  cfg.ops.upgrade_at = 5.0;
  cfg.ops.upgrade_config.settle_time = 10.0;
  cfg.ops.upgrade_config.rollback_after = 15.0;

  const auto result = chaos::run_chaos_schedule(
      cfg, chaos::parse_script("duration 130\n"
                               "12 crash gl #1\n"
                               "45 recover #1\n"));
  EXPECT_TRUE(result.ok()) << result.report;
  EXPECT_TRUE(result.upgrade_rolled_back) << result.report;
  EXPECT_FALSE(result.upgrade_done);
  EXPECT_GE(result.upgrade_pauses, 1u);
  EXPECT_GE(result.slo_alerts_fired, 1u);
  EXPECT_EQ(result.stale_accepts, 0u);
  EXPECT_TRUE(trace_has_kind(result.trace_records, "ops.upgrade_paused"));
  EXPECT_TRUE(trace_has_kind(result.trace_records, "ops.upgrade_rolled_back"));
}

// Planning is a no-op when the fleet already runs the target version.
TEST(RollingUpgrade, AlreadyCurrentFleetFinishesImmediately) {
  SnoozeSystem system(spec_of(2, 2));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  ops::UpgradeConfig cfg;
  cfg.target_version = 1;  // everything ships as v1
  ops::RollingUpgrade upgrade(system, nullptr, cfg);
  upgrade.start();
  EXPECT_EQ(upgrade.state(), ops::UpgradeState::kDone);
  EXPECT_EQ(upgrade.wave_count(), 0u);
}

// --- Autoscaler --------------------------------------------------------------

// One full autoscale cycle: an idle fleet is scaled down to the floors, a
// flash crowd wakes capacity back up, and the post-burst trough sheds it
// again. The floors guarantee min_on_lcs stay powered throughout.
TEST(Autoscaler, FlashCrowdCycleWakesAndSuspends) {
  chaos::ChaosRunConfig cfg;
  cfg.topology = {2, 6, 1};
  cfg.seed = 5;
  cfg.vms = 2;
  cfg.ops.autoscaler = true;
  auto& as = cfg.ops.autoscaler_config;
  as.check_period = 2.0;
  as.scale_up_threshold = 0.45;
  as.scale_down_threshold = 0.22;
  as.up_stable_checks = 2;
  as.down_stable_checks = 3;
  as.cooldown = 10.0;
  as.min_on_lcs = 2;
  as.min_headroom_lcs = 1;
  as.max_step = 2;
  cfg.burst_at = 60.0;
  cfg.burst_vms = 8;
  cfg.burst_lifetime = 60.0;

  const auto result =
      chaos::run_chaos_schedule(cfg, chaos::parse_script("duration 200\n"));
  EXPECT_TRUE(result.ok()) << result.report;
  EXPECT_GE(result.scale_downs, 1u) << result.report;
  EXPECT_GE(result.scale_ups, 1u) << result.report;
  // The two long-lived VMs survived the whole cycle (the scale-down path only
  // ever suspends idle nodes) — ok() above already asserts the invariant
  // checker saw every accepted VM alive at the end.
}

// The scale-down floors hold: with min_on_lcs == fleet size the autoscaler
// never suspends anything, however idle the cluster is.
TEST(Autoscaler, FloorsPreventSuspendBelowMinimum) {
  SystemSpec spec = spec_of(2, 3);
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  ops::AutoscalerConfig cfg;
  cfg.check_period = 1.0;
  cfg.scale_down_threshold = 0.9;  // always "sagging"
  cfg.down_stable_checks = 2;
  cfg.cooldown = 1.0;
  cfg.min_on_lcs = 3;
  ops::Autoscaler autoscaler(system, cfg);
  autoscaler.start();
  system.engine().run_until(system.engine().now() + 60.0);

  EXPECT_EQ(autoscaler.scale_downs(), 0u);
  for (const auto& lc : system.local_controllers()) {
    EXPECT_NE(lc->power_state(), energy::PowerState::kSuspended) << lc->name();
  }
  autoscaler.stop();
  EXPECT_FALSE(autoscaler.running());
}

// --- GL submission-book retention -------------------------------------------

// Entries for terminated VMs stop being re-acknowledged by GM summaries and
// are pruned after the retention window — the book cannot grow without bound
// over a long horizon of short-lived VMs.
TEST(SubmissionBook, PrunesTerminatedEntries) {
  SystemSpec spec = spec_of(2, 4);
  spec.config.submission_book_retention = 20.0;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));

  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 3; ++i) {
    vms.push_back(system.make_vm({0.15, 0.1, 0.1}, 8.0, constant_trace(0.5)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 5.0);
  ASSERT_NE(system.leader(), nullptr);
  EXPECT_GT(system.leader()->submission_book_size(), 0u);

  // Lifetimes (8 s) expire, then the retention window (20 s) passes.
  system.engine().run_until(system.engine().now() + 60.0);
  ASSERT_NE(system.leader(), nullptr);
  EXPECT_EQ(system.leader()->submission_book_size(), 0u);
}

}  // namespace
