// Tests for the hypervisor substrate: resource vectors, VM model, host
// reservation accounting, the live-migration cost model, and the power /
// energy metering layer.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/energy_meter.hpp"
#include "hypervisor/host.hpp"
#include "hypervisor/migration.hpp"
#include "hypervisor/resources.hpp"
#include "hypervisor/vm.hpp"

namespace {

using namespace snooze;
using hypervisor::ResourceVector;

// --- ResourceVector ---------------------------------------------------------

TEST(ResourceVector, DefaultIsZero) {
  ResourceVector v;
  EXPECT_DOUBLE_EQ(v.cpu(), 0.0);
  EXPECT_DOUBLE_EQ(v.memory(), 0.0);
  EXPECT_DOUBLE_EQ(v.network(), 0.0);
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a{0.1, 0.2, 0.3};
  const ResourceVector b{0.4, 0.1, 0.2};
  const ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu(), 0.5);
  EXPECT_DOUBLE_EQ(sum.memory(), 0.3);
  EXPECT_DOUBLE_EQ(sum.network(), 0.5);
  const ResourceVector diff = sum - b;
  EXPECT_NEAR(diff.cpu(), a.cpu(), 1e-12);
}

TEST(ResourceVector, ScaledMultipliesAllDims) {
  const ResourceVector v{0.2, 0.4, 0.6};
  const ResourceVector s = v.scaled(0.5);
  EXPECT_DOUBLE_EQ(s.cpu(), 0.1);
  EXPECT_DOUBLE_EQ(s.memory(), 0.2);
  EXPECT_DOUBLE_EQ(s.network(), 0.3);
}

TEST(ResourceVector, FitsWithinChecksEveryDimension) {
  const ResourceVector cap{1.0, 1.0, 1.0};
  EXPECT_TRUE((ResourceVector{1.0, 0.5, 0.5}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{1.1, 0.5, 0.5}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{0.5, 0.5, 1.0001}).fits_within(cap));
}

TEST(ResourceVector, FitsWithinToleratesFpNoise) {
  const ResourceVector cap{0.3, 0.3, 0.3};
  // 0.1+0.1+0.1 > 0.3 in doubles by ~5.5e-17; must still "fit".
  const ResourceVector v = ResourceVector{0.1, 0.1, 0.1} + ResourceVector{0.1, 0.1, 0.1} +
                           ResourceVector{0.1, 0.1, 0.1};
  EXPECT_TRUE(v.fits_within(cap));
}

TEST(ResourceVector, Norms) {
  const ResourceVector v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.l1_norm(), 7.0);
  EXPECT_DOUBLE_EQ(v.l2_norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.max_component(), 4.0);
}

TEST(ResourceVector, DotProduct) {
  const ResourceVector a{1.0, 2.0, 3.0};
  const ResourceVector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(ResourceVector, MaxUtilizationPicksBottleneck) {
  const ResourceVector cap{1.0, 2.0, 4.0};
  const ResourceVector used{0.5, 1.5, 1.0};
  EXPECT_DOUBLE_EQ(used.max_utilization(cap), 0.75);  // memory is the bottleneck
}

TEST(ResourceVector, AnyNegative) {
  EXPECT_FALSE((ResourceVector{0.0, 0.0, 0.0}).any_negative());
  EXPECT_TRUE((ResourceVector{0.1, -0.1, 0.0}).any_negative());
}

// --- Vm -----------------------------------------------------------------------

TEST(Vm, UsedScalesWithUtilization) {
  hypervisor::VmSpec spec;
  spec.id = 1;
  spec.requested = {0.4, 0.2, 0.1};
  hypervisor::Vm vm(spec, [](double t) { return t < 10.0 ? 0.5 : 1.0; });
  EXPECT_DOUBLE_EQ(vm.used(0.0).cpu(), 0.2);
  EXPECT_DOUBLE_EQ(vm.used(20.0).cpu(), 0.4);
}

TEST(Vm, NoTraceMeansFullUtilization) {
  hypervisor::VmSpec spec;
  spec.requested = {0.4, 0.2, 0.1};
  hypervisor::Vm vm(spec);
  EXPECT_DOUBLE_EQ(vm.utilization(123.0), 1.0);
}

TEST(Vm, UtilizationClampedToUnitInterval) {
  hypervisor::VmSpec spec;
  hypervisor::Vm vm(spec, [](double) { return 1.7; });
  EXPECT_DOUBLE_EQ(vm.utilization(0.0), 1.0);
  vm.set_utilization([](double) { return -0.3; });
  EXPECT_DOUBLE_EQ(vm.utilization(0.0), 0.0);
}

// --- Host ---------------------------------------------------------------------

hypervisor::HostSpec host_spec() {
  hypervisor::HostSpec spec;
  spec.capacity = {1.0, 1.0, 1.0};
  return spec;
}

TEST(Host, PlaceReservesCapacity) {
  hypervisor::Host host(host_spec());
  hypervisor::VmSpec vm;
  vm.id = 1;
  vm.requested = {0.6, 0.3, 0.2};
  host.place(vm);
  EXPECT_DOUBLE_EQ(host.reserved().cpu(), 0.6);
  EXPECT_TRUE(host.can_place(ResourceVector{0.4, 0.4, 0.4}));
  EXPECT_FALSE(host.can_place(ResourceVector{0.5, 0.1, 0.1}));
}

TEST(Host, EvictReleasesCapacity) {
  hypervisor::Host host(host_spec());
  hypervisor::VmSpec vm;
  vm.id = 1;
  vm.requested = {0.6, 0.3, 0.2};
  host.place(vm);
  auto evicted = host.evict(1);
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->id(), 1u);
  EXPECT_TRUE(host.idle());
  EXPECT_DOUBLE_EQ(host.reserved().cpu(), 0.0);
}

TEST(Host, EvictUnknownReturnsNull) {
  hypervisor::Host host(host_spec());
  EXPECT_EQ(host.evict(99), nullptr);
}

TEST(Host, UsedTracksTraces) {
  hypervisor::Host host(host_spec());
  hypervisor::VmSpec vm;
  vm.id = 1;
  vm.requested = {0.8, 0.4, 0.4};
  host.place(vm, [](double) { return 0.5; });
  EXPECT_DOUBLE_EQ(host.used(0.0).cpu(), 0.4);
  EXPECT_DOUBLE_EQ(host.utilization(0.0), 0.4);  // cpu is the bottleneck
}

TEST(Host, FindLocatesVm) {
  hypervisor::Host host(host_spec());
  hypervisor::VmSpec vm;
  vm.id = 7;
  vm.requested = {0.1, 0.1, 0.1};
  host.place(vm);
  EXPECT_NE(host.find(7), nullptr);
  EXPECT_EQ(host.find(8), nullptr);
  EXPECT_EQ(host.vm_ids(), (std::vector<hypervisor::VmId>{7}));
}

TEST(Host, AdoptTransfersOwnership) {
  hypervisor::Host a(host_spec()), b(host_spec());
  hypervisor::VmSpec vm;
  vm.id = 3;
  vm.requested = {0.5, 0.5, 0.5};
  a.place(vm);
  b.adopt(a.evict(3));
  EXPECT_EQ(a.vm_count(), 0u);
  EXPECT_EQ(b.vm_count(), 1u);
  EXPECT_DOUBLE_EQ(b.reserved().cpu(), 0.5);
}

// --- Migration model -------------------------------------------------------------

TEST(Migration, ZeroDirtyRateIsSinglePass) {
  hypervisor::MigrationModel model;
  model.bandwidth_mbps = 8000.0;  // 1000 MB/s
  const auto cost = model.cost(2048.0, 0.0);
  EXPECT_EQ(cost.rounds, 1u);
  EXPECT_NEAR(cost.total_s, 2048.0 / 1000.0, 1e-6);
  EXPECT_NEAR(cost.downtime_s, 0.0, 1e-6);
}

TEST(Migration, DirtyPagesAddRounds) {
  hypervisor::MigrationModel model;
  model.bandwidth_mbps = 8000.0;
  const auto with_dirty = model.cost(2048.0, 800.0);
  const auto without = model.cost(2048.0, 0.0);
  EXPECT_GT(with_dirty.rounds, without.rounds);
  EXPECT_GT(with_dirty.total_s, without.total_s);
  EXPECT_GT(with_dirty.transferred_mb, 2048.0);
}

TEST(Migration, DowntimeBoundedByThreshold) {
  hypervisor::MigrationModel model;
  model.bandwidth_mbps = 8000.0;
  model.stop_copy_threshold_mb = 64.0;
  const auto cost = model.cost(4096.0, 400.0);
  // Residual at stop-and-copy is at most ~threshold (plus one round of dirt).
  EXPECT_LT(cost.downtime_s, 0.2);
}

TEST(Migration, NonConvergentDirtyRateStillTerminates) {
  hypervisor::MigrationModel model;
  model.bandwidth_mbps = 800.0;  // 100 MB/s
  // Dirty rate equals bandwidth: pre-copy can never converge.
  const auto cost = model.cost(2048.0, 800.0);
  EXPECT_LE(cost.rounds, model.max_rounds);
  EXPECT_GT(cost.downtime_s, 0.0);
  EXPECT_TRUE(std::isfinite(cost.total_s));
}

TEST(Migration, BiggerVmTakesLonger) {
  hypervisor::MigrationModel model;
  EXPECT_GT(model.cost(8192.0, 100.0).total_s, model.cost(1024.0, 100.0).total_s);
}

// --- Power / energy ---------------------------------------------------------------

TEST(PowerModel, LinearInterpolation) {
  energy::PowerModel pm;
  pm.p_idle_w = 100.0;
  pm.p_max_w = 200.0;
  EXPECT_DOUBLE_EQ(pm.power_on(0.0), 100.0);
  EXPECT_DOUBLE_EQ(pm.power_on(1.0), 200.0);
  EXPECT_DOUBLE_EQ(pm.power_on(0.5), 150.0);
  EXPECT_DOUBLE_EQ(pm.power_on(2.0), 200.0);  // clamped
}

TEST(PowerModel, StatePowers) {
  energy::PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.power(energy::PowerState::kSuspended, 0.9), pm.p_suspend_w);
  EXPECT_DOUBLE_EQ(pm.power(energy::PowerState::kOff, 0.9), pm.p_off_w);
  EXPECT_DOUBLE_EQ(pm.power(energy::PowerState::kSuspending, 0.0), pm.p_idle_w);
}

TEST(EnergyMeter, IntegratesIdleDraw) {
  energy::PowerModel pm;
  pm.p_idle_w = 100.0;
  energy::EnergyMeter meter(pm, 0.0);
  EXPECT_DOUBLE_EQ(meter.joules(10.0), 1000.0);
}

TEST(EnergyMeter, SuspendReducesDraw) {
  energy::PowerModel pm;
  pm.p_idle_w = 100.0;
  pm.p_suspend_w = 5.0;
  energy::EnergyMeter meter(pm, 0.0);
  meter.update(10.0, energy::PowerState::kSuspended, 0.0);
  // 100 W for 10 s, then 5 W for 10 s.
  EXPECT_DOUBLE_EQ(meter.joules(20.0), 1000.0 + 50.0);
  EXPECT_DOUBLE_EQ(meter.average_watts(20.0), 52.5);
}

TEST(EnergyMeter, UtilizationRaisesDraw) {
  energy::PowerModel pm;
  pm.p_idle_w = 100.0;
  pm.p_max_w = 200.0;
  energy::EnergyMeter meter(pm, 0.0);
  meter.update(0.0, energy::PowerState::kOn, 1.0);
  EXPECT_DOUBLE_EQ(meter.joules(10.0), 2000.0);
}

TEST(Host, EnergyMeterFollowsPowerState) {
  hypervisor::HostSpec spec = host_spec();
  spec.power.p_idle_w = 100.0;
  spec.power.p_suspend_w = 10.0;
  hypervisor::Host host(spec, 0.0);
  host.set_power_state(5.0, energy::PowerState::kSuspended);
  EXPECT_DOUBLE_EQ(host.energy_joules(10.0), 500.0 + 50.0);
  EXPECT_EQ(host.power_state(), energy::PowerState::kSuspended);
}

TEST(ComputationEnergy, JoulesIsPowerTimesTime) {
  energy::ComputationEnergy ce{2.5, 171.0};
  EXPECT_DOUBLE_EQ(ce.joules(), 427.5);
}

}  // namespace
