// Metric/SLI naming lint (tier-1): after exercising a live deployment —
// submissions, a GL failover, health sampling — walk everything that actually
// registered and enforce the conventions the dashboards and the incident
// engine rely on:
//
//   - metric names are dotted lowercase "subsystem.metric" (no per-node
//     names like "gm-1.heartbeats": node identity belongs in trace records
//     and spans, not in metric-name cardinality);
//   - the total metric count stays bounded (all registrations are string
//     literals; a per-VM or per-node leak would blow past the ceiling);
//   - SLI names are snake_case, sorted, and unique;
//   - every SLI HealthMonitor::sli_names() promises is actually produced by
//     evaluate_slos() (it appears in SloEvaluator::status() after sampling),
//     and nothing undeclared is fed to the evaluator;
//   - every declared SLI has a positive threshold configured in SloConfig.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "core/snooze.hpp"
#include "obs/health_monitor.hpp"

namespace {

using namespace snooze;

bool is_snake(const std::string& s) {
  if (s.empty() || std::islower(static_cast<unsigned char>(s[0])) == 0) {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::islower(c) != 0 || std::isdigit(c) != 0 || c == '_';
  });
}

/// "subsystem.metric" (two or more dotted snake_case components).
bool is_dotted_metric(const std::string& name) {
  std::size_t start = 0;
  int components = 0;
  while (true) {
    const std::size_t dot = name.find('.', start);
    const std::string part = name.substr(start, dot - start);
    if (!is_snake(part)) return false;
    ++components;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return components >= 2;
}

class MetricsLint : public ::testing::Test {
 protected:
  void SetUp() override {
    core::SystemSpec spec;
    spec.entry_points = 2;
    spec.group_managers = 2;
    spec.local_controllers = 6;
    spec.seed = 77;
    system_ = std::make_unique<core::SnoozeSystem>(spec);
    system_->start();
    ASSERT_TRUE(system_->run_until_stable(300.0));
    monitor_ = std::make_unique<obs::HealthMonitor>(*system_);
    monitor_->start();

    // Exercise the major subsystems so their metrics register: submissions,
    // then a GL failover mid-run.
    std::vector<core::VmDescriptor> vms;
    for (int i = 0; i < 8; ++i) vms.push_back(system_->make_vm({0.1, 0.1, 0.1}));
    system_->client().submit_all(vms, 0.5);
    system_->engine().run_until(system_->engine().now() + 20.0);
    system_->fail_gl();
    system_->engine().run_until(system_->engine().now() + 60.0);
    monitor_->sample_now();
  }

  std::unique_ptr<core::SnoozeSystem> system_;
  std::unique_ptr<obs::HealthMonitor> monitor_;
};

TEST_F(MetricsLint, MetricNamesAreDottedLowercaseWithBoundedCardinality) {
  const auto& reg = system_->telemetry().metrics();
  std::size_t total = 0;
  auto check = [&](const std::string& name) {
    ++total;
    EXPECT_TRUE(is_dotted_metric(name))
        << "metric name violates subsystem.metric convention: " << name;
    EXPECT_EQ(name.find('-'), std::string::npos)
        << "per-node identity leaked into a metric name: " << name;
  };
  for (const auto& [name, c] : reg.counters()) check(name);
  for (const auto& [name, g] : reg.gauges()) check(name);
  for (const auto& [name, h] : reg.histograms()) check(name);

  EXPECT_GT(total, 10u) << "the run registered suspiciously few metrics";
  // All registrations are compile-time literals; anything near this ceiling
  // means a name is being synthesized per node/VM/run.
  EXPECT_LT(total, 200u) << "unbounded metric cardinality";
}

TEST_F(MetricsLint, SliNamesAreSnakeCaseSortedAndUnique) {
  const auto names = obs::HealthMonitor::sli_names();
  EXPECT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (const auto& name : names) {
    EXPECT_TRUE(is_snake(name)) << "SLI name is not snake_case: " << name;
  }
}

TEST_F(MetricsLint, EverySloReferencedSliIsProducedAndNothingUndeclared) {
  const auto declared = obs::HealthMonitor::sli_names();
  const auto& status = monitor_->slo().status();
  // evaluate_slos() fed the evaluator at least once per declared SLI (NaN
  // "no data" still registers the SLI), so a declared-but-never-produced
  // SLI shows up as a missing key here.
  for (const auto& name : declared) {
    EXPECT_TRUE(status.count(name) != 0)
        << "SLI declared by sli_names() but never produced: " << name;
  }
  for (const auto& [name, st] : status) {
    EXPECT_TRUE(std::binary_search(declared.begin(), declared.end(), name))
        << "SLI fed to the evaluator but missing from sli_names(): " << name;
    EXPECT_GT(st.threshold, 0.0) << "SLI has no positive threshold: " << name;
  }
}

}  // namespace
