// Property-based tests for the delta summary codec (core/summary_codec.hpp).
//
// The codec's contract: whatever mix of churn, loss, duplication, reordering
// and restarts the stream suffers, a successfully applied fresh update leaves
// the decoder holding EXACTLY the encoder-side VM-location map as of encode
// time — byte-for-byte what a full GmSummary stream would have delivered —
// and a replayed stale update never moves the decoder at all. Divergence is
// only ever allowed to be loud (apply() == false => nack => snapshot), never
// silent.
//
// Each seeded sequence interleaves state churn (joins, leaves, drains,
// migrations, mass joins) with transport fates (delivered, lost, ack lost,
// duplicated, stale replay) and endpoint resets (sender restart with a new
// stream incarnation, receiver reset on GL change — the "partition" cases).
// A failing sequence is delta-debugged down to a near-minimal reproduction
// before being reported.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/summary_codec.hpp"
#include "util/rng.hpp"

namespace {

using namespace snooze;
using core::SummaryDecoder;
using core::SummaryEncoder;
using core::SummaryUpdate;
using core::VmId;
using core::VmLocationMap;

// --- operation vocabulary ---------------------------------------------------

struct Op {
  enum class Kind {
    kPlace,          // a new VM lands on some LC
    kMove,           // an existing VM migrates to another LC
    kRemove,         // an existing VM terminates
    kDrain,          // the GM empties out (maintenance drain): map cleared
    kMassJoin,       // a batch of LCs joins and brings many VMs at once
    kRoundOk,        // encode -> deliver -> apply -> ack delivered
    kRoundAckLost,   // encode -> deliver -> apply -> ack lost (sender times out)
    kRoundLost,      // encode -> update lost in transit (sender times out)
    kRoundDuplicated,  // encode -> delivered twice back to back
    kReplayStale,    // some historical update is delivered again (reorder/dup)
    kSenderRestart,  // encoder resets under a bumped stream incarnation
    kReceiverReset,  // decoder starts from scratch (GL change / partition)
  };
  Kind kind;
  std::size_t pick = 0;  // VM / LC / history selector
};

const char* kind_name(Op::Kind k) {
  switch (k) {
    case Op::Kind::kPlace: return "place";
    case Op::Kind::kMove: return "move";
    case Op::Kind::kRemove: return "remove";
    case Op::Kind::kDrain: return "drain";
    case Op::Kind::kMassJoin: return "mass-join";
    case Op::Kind::kRoundOk: return "round-ok";
    case Op::Kind::kRoundAckLost: return "round-ack-lost";
    case Op::Kind::kRoundLost: return "round-lost";
    case Op::Kind::kRoundDuplicated: return "round-duplicated";
    case Op::Kind::kReplayStale: return "replay-stale";
    case Op::Kind::kSenderRestart: return "sender-restart";
    case Op::Kind::kReceiverReset: return "receiver-reset";
  }
  return "?";
}

std::vector<Op> generate_ops(std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int roll = rng.uniform_int(0, 99);
    Op op{};
    const std::size_t pick = rng.uniform_int<std::size_t>(0, 1u << 16);
    if (roll < 20) {
      op = {Op::Kind::kPlace, pick};
    } else if (roll < 32) {
      op = {Op::Kind::kMove, pick};
    } else if (roll < 44) {
      op = {Op::Kind::kRemove, pick};
    } else if (roll < 47) {
      op = {Op::Kind::kDrain, pick};
    } else if (roll < 52) {
      op = {Op::Kind::kMassJoin, pick};
    } else if (roll < 72) {
      op = {Op::Kind::kRoundOk, pick};
    } else if (roll < 79) {
      op = {Op::Kind::kRoundAckLost, pick};
    } else if (roll < 86) {
      op = {Op::Kind::kRoundLost, pick};
    } else if (roll < 90) {
      op = {Op::Kind::kRoundDuplicated, pick};
    } else if (roll < 94) {
      op = {Op::Kind::kReplayStale, pick};
    } else if (roll < 97) {
      op = {Op::Kind::kSenderRestart, pick};
    } else {
      op = {Op::Kind::kReceiverReset, pick};
    }
    ops.push_back(op);
  }
  return ops;
}

// --- interpreter -------------------------------------------------------------

std::string dump_map(const VmLocationMap& m) {
  std::ostringstream out;
  out << "{";
  for (const auto& [vm, lc] : m) out << vm << "@" << lc << " ";
  out << "}";
  return out.str();
}

/// Runs `ops` through an encoder/decoder pair. Returns std::nullopt on
/// success, a divergence report otherwise. Pure function of `ops` (required
/// for deterministic shrinking).
std::optional<std::string> run_codec_ops(const std::vector<Op>& ops) {
  SummaryEncoder enc;
  SummaryDecoder dec;
  std::uint64_t stream = 1;
  enc.reset(stream);

  VmLocationMap truth;  // the GM's live VM -> LC map
  VmId next_vm = 1;
  // Everything ever put on the wire, with the encoder-side truth at encode
  // time — the state a replayed update is allowed to re-anchor a decoder to.
  struct Sent {
    SummaryUpdate update;
    VmLocationMap at_encode;
  };
  std::vector<Sent> history;

  auto fail = [&](const std::string& what) {
    return std::optional<std::string>(
        what + "\n  truth=" + dump_map(truth) +
        "\n  decoder=" + dump_map(dec.state()) +
        "\n  enc.last_seq=" + std::to_string(enc.last_seq()) +
        " dec.last_seq=" + std::to_string(dec.last_seq()) +
        " dec.synced=" + (dec.synced() ? "y" : "n"));
  };

  // One protocol round. `deliver`: the update reaches the decoder.
  // `ack_arrives`: the decoder's verdict reaches the encoder (otherwise the
  // sender treats the round as timed out). Returns a failure report or none.
  auto round = [&](bool deliver, bool ack_arrives,
                   bool duplicate) -> std::optional<std::string> {
    const VmLocationMap at_encode = truth;
    const SummaryUpdate update = enc.encode(truth);
    history.push_back({update, at_encode});
    if (!deliver) {
      enc.on_nack(update.seq);  // transport timeout
      return std::nullopt;
    }
    const bool ok = dec.apply(update);
    // THE core property: a successfully applied fresh update leaves the
    // decoder with exactly the state a full summary at encode time carried.
    if (ok && dec.state() != at_encode) {
      return fail("applied fresh update but decoder != encoder state at encode");
    }
    if (duplicate) {
      const VmLocationMap before = dec.state();
      const bool ok2 = dec.apply(update);
      if (ok2 != ok) return fail("duplicate delivery changed the verdict");
      if (dec.state() != before) return fail("duplicate delivery moved state");
    }
    if (ack_arrives) {
      if (ok) {
        enc.on_ack(update.seq);
      } else {
        enc.on_nack(update.seq);
      }
    } else {
      enc.on_nack(update.seq);  // verdict lost: sender must assume the worst
    }
    return std::nullopt;
  };

  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::kPlace:
        truth[next_vm++] = static_cast<net::Address>(1 + op.pick % 64);
        break;
      case Op::Kind::kMove: {
        if (truth.empty()) break;
        auto it = truth.begin();
        std::advance(it, static_cast<long>(op.pick % truth.size()));
        it->second = static_cast<net::Address>(1 + (it->second + op.pick) % 64);
        break;
      }
      case Op::Kind::kRemove: {
        if (truth.empty()) break;
        auto it = truth.begin();
        std::advance(it, static_cast<long>(op.pick % truth.size()));
        truth.erase(it);
        break;
      }
      case Op::Kind::kDrain:
        truth.clear();
        break;
      case Op::Kind::kMassJoin: {
        const std::size_t n = 2 + op.pick % 30;
        for (std::size_t i = 0; i < n; ++i) {
          truth[next_vm++] = static_cast<net::Address>(1 + (op.pick + i) % 64);
        }
        break;
      }
      case Op::Kind::kRoundOk:
        if (auto f = round(true, true, false)) return f;
        break;
      case Op::Kind::kRoundAckLost:
        if (auto f = round(true, false, false)) return f;
        break;
      case Op::Kind::kRoundLost:
        if (auto f = round(false, false, false)) return f;
        break;
      case Op::Kind::kRoundDuplicated:
        if (auto f = round(true, true, true)) return f;
        break;
      case Op::Kind::kReplayStale: {
        // A historical update resurfaces (duplication + reordering). Most
        // replays must be inert, but two are legal state movers: a snapshot
        // anchoring an unsynced (freshly reset) decoder, and a previously
        // lost delta arriving exactly in sequence. Both land the decoder on
        // a *consistent point-in-time* state — the encoder truth at that
        // update's encode time — never on anything in between. Bounded
        // staleness heals on the next in-order update; silent divergence
        // would not, so that is the line the oracle draws.
        if (history.empty()) break;
        const Sent& old = history[op.pick % history.size()];
        const VmLocationMap before = dec.state();
        const bool ok = dec.apply(old.update);
        if (dec.state() != before) {
          const std::string tag = "replay (stream " +
                                  std::to_string(old.update.stream) + " seq " +
                                  std::to_string(old.update.seq) + ") ";
          if (!ok) return fail(tag + "rejected yet moved state");
          if (dec.state() != old.at_encode) {
            return fail(tag + "moved state off its encode-time snapshot");
          }
        }
        break;
      }
      case Op::Kind::kSenderRestart:
        enc.reset(++stream);
        break;
      case Op::Kind::kReceiverReset:
        dec.reset();
        break;
    }
  }

  // Convergence: two clean rounds always land the decoder on the truth. One
  // is not enough — e.g. a freshly reset decoder legally rejects the first
  // round's delta, and the resulting nack makes the second round a snapshot
  // (the "self-heals within one summary period" guarantee). After that, a
  // churn-free round is an empty delta — the steady state the bytes-on-wire
  // SLO banks on.
  if (auto f = round(true, true, false)) return f;
  if (auto f = round(true, true, false)) return f;
  if (dec.state() != truth) return fail("decoder != truth after clean rounds");
  const SummaryUpdate steady = enc.encode(truth);
  if (steady.snapshot) return *fail("steady-state update is still a snapshot");
  if (!steady.placed.empty() || !steady.removed.empty()) {
    return fail("steady-state delta is not empty");
  }
  if (!dec.apply(steady)) return fail("steady-state delta rejected");
  if (dec.state() != truth) return fail("decoder != truth after steady delta");
  enc.on_ack(steady.seq);
  return std::nullopt;
}

// --- shrinking ---------------------------------------------------------------

std::vector<Op> shrink(std::vector<Op> ops) {
  for (std::size_t chunk = ops.size() / 2; chunk >= 1; chunk /= 2) {
    std::size_t start = 0;
    while (start + chunk <= ops.size()) {
      std::vector<Op> candidate;
      candidate.reserve(ops.size() - chunk);
      candidate.insert(candidate.end(), ops.begin(),
                       ops.begin() + static_cast<long>(start));
      candidate.insert(candidate.end(),
                       ops.begin() + static_cast<long>(start + chunk), ops.end());
      if (run_codec_ops(candidate).has_value()) {
        ops = std::move(candidate);
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return ops;
}

std::string dump_ops(const std::vector<Op>& ops) {
  std::ostringstream out;
  for (const Op& op : ops) {
    out << "  {" << kind_name(op.kind) << ", pick=" << op.pick << "}\n";
  }
  return out.str();
}

class SummaryCodecProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryCodecProperty, DecodeOfEncodeMatchesFullSummaryStream) {
  const std::uint64_t seed = GetParam();
  const auto ops = generate_ops(seed, 160);
  const auto failure = run_codec_ops(ops);
  if (!failure.has_value()) return;
  const auto minimal = shrink(ops);
  FAIL() << "seed " << seed << ": " << *run_codec_ops(minimal) << "\n"
         << "minimal reproduction (" << minimal.size() << " ops):\n"
         << dump_ops(minimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryCodecProperty,
                         testing::Range<std::uint64_t>(1, 201));

// --- targeted corners --------------------------------------------------------

TEST(SummaryCodec, FirstUpdateIsASnapshot) {
  SummaryEncoder enc;
  enc.reset(7);
  VmLocationMap m{{1, 10}, {2, 11}};
  const SummaryUpdate u = enc.encode(m);
  EXPECT_TRUE(u.snapshot);
  EXPECT_EQ(u.stream, 7u);
  EXPECT_EQ(u.seq, 1u);
  EXPECT_EQ(u.placed.size(), 2u);
  EXPECT_TRUE(u.removed.empty());
}

TEST(SummaryCodec, DeltaCarriesOnlyChurn) {
  SummaryEncoder enc;
  SummaryDecoder dec;
  enc.reset(1);
  VmLocationMap m{{1, 10}, {2, 11}, {3, 12}};
  const SummaryUpdate snap = enc.encode(m);
  ASSERT_TRUE(dec.apply(snap));
  enc.on_ack(snap.seq);
  m.erase(2);       // leave
  m[3] = 13;        // move
  m[4] = 14;        // join
  const SummaryUpdate delta = enc.encode(m);
  EXPECT_FALSE(delta.snapshot);
  EXPECT_EQ(delta.placed.size(), 2u);   // the move + the join
  EXPECT_EQ(delta.removed.size(), 1u);  // the leave
  ASSERT_TRUE(dec.apply(delta));
  EXPECT_EQ(dec.state(), m);
}

TEST(SummaryCodec, LostAckForcesSnapshot) {
  SummaryEncoder enc;
  enc.reset(1);
  VmLocationMap m{{1, 10}};
  const SummaryUpdate first = enc.encode(m);
  enc.on_nack(first.seq);  // timeout: the GL's base is unknown
  m[2] = 11;
  const SummaryUpdate second = enc.encode(m);
  EXPECT_TRUE(second.snapshot) << "an un-acked base must never seed a delta";
}

TEST(SummaryCodec, UnsyncedDecoderRejectsDeltas) {
  SummaryEncoder enc;
  SummaryDecoder dec;
  enc.reset(1);
  VmLocationMap m{{1, 10}};
  const SummaryUpdate snap = enc.encode(m);
  enc.on_ack(snap.seq);  // the ack arrived, but the decoder never saw snap
  m[2] = 11;
  const SummaryUpdate delta = enc.encode(m);
  EXPECT_FALSE(delta.snapshot);
  EXPECT_FALSE(dec.apply(delta)) << "delta without an anchoring snapshot";
}

TEST(SummaryCodec, SequenceGapRejected) {
  SummaryEncoder enc;
  SummaryDecoder dec;
  enc.reset(1);
  VmLocationMap m{{1, 10}};
  ASSERT_TRUE(dec.apply(enc.encode(m)));
  enc.on_ack(enc.last_seq());
  m[2] = 11;
  const SummaryUpdate lost = enc.encode(m);  // never delivered
  enc.on_ack(lost.seq);  // and yet acked?! simulate a corrupt peer
  m[3] = 12;
  const SummaryUpdate next = enc.encode(m);
  EXPECT_FALSE(next.snapshot);
  EXPECT_FALSE(dec.apply(next)) << "seq gap must be rejected, not applied";
  EXPECT_EQ(dec.state(), (VmLocationMap{{1, 10}}));
}

TEST(SummaryCodec, StaleSnapshotReplayCannotRegress) {
  SummaryEncoder enc;
  SummaryDecoder dec;
  enc.reset(1);
  VmLocationMap m{{1, 10}};
  const SummaryUpdate old_snap = enc.encode(m);
  ASSERT_TRUE(dec.apply(old_snap));
  enc.on_ack(old_snap.seq);
  m[2] = 11;
  const SummaryUpdate delta = enc.encode(m);
  ASSERT_TRUE(dec.apply(delta));
  enc.on_ack(delta.seq);
  // The network redelivers the original snapshot out of order.
  EXPECT_TRUE(dec.apply(old_snap)) << "same-stream stale snapshot: ack, no-op";
  EXPECT_EQ(dec.state(), m) << "stale snapshot must not roll the state back";
}

TEST(SummaryCodec, OldIncarnationSnapshotRejected) {
  SummaryEncoder old_enc;
  SummaryEncoder new_enc;
  SummaryDecoder dec;
  old_enc.reset(1);
  new_enc.reset(2);  // the GM restarted
  VmLocationMap old_m{{1, 10}};
  VmLocationMap new_m{{2, 20}};
  const SummaryUpdate ghost = old_enc.encode(old_m);  // stuck in the network
  ASSERT_TRUE(dec.apply(new_enc.encode(new_m)));
  EXPECT_FALSE(dec.apply(ghost)) << "a previous life's snapshot is stale";
  EXPECT_EQ(dec.state(), new_m);
}

}  // namespace
