// 50-seed fail-slow soak: random gray-fault schedules (service stretch, CPU
// steal, flaky links — no crashes) on the default cluster. Every run must
// hold the invariants and reconverge, and the containment ladder must be
// well-behaved: no quarantine flaps (a node bouncing healthy<->quarantined),
// and — since nothing ever dies — no leadership churn: a slow-but-alive node
// must never trigger a spurious election.
//
// Lives in its own binary, labeled `soak` in ctest, so the tier-1 suite
// (`ctest -LE soak`) stays fast while CI runs the sweep in a dedicated step.
#include <gtest/gtest.h>

#include "chaos/runner.hpp"

namespace {

using namespace snooze;
using namespace snooze::chaos;

ChaosSpec gray_only_spec() {
  ChaosSpec spec;
  spec.weight_crash_gl = 0.0;
  spec.weight_crash_gm = 0.0;
  spec.weight_crash_lc = 0.0;
  spec.weight_crash_ep = 0.0;
  spec.weight_isolate = 0.0;
  spec.weight_link = 0.0;
  spec.weight_global_drop = 0.0;
  spec.weight_slow = 2.0;
  spec.weight_steal = 1.0;
  spec.weight_flaky = 1.0;
  return spec;
}

TEST(GraySoak, FiftySeedsFailSlowOnly) {
  std::uint64_t total_flags = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ChaosRunConfig cfg;
    cfg.seed = seed;
    cfg.spec = gray_only_spec();
    const auto result = run_chaos(cfg);
    EXPECT_TRUE(result.converged) << "seed " << seed << ":\n" << result.report;
    EXPECT_TRUE(result.invariants_ok) << "seed " << seed << ":\n" << result.report;
    // Containment hysteresis: a reinstated node must not bounce straight
    // back into quarantine within the run.
    EXPECT_EQ(result.quarantine_flaps, 0u)
        << "seed " << seed << ": quarantine flapped\n" << result.report;
    // Nothing crashed and nothing was partitioned, so leadership must be
    // rock-steady no matter how slow individual nodes got.
    EXPECT_EQ(result.stepdowns, 0u)
        << "seed " << seed << ": slow-but-alive node caused an election\n"
        << result.report;
    total_flags += result.slow_flags;
  }
  // Across 50 seeds of dedicated gray schedules the detector must actually
  // fire somewhere — a sweep that never flags anything tests nothing.
  EXPECT_GT(total_flags, 0u) << "detector never fired across the whole sweep";
}

}  // namespace
