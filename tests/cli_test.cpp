// Tests for the CLI library: command parsing, every command's behaviour, and
// the Graphviz hierarchy exporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "cli/commands.hpp"
#include "cli/dot_export.hpp"

namespace {

using namespace snooze;
using namespace snooze::cli;

std::unique_ptr<CliSession> session() {
  return CliSession::boot(/*gms=*/2, /*lcs=*/4, /*seed=*/42, /*energy=*/false);
}

TEST(Tokenize, SplitsOnWhitespace) {
  EXPECT_EQ(tokenize("a bb  ccc"), (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("   ").empty());
}

TEST(Cli, BootBringsUpHierarchy) {
  auto s = session();
  EXPECT_NE(s->system().leader(), nullptr);
  EXPECT_EQ(s->system().assigned_lc_count(), 4u);
}

TEST(Cli, EmptyLineIsNoop) {
  auto s = session();
  const auto r = s->execute("");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.output.empty());
}

TEST(Cli, UnknownCommandFails) {
  auto s = session();
  const auto r = s->execute("frobnicate");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.output.find("unknown command"), std::string::npos);
}

TEST(Cli, HelpListsCommands) {
  const std::string help = CliSession::help();
  for (const char* cmd : {"submit", "run", "hierarchy", "export-dot", "stats", "fail"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}

TEST(Cli, QuitSetsFlag) {
  auto s = session();
  EXPECT_TRUE(s->execute("quit").quit);
  EXPECT_TRUE(s->execute("exit").quit);
  EXPECT_FALSE(s->execute("help").quit);
}

TEST(Cli, SubmitPlacesVms) {
  auto s = session();
  const auto r = s->execute("submit 3");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("3 placed"), std::string::npos);
  EXPECT_EQ(s->system().running_vm_count(), 3u);
}

TEST(Cli, SubmitValidatesArguments) {
  auto s = session();
  EXPECT_FALSE(s->execute("submit").ok);
  EXPECT_FALSE(s->execute("submit 0").ok);
}

TEST(Cli, SubmitWithLifetimeExpires) {
  auto s = session();
  ASSERT_TRUE(s->execute("submit 2 0.2 0.2 0.2 10").ok);
  ASSERT_TRUE(s->execute("run 120").ok);
  EXPECT_EQ(s->system().running_vm_count(), 0u);
}

TEST(Cli, RunAdvancesVirtualTime) {
  auto s = session();
  const double before = s->system().engine().now();
  ASSERT_TRUE(s->execute("run 42.5").ok);
  EXPECT_NEAR(s->system().engine().now(), before + 42.5, 1e-9);
  EXPECT_FALSE(s->execute("run").ok);
  EXPECT_FALSE(s->execute("run -5").ok);
}

TEST(Cli, HierarchyShowsComponents) {
  auto s = session();
  const auto r = s->execute("hierarchy");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("GL:"), std::string::npos);
  EXPECT_NE(r.output.find("LCs: 4"), std::string::npos);
}

TEST(Cli, StatsReportsCounters) {
  auto s = session();
  s->execute("submit 2");
  const auto r = s->execute("stats");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("VMs running: 2"), std::string::npos);
  EXPECT_NE(r.output.find("energy:"), std::string::npos);
}

TEST(Cli, FailGlTriggersFailover) {
  auto s = session();
  const auto r = s->execute("fail gl");
  EXPECT_TRUE(r.ok);
  s->execute("run 60");
  EXPECT_NE(s->system().leader(), nullptr);  // successor elected
}

TEST(Cli, FailoverShowReportsEpochsAndFences) {
  auto s = session();
  const auto before = s->execute("failover show");
  ASSERT_TRUE(before.ok);
  // Initial leadership is election epoch 1.
  EXPECT_NE(before.output.find("GL epoch=1"), std::string::npos) << before.output;
  EXPECT_NE(before.output.find("lease="), std::string::npos);
  ASSERT_TRUE(s->execute("fail gl").ok);
  s->execute("run 60");
  const auto after = s->execute("failover show");
  ASSERT_TRUE(after.ok);
  // The successor holds a newer epoch and finished exactly one extra
  // reconciliation (the boot-time one plus the failover one).
  EXPECT_NE(after.output.find("GL epoch=2"), std::string::npos) << after.output;
  EXPECT_NE(after.output.find("current GL epoch (failover.epoch): 2"),
            std::string::npos)
      << after.output;
  EXPECT_NE(after.output.find("2 reconciliations"), std::string::npos) << after.output;
}

TEST(Cli, FailoverValidatesSubcommand) {
  auto s = session();
  EXPECT_FALSE(s->execute("failover").ok);
  EXPECT_FALSE(s->execute("failover frob").ok);
}

TEST(Cli, FailValidatesTargets) {
  auto s = session();
  EXPECT_FALSE(s->execute("fail").ok);
  EXPECT_FALSE(s->execute("fail gm").ok);
  EXPECT_FALSE(s->execute("fail gm 99").ok);
  EXPECT_FALSE(s->execute("fail lc 99").ok);
  EXPECT_FALSE(s->execute("fail disk 0").ok);
}

TEST(Cli, FailLcKillsItsVms) {
  auto s = session();
  s->execute("submit 4 0.5");
  const std::size_t before = s->system().running_vm_count();
  ASSERT_EQ(before, 4u);
  // Find an LC index hosting VMs.
  std::size_t victim = 0;
  for (std::size_t i = 0; i < s->system().local_controllers().size(); ++i) {
    if (s->system().local_controllers()[i]->vm_count() > 0) {
      victim = i;
      break;
    }
  }
  EXPECT_TRUE(s->execute("fail lc " + std::to_string(victim)).ok);
  s->execute("run 30");
  EXPECT_LT(s->system().running_vm_count(), before);
}

// --- dot export -------------------------------------------------------------------

TEST(DotExport, ContainsEveryComponent) {
  auto s = session();
  s->execute("submit 2");
  const std::string dot = hierarchy_dot(s->system());
  EXPECT_NE(dot.find("digraph snooze"), std::string::npos);
  EXPECT_NE(dot.find("GL "), std::string::npos);
  EXPECT_NE(dot.find("GM "), std::string::npos);
  EXPECT_NE(dot.find("EP "), std::string::npos);
  EXPECT_NE(dot.find("lc-000"), std::string::npos);
  EXPECT_NE(dot.find("lc-003"), std::string::npos);
  // Balanced braces / proper closing.
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(DotExport, ShowsEdgesFromGlToGms) {
  auto s = session();
  const std::string dot = hierarchy_dot(s->system());
  const std::string gl = s->system().leader()->name();
  EXPECT_NE(dot.find("\"" + gl + "\" -> "), std::string::npos);
}

TEST(DotExport, MarksJoiningLcsWhenNoGl) {
  // A deployment with a single GM: it becomes GL, LCs can never join.
  auto s = CliSession::boot(1, 2, 42, false);
  const std::string dot = hierarchy_dot(s->system());
  EXPECT_NE(dot.find("(joining)"), std::string::npos);
}

TEST(DotExport, CommandWritesFile) {
  auto s = session();
  const std::string path = testing::TempDir() + "/snooze_hierarchy.dot";
  const auto r = s->execute("export-dot " + path);
  EXPECT_TRUE(r.ok);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "digraph snooze {");
  std::remove(path.c_str());
}

TEST(DotExport, CommandWithoutFilePrints) {
  auto s = session();
  const auto r = s->execute("export-dot");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("digraph"), std::string::npos);
}

TEST(Cli, MetricsShowListsCounters) {
  auto s = session();
  s->execute("submit 2");
  const auto r = s->execute("metrics show");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("client.successes"), std::string::npos);
  EXPECT_NE(r.output.find("net.messages_sent"), std::string::npos);
  EXPECT_NE(r.output.find("rpc.latency"), std::string::npos);
}

TEST(Cli, MetricsCsvWritesFile) {
  auto s = session();
  s->execute("submit 1");
  const std::string path = testing::TempDir() + "/snooze_metrics.csv";
  const auto r = s->execute("metrics csv " + path);
  EXPECT_TRUE(r.ok) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("kind"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, TraceExportWritesChromeJson) {
  auto s = session();
  s->execute("submit 1");
  const std::string path = testing::TempDir() + "/snooze_trace.json";
  const auto r = s->execute("trace export " + path);
  EXPECT_TRUE(r.ok) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("client.submit"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, TraceCsvWritesSpans) {
  auto s = session();
  s->execute("submit 1");
  const std::string path = testing::TempDir() + "/snooze_spans.csv";
  const auto r = s->execute("trace csv " + path);
  EXPECT_TRUE(r.ok) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("span_id"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, HealthRendersDashboardCsvAndCriticalPath) {
  auto s = session();
  s->execute("submit 2");
  s->execute("run 10");

  const auto dash = s->execute("health");
  EXPECT_TRUE(dash.ok) << dash.output;
  EXPECT_NE(dash.output.find("vms.running"), std::string::npos);
  EXPECT_NE(dash.output.find("energy.joules"), std::string::npos);

  const std::string path = testing::TempDir() + "/snooze_health.csv";
  const auto csv = s->execute("health csv " + path);
  EXPECT_TRUE(csv.ok) << csv.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("time,", 0), 0u);
  EXPECT_NE(header.find("submit.p99_s"), std::string::npos);
  std::remove(path.c_str());

  const auto cp = s->execute("health path");
  EXPECT_TRUE(cp.ok) << cp.output;
  EXPECT_NE(cp.output.find("lc_start"), std::string::npos);
  EXPECT_NE(cp.output.find("coverage"), std::string::npos);
}

TEST(Cli, SloShowsPassFailPerSli) {
  auto s = session();
  s->execute("run 5");
  const auto r = s->execute("slo");
  EXPECT_TRUE(r.ok) << r.output;
  EXPECT_NE(r.output.find("submit_p99"), std::string::npos);
  EXPECT_NE(r.output.find("heartbeat_staleness"), std::string::npos);
  // A freshly booted healthy cluster must not be in violation.
  EXPECT_NE(r.output.find("all SLOs met"), std::string::npos);
}

TEST(Cli, TopListsBusiestNodes) {
  auto s = session();
  s->execute("submit 3");
  s->execute("run 10");
  const auto r = s->execute("top 2");
  EXPECT_TRUE(r.ok) << r.output;
  EXPECT_NE(r.output.find("lc-"), std::string::npos);
  EXPECT_NE(r.output.find("vms"), std::string::npos);
  EXPECT_FALSE(s->execute("top 0").ok);
}

TEST(Cli, MetricsAndTraceValidateArguments) {
  auto s = session();
  EXPECT_FALSE(s->execute("metrics").ok);
  EXPECT_FALSE(s->execute("metrics bogus").ok);
  EXPECT_FALSE(s->execute("metrics csv").ok);
  EXPECT_FALSE(s->execute("trace").ok);
  EXPECT_FALSE(s->execute("trace export").ok);
  EXPECT_FALSE(s->execute("trace bogus x").ok);
}

}  // namespace
