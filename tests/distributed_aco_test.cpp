// Tests for the distributed ACO consolidation (the paper's §V future work):
// feasibility, determinism, quality relative to the centralized colony, and
// the effect of the cooperative tail-repacking pass.
#include <gtest/gtest.h>

#include "consolidation/aco.hpp"
#include "consolidation/distributed_aco.hpp"
#include "consolidation/greedy.hpp"
#include "workload/vm_generator.hpp"

namespace {

using namespace snooze;
using namespace snooze::consolidation;
using hypervisor::ResourceVector;

Instance uniform_instance(std::size_t n, std::uint64_t seed) {
  workload::UniformVmGenerator gen(0.08, 0.42, seed);
  std::vector<ResourceVector> demands;
  for (std::size_t i = 0; i < n; ++i) demands.push_back(gen.next().requested);
  return Instance::homogeneous(std::move(demands), n);
}

DistributedAcoParams default_params(std::size_t shards = 4) {
  DistributedAcoParams params;
  params.shards = shards;
  params.colony.ants = 4;
  params.colony.cycles = 4;
  params.colony.seed = 7;
  return params;
}

TEST(DistributedAco, EmptyInstanceFeasible) {
  const auto inst = Instance::homogeneous({}, 0);
  const auto result = DistributedAcoConsolidation(default_params()).solve(inst);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.hosts_used, 0u);
}

TEST(DistributedAco, FeasibleOnRandomInstances) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const auto inst = uniform_instance(80, seed);
    const auto result = DistributedAcoConsolidation(default_params()).solve(inst);
    EXPECT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_GE(result.hosts_used, inst.lower_bound_hosts());
  }
}

TEST(DistributedAco, DeterministicForSeed) {
  const auto inst = uniform_instance(60, 5);
  const auto a = DistributedAcoConsolidation(default_params()).solve(inst);
  const auto b = DistributedAcoConsolidation(default_params()).solve(inst);
  EXPECT_EQ(a.placement, b.placement);
}

TEST(DistributedAco, ParallelShardsMatchSerial) {
  const auto inst = uniform_instance(60, 5);
  auto serial = default_params();
  serial.threads = 1;
  auto parallel = default_params();
  parallel.threads = 4;
  const auto a = DistributedAcoConsolidation(serial).solve(inst);
  const auto b = DistributedAcoConsolidation(parallel).solve(inst);
  EXPECT_EQ(a.placement, b.placement);
}

TEST(DistributedAco, SingleShardMatchesQualityOfCentralized) {
  const auto inst = uniform_instance(50, 9);
  auto params = default_params(1);
  params.repack_tail = false;
  const auto dist = DistributedAcoConsolidation(params).solve(inst);
  AcoParams colony = params.colony;
  colony.seed = params.colony.seed + 0x9E37u;  // shard 0's derived seed
  const auto central = AcoConsolidation(colony).solve(inst);
  EXPECT_EQ(dist.hosts_used, central.hosts_used);
}

TEST(DistributedAco, QualityCloseToCentralized) {
  // Sharding costs a little quality (fragmentation at shard boundaries) but
  // must stay within a modest factor of the centralized solve.
  double dist_total = 0.0;
  double central_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = uniform_instance(90, seed);
    auto params = default_params(3);
    const auto dist = DistributedAcoConsolidation(params).solve(inst);
    AcoParams colony;
    colony.ants = 4;
    colony.cycles = 4;
    colony.seed = seed;
    const auto central = AcoConsolidation(colony).solve(inst);
    ASSERT_TRUE(dist.feasible);
    ASSERT_TRUE(central.feasible);
    dist_total += static_cast<double>(dist.hosts_used);
    central_total += static_cast<double>(central.hosts_used);
  }
  EXPECT_LE(dist_total, central_total * 1.12);
}

TEST(DistributedAco, TailRepackingNeverHurts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = uniform_instance(80, seed);
    auto without = default_params(4);
    without.repack_tail = false;
    auto with = default_params(4);
    with.repack_tail = true;
    const auto a = DistributedAcoConsolidation(without).solve(inst);
    const auto b = DistributedAcoConsolidation(with).solve(inst);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_LE(b.hosts_used, a.hosts_used) << "seed " << seed;
  }
}

TEST(DistributedAco, TailPassReportsRepackedVms) {
  const auto inst = uniform_instance(80, 3);
  const auto result = DistributedAcoConsolidation(default_params(4)).solve(inst);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.tail_vms, 0u);
  EXPECT_LT(result.tail_vms, inst.vm_count());
}

TEST(DistributedAco, CriticalPathShorterThanSumOfShards) {
  const auto inst = uniform_instance(120, 2);
  auto params = default_params(4);
  const auto dist = DistributedAcoConsolidation(params).solve(inst);
  // The critical path (max shard + tail) must be well under the serial wall
  // time of solving all shards back to back.
  EXPECT_LE(dist.critical_path_s, dist.runtime_s + 1e-9);
  EXPECT_GT(dist.critical_path_s, 0.0);
}

TEST(DistributedAco, MoreShardsThanHostsClamped) {
  const auto inst = uniform_instance(6, 1);
  auto params = default_params(50);  // more shards than hosts
  const auto result = DistributedAcoConsolidation(params).solve(inst);
  EXPECT_TRUE(result.feasible);
}

TEST(DistributedAco, BeatsFfdLikeCentralizedDoes) {
  std::size_t dist_total = 0;
  std::size_t ffd_total = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = uniform_instance(90, seed);
    const auto dist = DistributedAcoConsolidation(default_params(3)).solve(inst);
    const auto ffd = first_fit_decreasing(inst, SortKey::kCpu);
    ASSERT_TRUE(dist.feasible);
    dist_total += dist.hosts_used;
    ffd_total += ffd.hosts_used();
  }
  EXPECT_LE(dist_total, ffd_total);
}

}  // namespace
