// Integration tests over complete simulated Snooze deployments: hierarchy
// self-organization, the full VM submission path, failure recovery at every
// level (GL, GM, LC — paper §II.E), relocation, energy management and
// periodic ACO reconfiguration.
#include <gtest/gtest.h>

#include "core/snooze.hpp"

namespace {

using namespace snooze;
using namespace snooze::core;
using hypervisor::ResourceVector;

SystemSpec small_spec(std::size_t gms = 2, std::size_t lcs = 8) {
  SystemSpec spec;
  spec.entry_points = 2;
  spec.group_managers = gms;
  spec.local_controllers = lcs;
  spec.seed = 42;
  return spec;
}

TraceSpec constant_trace(double value) {
  TraceSpec t;
  t.kind = TraceSpec::Kind::kConstant;
  t.a = value;
  return t;
}

// --- Self-organization ------------------------------------------------------------

TEST(SystemBoot, HierarchyStabilizes) {
  SnoozeSystem system(small_spec());
  system.start();
  EXPECT_TRUE(system.run_until_stable(60.0));
  EXPECT_NE(system.leader(), nullptr);
  EXPECT_EQ(system.assigned_lc_count(), 8u);
}

TEST(SystemBoot, ExactlyOneLeader) {
  SnoozeSystem system(small_spec(4, 12));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  int leaders = 0;
  for (const auto& gm : system.group_managers()) {
    if (gm->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(SystemBoot, LeaderManagesNoLcs) {
  SnoozeSystem system(small_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  EXPECT_EQ(system.leader()->lc_count(), 0u);  // dedicated roles
}

TEST(SystemBoot, LcsSpreadAcrossGms) {
  SnoozeSystem system(small_spec(3, 12));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  // Round-robin assignment over the two non-leader GMs: 6 LCs each.
  for (const auto& gm : system.group_managers()) {
    if (gm->is_leader()) continue;
    EXPECT_EQ(gm->lc_count(), 6u);
  }
}

TEST(SystemBoot, EntryPointsLearnTheGl) {
  SnoozeSystem system(small_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  for (const auto& ep : system.entry_points()) {
    EXPECT_EQ(ep->known_gl(), system.gl_address());
  }
}

TEST(SystemBoot, SingleGmDeploymentCannotPlaceLcs) {
  // With one GM it must become GL, and a GL manages no LCs: the LCs keep
  // retrying (degenerate deployment, documented behaviour).
  SnoozeSystem system(small_spec(1, 4));
  system.start();
  EXPECT_FALSE(system.run_until_stable(20.0));
  EXPECT_NE(system.leader(), nullptr);
  EXPECT_EQ(system.assigned_lc_count(), 0u);
}

TEST(SystemBoot, HierarchyDumpMentionsComponents) {
  SnoozeSystem system(small_spec());
  system.start();
  system.run_until_stable(60.0);
  const std::string dump = system.hierarchy_dump();
  EXPECT_NE(dump.find("GL:"), std::string::npos);
  EXPECT_NE(dump.find("LCs: 8"), std::string::npos);
}

// --- VM submission path ------------------------------------------------------------

class SubmissionTest : public testing::Test {
 protected:
  void boot(SystemSpec spec) {
    system = std::make_unique<SnoozeSystem>(spec);
    system->start();
    ASSERT_TRUE(system->run_until_stable(60.0));
  }
  void submit_and_run(std::size_t n, double size = 0.125, double lifetime = 0.0) {
    std::vector<VmDescriptor> vms;
    for (std::size_t i = 0; i < n; ++i) {
      vms.push_back(system->make_vm(ResourceVector{size, size, size}, lifetime,
                                    constant_trace(0.8)));
    }
    system->client().submit_all(vms, 0.2);
    system->engine().run_until(system->engine().now() + 60.0);
  }
  std::unique_ptr<SnoozeSystem> system;
};

TEST_F(SubmissionTest, AllVmsPlaced) {
  boot(small_spec());
  submit_and_run(12);
  EXPECT_EQ(system->client().succeeded(), 12u);
  EXPECT_EQ(system->client().failed(), 0u);
  EXPECT_EQ(system->running_vm_count(), 12u);
}

TEST_F(SubmissionTest, SubmissionLatencyIncludesBoot) {
  boot(small_spec());
  submit_and_run(4);
  ASSERT_GT(system->client().latencies().count(), 0u);
  // End-to-end latency must at least cover the 2 s VM boot time.
  EXPECT_GE(system->client().latencies().min(), system->spec().config.vm_boot_time);
  EXPECT_LT(system->client().latencies().max(), 10.0);
}

TEST_F(SubmissionTest, OverCapacitySubmissionsFailGracefully) {
  boot(small_spec(2, 2));  // two LCs: capacity for 2 full-size VMs
  submit_and_run(4, /*size=*/0.9);
  EXPECT_EQ(system->client().succeeded(), 2u);
  EXPECT_EQ(system->client().failed(), 2u);
  EXPECT_EQ(system->running_vm_count(), 2u);
}

TEST_F(SubmissionTest, FiniteLifetimeVmsTerminate) {
  boot(small_spec());
  submit_and_run(6, 0.125, /*lifetime=*/10.0);
  EXPECT_EQ(system->client().succeeded(), 6u);
  EXPECT_EQ(system->running_vm_count(), 0u);  // all expired within the run
}

TEST_F(SubmissionTest, GmRecordsMatchLcReality) {
  boot(small_spec());
  submit_and_run(10);
  std::size_t gm_view = 0;
  for (const auto& gm : system->group_managers()) {
    if (gm->alive() && !gm->is_leader()) gm_view += gm->vm_count();
  }
  EXPECT_EQ(gm_view, system->running_vm_count());
}

TEST_F(SubmissionTest, WorkAccruesWhileVmsRun) {
  boot(small_spec());
  const double before = system->total_work();
  submit_and_run(5);
  EXPECT_GT(system->total_work(), before);
}

// --- Fault tolerance (paper §II.E) ---------------------------------------------------

TEST(FaultTolerance, GlFailoverElectsNewLeader) {
  SnoozeSystem system(small_spec(3, 9));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  const net::Address old_gl = system.gl_address();
  ASSERT_GE(system.fail_gl(), 0);
  system.engine().run_until(system.engine().now() + 40.0);
  ASSERT_NE(system.leader(), nullptr);
  EXPECT_NE(system.gl_address(), old_gl);
}

TEST(FaultTolerance, HierarchyReformsAfterGlFailure) {
  SnoozeSystem system(small_spec(3, 9));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  system.fail_gl();
  // The promoted GM resigns its LCs; everyone rejoins the new hierarchy.
  EXPECT_TRUE(system.run_until_stable(system.engine().now() + 60.0));
  EXPECT_EQ(system.assigned_lc_count(), 9u);
}

TEST(FaultTolerance, RunningVmsSurviveGlFailure) {
  SnoozeSystem system(small_spec(3, 9));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 6; ++i) {
    vms.push_back(system.make_vm({0.125, 0.125, 0.125}, 0.0, constant_trace(0.8)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 30.0);
  ASSERT_EQ(system.running_vm_count(), 6u);
  system.fail_gl();
  system.engine().run_until(system.engine().now() + 60.0);
  // Management-layer failure never touches the data plane.
  EXPECT_EQ(system.running_vm_count(), 6u);
}

TEST(FaultTolerance, GmFailureReassignsItsLcs) {
  SnoozeSystem system(small_spec(3, 8));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  // Fail a non-leader GM.
  for (std::size_t i = 0; i < system.group_managers().size(); ++i) {
    if (!system.group_managers()[i]->is_leader()) {
      system.fail_gm(i);
      break;
    }
  }
  EXPECT_TRUE(system.run_until_stable(system.engine().now() + 60.0));
  EXPECT_EQ(system.assigned_lc_count(), 8u);
}

TEST(FaultTolerance, GlDetectsGmFailure) {
  SnoozeSystem system(small_spec(3, 6));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  GroupManager* gl = system.leader();
  const std::size_t before = gl->known_gm_count();
  ASSERT_EQ(before, 2u);
  for (std::size_t i = 0; i < system.group_managers().size(); ++i) {
    if (!system.group_managers()[i]->is_leader()) {
      system.fail_gm(i);
      break;
    }
  }
  system.engine().run_until(system.engine().now() + 30.0);
  EXPECT_EQ(gl->known_gm_count(), 1u);
  EXPECT_GE(gl->counters().gm_failures_detected, 1u);
}

TEST(FaultTolerance, LcFailureDetectedAndVmsLost) {
  SystemSpec spec = small_spec();
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back(system.make_vm({0.2, 0.2, 0.2}, 0.0, constant_trace(0.8)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 30.0);
  ASSERT_EQ(system.running_vm_count(), 8u);

  // Find an LC hosting at least one VM and crash it.
  std::size_t victim = 0;
  for (std::size_t i = 0; i < system.local_controllers().size(); ++i) {
    if (system.local_controllers()[i]->vm_count() > 0) {
      victim = i;
      break;
    }
  }
  const std::size_t lost = system.local_controllers()[victim]->vm_count();
  system.fail_lc(victim);
  system.engine().run_until(system.engine().now() + 30.0);
  // Without snapshot recovery the VMs are gone (paper: "VMs are terminated").
  EXPECT_EQ(system.running_vm_count(), 8u - lost);
  std::uint64_t detected = 0;
  for (const auto& gm : system.group_managers()) {
    detected += gm->counters().lc_failures_detected;
  }
  EXPECT_GE(detected, 1u);
}

TEST(FaultTolerance, SnapshotRecoveryReschedulesVms) {
  SystemSpec spec = small_spec();
  spec.config.reschedule_failed_vms = true;  // the optional §II.E feature
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 8; ++i) {
    vms.push_back(system.make_vm({0.2, 0.2, 0.2}, 0.0, constant_trace(0.8)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 30.0);
  ASSERT_EQ(system.running_vm_count(), 8u);
  std::size_t victim = 0;
  for (std::size_t i = 0; i < system.local_controllers().size(); ++i) {
    if (system.local_controllers()[i]->vm_count() > 0) {
      victim = i;
      break;
    }
  }
  system.fail_lc(victim);
  system.engine().run_until(system.engine().now() + 60.0);
  // The GM rescheduled the lost VMs onto its surviving LCs.
  EXPECT_EQ(system.running_vm_count(), 8u);
}

TEST(FaultTolerance, RestartedLcRejoins) {
  SnoozeSystem system(small_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  system.fail_lc(0);
  system.engine().run_until(system.engine().now() + 20.0);
  EXPECT_EQ(system.assigned_lc_count(), 7u);
  system.local_controllers()[0]->restart();
  // Boot latency (90 s) plus rejoin.
  EXPECT_TRUE(system.run_until_stable(system.engine().now() + 150.0));
  EXPECT_EQ(system.assigned_lc_count(), 8u);
}

TEST(FaultTolerance, SubmissionsWorkAfterFailover) {
  SnoozeSystem system(small_spec(3, 9));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  system.fail_gl();
  system.engine().run_until(system.engine().now() + 40.0);
  ASSERT_TRUE(system.run_until_stable(system.engine().now() + 60.0));
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 4; ++i) {
    vms.push_back(system.make_vm({0.125, 0.125, 0.125}, 0.0, constant_trace(0.8)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 60.0);
  EXPECT_EQ(system.client().succeeded(), 4u);
}

// --- Relocation -------------------------------------------------------------------------

TEST(Relocation, OverloadTriggersMigration) {
  SystemSpec spec = small_spec(2, 4);
  spec.config.overload_threshold = 0.6;
  spec.config.placement_policy = PlacementPolicyKind::kFirstFit;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  // Three VMs whose *reservation* is modest but whose usage ramps to 0.9:
  // first-fit stacks them on one LC, which then overloads.
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 3; ++i) {
    TraceSpec ramp;
    ramp.kind = TraceSpec::Kind::kConstant;
    ramp.a = 0.95;
    vms.push_back(system.make_vm({0.3, 0.3, 0.3}, 0.0, ramp));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 120.0);
  std::uint64_t overloads = 0;
  std::uint64_t migrations = 0;
  for (const auto& gm : system.group_managers()) {
    overloads += gm->counters().overload_events;
    migrations += gm->counters().migrations_completed;
  }
  EXPECT_GE(overloads, 1u);
  EXPECT_GE(migrations, 1u);
  EXPECT_EQ(system.running_vm_count(), 3u);  // nothing lost in flight
}

TEST(Relocation, UnderloadEvacuatesColdNode) {
  SystemSpec spec = small_spec(2, 4);
  spec.config.underload_threshold = 0.25;
  spec.config.overload_threshold = 0.95;
  spec.config.placement_policy = PlacementPolicyKind::kRoundRobin;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  // Round-robin spreads VMs thinly: each LC ends up underloaded and the GM
  // consolidates them onto fewer nodes.
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 4; ++i) {
    vms.push_back(system.make_vm({0.3, 0.3, 0.3}, 0.0, constant_trace(0.5)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 180.0);
  std::uint64_t underloads = 0;
  for (const auto& gm : system.group_managers()) {
    underloads += gm->counters().underload_events;
  }
  EXPECT_GE(underloads, 1u);
  EXPECT_EQ(system.running_vm_count(), 4u);
}

// --- Energy management ---------------------------------------------------------------------

TEST(Energy, IdleLcsSuspendAfterThreshold) {
  SystemSpec spec = small_spec(2, 6);
  spec.config.energy_savings = true;
  spec.config.idle_threshold = 20.0;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  system.engine().run_until(system.engine().now() + 120.0);
  // No VMs anywhere: every LC is idle and must be suspended.
  EXPECT_EQ(system.suspended_lc_count(), 6u);
}

TEST(Energy, SuspendedNodesAreWokenForPlacement) {
  SystemSpec spec = small_spec(2, 4);
  spec.config.energy_savings = true;
  spec.config.idle_threshold = 15.0;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  system.engine().run_until(system.engine().now() + 90.0);
  ASSERT_EQ(system.suspended_lc_count(), 4u);
  // Submit: the GM must wake a node to host the VM.
  std::vector<VmDescriptor> vms{system.make_vm({0.25, 0.25, 0.25}, 0.0,
                                               constant_trace(0.8))};
  system.client().submit_all(vms, 0.0);
  system.engine().run_until(system.engine().now() + 60.0);
  EXPECT_EQ(system.client().succeeded(), 1u);
  EXPECT_EQ(system.running_vm_count(), 1u);
  EXPECT_EQ(system.suspended_lc_count(), 3u);
  std::uint64_t wakeups = 0;
  for (const auto& gm : system.group_managers()) {
    wakeups += gm->counters().wakeups;
  }
  EXPECT_GE(wakeups, 1u);
}

TEST(Energy, SuspensionSavesEnergyVersusBaseline) {
  auto run = [](bool energy_savings) {
    SystemSpec spec = small_spec(2, 6);
    spec.config.energy_savings = energy_savings;
    spec.config.idle_threshold = 10.0;
    SnoozeSystem system(spec);
    system.start();
    system.run_until_stable(60.0);
    system.engine().run_until(600.0);
    return system.total_energy();
  };
  const double with_savings = run(true);
  const double without = run(false);
  EXPECT_LT(with_savings, 0.5 * without);  // suspend draws ~5% of idle
}

// --- Reconfiguration (periodic ACO consolidation) ----------------------------------------------

TEST(Reconfiguration, AcoConsolidationPacksVms) {
  SystemSpec spec = small_spec(2, 6);
  spec.config.placement_policy = PlacementPolicyKind::kRoundRobin;  // spread out
  spec.config.consolidation = ConsolidationKind::kAco;
  spec.config.reconfiguration_period = 60.0;
  spec.config.underload_threshold = 0.0;  // isolate the reconfiguration path
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 6; ++i) {
    vms.push_back(system.make_vm({0.25, 0.25, 0.25}, 0.0, constant_trace(0.9)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 300.0);

  std::uint64_t reconfigurations = 0;
  for (const auto& gm : system.group_managers()) {
    reconfigurations += gm->counters().reconfigurations;
  }
  EXPECT_GE(reconfigurations, 1u);
  EXPECT_EQ(system.running_vm_count(), 6u);
  // 6 x 0.25 VMs fit on 2 LCs; round-robin had spread them over ~6.
  std::size_t hosts_with_vms = 0;
  for (const auto& lc : system.local_controllers()) {
    if (lc->vm_count() > 0) ++hosts_with_vms;
  }
  EXPECT_LE(hosts_with_vms, 3u);
}

TEST(Reconfiguration, ConsolidationPlusSuspendShutsDownFreedNodes) {
  SystemSpec spec = small_spec(2, 6);
  spec.config.placement_policy = PlacementPolicyKind::kRoundRobin;
  spec.config.consolidation = ConsolidationKind::kAco;
  spec.config.reconfiguration_period = 60.0;
  spec.config.energy_savings = true;
  spec.config.idle_threshold = 30.0;
  spec.config.underload_threshold = 0.0;
  SnoozeSystem system(spec);
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  std::vector<VmDescriptor> vms;
  for (int i = 0; i < 6; ++i) {
    vms.push_back(system.make_vm({0.25, 0.25, 0.25}, 0.0, constant_trace(0.9)));
  }
  system.client().submit_all(vms, 0.2);
  system.engine().run_until(system.engine().now() + 400.0);
  EXPECT_EQ(system.running_vm_count(), 6u);
  EXPECT_GE(system.suspended_lc_count(), 3u);  // freed nodes powered down
}

// --- Monitoring / overhead ---------------------------------------------------------------------

TEST(Monitoring, ControlTrafficFlowsContinuously) {
  SnoozeSystem system(small_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  system.network().reset_stats();
  system.engine().run_until(system.engine().now() + 60.0);
  const auto stats = system.network().stats();
  EXPECT_GT(stats.messages_sent, 100u);   // heartbeats + monitoring
  EXPECT_GT(stats.bytes_sent, 10000u);
}

TEST(Monitoring, GmSummariesReachTheGl) {
  SnoozeSystem system(small_spec(3, 6));
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  system.engine().run_until(system.engine().now() + 20.0);
  GroupManager* gl = system.leader();
  ASSERT_NE(gl, nullptr);
  const auto infos = gl->gm_infos();
  ASSERT_EQ(infos.size(), 2u);
  for (const auto& info : infos) {
    EXPECT_DOUBLE_EQ(info.capacity.cpu(), 3.0);  // 3 LCs x 1.0 CPU each
    EXPECT_EQ(info.lc_count, 3u);
  }
}

}  // namespace
