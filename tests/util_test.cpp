// Unit tests for the util library: stats accumulators, RNG, tables, CSV,
// args parsing and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace snooze::util;

// --- RunningStats -----------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanMinMax) {
  RunningStats s;
  for (double x : {4.0, 2.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, VarianceMatchesDefinition) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  // Sample variance of {1,2,3,4} = 5/3.
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequentialAdds) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (const double x : {1.0, 4.0, 9.0}) {
    a.add(x);
    all.add(x);
  }
  for (const double x : {-2.0, 16.0, 25.0, 3.5}) {
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyEitherSide) {
  RunningStats a;
  a.add(2.0);
  a.add(6.0);
  RunningStats empty;
  RunningStats copy = a;
  copy.merge(empty);  // no-op
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 4.0);
  empty.merge(a);  // adopt
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
  EXPECT_DOUBLE_EQ(empty.min(), 2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 6.0);
}

TEST(RunningStats, ClearResets) {
  RunningStats s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// --- Percentiles --------------------------------------------------------------

TEST(Percentiles, MedianOfOddCount) {
  Percentiles p;
  for (double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(Percentiles, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.25), 2.5);
}

TEST(Percentiles, ExtremesAreMinMax) {
  Percentiles p;
  for (double x : {9.0, -2.0, 4.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.min(), -2.0);
  EXPECT_DOUBLE_EQ(p.max(), 9.0);
}

TEST(Percentiles, MeanAndEmptyBehaviour) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
  p.add(2.0);
  p.add(4.0);
  EXPECT_DOUBLE_EQ(p.mean(), 3.0);
}

TEST(Percentiles, SingleSampleEveryQuantile) {
  Percentiles p;
  p.add(7.5);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(p.percentile(0.99), 7.5);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 7.5);
}

TEST(Percentiles, QuantileClampedToValidRange) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(2.0), 2.0);
}

TEST(Percentiles, MergeCombinesSamples) {
  Percentiles a;
  a.add(1.0);
  a.add(3.0);
  Percentiles b;
  b.add(2.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.median(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(Percentiles, MergeEmptyIsNoop) {
  Percentiles a;
  a.add(5.0);
  Percentiles empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.median(), 5.0);
}

TEST(Percentiles, QueryThenAddThenQuery) {
  Percentiles p;
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.median(), 1.0);
  p.add(3.0);  // invalidates sort cache
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
}

// --- TimeWeighted --------------------------------------------------------------

TEST(TimeWeighted, IntegralOfConstant) {
  TimeWeighted tw(0.0, 2.0);
  EXPECT_DOUBLE_EQ(tw.integral(5.0), 10.0);
}

TEST(TimeWeighted, PiecewiseIntegral) {
  TimeWeighted tw(0.0, 1.0);
  tw.set(2.0, 3.0);  // 1.0 for [0,2), then 3.0
  EXPECT_DOUBLE_EQ(tw.integral(4.0), 2.0 + 6.0);
  EXPECT_DOUBLE_EQ(tw.average(4.0), 2.0);
}

TEST(TimeWeighted, NonZeroStartTime) {
  TimeWeighted tw(10.0, 4.0);
  tw.set(12.0, 0.0);
  EXPECT_DOUBLE_EQ(tw.integral(20.0), 8.0);
  EXPECT_DOUBLE_EQ(tw.average(20.0), 0.8);
}

TEST(TimeWeighted, ZeroLengthIntervalAddsNothing) {
  TimeWeighted w(0.0, 5.0);
  w.set(2.0, 3.0);
  w.set(2.0, 9.0);  // same instant: no area accrues for the overwritten value
  EXPECT_DOUBLE_EQ(w.integral(2.0), 10.0);
  EXPECT_DOUBLE_EQ(w.current(), 9.0);
  EXPECT_DOUBLE_EQ(w.integral(3.0), 19.0);
}

TEST(TimeWeighted, AverageOverZeroSpanIsCurrentValue) {
  TimeWeighted w(4.0, 2.5);
  EXPECT_DOUBLE_EQ(w.average(4.0), 2.5);
}

TEST(TimeWeighted, CurrentValueTracksLastSet) {
  TimeWeighted tw;
  tw.set(1.0, 42.0);
  EXPECT_DOUBLE_EQ(tw.current(), 42.0);
  EXPECT_DOUBLE_EQ(tw.last_update(), 1.0);
}

// --- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(7);
  const std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(w), 1u);
  }
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  Rng rng(7);
  const std::vector<double> w{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(w), w.size());
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(7);
  const std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(w) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The child stream is distinct from the parent's continued stream.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

// --- Table ------------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatsFraction) { EXPECT_EQ(Table::pct(0.047, 1), "4.7%"); }

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

// --- Csv ------------------------------------------------------------------------

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  const std::string path = testing::TempDir() + "/snooze_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b"});
    csv.write_row({"1", "2,3"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"2,3\"");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

TEST(Csv, EscapesCarriageReturnAndNewline) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::escape("a\rb"), "\"a\rb\"");
}

TEST(Csv, RowFormatsAndParsesBack) {
  const std::vector<std::string> fields = {"plain", "with,comma", "say \"hi\"",
                                           "multi\nline", "cr\rhere", ""};
  const std::string text = csv_row(fields) + "\n";
  const auto rows = parse_csv(text);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], fields);
}

TEST(Csv, ParsesMultipleRowsWithCrLf) {
  const auto rows = parse_csv("a,b\r\n\"1,5\",2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1,5", "2"}));
}

TEST(Csv, ParsesEmptyQuotedFieldDistinctFromMissing) {
  const auto rows = parse_csv("\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "x"}));
}

TEST(Csv, ParseThrowsOnUnterminatedQuote) {
  EXPECT_THROW(parse_csv("\"oops,1\n"), std::runtime_error);
}

TEST(Csv, RandomFieldsRoundTrip) {
  // Deterministic pseudo-random torture: every special character mixed in.
  const std::string alphabet = "ab,\"\n\r;x ";
  std::uint64_t state = 0x12345678u;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::size_t>(state >> 33);
  };
  std::vector<std::vector<std::string>> table;
  std::string text;
  for (int r = 0; r < 20; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < 4; ++c) {
      std::string field;
      const std::size_t len = next() % 6;
      for (std::size_t i = 0; i < len; ++i) field += alphabet[next() % alphabet.size()];
      row.push_back(std::move(field));
    }
    text += csv_row(row) + "\n";
    table.push_back(std::move(row));
  }
  EXPECT_EQ(parse_csv(text), table);
}

// --- Args ------------------------------------------------------------------------

TEST(Args, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--count=5", "--name=test"};
  Args args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 5);
  EXPECT_EQ(args.get("name", ""), "test");
}

TEST(Args, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--count", "7"};
  Args args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 7);
}

TEST(Args, BooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  Args args(2, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(Args, FalseStringIsFalse) {
  const char* argv[] = {"prog", "--x=false", "--y=0"};
  Args args(3, argv);
  EXPECT_FALSE(args.get_bool("x", true));
  EXPECT_FALSE(args.get_bool("y", true));
}

TEST(Args, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
}

TEST(Args, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--n=1", "output.txt"};
  Args args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

// --- ThreadPool --------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&sum] { sum += 1; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 200);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
