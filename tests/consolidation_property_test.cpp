// Consolidation invariant property tests.
//
// Every packing algorithm in the repository — the greedy family, the
// centralized ACO and the distributed (sharded) ACO — must produce a
// placement that assigns every VM exactly once without exceeding any host
// capacity, on any instance that is packable at all (one host per VM makes
// that trivially true here). The migration plans derived from any pair of
// such placements must apply cleanly: each move's source matches the current
// placement, and the applied result is exactly the target.
//
// 50 seeded random instances of varying size and demand skew; failures
// report the seed, so any regression reproduces with a one-line repro.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "consolidation/aco.hpp"
#include "consolidation/distributed_aco.hpp"
#include "consolidation/greedy.hpp"
#include "consolidation/instance.hpp"
#include "consolidation/migration_plan.hpp"
#include "util/rng.hpp"

namespace {

using namespace snooze;
using consolidation::Instance;
using consolidation::kUnassigned;
using consolidation::Placement;

/// Random homogeneous instance; skews the demand band by seed so the suite
/// covers loose (many tiny VMs per host) and tight (near-half-host VMs,
/// two-per-host at best) packings.
Instance make_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t n_vms = rng.uniform_int<std::size_t>(10, 60);
  const double lo = rng.uniform(0.02, 0.15);
  const double hi = rng.uniform(lo + 0.05, 0.48);
  std::vector<consolidation::ResourceVector> demands;
  demands.reserve(n_vms);
  for (std::size_t i = 0; i < n_vms; ++i) {
    demands.emplace_back(rng.uniform(lo, hi), rng.uniform(lo, hi),
                         rng.uniform(lo, hi));
  }
  return Instance::homogeneous(std::move(demands), n_vms);
}

/// Full structural check: complete, every assignment in range, feasible.
void expect_valid(const Placement& placement, const Instance& instance,
                  const char* solver) {
  ASSERT_EQ(placement.vm_count(), instance.vm_count()) << solver;
  for (std::size_t vm = 0; vm < placement.vm_count(); ++vm) {
    const auto host = placement.host_of(vm);
    ASSERT_NE(host, kUnassigned) << solver << ": vm " << vm << " unplaced";
    ASSERT_LT(static_cast<std::size_t>(host), instance.host_count())
        << solver << ": vm " << vm << " on out-of-range host " << host;
  }
  EXPECT_TRUE(placement.complete()) << solver;
  EXPECT_TRUE(placement.feasible(instance)) << solver << ": capacity exceeded";
  EXPECT_GE(placement.hosts_used(), instance.lower_bound_hosts()) << solver;
}

/// Apply `plan` to a copy of `current`, checking each move's precondition.
Placement apply_plan(const consolidation::MigrationPlan& plan,
                     const Placement& current) {
  Placement applied = current;
  for (const auto& m : plan.migrations) {
    EXPECT_EQ(applied.host_of(m.vm), m.from)
        << "migration source does not match the current placement for vm "
        << m.vm;
    EXPECT_NE(m.from, m.to) << "no-op migration for vm " << m.vm;
    applied.assign(m.vm, m.to);
  }
  return applied;
}

TEST(ConsolidationProperty, AllSolversProduceFeasiblePlacements) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Instance instance = make_instance(seed);

    const Placement ff = consolidation::first_fit(instance);
    const Placement ffd = consolidation::first_fit_decreasing(instance);
    const Placement bfd = consolidation::best_fit_decreasing(instance);
    const Placement dot = consolidation::dot_product_fit(instance);
    expect_valid(ff, instance, "first_fit");
    expect_valid(ffd, instance, "first_fit_decreasing");
    expect_valid(bfd, instance, "best_fit_decreasing");
    expect_valid(dot, instance, "dot_product_fit");

    consolidation::AcoParams aco_params;
    aco_params.ants = 4;
    aco_params.cycles = 3;
    aco_params.seed = seed;
    const auto aco = consolidation::AcoConsolidation(aco_params).solve(instance);
    EXPECT_TRUE(aco.feasible) << "aco declared its own result infeasible";
    expect_valid(aco.placement, instance, "aco");
    EXPECT_EQ(aco.hosts_used, aco.placement.hosts_used()) << "aco";

    consolidation::DistributedAcoParams daco_params;
    daco_params.shards = 2;
    daco_params.colony = aco_params;
    const auto daco =
        consolidation::DistributedAcoConsolidation(daco_params).solve(instance);
    EXPECT_TRUE(daco.feasible) << "distributed aco declared itself infeasible";
    expect_valid(daco.placement, instance, "distributed_aco");

    // The decreasing greedy variants must never do worse than the lower
    // bound says is possible; ACO must never do worse than its own greedy
    // fallback guarantees (first-fit completeness).
    EXPECT_LE(aco.hosts_used, instance.host_count());
  }
}

TEST(ConsolidationProperty, MigrationPlansApplyCleanly) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Instance instance = make_instance(seed);

    // A typical reconfiguration: the system is running the quick greedy
    // placement and the optimizer proposes a tighter one.
    const Placement current = consolidation::first_fit(instance);
    consolidation::AcoParams params;
    params.ants = 4;
    params.cycles = 3;
    params.seed = seed;
    const Placement target =
        consolidation::AcoConsolidation(params).solve(instance).placement;

    const auto plan = consolidation::diff_placements(current, target);
    const Placement applied = apply_plan(plan, current);
    EXPECT_EQ(applied, target) << "applying the plan must yield the target";
    EXPECT_TRUE(applied.feasible(instance));

    // A placement diffed against itself must be a no-op plan.
    EXPECT_TRUE(consolidation::diff_placements(current, current).empty());
  }
}

}  // namespace
