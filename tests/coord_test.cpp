// Tests for the coordination service (ZooKeeper stand-in) and the leader
// election recipe: znode semantics, ephemeral/sequential nodes, session
// expiry, watches, and single-promotion failover.
#include <gtest/gtest.h>

#include <optional>

#include "coord/client.hpp"
#include "coord/leader_election.hpp"
#include "coord/service.hpp"

namespace {

using namespace snooze;

class CoordTest : public testing::Test {
 protected:
  CoordTest() : service(engine, network, network.allocate_address()) {}

  coord::Client make_client(const std::string& name) {
    return coord::Client(engine, network, service.address(), name);
  }

  sim::Engine engine{1};
  net::Network network{engine, net::LatencyModel{1e-3, 0.0}};
  coord::Service service;
};

TEST_F(CoordTest, OpenSessionSucceeds) {
  auto client = make_client("c1");
  std::optional<bool> ok;
  client.open_session(5.0, [&](bool v) { ok = v; });
  engine.run_until(1.0);
  EXPECT_EQ(ok, true);
  EXPECT_TRUE(client.has_session());
  EXPECT_EQ(service.session_count(), 1u);
}

TEST_F(CoordTest, CreatePersistentNode) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  std::optional<std::string> path;
  client.create("/x", "data", false, false,
                [&](bool ok, const std::string& p) {
                  ASSERT_TRUE(ok);
                  path = p;
                });
  engine.run_until(1.0);
  EXPECT_EQ(path, "/x");
  EXPECT_TRUE(service.node_exists("/x"));
}

TEST_F(CoordTest, DuplicateCreateFails) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  client.create("/x", "", false, false, nullptr);
  std::optional<bool> second;
  engine.schedule(0.5, [&] {
    client.create("/x", "", false, false,
                  [&](bool ok, const std::string&) { second = ok; });
  });
  engine.run_until(2.0);
  EXPECT_EQ(second, false);
}

TEST_F(CoordTest, SequentialNodesGetIncreasingSuffixes) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    client.create("/q/n_", "", false, true,
                  [&](bool ok, const std::string& p) {
                    ASSERT_TRUE(ok);
                    paths.push_back(p);
                  });
  }
  engine.run_until(2.0);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_LT(paths[0], paths[1]);
  EXPECT_LT(paths[1], paths[2]);
}

TEST_F(CoordTest, GetChildrenListsDirectChildrenOnly) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  client.create("/a/x", "", false, false, nullptr);
  client.create("/a/y", "", false, false, nullptr);
  client.create("/b/z", "", false, false, nullptr);
  std::vector<std::string> children;
  engine.schedule(0.5, [&] {
    client.get_children("/a", false,
                        [&](bool ok, const std::vector<std::string>& c) {
                          ASSERT_TRUE(ok);
                          children = c;
                        });
  });
  engine.run_until(2.0);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], "x");
  EXPECT_EQ(children[1], "y");
}

TEST_F(CoordTest, EphemeralNodeDiesWithSessionExpiry) {
  auto client = make_client("c1");
  client.open_session(2.0, nullptr);
  engine.run_until(0.5);
  client.create("/e", "", true, false, nullptr);
  engine.run_until(1.0);
  ASSERT_TRUE(service.node_exists("/e"));
  // Crash the client: pings stop, session expires after ~2s.
  client.crash();
  engine.run_until(5.0);
  EXPECT_FALSE(service.node_exists("/e"));
  EXPECT_EQ(service.session_count(), 0u);
}

TEST_F(CoordTest, PingsKeepSessionAlive) {
  auto client = make_client("c1");
  client.open_session(2.0, [&](bool ok) {
    ASSERT_TRUE(ok);
    client.create("/e", "", true, false, nullptr);
  });
  engine.run_until(10.0);  // many timeout windows, but pings flow
  EXPECT_TRUE(service.node_exists("/e"));
}

TEST_F(CoordTest, CloseSessionDeletesEphemerals) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  client.create("/e", "", true, false, nullptr);
  engine.schedule(0.5, [&] { client.close_session(); });
  engine.run_until(2.0);
  EXPECT_FALSE(service.node_exists("/e"));
}

TEST_F(CoordTest, DeleteNodeWatchFires) {
  auto owner = make_client("owner");
  auto watcher = make_client("watcher");
  owner.open_session(5.0, nullptr);
  watcher.open_session(5.0, nullptr);
  engine.run_until(0.5);
  owner.create("/w", "", false, false, nullptr);
  std::optional<coord::WatchEvent::Kind> seen;
  watcher.set_watch_handler([&](const coord::WatchEvent& e) { seen = e.kind; });
  engine.schedule(0.5, [&] { watcher.exists("/w", true, nullptr); });
  engine.schedule(1.0, [&] { owner.remove("/w", nullptr); });
  engine.run_until(3.0);
  EXPECT_EQ(seen, coord::WatchEvent::Kind::kDeleted);
}

TEST_F(CoordTest, WatchIsOneShot) {
  auto owner = make_client("owner");
  auto watcher = make_client("watcher");
  owner.open_session(5.0, nullptr);
  watcher.open_session(5.0, nullptr);
  engine.run_until(0.5);
  int events = 0;
  watcher.set_watch_handler([&](const coord::WatchEvent&) { ++events; });
  engine.schedule(0.2, [&] { watcher.exists("/w", true, nullptr); });
  engine.schedule(0.5, [&] { owner.create("/w", "", false, false, nullptr); });
  engine.schedule(1.0, [&] { owner.remove("/w", nullptr); });  // no 2nd watch set
  engine.run_until(3.0);
  EXPECT_EQ(events, 1);
}

TEST_F(CoordTest, ChildWatchFiresOnNewChild) {
  auto owner = make_client("owner");
  auto watcher = make_client("watcher");
  owner.open_session(5.0, nullptr);
  watcher.open_session(5.0, nullptr);
  engine.run_until(0.5);
  std::optional<coord::WatchEvent::Kind> seen;
  watcher.set_watch_handler([&](const coord::WatchEvent& e) { seen = e.kind; });
  watcher.get_children("/p", true, nullptr);
  engine.schedule(0.5, [&] { owner.create("/p/c", "", false, false, nullptr); });
  engine.run_until(2.0);
  EXPECT_EQ(seen, coord::WatchEvent::Kind::kChildrenChanged);
}

TEST_F(CoordTest, GetDataReturnsStoredData) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  client.create("/d", "payload", false, false, nullptr);
  std::optional<std::string> data;
  engine.schedule(0.5, [&] {
    client.get_data("/d", [&](bool ok, const std::string& d) {
      ASSERT_TRUE(ok);
      data = d;
    });
  });
  engine.run_until(2.0);
  EXPECT_EQ(data, "payload");
}

TEST_F(CoordTest, GetDataMissingNodeFails) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  std::optional<bool> ok;
  client.get_data("/missing", [&](bool v, const std::string&) { ok = v; });
  engine.run_until(1.0);
  EXPECT_EQ(ok, false);
}

TEST_F(CoordTest, RemoveMissingNodeFails) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  std::optional<bool> ok;
  client.remove("/missing", [&](bool v) { ok = v; });
  engine.run_until(1.0);
  EXPECT_EQ(ok, false);
}

TEST_F(CoordTest, SequenceCountersAreIndependentPerParent) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  std::vector<std::string> paths;
  client.create("/a/n_", "", false, true,
                [&](bool, const std::string& p) { paths.push_back(p); });
  client.create("/b/n_", "", false, true,
                [&](bool, const std::string& p) { paths.push_back(p); });
  engine.run_until(2.0);
  ASSERT_EQ(paths.size(), 2u);
  // Both parents start their counters at zero.
  EXPECT_EQ(paths[0].substr(paths[0].size() - 10), "0000000000");
  EXPECT_EQ(paths[1].substr(paths[1].size() - 10), "0000000000");
}

TEST_F(CoordTest, TwoSessionsEphemeralIsolation) {
  auto a = make_client("a");
  auto b = make_client("b");
  a.open_session(2.0, [&](bool) { a.create("/ea", "", true, false, nullptr); });
  b.open_session(30.0, [&](bool) { b.create("/eb", "", true, false, nullptr); });
  engine.run_until(1.0);
  ASSERT_TRUE(service.node_exists("/ea"));
  ASSERT_TRUE(service.node_exists("/eb"));
  a.crash();  // only a's ephemeral must vanish
  engine.run_until(6.0);
  EXPECT_FALSE(service.node_exists("/ea"));
  EXPECT_TRUE(service.node_exists("/eb"));
}

TEST_F(CoordTest, ChildrenOfRootExcludeNested) {
  auto client = make_client("c1");
  client.open_session(5.0, nullptr);
  engine.run_until(0.5);
  client.create("/top", "", false, false, nullptr);
  client.create("/top/nested", "", false, false, nullptr);
  engine.run_until(1.0);
  const auto children = service.children_of("/");
  EXPECT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], "top");
}

// --- Leader election ------------------------------------------------------------

class ElectionTest : public testing::Test {
 protected:
  ElectionTest() : service(engine, network, network.allocate_address()) {}

  std::unique_ptr<coord::LeaderElection> make_candidate(const std::string& name) {
    return std::make_unique<coord::LeaderElection>(engine, network, service.address(),
                                                   name);
  }

  sim::Engine engine{1};
  net::Network network{engine, net::LatencyModel{1e-3, 0.0}};
  coord::Service service;
};

TEST_F(ElectionTest, FirstCandidateBecomesLeader) {
  auto a = make_candidate("a");
  bool elected = false;
  a->start("addr-a", [&](std::uint64_t) { elected = true; });
  engine.run_until(2.0);
  EXPECT_TRUE(elected);
  EXPECT_TRUE(a->is_leader());
}

TEST_F(ElectionTest, SecondCandidateWaits) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  a->start("addr-a", nullptr);
  engine.run_until(1.0);
  bool b_elected = false;
  b->start("addr-b", [&](std::uint64_t) { b_elected = true; });
  engine.run_until(3.0);
  EXPECT_TRUE(a->is_leader());
  EXPECT_FALSE(b->is_leader());
  EXPECT_FALSE(b_elected);
}

TEST_F(ElectionTest, SuccessorPromotedOnLeaderCrash) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  a->start("addr-a", nullptr);
  engine.run_until(1.0);
  b->start("addr-b", nullptr);
  engine.run_until(2.0);
  ASSERT_TRUE(a->is_leader());
  a->crash();  // session expires, znode vanishes, b's watch fires
  engine.run_until(15.0);
  EXPECT_TRUE(b->is_leader());
}

TEST_F(ElectionTest, OnlyOneLeaderAmongMany) {
  std::vector<std::unique_ptr<coord::LeaderElection>> candidates;
  for (int i = 0; i < 5; ++i) {
    candidates.push_back(make_candidate("c" + std::to_string(i)));
    candidates.back()->start("addr", nullptr);
  }
  engine.run_until(3.0);
  int leaders = 0;
  for (const auto& c : candidates) leaders += c->is_leader() ? 1 : 0;
  EXPECT_EQ(leaders, 1);
}

TEST_F(ElectionTest, CascadedFailuresPromoteInOrder) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  auto c = make_candidate("c");
  a->start("addr-a", nullptr);
  engine.run_until(0.5);
  b->start("addr-b", nullptr);
  engine.run_until(1.0);
  c->start("addr-c", nullptr);
  engine.run_until(2.0);
  a->crash();
  engine.run_until(15.0);
  ASSERT_TRUE(b->is_leader());
  EXPECT_FALSE(c->is_leader());
  b->crash();
  engine.run_until(30.0);
  EXPECT_TRUE(c->is_leader());
}

TEST_F(ElectionTest, MiddleCandidateCrashDoesNotPromoteTail) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  auto c = make_candidate("c");
  a->start("addr-a", nullptr);
  engine.run_until(0.5);
  b->start("addr-b", nullptr);
  engine.run_until(1.0);
  c->start("addr-c", nullptr);
  engine.run_until(2.0);
  b->crash();  // c's watched predecessor vanishes but a still leads
  engine.run_until(15.0);
  EXPECT_TRUE(a->is_leader());
  EXPECT_FALSE(c->is_leader());
}

TEST_F(ElectionTest, LeaderDataReadable) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  a->start("contact-of-a", nullptr);
  engine.run_until(1.0);
  b->start("contact-of-b", nullptr);
  engine.run_until(2.0);
  std::optional<std::string> data;
  b->leader_data([&](bool ok, const std::string& d) {
    ASSERT_TRUE(ok);
    data = d;
  });
  engine.run_until(3.0);
  EXPECT_EQ(data, "contact-of-a");
}

TEST_F(ElectionTest, ElectionEpochsAreMonotoneAcrossPromotions) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  std::uint64_t epoch_a = 0;
  std::uint64_t epoch_b = 0;
  a->start("addr-a", [&](std::uint64_t e) { epoch_a = e; });
  engine.run_until(1.0);
  b->start("addr-b", [&](std::uint64_t e) { epoch_b = e; });
  engine.run_until(2.0);
  // First sequential znode has sequence 0; epochs start at 1 so the null
  // epoch (0, unfenced) can never outrank a real term.
  EXPECT_EQ(epoch_a, 1u);
  EXPECT_EQ(a->epoch(), 1u);
  a->crash();
  engine.run_until(15.0);
  ASSERT_TRUE(b->is_leader());
  EXPECT_EQ(epoch_b, 2u);
  EXPECT_GT(epoch_b, epoch_a);
}

TEST_F(ElectionTest, IsolatedLeaderDemotedAndRejoinsWithHigherEpoch) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  std::uint64_t last_epoch_a = 0;
  a->start("addr-a", [&](std::uint64_t e) { last_epoch_a = e; });
  engine.run_until(1.0);
  b->start("addr-b", nullptr);
  engine.run_until(2.0);
  ASSERT_TRUE(a->is_leader());
  bool demoted = false;
  a->set_on_demoted([&] { demoted = true; });

  // Cut a's coordination client off: its session expires server-side and b
  // is promoted; a only learns of the expiry once the partition heals.
  network.set_partitions({{a->client_address()}});
  engine.run_until(20.0);
  ASSERT_TRUE(b->is_leader());
  network.set_partitions({});
  engine.run_until(40.0);
  EXPECT_TRUE(demoted);
  EXPECT_FALSE(a->is_leader());
  EXPECT_TRUE(b->is_leader());
  // a re-entered the queue with a fresh znode: exactly two candidates, and
  // a's new epoch (would-be, as next in line) is strictly above b's term.
  EXPECT_EQ(service.children_of("/election").size(), 2u);
  EXPECT_GT(a->epoch(), b->epoch());
}

TEST_F(ElectionTest, CrashRecoverFlappingLeavesOneZnodePerCandidate) {
  // Regression: a candidate flapping through crash()/recover() used to leave
  // a second candidate znode behind when the recovery raced the expiry of
  // its previous session (both the expiry handler and evaluate()'s
  // vanished-znode path issued a create). Exactly one znode per candidate
  // must survive any number of flaps.
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  a->start("addr-a", nullptr);
  b->start("addr-b", nullptr);
  engine.run_until(2.0);
  for (int round = 0; round < 10; ++round) {
    a->crash();
    // Vary the in-crash dwell so recovery sometimes races the old session's
    // expiry (timeout 6 s) and sometimes follows it.
    engine.run_until(engine.now() + (round % 2 == 0 ? 1.0 : 7.0));
    a->recover();
    a->start("addr-a", nullptr);
    engine.run_until(engine.now() + 4.0);
  }
  engine.run_until(engine.now() + 15.0);  // let stragglers expire
  const auto children = service.children_of("/election");
  EXPECT_EQ(children.size(), 2u)
      << "candidate znodes leaked across crash/recover flaps";
  int leaders = (a->is_leader() ? 1 : 0) + (b->is_leader() ? 1 : 0);
  EXPECT_EQ(leaders, 1);
}

TEST_F(ElectionTest, RecoveredCandidateRejoinsAsFollower) {
  auto a = make_candidate("a");
  auto b = make_candidate("b");
  a->start("addr-a", nullptr);
  engine.run_until(1.0);
  b->start("addr-b", nullptr);
  engine.run_until(2.0);
  a->crash();
  engine.run_until(15.0);
  ASSERT_TRUE(b->is_leader());
  a->recover();
  a->start("addr-a", nullptr);
  engine.run_until(20.0);
  EXPECT_TRUE(b->is_leader());
  EXPECT_FALSE(a->is_leader());
}

}  // namespace
