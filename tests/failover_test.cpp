// Epoch-fenced failover: stale-leader rejection, reconciliation windows and
// split-brain fencing invariants (DESIGN.md, "Epoch fencing").
//
// These are the tier-1 checks; the 50-seed sweep lives in
// failover_soak_test.cpp (ctest label `soak`).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "core/messages.hpp"
#include "core/system.hpp"
#include "net/rpc.hpp"

namespace {

using namespace snooze;
using namespace snooze::core;

SystemSpec failover_spec() {
  SystemSpec spec;
  spec.entry_points = 1;
  spec.group_managers = 3;
  spec.local_controllers = 6;
  return spec;
}

GroupManager* find_non_leader(SnoozeSystem& system) {
  for (const auto& gm : system.group_managers()) {
    if (gm->alive() && !gm->is_leader()) return gm.get();
  }
  return nullptr;
}

// A dispatch stamped with a deposed GL's epoch must be refused with the typed
// StaleEpochError, not silently applied or treated as a transport failure.
TEST(EpochFence, StaleGlDispatchRejectedWithTypedError) {
  SnoozeSystem system(failover_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  const std::uint64_t old_epoch = system.leader()->epoch();
  ASSERT_GE(old_epoch, 1u);

  ASSERT_GE(system.fail_gl(), 0);
  system.engine().run_until(system.engine().now() + 30.0);
  GroupManager* new_gl = system.leader();
  ASSERT_NE(new_gl, nullptr);
  ASSERT_GT(new_gl->epoch(), old_epoch);

  GroupManager* gm = find_non_leader(system);
  ASSERT_NE(gm, nullptr);
  ASSERT_GE(gm->gl_epoch_seen(), new_gl->epoch());

  // Replay the deposed leader's authority: a placement carrying its epoch.
  net::RpcEndpoint probe(system.engine(), system.network(),
                         system.network().allocate_address(), "probe");
  auto place = std::make_shared<PlacementRequest>();
  place->vm = system.make_vm({0.1, 0.1, 0.1});
  place->epoch = old_epoch;
  std::optional<std::uint64_t> observed;
  probe.call(gm->address(), place, 5.0, [&](bool ok, const net::MsgPtr& reply) {
    ASSERT_TRUE(ok);
    const auto* stale = net::msg_cast<StaleEpochError>(reply);
    ASSERT_NE(stale, nullptr) << "expected a typed StaleEpochError reply";
    observed = stale->observed;
  });
  system.engine().run_until(system.engine().now() + 5.0);
  ASSERT_TRUE(observed.has_value());
  EXPECT_GE(*observed, new_gl->epoch());
  EXPECT_GE(gm->fence_rejected(), 1u);
  EXPECT_EQ(gm->stale_accepts(), 0u);
}

// An unfenced (epoch 0) placement is admitted: tests and administrative
// paths stay functional without holding a term.
TEST(EpochFence, UnfencedPlacementStillAdmitted) {
  SnoozeSystem system(failover_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  GroupManager* gm = find_non_leader(system);
  ASSERT_NE(gm, nullptr);
  ASSERT_GT(gm->lc_count(), 0u);

  net::RpcEndpoint probe(system.engine(), system.network(),
                         system.network().allocate_address(), "probe");
  auto place = std::make_shared<PlacementRequest>();
  place->vm = system.make_vm({0.1, 0.1, 0.1});
  std::optional<bool> placed;
  probe.call(gm->address(), place, 25.0, [&](bool ok, const net::MsgPtr& reply) {
    const auto* resp = ok ? net::msg_cast<PlacementResponse>(reply) : nullptr;
    placed = resp != nullptr && resp->ok;
  });
  system.engine().run_until(system.engine().now() + 30.0);
  EXPECT_EQ(placed, true);
  EXPECT_EQ(gm->fence_rejected(), 0u);
}

// After its GM dies and the LC re-registers elsewhere, commands stamped with
// the dead GM's old lease must bounce off the LC's fresh lease epoch.
TEST(EpochFence, LcFencesDeposedGmAfterRelease) {
  SnoozeSystem system(failover_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  LocalController* lc = system.local_controllers().front().get();
  ASSERT_TRUE(lc->assigned());
  const std::uint64_t old_lease = lc->lease_epoch();
  ASSERT_GE(old_lease, 1u);
  const net::Address old_gm = lc->gm();

  for (std::size_t i = 0; i < system.group_managers().size(); ++i) {
    if (system.group_managers()[i]->address() == old_gm) system.fail_gm(i);
  }
  system.engine().run_until(system.engine().now() + 40.0);
  ASSERT_TRUE(lc->assigned());
  ASSERT_NE(lc->gm(), old_gm);
  ASSERT_GT(lc->lease_epoch(), old_lease);

  net::RpcEndpoint probe(system.engine(), system.network(),
                         system.network().allocate_address(), "probe");
  auto start = std::make_shared<StartVmRequest>();
  start->vm = system.make_vm({0.1, 0.1, 0.1});
  start->epoch = old_lease;  // the dead GM's lease
  std::optional<bool> stale;
  probe.call(lc->address(), start, 5.0, [&](bool ok, const net::MsgPtr& reply) {
    ASSERT_TRUE(ok);
    stale = net::msg_cast<StaleEpochError>(reply) != nullptr;
  });
  system.engine().run_until(system.engine().now() + 5.0);
  EXPECT_EQ(stale, true);
  EXPECT_GE(lc->fence_rejected(), 1u);
  EXPECT_EQ(lc->stale_accepts(), 0u);
}

// Every new GL term opens with a reconciliation window that closes on time
// and is measured into the telemetry registry.
TEST(Reconcile, NewGlFinishesReconciliationWithinWindow) {
  SnoozeSystem system(failover_spec());
  system.start();
  ASSERT_TRUE(system.run_until_stable(60.0));
  ASSERT_GE(system.fail_gl(), 0);
  system.engine().run_until(system.engine().now() + 30.0);

  GroupManager* new_gl = system.leader();
  ASSERT_NE(new_gl, nullptr);
  EXPECT_FALSE(new_gl->reconciling());
  EXPECT_EQ(new_gl->counters().reconciliations, 1u);

  const auto* hist =
      system.telemetry().metrics().find_histogram("reconcile.duration");
  ASSERT_NE(hist, nullptr);
  // Initial election + failover: at least two completed reconcile windows,
  // each exactly one gl_reconcile_window long on the virtual clock.
  EXPECT_GE(hist->count(), 2u);
  EXPECT_LE(hist->max(), system.spec().config.gl_reconcile_window + 1e-9);
  const auto* gauge = system.telemetry().metrics().find_gauge("failover.epoch");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->current(), static_cast<double>(new_gl->epoch()));
}

// The scripted acceptance scenario: isolate the GL mid-workload, let a
// successor take over, heal — no stale command is ever applied, every VM is
// hosted exactly once, and the whole run is deterministic per seed.
TEST(FailoverChaos, GlIsolationFencedAndDeterministic) {
  chaos::ChaosRunConfig cfg;
  cfg.seed = 2024;
  cfg.topology = {3, 6, 2};
  cfg.vms = 6;
  const auto schedule = chaos::parse_script(
      "duration 50\n"
      "5 isolate gl #1\n"
      "25 heal #1\n");
  const auto first = chaos::run_chaos_schedule(cfg, schedule);
  EXPECT_TRUE(first.ok()) << first.report;
  EXPECT_EQ(first.stale_accepts, 0u) << first.report;

  const auto second = chaos::run_chaos_schedule(cfg, schedule);
  EXPECT_EQ(first.trace_hash, second.trace_hash)
      << "same seed + script must reproduce the identical trace";
}

TEST(FailoverChaos, GmIsolationFencedAndDeterministic) {
  chaos::ChaosRunConfig cfg;
  cfg.seed = 4048;
  cfg.topology = {3, 6, 2};
  cfg.vms = 6;
  const auto schedule = chaos::parse_script(
      "duration 50\n"
      "4 isolate gm 0 #1\n"
      "28 heal #1\n");
  const auto first = chaos::run_chaos_schedule(cfg, schedule);
  EXPECT_TRUE(first.ok()) << first.report;
  EXPECT_EQ(first.stale_accepts, 0u) << first.report;

  const auto second = chaos::run_chaos_schedule(cfg, schedule);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
}

}  // namespace
